"""Tests for the extension features: Monaco variants, DSE, hybrid NUMA+NUPEA."""

import pytest

from repro.arch.fabric import monaco, monaco_variant
from repro.arch.params import ArchParams
from repro.core.policy import EFFCC
from repro.errors import ArchError
from repro.pnr.flow import compile_once
from repro.sim.engine import simulate
from repro.sim.hybrid import HybridFrontend
from repro.sim.upea import UniformFrontend

from kernels import zoo_instance


class TestMonacoVariant:
    def test_default_variant_is_monaco(self):
        variant = monaco_variant(12, 12, domain_width=3, ls_row_stride=2)
        reference = monaco(12, 12)
        assert len(variant.ls_pes()) == len(reference.ls_pes())
        assert variant.n_ports == reference.n_ports
        assert [d.columns for d in variant.domains] == [
            d.columns for d in reference.domains
        ]

    def test_domain_width_sets_ports(self):
        narrow = monaco_variant(12, 12, domain_width=1)
        wide = monaco_variant(12, 12, domain_width=4)
        assert narrow.n_ports == 6  # one direct port per LS row
        assert wide.n_ports == 24
        assert len(narrow.domains) == 12
        assert len(wide.domains) == 3

    def test_ls_row_stride(self):
        sparse = monaco_variant(12, 12, ls_row_stride=3)
        assert len(sparse.ls_rows()) == 4
        dense = monaco_variant(12, 12, ls_row_stride=1)
        assert len(dense.ls_rows()) == 12

    def test_invalid_params(self):
        with pytest.raises(ArchError):
            monaco_variant(12, 12, domain_width=0)
        with pytest.raises(ArchError):
            monaco_variant(13, 12, ls_row_stride=2)

    def test_variant_compiles_and_runs(self):
        kernel, params, arrays = zoo_instance("join")
        arch = ArchParams()
        fabric = monaco_variant(12, 12, domain_width=2)
        compiled = compile_once(kernel, fabric, arch, EFFCC, parallelism=1)
        result = simulate(compiled, params, arrays, arch)
        assert result.memory["O"] == [3]


class TestHybridFrontend:
    def run_with(self, frontend_factory):
        kernel, params, arrays = zoo_instance("join")
        arch = ArchParams()
        compiled = compile_once(
            kernel, monaco(12, 12), arch, EFFCC, parallelism=1
        )
        return simulate(
            compiled, params, arrays, arch,
            frontend_factory=frontend_factory, divider=2,
        )

    def test_results_correct(self):
        result = self.run_with(
            lambda f, a: HybridFrontend(f, a, remote_cycles=2)
        )
        assert result.memory["O"] == [3]
        assert result.stats.frontend == "monaco-numa"

    def test_local_and_remote_accounted(self):
        frontends = []

        def factory(fabric, amap):
            fe = HybridFrontend(fabric, amap, remote_cycles=2)
            frontends.append(fe)
            return fe

        self.run_with(factory)
        fe = frontends[0]
        assert fe.local_accesses + fe.remote_accesses > 0

    def test_spatial_assignment_groups_rows(self):
        from repro.arch.memory import AddressMap
        from repro.arch.params import MemoryParams

        fabric = monaco(12, 12)
        amap = AddressMap({"a": 64}, MemoryParams())
        fe = HybridFrontend(fabric, amap, n_regions=4)
        rows = fabric.ls_rows()
        regions = [fe.row_region[r] for r in rows]
        assert regions == sorted(regions)  # spatial, not random
        assert set(regions) <= {0, 1, 2, 3}

    def test_remote_penalty_bounded_by_upea(self):
        hybrid = self.run_with(
            lambda f, a: HybridFrontend(f, a, remote_cycles=4)
        )
        upea = self.run_with(lambda f, a: UniformFrontend(4))
        # Hybrid pays the penalty only on remote accesses and only after
        # NUPEA got critical loads to the ports quickly.
        assert hybrid.stats.system_cycles <= upea.stats.system_cycles * 1.3


class TestDSE:
    def test_dse_produces_grid(self):
        from repro.exp.dse import ls_placement_dse

        result = ls_placement_dse(
            workloads=("spmspv",),
            scale="tiny",
            widths=(2, 3),
            strides=(2,),
        )
        row = result.rows["spmspv"]
        assert set(row) == {"w2/s2", "w3/s2"}
        assert all(v > 0 for v in row.values())


class TestCLI:
    def test_workloads_command(self, capsys):
        from repro.cli import main

        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "spmspv" in out

    def test_fabric_command(self, capsys):
        from repro.cli import main

        assert main(["fabric", "monaco", "--rows", "8", "--cols", "8"]) == 0
        assert "|mem" in capsys.readouterr().out

    def test_table1_command(self, capsys):
        from repro.cli import main

        assert main(["table1", "--scale", "tiny"]) == 0
        assert "mergesort" in capsys.readouterr().out

    def test_run_command(self, capsys):
        from repro.cli import main

        code = main(
            ["run", "spmv", "--scale", "tiny", "--config", "upea2",
             "--criticality"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "output verified" in out
        assert "class" in out

    def test_figure_command(self, capsys):
        from repro.cli import main

        code = main(
            ["figure", "fig12", "--scale", "tiny", "--workloads", "spmv"]
        )
        assert code == 0
        assert "effcc" in capsys.readouterr().out

    def test_bad_config_rejected(self):
        from repro.cli import _config_for

        with pytest.raises(SystemExit):
            _config_for("warp-drive")

    def test_config_parsing(self):
        from repro.cli import _config_for

        assert _config_for("monaco").kind == "monaco"
        assert _config_for("upea3").upea_fabric_cycles == 3
        assert _config_for("numa2").kind == "numa"
        assert _config_for("ideal").upea_fabric_cycles == 0

    def test_regions_command(self, capsys):
        from repro.cli import main

        code = main(
            ["regions", "ic", "--scale", "tiny", "--rows", "10",
             "--cols", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "region(s)" in out and "output verified" in out
