"""Unit tests for the parallelization transform."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IRError
from repro.ir.ast import For, Par, ParFor, walk_stmts
from repro.ir.interp import run_kernel
from repro.ir.transform import parallelize

from kernels import ZOO, zoo_instance


def test_degree_one_turns_parfor_into_for():
    kernel, _, _ = zoo_instance("parphases")
    flat = parallelize(kernel, 1)
    kinds = [type(s).__name__ for s in flat.body]
    assert kinds == ["For", "For"]


def test_degree_k_produces_par_blocks():
    kernel, _, _ = zoo_instance("parphases")
    split = parallelize(kernel, 3)
    assert isinstance(split.body[0], Par)
    assert len(split.body[0].blocks) == 3
    for block in split.body[0].blocks:
        assert isinstance(block[0], For)


def test_worker_variables_renamed_apart():
    kernel, _, _ = zoo_instance("parphases")
    split = parallelize(kernel, 2)
    block0, block1 = split.body[0].blocks
    assert block0[0].var != block1[0].var
    assert block0[0].var.endswith("#0")
    assert block1[0].var.endswith("#1")


def test_strided_partitioning_covers_range():
    kernel, params, arrays = zoo_instance("parphases")
    reference = run_kernel(kernel, params, arrays)
    for degree in (2, 3, 5, 8, 16):
        got = run_kernel(parallelize(kernel, degree), params, arrays)
        assert got == reference, degree


def test_degree_zero_rejected():
    kernel, _, _ = zoo_instance("parphases")
    with pytest.raises(IRError):
        parallelize(kernel, 0)


def test_inner_parfor_sequentialized():
    from repro.ir.builder import KernelBuilder

    b = KernelBuilder("nestpar", params=["n"])
    a = b.array("A", 16)
    with b.parfor("i", 0, 4) as i:
        with b.parfor("j", 0, 4) as j:
            a.store(i * 4 + j, i + j)
    split = parallelize(b.build(), 2)
    inner_parfors = [
        s for s in walk_stmts(split.body) if isinstance(s, ParFor)
    ]
    assert not inner_parfors
    got = run_kernel(split, {"n": 4})
    assert got["A"] == [(i // 4) + (i % 4) for i in range(16)]


def test_parallelize_is_pure():
    kernel, params, arrays = zoo_instance("parphases")
    before = run_kernel(kernel, params, arrays)
    parallelize(kernel, 4)
    after = run_kernel(kernel, params, arrays)
    assert before == after


@settings(max_examples=20, deadline=None)
@given(
    name=st.sampled_from(sorted(ZOO)),
    degree=st.integers(min_value=1, max_value=8),
)
def test_parallelize_preserves_semantics(name, degree):
    kernel, params, arrays = zoo_instance(name)
    reference = run_kernel(kernel, params, arrays)
    got = run_kernel(parallelize(kernel, degree), params, arrays)
    assert got == reference


def test_parfor_inside_sequential_loop():
    from repro.ir.builder import KernelBuilder

    b = KernelBuilder("steps", params=["n"])
    a = b.array("A", 8)
    with b.for_("t", 0, 3):
        with b.parfor("i", 0, b.p.n) as i:
            v = a.load(i)
            a.store(i, v + 1)
    kernel = b.build()
    got = run_kernel(parallelize(kernel, 2), {"n": 8})
    assert got["A"] == [3] * 8
