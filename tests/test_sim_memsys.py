"""Unit tests for the banked memory system and shared cache."""

from repro.arch.memory import AddressMap
from repro.arch.params import MemoryParams
from repro.dfg.ops import MemRequest
from repro.sim.memsys import MemorySystem, RequestRecord, SharedCache


def make_memsys(**overrides):
    params = MemoryParams(**overrides) if overrides else MemoryParams()
    amap = AddressMap({"a": 256}, params)
    data = {"a": list(range(256))}
    return MemorySystem(params, amap, data), amap


def record_for(amap, index, kind="load", value=None, seq=0):
    request = MemRequest(kind, "a", index, value)
    return RequestRecord(
        nid=1,
        seq=seq,
        request=request,
        address=amap.address("a", index),
        pe_coord=(0, 0),
        issue_cycle=0,
    )


class TestSharedCache:
    def test_miss_then_hit(self):
        cache = SharedCache(2)
        assert not cache.access(10)
        assert cache.access(10)

    def test_lru_eviction(self):
        cache = SharedCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # refresh 1
        cache.access(3)  # evicts 2
        assert cache.access(1)
        assert not cache.access(2)

    def test_zero_capacity_never_hits(self):
        cache = SharedCache(0)
        assert not cache.access(1)
        assert not cache.access(1)


class TestMemorySystem:
    def test_load_latency_hit_vs_miss(self):
        memsys, amap = make_memsys()
        first = record_for(amap, 0)
        memsys.enqueue(first, now=0)
        memsys.tick(1)
        assert first.hit is False
        assert first.complete_cycle == 1 + memsys.params.miss_latency()
        # Same line again: hit.
        second = record_for(amap, 1)
        memsys.enqueue(second, now=2)
        memsys.tick(3)
        assert second.hit is True
        assert second.complete_cycle == 3 + memsys.params.hit_cycles

    def test_store_writes_at_service(self):
        memsys, amap = make_memsys()
        store = record_for(amap, 5, kind="store", value=999)
        memsys.enqueue(store, now=0)
        memsys.tick(1)
        assert memsys.data["a"][5] == 999
        assert store.value == 0  # ordering-token payload

    def test_load_reads_current_data(self):
        memsys, amap = make_memsys()
        memsys.data["a"][7] = 1234
        load = record_for(amap, 7)
        memsys.enqueue(load, now=0)
        memsys.tick(1)
        assert load.value == 1234

    def test_bank_conflict_queues(self):
        memsys, amap = make_memsys()
        # Two requests to the same line -> same bank -> serialized.
        a = record_for(amap, 0, seq=1)
        b = record_for(amap, 1, seq=2)
        memsys.enqueue(a, now=0)
        memsys.enqueue(b, now=0)
        memsys.tick(1)
        memsys.tick(2)
        assert a.serve_cycle == 1
        assert b.serve_cycle == 2
        assert memsys.stats.bank_wait_cycles >= 2

    def test_different_banks_parallel(self):
        params = MemoryParams(n_banks=4, line_words=8)
        amap = AddressMap({"a": 256}, params)
        memsys = MemorySystem(params, amap, {"a": [0] * 256})
        a = record_for(amap, 0)
        b = record_for(amap, 8)  # next line, next bank
        memsys.enqueue(a, now=0)
        memsys.enqueue(b, now=0)
        memsys.tick(1)
        assert a.serve_cycle == 1 and b.serve_cycle == 1

    def test_completions_in_time_order(self):
        memsys, amap = make_memsys()
        a = record_for(amap, 0)
        memsys.enqueue(a, now=0)
        memsys.tick(1)
        assert list(memsys.completions(1)) == []
        done = list(memsys.completions(a.complete_cycle))
        assert done == [a]
        assert not memsys.busy()

    def test_stats_accumulate(self):
        memsys, amap = make_memsys()
        for i, kind in enumerate(["load", "store", "load"]):
            rec = record_for(
                amap, i * 64, kind=kind, value=0 if kind == "store" else None
            )
            memsys.enqueue(rec, now=i)
            memsys.tick(i + 1)
        assert memsys.stats.loads == 2
        assert memsys.stats.stores == 1
        assert memsys.stats.misses == 3

    def test_out_of_bounds_detected(self):
        import pytest

        from repro.errors import SimulationError

        memsys, amap = make_memsys()
        bad = RequestRecord(
            nid=1,
            seq=0,
            request=MemRequest("load", "a", 999),
            address=0,
            pe_coord=(0, 0),
            issue_cycle=0,
        )
        memsys.enqueue(bad, now=0)
        with pytest.raises(SimulationError):
            memsys.tick(1)
