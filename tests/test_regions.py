"""Tests for program region splitting and multi-bitstream execution."""

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams
from repro.core.policy import EFFCC
from repro.errors import PnRError
from repro.ir.builder import KernelBuilder
from repro.ir.interp import run_kernel
from repro.pnr.regions import (
    SPILL_ARRAY,
    compile_region_program,
    split_kernel,
)
from repro.sim.regions import simulate_regions
from repro.workloads import make_workload

ARCH = ArchParams()


def multiphase_kernel(n=8, phases=4):
    """Several top-level parfor phases with a scalar crossing regions."""
    b = KernelBuilder("phases", params=["n"])
    a = b.array("A", n)
    c = b.array("B", n)
    bias = b.let("bias", b.p.n * 2)  # scalar live across all phases
    for p in range(phases):
        src, dst = (a, c) if p % 2 == 0 else (c, a)
        with b.parfor(f"i{p}", 0, b.p.n) as i:
            dst.store(i, src.load(i) + bias + p)
    total = b.let("total", a.load(0) + c.load(0))
    a.store(0, total)
    return b.build()


class TestSplitting:
    def test_small_kernel_single_region(self):
        kernel = multiphase_kernel(phases=1)
        program = split_kernel(kernel, monaco(12, 12))
        assert len(program) == 1
        assert program.regions[0].live_in == []
        assert program.regions[0].spills == {}

    def test_oversized_kernel_splits(self):
        kernel = multiphase_kernel(phases=4)
        program = split_kernel(kernel, monaco(6, 6))
        assert len(program) >= 2
        # The bias scalar crosses region boundaries: spilled once,
        # received by later regions.
        assert "bias" in program.spill_slots
        assert "bias" in program.regions[0].spills
        assert any(
            "bias" in region.live_in for region in program.regions[1:]
        )

    def test_region_kernels_validate_and_declare_spill(self):
        kernel = multiphase_kernel(phases=4)
        program = split_kernel(kernel, monaco(6, 6))
        for region in program.regions:
            names = region.kernel.array_names()
            assert names[-1] == SPILL_ARRAY
            assert names[:-1] == kernel.array_names()

    def test_unsplittable_statement_raises(self):
        inst = make_workload("mergesort", scale="tiny")
        # mergesort is one top-level loop: cannot split further.
        with pytest.raises(PnRError, match="does not fit"):
            split_kernel(inst.kernel, monaco(4, 4))


def loop_clobber_kernel(n=8, phases=3):
    """A scalar defined early, *reassigned inside a loop* mid-program.

    The mid-program loop only may-writes ``acc`` (a loop body is never a
    definite write — it could run zero iterations), so spill decisions
    keyed on definite writes would let the first region's spill of the
    original value stand and the final region would read a stale
    ``acc``. Regression for the may-write spill rule.
    """
    b = KernelBuilder("clobber", params=["n"])
    a = b.array("A", n)
    c = b.array("B", n)
    acc = b.let("acc", b.p.n * 3)
    for p in range(phases):
        src, dst = (a, c) if p % 2 == 0 else (c, a)
        with b.parfor(f"i{p}", 0, b.p.n) as i:
            dst.store(i, src.load(i) + p)
    with b.for_("k", 0, b.p.n) as k:
        b.set(acc, acc + a.load(k))
    for p in range(phases):
        src, dst = (a, c) if p % 2 == 0 else (c, a)
        with b.parfor(f"j{p}", 0, b.p.n) as j:
            dst.store(j, src.load(j) + p)
    a.store(0, acc)
    return b.build()


class TestExecution:
    def test_multi_region_result_matches_reference(self):
        kernel = multiphase_kernel(phases=4)
        params = {"n": 8}
        arrays = {"A": list(range(8))}
        reference = run_kernel(kernel, params, arrays)
        compiled = compile_region_program(
            kernel, monaco(6, 6), ARCH, EFFCC, seed=1
        )
        assert len(compiled) >= 2
        result = simulate_regions(compiled, params, arrays, ARCH)
        assert result.memory["A"] == reference["A"]
        assert result.memory["B"] == reference["B"]

    def test_loop_reassigned_scalar_is_respilled(self):
        """A region that may-writes a spilled scalar must re-spill it."""
        kernel = loop_clobber_kernel()
        params = {"n": 8}
        arrays = {"A": list(range(8))}
        reference = run_kernel(kernel, params, arrays)
        program = split_kernel(kernel, monaco(6, 6))
        assert len(program) >= 2
        # Whichever region holds the accumulating loop must spill acc
        # again, not rely on the defining region's spill.
        holders = [
            idx
            for idx, region in enumerate(program.regions)
            if "acc" in region.spills
        ]
        assert len(holders) >= 2 or holders == [len(program) - 1]
        compiled = compile_region_program(
            kernel, monaco(6, 6), ARCH, EFFCC, seed=1
        )
        result = simulate_regions(compiled, params, arrays, ARCH)
        assert result.memory["A"] == reference["A"]

    def test_total_cycles_include_reconfiguration(self):
        kernel = multiphase_kernel(phases=4)
        params = {"n": 8}
        arrays = {"A": list(range(8))}
        compiled = compile_region_program(
            kernel, monaco(6, 6), ARCH, EFFCC, seed=1
        )
        result = simulate_regions(
            compiled, params, arrays, ARCH, reconfig_cycles=1000
        )
        assert result.total_cycles == (
            sum(result.region_cycles) + 1000 * (result.regions - 1)
        )

    def test_single_region_program_matches_plain_simulation(self):
        from repro.pnr.flow import compile_kernel
        from repro.sim.engine import simulate

        inst = make_workload("spmv", scale="tiny")
        compiled = compile_region_program(
            inst.kernel, monaco(12, 12), ARCH, EFFCC, seed=1
        )
        assert len(compiled) == 1
        result = simulate_regions(compiled, inst.params, inst.arrays, ARCH)
        inst.check(result.memory)

    def test_workload_on_small_fabric_via_regions(self):
        # ic does not fit an 10x10 fabric as one bitstream; regions
        # make it runnable.
        inst = make_workload("ic", scale="tiny")
        fabric = monaco(10, 10)
        with pytest.raises(PnRError):
            from repro.pnr.flow import compile_kernel

            compile_kernel(inst.kernel, fabric, ARCH, EFFCC)
        compiled = compile_region_program(
            inst.kernel, fabric, ARCH, EFFCC, seed=1
        )
        assert len(compiled) >= 2
        result = simulate_regions(compiled, inst.params, inst.arrays, ARCH)
        inst.check(result.memory)
