"""Tests for the experiment harness (configs, runner, figures, tables)."""

import pytest

from repro.arch.params import ArchParams
from repro.exp.cache import CompileCache
from repro.exp.configs import (
    MONACO,
    ideal,
    numa,
    primary_configs,
    upea,
)
from repro.exp.figures import FigureResult, fig6c, fig12, fig14, fig16, fig17
from repro.exp.report import format_figure
from repro.exp.runner import run_workload_on_configs
from repro.exp.tables import PAPER_TABLE1, format_table1, table1


class TestConfigs:
    def test_names(self):
        assert ideal().name == "ideal"
        assert upea(3).name == "upea3"
        assert numa(2).name == "numa-upea2"
        assert MONACO.name == "monaco"

    def test_primary_set_matches_fig11(self):
        names = [c.name for c in primary_configs()]
        assert names == ["ideal", "upea2", "numa-upea2", "monaco"]

    def test_frontend_factories(self):
        from repro.arch.fabric import monaco as monaco_fabric
        from repro.arch.memory import AddressMap
        from repro.arch.params import MemoryParams
        from repro.sim.fmnoc_sim import MonacoFrontend
        from repro.sim.upea import NumaFrontend, UniformFrontend

        fab = monaco_fabric(12, 12)
        amap = AddressMap({"a": 64}, MemoryParams())
        assert isinstance(
            MONACO.frontend_factory(2)(fab, amap), MonacoFrontend
        )
        fe = upea(3).frontend_factory(2)(fab, amap)
        assert isinstance(fe, UniformFrontend) and fe.delay == 6
        assert isinstance(
            numa(1).frontend_factory(2)(fab, amap), NumaFrontend
        )


class TestCache:
    def test_hit_miss_accounting(self):
        cache = CompileCache()
        calls = []
        cache.get_or_compile(("k",), lambda: calls.append(1) or "x")
        cache.get_or_compile(("k",), lambda: calls.append(1) or "y")
        assert calls == [1]
        assert cache.hits == 1 and cache.misses == 1
        cache.clear()
        assert cache.hits == 0


class TestRunner:
    def test_run_workload_on_configs(self):
        runs = run_workload_on_configs(
            "spmspv", [ideal(), MONACO], scale="tiny"
        )
        assert set(runs) == {"ideal", "monaco"}
        for run in runs.values():
            assert run.cycles > 0
            assert run.workload == "spmspv"


class TestFigures:
    def test_fig6c_shape(self):
        result = fig6c(scale="tiny")
        row = result.rows["spmspv"]
        assert row["nupea"] == 1.0
        assert row["upea2"] > row["upea0"] * 0.99
        assert result.raw["spmspv"]["upea2"] > 0

    def test_fig12_policies_ordered(self):
        result = fig12(scale="tiny", workloads=["spmspv"])
        row = result.rows["spmspv"]
        assert row["domain-unaware"] == 1.0
        assert row["effcc"] >= row["only-domain-aware"] * 0.95
        assert row["effcc"] > 1.0

    def test_fig14_degrades_with_latency(self):
        result = fig14(scale="tiny", workloads=["spmspv"])
        row = result.rows["spmspv"]
        sweep = [row[f"upea{n}"] for n in range(5)]
        assert sweep == sorted(sweep)

    def test_fig16_fig17_structure(self):
        result = fig16(
            scale="tiny", sizes=(8,), tracks=(7,), topologies=("monaco",)
        )
        assert "monaco" in result.rows
        assert "8x8/7trk" in result.rows["monaco"]
        timing = fig17(
            scale="tiny", sizes=(8,), tracks=(7,), topologies=("monaco",)
        )
        assert timing.rows["monaco"]["8x8/7trk"] > 0

    def test_geomean(self):
        result = FigureResult("f", "t", ["a"])
        result.rows = {"w1": {"a": 2.0}, "w2": {"a": 8.0}}
        assert result.geomean("a") == pytest.approx(4.0)
        assert result.geomean("missing") == 0.0


class TestReporting:
    def test_format_figure_renders_all_rows(self):
        result = FigureResult("figX", "demo", ["a", "b"])
        result.rows = {
            "w1": {"a": 1.0, "b": 2.0},
            "w2": {"a": 3.0, "b": float("inf")},
        }
        text = format_figure(result)
        assert "figX" in text and "w1" in text
        assert "unroutable" in text

    def test_table1_rows(self):
        rows = table1(scale="tiny")
        assert len(rows) == 13
        assert {r["application"] for r in rows} == set(PAPER_TABLE1)
        text = format_table1(rows)
        assert "spmspv" in text and "Sparsity" in text


def test_arch_params_plumbed_through():
    arch = ArchParams(noc_tracks=5)
    runs = run_workload_on_configs(
        "dmv", [MONACO], scale="tiny", arch=arch
    )
    assert runs["monaco"].cycles > 0
