"""Seeded random-kernel fuzzer + shrinker (``repro.check.fuzz``).

The fuzzer must be reproducible from ``(seed, index)`` alone, its
kernels must be valid terminating IR, the shrinker must preserve the
failing property while strictly reducing the kernel, and reproducers
must round-trip through plain JSON.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.check.fuzz import (
    ARRAY_SIZE,
    FUZZ_PARAMS,
    FuzzFailure,
    KernelGen,
    fuzz,
    fuzz_arrays,
    load_reproducer,
    shrink_kernel,
    write_reproducer,
)
from repro.ir.ast import (
    ArraySpec,
    Assign,
    BinOp,
    Const,
    Kernel,
    Load,
    Store,
    Var,
)
from repro.ir.interp import run_kernel
from repro.ir.serialize import kernel_from_dict, kernel_to_dict
from repro.ir.validate import validate_kernel


def gen(seed: int, index: int) -> Kernel:
    rng = random.Random((seed << 20) ^ index)
    return KernelGen(rng).kernel(index)


# -- generator ---------------------------------------------------------------


def test_generation_is_deterministic():
    for index in range(8):
        a, b = gen(7, index), gen(7, index)
        assert kernel_to_dict(a) == kernel_to_dict(b)


def test_different_indices_differ():
    dicts = {json.dumps(kernel_to_dict(gen(0, i))) for i in range(12)}
    assert len(dicts) > 6  # genuinely distinct programs


@pytest.mark.parametrize("index", range(12))
def test_generated_kernels_are_valid_and_terminate(index):
    kernel = gen(1, index)
    validate_kernel(kernel)
    arrays = fuzz_arrays(random.Random((1 << 20) ^ index))
    memory = run_kernel(kernel, FUZZ_PARAMS, arrays)
    assert set(memory) == {"A", "X"}
    assert all(len(v) == ARRAY_SIZE for v in memory.values())


def test_fuzz_arrays_are_in_bounds_indices():
    arrays = fuzz_arrays(random.Random(3))
    assert all(0 <= v < ARRAY_SIZE for v in arrays["X"])


# -- serialization -----------------------------------------------------------


@pytest.mark.parametrize("index", range(8))
def test_kernel_dict_round_trip(index):
    kernel = gen(2, index)
    data = kernel_to_dict(kernel)
    back = kernel_from_dict(data)
    assert kernel_to_dict(back) == data
    json.dumps(data)  # plain-JSON representable
    arrays = fuzz_arrays(random.Random(0))
    assert run_kernel(kernel, FUZZ_PARAMS, arrays) == run_kernel(
        back, FUZZ_PARAMS, arrays
    )


# -- shrinker ----------------------------------------------------------------


def bulky_kernel() -> Kernel:
    """Lots of chaff around one essential store."""
    return Kernel(
        "bulky",
        [],
        [ArraySpec("A", 8, "i"), ArraySpec("X", 8, "i")],
        [
            Assign("t0", Const(5)),
            Load("t1", "X", Const(1)),
            Assign("t2", BinOp("+", Var("t1"), Const(3))),
            Store("A", Const(2), Var("t2")),
            Store("A", Const(0), BinOp("*", Const(7), Const(6))),  # essential
            Load("t3", "X", Const(4)),
            Store("A", Const(5), Var("t3")),
        ],
    )


def test_shrink_preserves_property_and_reduces():
    def still_fails(kernel: Kernel) -> bool:
        memory = run_kernel(kernel, {}, {"X": [0] * 8})
        return memory["A"][0] == 42

    kernel = bulky_kernel()
    assert still_fails(kernel)
    shrunk = shrink_kernel(kernel, still_fails)
    assert still_fails(shrunk)
    assert len(shrunk.body) < len(kernel.body)
    # Greedy minimum for this property: the single essential store.
    assert len(shrunk.body) == 1
    assert isinstance(shrunk.body[0], Store)


def test_shrink_respects_budget():
    calls = 0

    def still_fails(kernel: Kernel) -> bool:
        nonlocal calls
        calls += 1
        return True  # everything "fails": worst case for the scanner

    shrink_kernel(bulky_kernel(), still_fails, budget=5)
    assert calls <= 5


def test_shrink_keeps_original_when_nothing_reduces():
    kernel = Kernel(
        "tight",
        [],
        [ArraySpec("A", 8, "i")],
        [Store("A", Const(0), Const(1))],
    )

    def still_fails(k: Kernel) -> bool:
        memory = run_kernel(k, {}, None)
        return memory["A"][0] == 1

    shrunk = shrink_kernel(kernel, still_fails)
    assert kernel_to_dict(shrunk) == kernel_to_dict(kernel)


# -- corpus reproducers ------------------------------------------------------


def test_reproducer_round_trip(tmp_path):
    kernel = gen(4, 0)
    failure = FuzzFailure(
        index=0, seed=4, kernel=kernel, shrunk=kernel, report=None
    )
    arrays = fuzz_arrays(random.Random(4 << 20))
    path = write_reproducer(tmp_path, failure, arrays)
    assert path.name == "fail-s4-k0.json"
    data = json.loads(path.read_text())
    assert data["schema"] == 1
    loaded, params, loaded_arrays = load_reproducer(path)
    assert params == FUZZ_PARAMS
    assert loaded_arrays == arrays
    assert run_kernel(loaded, params, loaded_arrays) == run_kernel(
        kernel, params, arrays
    )


# -- end-to-end --------------------------------------------------------------


def test_bounded_fuzz_run_is_clean_and_deterministic():
    a = fuzz(12, seed=0, shrink=False)
    b = fuzz(12, seed=0, shrink=False)
    assert a.ok and b.ok
    assert (a.ran, a.skipped) == (b.ran, b.skipped)
    assert a.ran + a.skipped == 12
    assert a.ran > 0


def test_fuzz_progress_callback_sees_every_case():
    seen = []
    fuzz(5, seed=1, shrink=False, progress=lambda i, s, d: seen.append((i, s)))
    assert [i for i, _ in seen] == list(range(5))
    assert all(state in ("ok", "skip", "FAIL") for _, state in seen)
