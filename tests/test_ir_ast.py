"""Unit tests for IR expressions and statements."""

import pytest

from repro.errors import IRError
from repro.ir.ast import (
    ArraySpec,
    Assign,
    BinOp,
    Const,
    For,
    If,
    Load,
    Par,
    ParFor,
    Store,
    UnOp,
    Var,
    While,
    expr_vars,
    stmt_exprs,
    walk_exprs,
    walk_stmts,
    wrap,
)


class TestExprBuilding:
    def test_operator_sugar_builds_binops(self):
        e = Var("a") + 1
        assert isinstance(e, BinOp) and e.op == "+"
        assert e.rhs == Const(1)

    def test_reflected_operators(self):
        for expr, op, lhs in (
            (1 + Var("a"), "+", Const(1)),
            (2 - Var("a"), "-", Const(2)),
            (3 * Var("a"), "*", Const(3)),
            (8 // Var("a"), "//", Const(8)),
            (8 / Var("a"), "/", Const(8)),
            (8 % Var("a"), "%", Const(8)),
            (1 << Var("a"), "<<", Const(1)),
            (16 >> Var("a"), ">>", Const(16)),
            (6 & Var("a"), "&", Const(6)),
            (6 | Var("a"), "|", Const(6)),
            (6 ^ Var("a"), "^", Const(6)),
        ):
            assert isinstance(expr, BinOp)
            assert expr.op == op
            assert expr.lhs == lhs

    def test_comparison_sugar(self):
        assert (Var("a") < 3).op == "<"
        assert (Var("a") >= 3).op == ">="
        assert Var("a").eq(3).op == "=="
        assert Var("a").ne(3).op == "!="

    def test_min_max_methods(self):
        assert Var("a").min(3).op == "min"
        assert Var("a").max(3).op == "max"

    def test_negation(self):
        e = -Var("a")
        assert isinstance(e, UnOp) and e.op == "-"

    def test_bool_wraps_to_int_const(self):
        assert wrap(True) == Const(1)
        assert wrap(False) == Const(0)

    def test_wrap_rejects_junk(self):
        with pytest.raises(IRError):
            wrap("hello")
        with pytest.raises(IRError):
            wrap([1, 2])

    def test_unknown_binop_rejected(self):
        with pytest.raises(IRError):
            BinOp("**", Const(1), Const(2))

    def test_unknown_unop_rejected(self):
        with pytest.raises(IRError):
            UnOp("!", Const(1))


class TestArraySpec:
    def test_valid(self):
        spec = ArraySpec("a", 4, "f")
        assert spec.dtype == "f"

    def test_bad_dtype(self):
        with pytest.raises(IRError):
            ArraySpec("a", 4, "d")

    def test_bad_size(self):
        with pytest.raises(IRError):
            ArraySpec("a", 0)


class TestWalkers:
    def test_walk_exprs_visits_all(self):
        e = (Var("a") + 1) * -Var("b")
        kinds = [type(x).__name__ for x in walk_exprs(e)]
        assert kinds.count("Var") == 2
        assert kinds.count("Const") == 1

    def test_expr_vars(self):
        e = (Var("a") + Var("b")) * Var("a")
        assert expr_vars(e) == {"a", "b"}

    def test_walk_stmts_recurses_all_regions(self):
        body = [
            Assign("x", Const(1)),
            If(
                Var("x"),
                [Store("A", Const(0), Var("x"))],
                [Load("y", "A", Const(0))],
            ),
            While(Var("x"), [Assign("x", Const(0))]),
            For("i", Const(0), Const(4), Const(1), [Assign("z", Var("i"))]),
            Par([[Assign("w", Const(2))], [Assign("v", Const(3))]]),
        ]
        stmts = list(walk_stmts(body))
        assert sum(isinstance(s, Assign) for s in stmts) == 5
        assert sum(isinstance(s, Store) for s in stmts) == 1

    def test_stmt_exprs_per_kind(self):
        assert stmt_exprs(Assign("x", Const(1))) == [Const(1)]
        assert len(stmt_exprs(Store("A", Const(0), Const(1)))) == 2
        assert len(stmt_exprs(For("i", Const(0), Const(4), Const(1)))) == 3
        assert stmt_exprs(Par([])) == []


class TestStatementDefaults:
    def test_if_defaults_empty_bodies(self):
        stmt = If(Const(1))
        assert stmt.then_body == [] and stmt.else_body == []

    def test_parfor_holds_body(self):
        stmt = ParFor("i", Const(0), Const(4), Const(1), [Assign("x", Const(1))])
        assert len(stmt.body) == 1
