"""Unit tests for the untimed DFG interpreter."""

import pytest

from repro.dfg.graph import DFG, ImmRef, PortRef
from repro.dfg.interp import run_dfg
from repro.dfg.lower import lower_kernel
from repro.errors import DFGError
from repro.ir.interp import run_kernel

from kernels import ZOO, zoo_instance


@pytest.mark.parametrize("name", sorted(ZOO))
@pytest.mark.parametrize("order", ["fifo", "lifo", "random"])
def test_matches_ir_interpreter(name, order):
    kernel, params, arrays = zoo_instance(name)
    reference = run_kernel(kernel, params, arrays)
    dfg = lower_kernel(kernel)
    got = run_dfg(dfg, params, arrays, order=order, seed=123)
    assert got.memory == reference


def test_random_order_is_seed_deterministic():
    kernel, params, arrays = zoo_instance("join")
    dfg = lower_kernel(kernel)
    a = run_dfg(dfg, params, arrays, order="random", seed=5)
    b = run_dfg(dfg, params, arrays, order="random", seed=5)
    assert a.memory == b.memory
    assert a.firings == b.firings


def test_unknown_order_rejected():
    kernel, params, arrays = zoo_instance("dot")
    dfg = lower_kernel(kernel)
    with pytest.raises(DFGError, match="scheduling order"):
        run_dfg(dfg, params, arrays, order="spooky")


def test_firing_stats_reported():
    kernel, params, arrays = zoo_instance("dot")
    dfg = lower_kernel(kernel)
    result = run_dfg(dfg, params, arrays)
    assert result.firings["load"] == 16  # 8 x-loads + 8 y-loads
    assert result.firings["store"] == 1
    assert result.total_firings > 17


def test_firing_safety_limit():
    kernel, params, arrays = zoo_instance("dot")
    dfg = lower_kernel(kernel)
    with pytest.raises(DFGError, match="safety limit"):
        run_dfg(dfg, params, arrays, max_firings=10)


def test_token_leak_detected():
    # A hand-built graph where the source token is never consumed by a
    # firing node: binop waits forever on its second input.
    dfg = DFG("leak")
    src = dfg.add("source", [])
    pending = dfg.add("binop", [PortRef(src), PortRef(src)], opname="+")
    blocked = dfg.add("binop", [PortRef(pending), PortRef(99)], opname="+")
    dfg.nodes[blocked].inputs[1] = PortRef(blocked)  # self-loop, no token
    with pytest.raises(DFGError, match="token leak"):
        run_dfg(dfg)


def test_array_size_mismatch_rejected():
    kernel, params, arrays = zoo_instance("dot")
    dfg = lower_kernel(kernel)
    with pytest.raises(DFGError, match="words"):
        run_dfg(dfg, params, {"x": [1]})


def test_out_of_bounds_index_rejected():
    kernel, params, _ = zoo_instance("chase")
    dfg = lower_kernel(kernel)
    with pytest.raises(DFGError, match="out of bounds"):
        run_dfg(dfg, {"steps": 3}, {"next": [100] * 8})


def test_zero_initialized_arrays_respect_dtype():
    from repro.ir.builder import KernelBuilder

    b = KernelBuilder("f0")
    x = b.array("x", 2, "f")
    y = b.array("y", 1, "f")
    y.store(0, x.load(0))
    dfg = lower_kernel(b.build())
    result = run_dfg(dfg)
    assert result.memory["y"] == [0.0]
    assert isinstance(result.memory["y"][0], float)


def test_inputs_not_mutated():
    kernel, params, arrays = zoo_instance("parphases")
    dfg = lower_kernel(kernel)
    original = list(arrays["A"])
    run_dfg(dfg, params, arrays)
    assert arrays["A"] == original
