"""Resilient sweep supervisor: classify, retry, timeout, resume.

The contract under test (see ``repro.exp.resilient``): a supervised
sweep returns every healthy point plus typed failure records instead of
crashing; retries are deterministic (PnR retries perturb only the
*placement* seed, journaled for reproducibility); and ``resume`` skips
exactly the points a validated journal proves complete.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from concurrent.futures.process import BrokenProcessPool

from repro.errors import (
    DeadlockError,
    ExperimentError,
    JobTimeout,
    PlacementError,
    PnRError,
    ReproError,
    RoutingError,
    SimulationError,
    ValidationError,
)
from repro.exp.configs import MONACO, upea
from repro.exp.resilient import (
    PNR_SEED_STRIDE,
    FailureRecord,
    SweepPolicy,
    call_with_timeout,
    classify_failure,
    run_resilient,
)
from repro.exp.runner import _run_sweep_job, run_workload_on_configs
from repro.obs.manifest import completed_points, read_manifest

CONFIGS = [MONACO, upea(2)]


# -- taxonomy ---------------------------------------------------------------


def test_classify_failure_taxonomy():
    cases = [
        (JobTimeout("t"), "timeout"),
        (ValidationError("v"), "validation"),
        (DeadlockError("d"), "deadlock"),
        (RoutingError("r"), "routing"),
        (PlacementError("p"), "placement"),
        (PnRError("p"), "pnr"),
        (SimulationError("s"), "simulation"),
        (BrokenProcessPool("w"), "worker-death"),
        (ReproError("g"), "repro"),
        (RuntimeError("x"), "infrastructure"),
    ]
    for exc, kind in cases:
        assert classify_failure(exc) == kind, kind


def test_validation_error_carries_context():
    """The typed wrong-answer error names what diverged and where."""
    from repro.workloads.registry import make_workload

    instance = make_workload("dmv", scale="tiny", seed=0)
    good = {name: list(instance.reference[name]) for name in instance.outputs}
    instance.check(good)  # the reference itself validates

    bad = {name: list(vals) for name, vals in good.items()}
    first = instance.outputs[0]
    bad[first][0] += 1
    with pytest.raises(ValidationError) as err:
        instance.check(bad)
    assert err.value.workload == "dmv"
    assert err.value.array == first
    assert err.value.index == 0
    assert err.value.got != err.value.want

    short = {name: list(vals) for name, vals in good.items()}
    short[first] = short[first][:-1]
    with pytest.raises(ValidationError) as err:
        instance.check(short)
    assert err.value.array == first
    assert err.value.index is None  # length mismatch, no single index


# -- policy -----------------------------------------------------------------


def test_sweep_policy_validates_inputs():
    with pytest.raises(ExperimentError):
        SweepPolicy(on_failure="explode")
    with pytest.raises(ExperimentError):
        SweepPolicy(max_retries=-1)
    with pytest.raises(ExperimentError):
        SweepPolicy(job_timeout_s=0)


def test_wants_retry_matrix():
    retry = SweepPolicy(on_failure="retry", max_retries=2)
    assert retry.wants_retry("routing", 1)
    assert retry.wants_retry("timeout", 2)
    assert not retry.wants_retry("routing", 3)  # budget exhausted
    assert not retry.wants_retry("validation", 1)  # deterministic kind
    skip = SweepPolicy(on_failure="skip")
    assert not skip.wants_retry("routing", 1)


def test_call_with_timeout_interrupts_and_restores():
    def sleepy():
        time.sleep(10)

    before = time.perf_counter()
    with pytest.raises(JobTimeout):
        call_with_timeout(0.1, sleepy, label="sleepy")
    assert time.perf_counter() - before < 5.0
    # The previous handler and timer are restored: a fast job afterwards
    # must not be shot by a stale alarm.
    assert call_with_timeout(5.0, lambda: "ok") == "ok"
    time.sleep(0.15)  # an un-cancelled 0.1s timer would fire here


def test_call_with_timeout_passthrough_when_unlimited():
    assert call_with_timeout(None, lambda: 41 + 1) == 42
    assert call_with_timeout(0, lambda: "zero-means-off") == "zero-means-off"


# -- supervised sweeps over fake jobs ---------------------------------------
# job_fn doubles must be module-level (pickled into pool workers) and
# match _run_sweep_job's signature.


def _ok_job(
    name, config, scale, seed, arch, divider, policy_name, fabric_spec,
    cache_dir, pnr_seed=None, timeout_s=None,
):
    return (name, config.name, seed, pnr_seed)


def _fail_one_job(
    name, config, scale, seed, arch, divider, policy_name, fabric_spec,
    cache_dir, pnr_seed=None, timeout_s=None,
):
    if name == "dmv" and config.name == "upea2":
        raise SimulationError("injected mid-sweep failure")
    return (name, config.name, seed, pnr_seed)


def _routing_until_perturbed_job(
    name, config, scale, seed, arch, divider, policy_name, fabric_spec,
    cache_dir, pnr_seed=None, timeout_s=None,
):
    if pnr_seed is None:
        raise RoutingError("congested under the original placement seed")
    return (name, config.name, seed, pnr_seed)


def _sleepy_job(
    name, config, scale, seed, arch, divider, policy_name, fabric_spec,
    cache_dir, pnr_seed=None, timeout_s=None,
):
    def body():
        time.sleep(10)

    return call_with_timeout(timeout_s, body, label=f"{name}/{config.name}")


def _die_once_job(
    name, config, scale, seed, arch, divider, policy_name, fabric_spec,
    cache_dir, pnr_seed=None, timeout_s=None,
):
    if name == "spmv" and config.name == "monaco":
        marker = Path(cache_dir) / "died-once"
        if not marker.exists():
            marker.write_text("x")
            os._exit(1)  # worker death -> BrokenProcessPool in the parent
    return (name, config.name, seed, pnr_seed)


def test_skip_policy_returns_healthy_results_serial_and_pool():
    policy = SweepPolicy(on_failure="skip")
    kwargs = dict(
        scale="tiny",
        sweep_policy=policy,
        job_fn=_fail_one_job,
    )
    serial = run_resilient(["spmspv", "dmv"], CONFIGS, max_workers=1, **kwargs)
    pooled = run_resilient(["spmspv", "dmv"], CONFIGS, max_workers=2, **kwargs)
    for outcome in (serial, pooled):
        assert set(outcome.results) == {
            ("spmspv", "monaco", 0),
            ("spmspv", "upea2", 0),
            ("dmv", "monaco", 0),
        }
        assert len(outcome.failures) == 1
        failure = outcome.failures[0]
        assert (failure.workload, failure.config) == ("dmv", "upea2")
        assert failure.kind == "simulation"
        assert not outcome.ok
    assert serial.results == pooled.results
    assert serial.failures == pooled.failures


def test_retry_perturbs_placement_seed_deterministically():
    outcome = run_resilient(
        ["spmspv"],
        [MONACO],
        scale="tiny",
        max_workers=1,
        sweep_policy=SweepPolicy(on_failure="retry", max_retries=2),
        job_fn=_routing_until_perturbed_job,
    )
    assert outcome.ok
    name, config, seed, pnr_seed = outcome.results[("spmspv", "monaco", 0)]
    assert pnr_seed == 0 + PNR_SEED_STRIDE * 1  # first retry's seed


def test_retry_budget_exhaustion_records_failure():
    def always_routing(*args, **kwargs):
        raise RoutingError("never routes")

    outcome = run_resilient(
        ["spmspv"],
        [MONACO],
        scale="tiny",
        max_workers=1,
        sweep_policy=SweepPolicy(on_failure="retry", max_retries=2),
        job_fn=always_routing,
    )
    assert not outcome.results
    (failure,) = outcome.failures
    assert failure.kind == "routing"
    assert failure.attempts == 3  # first try + 2 retries
    assert failure.pnr_seeds == (
        PNR_SEED_STRIDE * 1,
        PNR_SEED_STRIDE * 2,
    )


def test_abort_policy_reraises_first_failure():
    with pytest.raises(SimulationError):
        run_resilient(
            ["spmspv", "dmv"],
            CONFIGS,
            scale="tiny",
            max_workers=1,
            job_fn=_fail_one_job,  # default ABORT policy
        )


def test_job_timeout_is_classified_and_bounded():
    before = time.perf_counter()
    outcome = run_resilient(
        ["spmspv"],
        [MONACO],
        scale="tiny",
        max_workers=1,
        sweep_policy=SweepPolicy(job_timeout_s=0.2, on_failure="skip"),
        job_fn=_sleepy_job,
    )
    assert time.perf_counter() - before < 8.0
    (failure,) = outcome.failures
    assert failure.kind == "timeout"


def test_worker_death_is_retried_with_a_fresh_pool(tmp_path):
    outcome = run_resilient(
        ["spmv", "spmspv"],
        [MONACO],
        scale="tiny",
        max_workers=2,
        cache_dir=tmp_path,  # doubles as the death-marker scratch dir
        sweep_policy=SweepPolicy(on_failure="retry", max_retries=3),
        job_fn=_die_once_job,
    )
    assert outcome.ok, [f.describe() for f in outcome.failures]
    assert set(outcome.results) == {
        ("spmv", "monaco", 0),
        ("spmspv", "monaco", 0),
    }
    assert (tmp_path / "died-once").exists()


# -- real-simulator equivalence with a mid-sweep failure --------------------


def _real_but_one_fails_job(*args, **kwargs):
    name, config = args[0], args[1]
    if name == "dmv" and config.name == "upea2":
        raise DeadlockError("injected mid-sweep failure")
    return _run_sweep_job(*args, **kwargs)


def test_serial_vs_parallel_identical_around_a_failure(tmp_path):
    """One failing point must not disturb any healthy point's result."""
    policy = SweepPolicy(on_failure="skip")
    kwargs = dict(
        scale="tiny",
        cache_dir=tmp_path / "cache",
        sweep_policy=policy,
        job_fn=_real_but_one_fails_job,
    )
    serial = run_resilient(
        ["spmspv", "dmv"], CONFIGS, max_workers=1,
        manifest_path=tmp_path / "serial.jsonl", **kwargs,
    )
    pooled = run_resilient(
        ["spmspv", "dmv"], CONFIGS, max_workers=2,
        manifest_path=tmp_path / "pooled.jsonl", **kwargs,
    )
    assert serial.results == pooled.results
    assert len(serial.results) == 3
    assert serial.failures == pooled.failures

    def stable(path):
        out = []
        for record in read_manifest(path):
            out.append(
                {
                    k: v
                    for k, v in record.items()
                    if k not in ("wall_time_s", "timestamp", "git_rev")
                }
            )
        return out

    assert stable(tmp_path / "serial.jsonl") == stable(tmp_path / "pooled.jsonl")
    statuses = [r["status"] for r in read_manifest(tmp_path / "serial.jsonl")]
    assert statuses.count("ok") == 3 and statuses.count("failed") == 1


# -- resume -----------------------------------------------------------------


def test_resume_requires_manifest():
    with pytest.raises(ExperimentError):
        run_resilient(
            ["spmspv"], [MONACO], scale="tiny", max_workers=1, resume=True,
            job_fn=_ok_job,
        )


def test_resume_skips_completed_and_reruns_failed(tmp_path):
    manifest = tmp_path / "journal.jsonl"
    first = run_resilient(
        ["spmspv", "dmv"],
        CONFIGS,
        scale="tiny",
        max_workers=1,
        cache_dir=tmp_path / "cache",
        manifest_path=manifest,
        sweep_policy=SweepPolicy(on_failure="skip"),
        job_fn=_real_but_one_fails_job,
    )
    assert len(first.results) == 3 and len(first.failures) == 1

    # Resume with the failure "fixed": only the failed point reruns.
    second = run_resilient(
        ["spmspv", "dmv"],
        CONFIGS,
        scale="tiny",
        max_workers=1,
        cache_dir=tmp_path / "cache",
        manifest_path=manifest,
        sweep_policy=SweepPolicy(on_failure="skip"),
        resume=True,
    )
    assert sorted(second.skipped) == sorted(first.results)
    assert set(second.results) == {("dmv", "upea2", 0)}
    assert second.ok

    # A third resume finds everything journaled and runs nothing.
    third = run_resilient(
        ["spmspv", "dmv"],
        CONFIGS,
        scale="tiny",
        max_workers=1,
        cache_dir=tmp_path / "cache",
        manifest_path=manifest,
        resume=True,
    )
    assert not third.results and len(third.skipped) == 4


def test_resume_ignores_stale_journal_configuration(tmp_path):
    """A journal from a different sweep configuration skips nothing."""
    manifest = tmp_path / "journal.jsonl"
    run_resilient(
        ["spmspv"], [MONACO], scale="tiny", max_workers=1,
        cache_dir=tmp_path / "cache", manifest_path=manifest, job_fn=None,
    )
    assert len(completed_points(manifest)) == 1
    # Same points, different divider: digests differ, so nothing skips.
    outcome = run_resilient(
        ["spmspv"], [MONACO], scale="tiny", divider=4, max_workers=1,
        cache_dir=tmp_path / "cache", manifest_path=manifest, resume=True,
    )
    assert not outcome.skipped
    assert set(outcome.results) == {("spmspv", "monaco", 0)}


def test_resume_ignores_tampered_journal_records(tmp_path):
    manifest = tmp_path / "journal.jsonl"
    run_resilient(
        ["spmspv"], [MONACO], scale="tiny", max_workers=1,
        cache_dir=tmp_path / "cache", manifest_path=manifest,
    )
    (record,) = read_manifest(manifest)
    record["seed"] = 99  # hand-edit without recomputing the digest
    manifest.write_text(json.dumps(record, sort_keys=True) + "\n")
    assert completed_points(manifest) == set()


def test_resume_survives_a_torn_final_line(tmp_path):
    manifest = tmp_path / "journal.jsonl"
    run_resilient(
        ["spmspv"], [MONACO], scale="tiny", max_workers=1,
        cache_dir=tmp_path / "cache", manifest_path=manifest,
    )
    with open(manifest, "a") as handle:
        handle.write('{"schema": 2, "status": "ok", "trunca')  # killed mid-append
    assert len(completed_points(manifest)) == 1
    with pytest.raises(json.JSONDecodeError):
        read_manifest(manifest, strict=True)


# -- run_workload_on_configs supervision ------------------------------------


def test_run_workload_on_configs_supervised(tmp_path):
    """The serial helper honors the same policy surface as the sweep."""
    from dataclasses import replace

    from repro.arch.params import ArchParams, FaultParams

    arch = ArchParams()
    arch = replace(
        arch, sim=replace(arch.sim, faults=FaultParams(mem_drop_prob=1.0))
    )
    failures: list[FailureRecord] = []
    manifest = tmp_path / "man.jsonl"
    results = run_workload_on_configs(
        "spmspv",
        CONFIGS,
        scale="tiny",
        arch=arch,
        manifest_path=manifest,
        sweep_policy=SweepPolicy(on_failure="skip"),
        failures=failures,
    )
    assert results == {}
    assert [f.kind for f in failures] == ["deadlock", "deadlock"]
    records = read_manifest(manifest)
    assert all(r["status"] == "failed" for r in records)
    assert all(r["faults"] == "seed=0,mem-drop=1.0" for r in records)


# -- profile-guided sweeps ---------------------------------------------------
# The job_args protocol appends trailing arguments only when a feature is
# on, so historical 11-arg job_fn doubles (everything above) keep working.


def _record_args_job(*args):
    return args


def test_job_args_protocol_is_stable_without_profile_guided():
    outcome = run_resilient(
        ["spmspv"],
        [MONACO],
        scale="tiny",
        max_workers=1,
        job_fn=_record_args_job,
    )
    (args,) = outcome.results.values()
    assert len(args) == 11  # the historical signature, nothing appended


def test_profile_guided_appends_trailing_job_args():
    outcome = run_resilient(
        ["spmspv"],
        [MONACO],
        scale="tiny",
        max_workers=1,
        job_fn=_record_args_job,
        profile_guided=True,
    )
    (args,) = outcome.results.values()
    assert len(args) == 13
    assert args[11] is None  # snapshot placeholder keeps positions fixed
    assert args[12] is True  # the profile_guided flag itself


def test_profile_guided_sweep_journals_profile(tmp_path):
    """A real profile-guided sweep marks its manifest identity and
    carries the refinement report; resume honors the new digest."""
    manifest = tmp_path / "man.jsonl"
    outcome = run_resilient(
        ["spmspv"],
        [MONACO],
        scale="tiny",
        max_workers=1,
        manifest_path=manifest,
        profile_guided=True,
    )
    assert outcome.ok
    (run,) = outcome.results.values()
    assert run.profile is not None
    assert set(run.profile) >= {"promoted", "demoted", "degenerate"}
    (record,) = read_manifest(manifest)
    assert record["profile"] == "guided"
    assert record["profile_report"] == dict(run.profile)
    # The journal proves the point complete under the *guided* digest...
    resumed = run_resilient(
        ["spmspv"],
        [MONACO],
        scale="tiny",
        max_workers=1,
        manifest_path=manifest,
        profile_guided=True,
        resume=True,
    )
    assert resumed.skipped == [("spmspv", "monaco", 0)]
    # (A static sweep's refusal to alias this journal is covered by
    # test_static_resume_does_not_alias_guided_journal below.)


def test_static_resume_does_not_alias_guided_journal(tmp_path):
    """A guided record must not prove the *static* point complete: the
    two identities digest differently, so resume never aliases them."""
    from repro.obs.manifest import point_digest

    manifest = tmp_path / "man.jsonl"
    run_resilient(
        ["spmspv"],
        [MONACO],
        scale="tiny",
        max_workers=1,
        manifest_path=manifest,
        profile_guided=True,
    )
    (record,) = read_manifest(manifest)
    done = completed_points(manifest)
    assert record["point_digest"] in done  # the guided identity is proven
    static_digest = point_digest(
        workload=record["workload"],
        config=record["config"],
        scale=record["scale"],
        seed=record["seed"],
        divider=record["divider"],
        fabric=record.get("fabric"),
        policy=record.get("policy"),
        faults=record.get("faults"),
        # no profile field: the static identity of the same point
    )
    assert static_digest not in done
