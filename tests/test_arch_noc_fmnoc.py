"""Unit tests for the data-NoC channel graph and fabric-memory NoC."""

import pytest

from repro.arch.fabric import clustered_single, monaco
from repro.arch.fmnoc import ArbiterId, FMNoC
from repro.arch.noc import ChannelGraph
from repro.errors import ArchError


class TestChannelGraph:
    def test_neighbor_structure(self):
        graph = ChannelGraph(monaco(4, 4), tracks=3)
        assert sorted(graph.neighbors((0, 0))) == [(0, 1), (1, 0)]
        assert len(graph.neighbors((1, 1))) == 4

    def test_channel_count(self):
        graph = ChannelGraph(monaco(4, 4), tracks=2)
        # 4x4 grid: 2 * (3*4 + 4*3) = 48 directed channels.
        assert len(graph.channels()) == 48

    def test_capacity(self):
        graph = ChannelGraph(monaco(4, 4), tracks=7)
        assert graph.capacity(((0, 0), (1, 0), "cardinal")) == 7
        with pytest.raises(ArchError):
            graph.capacity(((0, 0), (2, 0), "cardinal"))

    def test_zero_tracks_rejected(self):
        with pytest.raises(ArchError):
            ChannelGraph(monaco(4, 4), tracks=0)


class TestFMNoC:
    def test_monaco_arbiter_count(self):
        noc = FMNoC(monaco(12, 12))
        # 6 LS rows x 3 arbitrated domains (D1, D2, D3).
        assert len(noc.arbiters()) == 18

    def test_d0_bypasses_arbitration(self):
        fab = monaco(12, 12)
        noc = FMNoC(fab)
        for pe in fab.ls_pes():
            if pe.domain == 0:
                chain, port = noc.path(pe)
                assert chain == [] and port == pe.direct_port
                assert noc.request_hops(pe) == 0

    def test_far_domain_chain_descends_to_shared_port(self):
        fab = monaco(12, 12)
        noc = FMNoC(fab)
        far = [pe for pe in fab.ls_pes() if pe.domain == 3][0]
        chain, port = noc.path(far)
        assert [a.domain for a in chain] == [3, 2, 1]
        assert all(a.row == far.y for a in chain)
        assert port == fab.row_shared_port[far.y]
        assert noc.request_hops(far) == 3

    def test_fanout_at_most_four(self):
        # "arbiters are arranged hierarchically as an imbalanced tree with
        # a fanout of 4" (Sec. 4.2).
        for fab in (monaco(12, 12), clustered_single(12, 12), monaco(24, 24)):
            noc = FMNoC(fab)
            for arb in noc.arbiters():
                assert len(noc.arbiter_inputs(arb)) <= 4

    def test_downstream_chain(self):
        noc = FMNoC(monaco(12, 12))
        arb3 = ArbiterId(1, 3)
        assert noc.downstream(arb3) == ArbiterId(1, 2)
        arb1 = ArbiterId(1, 1)
        assert isinstance(noc.downstream(arb1), int)

    def test_port_contenders(self):
        fab = monaco(12, 12)
        noc = FMNoC(fab)
        shared = set(fab.row_shared_port.values())
        for port in range(fab.n_ports):
            expected = 2 if port in shared else 1
            assert noc.port_contenders(port) == expected

    def test_entry_rejects_arith_pe(self):
        fab = monaco(12, 12)
        noc = FMNoC(fab)
        with pytest.raises(ArchError):
            noc.entry(fab.arith_pes()[0])

    def test_upstream_arbiter_feeds_next_domain(self):
        noc = FMNoC(monaco(12, 12))
        inputs = noc.arbiter_inputs(ArbiterId(1, 2))
        assert ArbiterId(1, 3) in inputs
        # The farthest domain's arbiter has no upstream arbiter.
        far_inputs = noc.arbiter_inputs(ArbiterId(1, 3))
        assert all(not isinstance(i, ArbiterId) for i in far_inputs)
