"""Portfolio (process-pool) compile path: equivalence and telemetry.

``compile_once(portfolio_jobs > 1)`` farms the mem-scale candidates out
to a process pool; the selection loop replays the exact serial
tie-break, so the compiled artifact must be *bit-identical* to the
serial path's. These tests pin that contract, the PnRStats telemetry
that rides on every compile, and its plumbing into run manifests.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_pnr_compile import pnr_digest
from repro.arch.fabric import monaco
from repro.arch.params import ArchParams
from repro.exp.configs import MONACO
from repro.exp.runner import compile_cached, run_config
from repro.obs.manifest import build_manifest, stable_view
from repro.pnr.flow import compile_once, shutdown_portfolio_pool
from repro.workloads.registry import make_workload


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    """Workers die with the module; shutdown twice proves idempotence."""
    yield
    shutdown_portfolio_pool()
    shutdown_portfolio_pool()


def _compile(workload: str, **kwargs):
    kernel = make_workload(workload, scale="tiny", seed=0).kernel
    return compile_once(
        kernel, monaco(12, 12), ArchParams(), parallelism=1, seed=0,
        **kwargs,
    )


@pytest.mark.parametrize("workload", ["spmv", "vww"])
def test_portfolio_matches_serial(workload):
    """Pooled candidate evaluation picks the exact serial winner."""
    serial = _compile(workload, portfolio_jobs=1)
    pooled = _compile(workload, portfolio_jobs=2)
    assert pooled.placement == serial.placement
    assert pooled.timing.clock_divider == serial.timing.clock_divider
    assert pooled.place_cost == serial.place_cost
    assert pnr_digest(pooled) == pnr_digest(serial)


def test_portfolio_restarts_match_serial():
    """Extra placement restarts: same winner either way, more candidates."""
    serial = _compile("spmspv", portfolio_jobs=1, portfolio_restarts=2)
    pooled = _compile("spmspv", portfolio_jobs=3, portfolio_restarts=2)
    assert pnr_digest(pooled) == pnr_digest(serial)
    assert serial.pnr.candidates == pooled.pnr.candidates >= 1


def test_pnr_stats_populated():
    """Every compile carries its compile-time telemetry."""
    compiled = _compile("dmv", portfolio_jobs=2)
    stats = compiled.pnr
    assert stats is not None
    assert stats.incremental
    assert stats.portfolio_jobs == 2
    assert stats.anneal_moves > 0
    assert stats.anneal_proposals >= stats.anneal_accepted > 0
    assert stats.route_iterations >= 1
    assert stats.candidates >= 1
    assert stats.total_wall_s > 0.0
    d = stats.to_dict()
    assert d["anneal_moves"] == stats.anneal_moves

    naive = _compile("dmv", incremental=False)
    assert not naive.pnr.incremental
    assert pnr_digest(naive) == pnr_digest(compiled)


def test_manifest_carries_pnr_and_stable_view_drops_it():
    """PnRStats lands in the manifest record as volatile telemetry."""
    instance = make_workload("dmv", scale="tiny", seed=0)
    arch = ArchParams()
    compiled = compile_cached(
        instance, monaco(12, 12), arch, parallelism=1, seed=0
    )
    run = run_config(instance, compiled, MONACO, arch)
    record = build_manifest(run, scale="tiny", seed=0, divider=4)
    assert record["pnr"]["anneal_moves"] > 0
    assert record["pnr"]["candidates"] >= 1
    assert "pnr" not in stable_view(record)
