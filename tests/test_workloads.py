"""Unit tests for the Table 1 workloads and their input generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.ir.interp import run_kernel
from repro.workloads import ALL_WORKLOADS, make_workload
from repro.workloads.data import (
    bit_reverse_permutation,
    csr_to_dense,
    random_csr,
    random_graph_csr,
    random_sparse_vector,
    transpose_csr,
    twiddle_factors,
)
from repro.workloads.dsp import fft_matches_numpy


class TestRegistry:
    def test_all_thirteen_present(self):
        assert len(ALL_WORKLOADS) == 13
        assert set(ALL_WORKLOADS) == {
            "dmv", "jacobi2d", "heat3d", "spmv", "spmspm", "spmspv",
            "spadd", "tc", "mergesort", "fft", "ad", "ic", "vww",
        }

    def test_unknown_workload_rejected(self):
        with pytest.raises(ReproError, match="unknown workload"):
            make_workload("quicksort")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ReproError, match="unknown scale"):
            make_workload("dmv", scale="huge")

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_metadata_populated(self, name):
        inst = make_workload(name, scale="tiny")
        assert inst.meta.get("category")
        assert inst.meta.get("table1")
        assert inst.outputs

    def test_seed_changes_data(self):
        a = make_workload("dmv", scale="tiny", seed=0)
        b = make_workload("dmv", scale="tiny", seed=99)
        assert a.arrays["A"] != b.arrays["A"]

    def test_same_seed_is_deterministic(self):
        a = make_workload("spmspv", scale="tiny", seed=3)
        b = make_workload("spmspv", scale="tiny", seed=3)
        assert a.arrays == b.arrays
        assert a.reference == b.reference


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_ir_interpreter_matches_reference(name):
    inst = make_workload(name, scale="tiny")
    memory = run_kernel(inst.kernel, inst.params, inst.arrays)
    inst.check(memory)


def test_check_reports_mismatches():
    inst = make_workload("dmv", scale="tiny")
    wrong = {name: list(ref) for name, ref in inst.reference.items()}
    wrong["y"][0] += 1
    with pytest.raises(ReproError, match="y\\[0\\]"):
        inst.check(wrong)


def test_fft_reference_agrees_with_numpy():
    inst = make_workload("fft", scale="tiny")
    assert fft_matches_numpy(inst)


def test_paper_scale_instantiable():
    # Table 1 sizes build real kernels (simulating them is impractical in
    # Python, but the inputs exist and fit the 8MB memory).
    inst = make_workload("dmv", scale="paper")
    assert len(inst.arrays["A"]) == 1024 * 1024


class TestGenerators:
    @given(
        nrows=st.integers(1, 20),
        ncols=st.integers(1, 20),
        density=st.floats(0.0, 1.0),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_random_csr_wellformed(self, nrows, ncols, density, seed):
        pos, crd, val = random_csr(nrows, ncols, density, seed)
        assert len(pos) == nrows + 1
        assert pos[0] == 0 and pos[-1] == len(crd) == len(val)
        assert pos == sorted(pos)
        for r in range(nrows):
            cols = crd[pos[r]:pos[r + 1]]
            assert cols == sorted(cols)
            assert len(set(cols)) == len(cols)
            assert all(0 <= c < ncols for c in cols)

    @given(
        length=st.integers(1, 50),
        density=st.floats(0.01, 1.0),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_sparse_vector_sorted_unique(self, length, density, seed):
        coords, values = random_sparse_vector(length, density, seed)
        assert coords == sorted(coords)
        assert len(set(coords)) == len(coords)
        assert len(coords) == len(values) >= 1

    @given(nodes=st.integers(2, 16), seed=st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_graph_csr_symmetric_no_self_loops(self, nodes, seed):
        pos, crd = random_graph_csr(nodes, 0.4, seed)
        neighbors = [
            set(crd[pos[u]:pos[u + 1]]) for u in range(nodes)
        ]
        for u in range(nodes):
            assert u not in neighbors[u]
            for v in neighbors[u]:
                assert u in neighbors[v]

    def test_transpose_csr_roundtrip(self):
        pos, crd, val = random_csr(6, 9, 0.4, seed=2)
        tpos, tcrd, tval = transpose_csr(pos, crd, val, 6, 9)
        dense = csr_to_dense(pos, crd, val, 6, 9)
        tdense = csr_to_dense(tpos, tcrd, tval, 9, 6)
        for r in range(6):
            for c in range(9):
                assert dense[r][c] == tdense[c][r]

    def test_bit_reverse_is_involution(self):
        for n in (2, 8, 16, 64):
            rev = bit_reverse_permutation(n)
            assert sorted(rev) == list(range(n))
            assert all(rev[rev[i]] == i for i in range(n))

    def test_bit_reverse_requires_power_of_two(self):
        with pytest.raises(ReproError):
            bit_reverse_permutation(12)

    def test_twiddles_on_unit_circle(self):
        wre, wim = twiddle_factors(16)
        assert len(wre) == 8
        assert wre[0] == pytest.approx(1.0)
        assert wim[0] == pytest.approx(0.0)
        for re, im in zip(wre, wim):
            assert re * re + im * im == pytest.approx(1.0)
            assert im <= 1e-12  # exp(-i theta), theta in [0, pi)
