"""Equivalence suite for the incremental PnR hot path.

The incremental structures (CostTable anneal, dirty-net rerouting, the
optimized greedy seeding) are *optimizations, not approximations*: every
test here asserts exact — mostly bit-exact — agreement with the naive
full-recompute implementations, which are kept behind ``incremental=False``
flags precisely so this suite can diff against them forever.
"""

from __future__ import annotations

import random

import pytest

from repro.arch.fabric import monaco
from repro.arch.noc import build_channel_graph
from repro.arch.params import ArchParams
from repro.core.policy import DOMAIN_AWARE, EFFCC, PlacementPolicy
from repro.dfg.lower import lower_kernel
from repro.errors import RoutingError
from repro.pnr.flow import compile_once
from repro.pnr.netlist import build_netlist
from repro.pnr.place import (
    CostTable,
    _neighbors_map,
    _pair_cost,
    anneal,
    initial_placement,
    manhattan,
)
from repro.pnr.route import RoutingResult, _check_usage, route_design
from repro.pnr.timing import analyze_timing
from repro.workloads.registry import ALL_WORKLOADS, make_workload

#: PnR digests pinned from the pre-incremental implementation (seed 0,
#: tiny scale, monaco 12x12, parallelism 1, default ArchParams). Any
#: change to these means the optimized path no longer reproduces the
#: naive accept/reject trajectory / routing order bit-for-bit.
PINNED_DIGESTS = {
    "dmv": "9ef0ef33e3b65e49",
    "jacobi2d": "8e5724d4f09753e2",
    "heat3d": "c02ce1dd55822afc",
    "spmv": "94c27adc350955c0",
    "spmspm": "a9a976a13af68dad",
    "spmspv": "7af71cb91c4107e1",
    "spadd": "b160e817c7a7c7ed",
    "tc": "4e6b918487c9acf2",
    "mergesort": "a56b1ab3631d4dee",
    "fft": "c5119fe63137bb68",
    "ad": "efc16099c8b95142",
    "ic": "ac777320e2da168f",
    "vww": "e3f94551a613550e",
}


def _netlist(workload: str):
    kernel = make_workload(workload, scale="tiny", seed=0).kernel
    return build_netlist(lower_kernel(kernel))


# -- satellite regressions ----------------------------------------------


def test_route_design_rejects_zero_iterations():
    """max_iters < 1 must raise RoutingError, not UnboundLocalError."""
    netlist = _netlist("dmv")
    fabric = monaco(12, 12)
    placement = initial_placement(
        netlist, fabric, EFFCC, random.Random(0)
    )
    channels = build_channel_graph(fabric, 3, "simple")
    for bad in (0, -1):
        with pytest.raises(RoutingError, match="max_iters"):
            route_design(netlist, placement, channels, max_iters=bad)


def test_max_hops_is_float_end_to_end():
    """RoutingResult and TimingReport agree on float max_hops."""
    assert isinstance(RoutingResult().max_hops, float)
    netlist = _netlist("spmv")
    fabric = monaco(12, 12)
    placement = initial_placement(
        netlist, fabric, EFFCC, random.Random(0)
    )
    channels = build_channel_graph(fabric, 3, "monaco-tracks")
    routing = route_design(netlist, placement, channels)
    assert isinstance(routing.max_hops, float)
    timing = analyze_timing(routing, ArchParams().timing)
    assert isinstance(timing.max_hops, float)


def _greedy_rest_naive(netlist, fabric, placement) -> None:
    """The pre-optimization O(n^2) greedy seeding, kept verbatim."""
    dfg = netlist.dfg
    adjacency = _neighbors_map(dfg)
    free = [
        pe.coord
        for pe in sorted(fabric.pes.values(), key=lambda p: (p.y, p.x))
        if pe.coord not in placement.occupant
    ]
    frontier = sorted(placement.loc)
    visited = set(frontier)
    queue = list(frontier)
    order = []
    while queue:
        current = queue.pop(0)
        for neighbor in adjacency[current]:
            if neighbor not in visited:
                visited.add(neighbor)
                order.append(neighbor)
                queue.append(neighbor)
    order += [n for n in netlist.cells if n not in visited]

    for nid in order:
        if nid in placement.loc:
            continue
        anchors = [
            placement.loc[a] for a in adjacency[nid] if a in placement.loc
        ]
        best, best_cost = None, None
        for coord in free:
            if not placement.legal(nid, coord):
                continue
            cost = sum(manhattan(coord, a) for a in anchors)
            if best_cost is None or cost < best_cost:
                best, best_cost = coord, cost
        assert best is not None
        placement.assign(nid, best)
        free.remove(best)


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
def test_greedy_seeding_matches_naive(workload, monkeypatch):
    """Deque/dict greedy seeding == the O(n^2) original, per workload."""
    import repro.pnr.place as place_mod

    netlist = _netlist(workload)
    fabric = monaco(12, 12)
    fast = initial_placement(netlist, fabric, EFFCC, random.Random(7))
    monkeypatch.setattr(place_mod, "_greedy_rest", _greedy_rest_naive)
    slow = initial_placement(netlist, fabric, EFFCC, random.Random(7))
    assert fast.loc == slow.loc


# -- CostTable property suite -------------------------------------------


@pytest.mark.parametrize("workload", ["spmspm", "vww"])
def test_cost_table_random_walk(workload):
    """1k random legal moves/swaps: cached deltas == fresh recomputes.

    At every step the CostTable's before/after values must equal the
    naive fresh computation *exactly* (``==`` on floats, no tolerance),
    through both commits and discards, and the cached total must end
    bit-equal to ``Placement.total_cost()``.
    """
    netlist = _netlist(workload)
    fabric = monaco(12, 12)
    rng = random.Random(123)
    placement = initial_placement(netlist, fabric, EFFCC, rng)
    table = CostTable(placement)
    cells = list(netlist.cells)
    coords = list(fabric.pes)

    for step in range(1000):
        nid = rng.choice(cells)
        target = rng.choice(coords)
        origin = placement.loc[nid]
        if target == origin or not placement.legal(nid, target):
            continue
        other = placement.occupant.get(target)
        if other is not None and not placement.legal(other, origin):
            continue
        if other is None:
            assert table.cell_cost(nid) == placement.cell_cost(nid)
            placement.move(nid, target)
            fresh = table.fresh_cell_cost(nid)
            assert fresh == placement.cell_cost(nid)
            if rng.random() < 0.5:
                table.commit()
            else:
                placement.move(nid, origin)
                table.discard()
        else:
            nets = set(netlist.nets_of[nid]) | set(netlist.nets_of[other])
            assert table.pair_cost(nid, other, nets) == _pair_cost(
                placement, nid, other
            )
            placement.swap(nid, other)
            fresh = table.fresh_pair_cost(nid, other, nets)
            assert fresh == _pair_cost(placement, nid, other)
            if rng.random() < 0.5:
                table.commit()
            else:
                placement.swap(nid, other)
                table.discard()
    assert table.total() == placement.total_cost()


# -- anneal equivalence -------------------------------------------------


@pytest.mark.parametrize("workload", ["spmspm", "mergesort"])
@pytest.mark.parametrize("policy", [EFFCC, DOMAIN_AWARE])
@pytest.mark.parametrize("seed", [0, 3])
def test_anneal_incremental_matches_naive(
    workload: str, policy: PlacementPolicy, seed: int
):
    """Same seed -> identical final placement and cost, both paths."""
    netlist = _netlist(workload)
    fabric = monaco(12, 12)

    outcomes = []
    for incremental in (True, False):
        rng = random.Random(seed)
        placement = initial_placement(netlist, fabric, policy, rng)
        stats: dict = {}
        cost = anneal(
            placement,
            rng,
            moves=4000,
            incremental=incremental,
            check=True,
            stats=stats,
        )
        assert stats["proposals"] >= stats["accepted"] > 0
        outcomes.append((dict(placement.loc), cost))
    (fast_loc, fast_cost), (naive_loc, naive_cost) = outcomes
    assert fast_loc == naive_loc
    assert fast_cost == naive_cost


def test_anneal_drift_check_is_clean():
    """check=True accepts a full default-length anneal (no drift)."""
    netlist = _netlist("fft")
    fabric = monaco(12, 12)
    rng = random.Random(0)
    placement = initial_placement(netlist, fabric, EFFCC, rng)
    anneal(placement, rng, check=True)


# -- routing equivalence ------------------------------------------------


def _routed(workload, tracks, model, incremental, seed=0):
    netlist = _netlist(workload)
    fabric = monaco(12, 12)
    rng = random.Random(seed)
    placement = initial_placement(netlist, fabric, EFFCC, rng)
    anneal(placement, rng, moves=2000)
    channels = build_channel_graph(fabric, tracks, model)
    return route_design(
        netlist, placement, channels, incremental=incremental, check=True
    )


@pytest.mark.parametrize(
    "workload,tracks,model",
    [
        ("spmv", 3, "simple"),  # converges in one pass
        ("mergesort", 3, "monaco-tracks"),
        # Scarce tracks force deep negotiation (4-8 passes). These are
        # the configs where a merely-heuristic dirty criterion diverges
        # from the full reroute — they caught the missing cost-decrease
        # fallback during development.
        ("tc", 2, "simple"),
        ("ic", 3, "simple"),
        ("vww", 3, "simple"),
        ("fft", 2, "simple"),
        ("tc", 2, "monaco-tracks"),
    ],
)
def test_route_incremental_matches_full(workload, tracks, model):
    """Dirty-net rerouting == full reroute: trees, hops, iterations."""
    fast = _routed(workload, tracks, model, incremental=True)
    full = _routed(workload, tracks, model, incremental=False)
    assert fast.net_channels == full.net_channels
    assert fast.sink_hops == full.sink_hops
    assert fast.iterations == full.iterations
    assert fast.max_hops == full.max_hops
    # Dirty-net rerouting never reroutes MORE than the full pass does.
    assert fast.nets_rerouted <= full.nets_rerouted


def test_route_unroutable_raises_in_both_modes():
    """Scarce-track overflow raises RoutingError identically."""
    for incremental in (True, False):
        with pytest.raises(RoutingError, match="unroutable"):
            _routed("vww", 2, "simple", incremental=incremental)


def test_check_usage_detects_drift():
    """The check=True usage recount raises on inconsistent accounting."""
    routes = {0: {"a", "b"}, 1: {"b"}}
    good = {"a": 1, "b": 2}
    _check_usage(good, routes)  # consistent: no raise
    with pytest.raises(RoutingError, match="usage accounting drift"):
        _check_usage({"a": 1, "b": 1}, routes)


# -- the pinned end-to-end digests --------------------------------------


@pytest.mark.parametrize("workload", sorted(PINNED_DIGESTS))
def test_pinned_compile_digest(workload):
    """compile_once reproduces the pre-incremental artifact exactly."""
    from benchmarks.bench_pnr_compile import pnr_digest

    kernel = make_workload(workload, scale="tiny", seed=0).kernel
    compiled = compile_once(
        kernel, monaco(12, 12), ArchParams(), parallelism=1, seed=0
    )
    assert pnr_digest(compiled) == PINNED_DIGESTS[workload]
    assert compiled.pnr is not None
    assert compiled.pnr.incremental
