"""Unit tests for routing and static timing."""

import random

import pytest

from repro.arch.fabric import monaco
from repro.arch.noc import ChannelGraph
from repro.arch.params import TimingParams
from repro.core.criticality import analyze_criticality
from repro.core.policy import EFFCC
from repro.dfg.lower import lower_kernel
from repro.errors import RoutingError
from repro.pnr.netlist import build_netlist
from repro.pnr.place import anneal, initial_placement
from repro.pnr.route import route_design
from repro.pnr.timing import analyze_timing

from kernels import zoo_instance


def place(name="join", fabric=None, seed=0):
    kernel, _, _ = zoo_instance(name)
    dfg = lower_kernel(kernel)
    analyze_criticality(dfg)
    netlist = build_netlist(dfg)
    fabric = fabric or monaco(12, 12)
    rng = random.Random(seed)
    placement = initial_placement(netlist, fabric, EFFCC, rng)
    anneal(placement, rng, moves=3000)
    return netlist, placement, fabric


class TestRouting:
    def test_route_succeeds_with_ample_tracks(self):
        netlist, placement, fab = place()
        routing = route_design(netlist, placement, ChannelGraph(fab, 7))
        assert routing.max_hops >= 1
        assert routing.iterations >= 1

    def test_capacity_respected(self):
        netlist, placement, fab = place()
        tracks = 2
        routing = route_design(
            netlist, placement, ChannelGraph(fab, tracks)
        )
        usage = {}
        for channels in routing.net_channels.values():
            for channel in channels:
                usage[channel] = usage.get(channel, 0) + 1
        assert all(u <= tracks for u in usage.values())

    def test_every_net_routed(self):
        netlist, placement, fab = place()
        routing = route_design(netlist, placement, ChannelGraph(fab, 7))
        for index, net in enumerate(netlist.nets):
            real_sinks = [s for s in net.sinks if s != net.src]
            if real_sinks:
                assert set(routing.sink_hops[index]) == set(real_sinks)

    def test_sink_hops_at_least_manhattan(self):
        netlist, placement, fab = place()
        routing = route_design(netlist, placement, ChannelGraph(fab, 7))
        for index, hops in routing.sink_hops.items():
            src = placement.loc[netlist.nets[index].src]
            for sink, h in hops.items():
                dst = placement.loc[sink]
                manhattan = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
                assert h >= manhattan

    def test_fanout_shares_tree_segments(self):
        netlist, placement, fab = place()
        routing = route_design(netlist, placement, ChannelGraph(fab, 7))
        total_wl = routing.wirelength()
        # A per-sink point-to-point lower bound exceeds a shared tree's
        # wirelength for high-fanout nets; just check the tree is no worse
        # than routing each sink independently at Manhattan distance + slack.
        p2p = 0
        for index, hops in routing.sink_hops.items():
            p2p += sum(hops.values())
        assert total_wl <= p2p

    def test_unroutable_raises(self):
        # Tiny fabric, one track: the join kernel's fan-out cannot fit.
        fab = monaco(6, 6)
        netlist, placement, fab = place(fabric=fab)
        with pytest.raises(RoutingError):
            route_design(
                netlist, placement, ChannelGraph(fab, 1), max_iters=3
            )

    def test_deterministic(self):
        netlist, placement, fab = place()
        a = route_design(netlist, placement, ChannelGraph(fab, 3))
        b = route_design(netlist, placement, ChannelGraph(fab, 3))
        assert a.sink_hops == b.sink_hops


class TestTiming:
    def test_divider_from_routing(self):
        netlist, placement, fab = place()
        routing = route_design(netlist, placement, ChannelGraph(fab, 7))
        report = analyze_timing(routing, TimingParams())
        assert report.max_hops == routing.max_hops
        assert report.clock_divider >= 1
        assert report.max_path_delay_units > report.max_hops
