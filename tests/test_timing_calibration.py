"""End-to-end latency calibration: pin down the timing model exactly.

These tests document, cycle by cycle, what the simulator charges for a
memory access from each NUPEA domain — the numbers Sec. 6 specifies:
one system cycle per arbitration hop, 2-cycle cache hits, 4 extra cycles
to main memory, no fabric-memory NoC delay from D0.
"""

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams
from repro.core.policy import EFFCC
from repro.ir.builder import KernelBuilder
from repro.pnr.flow import compile_once
from repro.pnr.netlist import build_netlist
from repro.sim.engine import simulate

ARCH = ArchParams()
FABRIC = monaco(12, 12)


def chase_kernel(n=64, stride=16):
    """Serialized loads: latency fully exposed on the recurrence."""
    b = KernelBuilder("probe", params=["steps"])
    nxt = b.array("next", n)
    out = b.array("out", 1)
    cur = b.let("cur", 0)
    i = b.let("i", 0)
    with b.while_(i < b.p.steps):
        b.set(cur, nxt.load(cur, "probe"))
        b.set(i, i + 1)
    out.store(0, cur)
    return b.build()


def probe_latency(domain: int) -> float:
    """Mean measured latency of the chase load pinned to ``domain``."""
    kernel = chase_kernel()
    compiled = compile_once(kernel, FABRIC, ARCH, EFFCC, parallelism=1)
    # Re-pin the probe load onto an LS PE of the requested domain by
    # swapping placements (keeping legality).
    probe = next(
        n.nid for n in compiled.dfg.nodes.values() if n.tag == "probe"
    )
    target = next(
        pe
        for pe in FABRIC.ls_pes()
        if pe.domain == domain and pe.coord not in
        set(compiled.placement.values())
    )
    compiled.placement[probe] = target.coord
    # Pointer chain that stays within one cache line: all hits after the
    # first access.
    n = 64
    nxt = [(i + 1) % 8 for i in range(n)]
    params = {"steps": 40}
    result = simulate(compiled, params, {"next": nxt}, ARCH, divider=2)
    return result.stats.load_latency["A"].mean


def test_domain_latency_gradient_is_one_cycle_per_hop():
    latencies = [probe_latency(d) for d in range(4)]
    # Monotone, and each farther domain adds ~2 system cycles (one
    # arbitration hop each way: request + response).
    assert latencies == sorted(latencies)
    for d in range(3):
        delta = latencies[d + 1] - latencies[d]
        assert delta == pytest.approx(2.0, abs=0.75), (d, latencies)


def test_d0_hit_latency_is_cache_plus_network_entry():
    latency = probe_latency(0)
    # Issue -> injection queue (1) -> port+bank enqueue (1) -> serve ->
    # hit (2) -> arrival; emission waits for the next fabric tick
    # (divider 2). About 4-6 system cycles, with no arbitration term.
    assert 3.5 <= latency <= 6.5, latency


def test_miss_latency_adds_memory_cycles():
    kernel = chase_kernel()
    compiled = compile_once(kernel, FABRIC, ARCH, EFFCC, parallelism=1)
    n = 64
    hits = [(i + 1) % 8 for i in range(n)]  # one line
    misses = [(i + 16) % 64 for i in range(n)]  # new line every access
    params = {"steps": 30}
    hit_run = simulate(compiled, params, {"next": hits}, ARCH, divider=2)
    miss_run = simulate(compiled, params, {"next": misses}, ARCH, divider=2)
    # 256KB cache: the 4 distinct lines of the miss chain fit after one
    # pass, so force distinct lines beyond... with 64 words the four
    # lines are cached after the first lap; compare instead against a
    # stride pattern that never re-hits within the run.
    assert miss_run.stats.mem.misses > hit_run.stats.mem.misses
    assert (
        miss_run.stats.load_latency["A"].mean
        > hit_run.stats.load_latency["A"].mean
    )


def test_divider_two_means_fabric_fires_every_other_cycle():
    kernel = chase_kernel()
    compiled = compile_once(kernel, FABRIC, ARCH, EFFCC, parallelism=1)
    params = {"steps": 20}
    nxt = [(i + 1) % 8 for i in range(64)]
    d2 = simulate(compiled, params, {"next": nxt}, ARCH, divider=2)
    d4 = simulate(compiled, params, {"next": nxt}, ARCH, divider=4)
    ratio = d4.stats.system_cycles / d2.stats.system_cycles
    # Fabric-bound sections double; memory sections don't. Expect a
    # ratio between 1 and 2.
    assert 1.0 < ratio <= 2.0
