"""Tests for mid-simulation checkpoint/restore (:mod:`repro.sim.snapshot`).

Contracts under test:

* **split-run bit-identity** — preempt at a pseudo-random cycle, resume
  from the snapshot, and the stats digest + final memory equal an
  uninterrupted run, on every workload, with cycle skipping, fault
  injection and critical-path profiling each on or off;
* **edge budgets** — preemption before the first executed cycle and one
  cycle before quiescence both resume exactly;
* **crash-safe files** — a torn snapshot, a foreign file, version skew,
  a failed checksum, a wrong config digest and a double resume are all
  refused with :class:`~repro.errors.SnapshotError`; a stale ``.tmp``
  (SIGKILL between write and rename) is never read; the ``discard``
  policy unlinks the bad file and restarts from cycle 0;
* **cooperative preemption** — SIGTERM sets the watchdog flag, the
  engine snapshots-then-raises at the next boundary, and the sweep's
  two-stage grace alarm lets a timed-out job exit cooperatively;
* **state_dict round-trips** — the latency reservoir and the fault LCG
  streams continue their exact sequences after restore, and ``sim.check``
  proves serialize/deserialize lossless on every periodic write;
* **sweep recovery** — a cycle-budgeted sweep preempts, retries, resumes
  from its snapshots, and produces results and (keyed) manifest records
  bit-identical to an uninterrupted sweep.
"""

from __future__ import annotations

import json
import os
import pickle
import random
import signal
import types
from dataclasses import replace

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams, FaultParams
from repro.core.policy import EFFCC
from repro.errors import (
    ExperimentError,
    JobTimeout,
    SimulationError,
    SimulationPreempted,
    SnapshotError,
)
from repro.exp.configs import MONACO, upea
from repro.exp.resilient import SweepPolicy, call_with_timeout, run_resilient
from repro.exp.runner import PAPER_DIVIDER, compile_cached
from repro.obs.manifest import completed_points, read_manifest, stable_view
from repro.sim.engine import simulate
from repro.sim.faults import _Stream
from repro.sim.snapshot import (
    SNAPSHOT_MAGIC,
    CheckpointConfig,
    Watchdog,
    check_boundary_invariants,
    load_snapshot,
    resolve_resume,
    sim_config_digest,
)
from repro.sim.stats import RESERVOIR_CAP, LatencyAccumulator
from repro.workloads.registry import ALL_WORKLOADS, make_workload

SCALE = "tiny"

#: Known-good injection mix: visible fault volume in every category that
#: perturbs timing without dropping responses (a dropped response
#: deadlocks by design — that detector has its own suite).
FAULTS = FaultParams(
    seed=3,
    mem_delay_prob=0.02,
    mem_delay_cycles=7,
    pe_stall_prob=0.01,
    grant_skip_prob=0.01,
)

_COMPILED: dict[str, tuple] = {}


def _compiled(name):
    """One compile per workload for the whole module — the snapshot layer
    is pure simulation state, so every toggle combination can share it."""
    if name not in _COMPILED:
        instance = make_workload(name, scale=SCALE, seed=0)
        compiled = compile_cached(
            instance, monaco(12, 12), ArchParams(), policy=EFFCC, seed=0
        )
        _COMPILED[name] = (instance, compiled)
    return _COMPILED[name]


def _arch(**sim_kwargs) -> ArchParams:
    arch = ArchParams()
    return replace(arch, sim=replace(arch.sim, **sim_kwargs))


def _simulate(name, arch, config=MONACO, **kwargs):
    instance, compiled = _compiled(name)
    divider = max(PAPER_DIVIDER, compiled.timing.clock_divider)
    return simulate(
        compiled,
        instance.params,
        instance.arrays,
        arch,
        frontend_factory=config.frontend_factory(divider),
        divider=divider,
        **kwargs,
    )


def _digest(result) -> str:
    return json.dumps(result.stats.to_dict(), sort_keys=True)


def _split(name, arch, budget, path, config=MONACO):
    """Preempt after ``budget`` executed cycles, then resume to the end."""
    with pytest.raises(SimulationPreempted) as info:
        _simulate(
            name,
            arch,
            config,
            checkpoint=CheckpointConfig(path=path, cycle_budget=budget),
        )
    assert info.value.kind == "preempted"
    assert info.value.snapshot_path == path
    assert os.path.exists(path)
    return _simulate(
        name,
        arch,
        config,
        checkpoint=CheckpointConfig(path=path),
        resume_from=path,
    )


# -- split-run bit-identity, all workloads x all mode toggles ---------------


class TestSplitRunBitIdentity:
    @pytest.mark.parametrize("skip", [True, False], ids=["skip", "noskip"])
    @pytest.mark.parametrize("faults", [True, False], ids=["faults", "clean"])
    @pytest.mark.parametrize("crit", [True, False], ids=["critpath", "plain"])
    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_resume_matches_uninterrupted_run(
        self, name, skip, faults, crit, tmp_path
    ):
        arch = _arch(
            cycle_skip=skip,
            critpath=crit,
            faults=FAULTS if faults else None,
        )
        full = _simulate(name, arch)
        executed = full.stats.executed_cycles
        # Pseudo-random but reproducible split point per combination.
        rng = random.Random(f"{name}:{skip}:{faults}:{crit}")
        budget = rng.randint(1, max(1, executed - 1))

        path = str(tmp_path / "point.snap")
        resumed = _split(name, arch, budget, path)

        assert _digest(resumed) == _digest(full)
        assert resumed.memory == full.memory
        assert resumed.resume_info is not None
        assert resumed.resume_info["from_cycle"] > 0
        # Clean completion retires the snapshot.
        assert not os.path.exists(path)

    @pytest.mark.parametrize("name", ["spmspv", "dmv"])
    def test_budget_zero_snapshots_pristine_state(self, name, tmp_path):
        full = _simulate(name, ArchParams())
        path = str(tmp_path / "zero.snap")
        resumed = _split(name, ArchParams(), 0, path)
        assert resumed.resume_info["from_cycle"] == 0
        assert _digest(resumed) == _digest(full)
        assert resumed.memory == full.memory

    def test_budget_one_short_of_quiescence(self, tmp_path):
        full = _simulate("dmv", ArchParams())
        executed = full.stats.executed_cycles
        path = str(tmp_path / "last.snap")
        resumed = _split("dmv", ArchParams(), executed - 1, path)
        assert resumed.resume_info["executed_before"] == executed - 1
        assert _digest(resumed) == _digest(full)
        assert resumed.memory == full.memory

    def test_periodic_writes_are_detached_and_check_verified(self, tmp_path):
        # sim.check on: every periodic write round-trips the payload and
        # compares it against the live machine (verify_roundtrip), so a
        # green run here proves serialization lossless at ~7 boundaries.
        arch = _arch(check=True)
        base = _simulate("spmspv", arch)
        path = str(tmp_path / "periodic.snap")
        run = _simulate(
            "spmspv",
            arch,
            checkpoint=CheckpointConfig(path=path, every_cycles=100),
        )
        assert run.snapshot_stats["writes"] >= 5
        assert _digest(run) == _digest(base)
        assert run.memory == base.memory
        assert not os.path.exists(path)

    def test_sim_knobs_arm_checkpointer(self, tmp_path):
        path = str(tmp_path / "auto.snap")
        arch = _arch(checkpoint_path=path, checkpoint_every=100)
        base = _simulate("dmv", ArchParams())
        run = _simulate("dmv", arch)
        assert run.snapshot_stats["writes"] >= 1
        assert _digest(run) == _digest(base)
        assert not os.path.exists(path)


# -- rejection: every invalid-resume path -----------------------------------


class TestRejection:
    def _snap(self, tmp_path, name="dmv", config=MONACO):
        """A valid snapshot file, produced by preempting a real run."""
        path = str(tmp_path / "victim.snap")
        with pytest.raises(SimulationPreempted):
            _simulate(
                name,
                ArchParams(),
                config,
                checkpoint=CheckpointConfig(path=path, cycle_budget=50),
            )
        return path

    def _rewrite(self, path, mutate):
        with open(path, "rb") as handle:
            blob = pickle.loads(handle.read())
        mutate(blob)
        with open(path, "wb") as handle:
            handle.write(pickle.dumps(blob))

    def test_missing_file_strict(self, tmp_path):
        with pytest.raises(SnapshotError, match="no snapshot"):
            load_snapshot(str(tmp_path / "absent.snap"))

    def test_torn_file_strict(self, tmp_path):
        path = self._snap(tmp_path)
        with open(path, "rb") as handle:
            raw = handle.read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 2])
        with pytest.raises(SnapshotError, match="torn or corrupt"):
            load_snapshot(path)

    def test_torn_file_discard_unlinks_and_restarts(self, tmp_path):
        full = _simulate("dmv", ArchParams())
        path = self._snap(tmp_path)
        with open(path, "wb") as handle:
            handle.write(b"\x80garbage")
        fresh = _simulate(
            "dmv",
            ArchParams(),
            checkpoint=CheckpointConfig(path=path),
            resume_from=path,
            resume_policy="discard",
        )
        # Bad file discarded, run restarted from cycle 0, still correct.
        assert fresh.resume_info is None
        assert _digest(fresh) == _digest(full)
        assert not os.path.exists(path)

    def test_foreign_file_refused(self, tmp_path):
        path = str(tmp_path / "foreign.snap")
        with open(path, "wb") as handle:
            handle.write(pickle.dumps({"magic": "something-else"}))
        with pytest.raises(SnapshotError, match="not a simulator snapshot"):
            load_snapshot(path)

    def test_version_skew_refused(self, tmp_path):
        path = self._snap(tmp_path)
        self._rewrite(path, lambda blob: blob.__setitem__("version", 99))
        with pytest.raises(SnapshotError, match="version 99"):
            load_snapshot(path)

    def test_checksum_mismatch_refused(self, tmp_path):
        path = self._snap(tmp_path)
        self._rewrite(path, lambda blob: blob.__setitem__("sha256", "0" * 64))
        with pytest.raises(SnapshotError, match="checksum"):
            load_snapshot(path)

    def test_wrong_config_digest_refused(self, tmp_path):
        # Snapshot taken under Monaco; resuming the same workload under a
        # UPEA frontend must be refused (strict), not silently restored.
        path = self._snap(tmp_path, config=MONACO)
        with pytest.raises(SnapshotError, match="different configuration"):
            _simulate("dmv", ArchParams(), upea(2), resume_from=path)

    def test_stale_tmp_is_never_read(self, tmp_path):
        # SIGKILL between write and rename leaves garbage at <path>.tmp;
        # the loader only ever reads the published path.
        path = self._snap(tmp_path)
        with open(path + ".tmp", "wb") as handle:
            handle.write(b"killed mid-write")
        snap = load_snapshot(path)
        assert snap.meta["cycle"] >= 0

    def test_double_resume_refused(self, tmp_path):
        path = self._snap(tmp_path)
        snap = load_snapshot(path)
        sink = types.SimpleNamespace(load_state_dict=lambda state: None)
        snap.install(sink)
        with pytest.raises(SnapshotError, match="already resumed"):
            snap.install(sink)

    def test_unknown_resume_policy(self, tmp_path):
        with pytest.raises(ValueError, match="resume policy"):
            resolve_resume(str(tmp_path / "x.snap"), "d" * 16, policy="maybe")

    def test_boundary_invariants_refuse_corrupt_state(self):
        engine = types.SimpleNamespace(
            stats=types.SimpleNamespace(executed_cycles=3, skipped_cycles=0),
            now=5,
            pending_pushes=[],
            fifos=types.SimpleNamespace(queues={}),
            tokens=0,
            resp_queue={},
            mem_inflight=0,
        )
        with pytest.raises(SimulationError, match="executed"):
            check_boundary_invariants(engine)


# -- configuration identity --------------------------------------------------


class TestConfigDigest:
    class _FE:
        def signature(self):
            return "dummy-frontend"

    def test_checkpoint_knobs_do_not_affect_identity(self):
        _, compiled = _compiled("dmv")
        div = max(PAPER_DIVIDER, compiled.timing.clock_divider)
        base = sim_config_digest(compiled, ArchParams(), div, self._FE())
        rearmed = _arch(checkpoint_path="elsewhere.snap", checkpoint_every=7)
        assert sim_config_digest(compiled, rearmed, div, self._FE()) == base

    def test_machine_changes_change_identity(self):
        _, compiled = _compiled("dmv")
        div = max(PAPER_DIVIDER, compiled.timing.clock_divider)
        base = sim_config_digest(compiled, ArchParams(), div, self._FE())
        assert (
            sim_config_digest(compiled, _arch(cycle_skip=False), div, self._FE())
            != base
        )
        assert (
            sim_config_digest(compiled, ArchParams(), div + 1, self._FE())
            != base
        )

        class _Other:
            def signature(self):
                return "other-frontend"

        assert (
            sim_config_digest(compiled, ArchParams(), div, _Other()) != base
        )


# -- cooperative preemption --------------------------------------------------


class TestWatchdog:
    def test_sigterm_sets_flag_first_request_wins(self):
        watchdog = Watchdog()
        previous = signal.getsignal(signal.SIGTERM)
        watchdog.install()
        try:
            os.kill(os.getpid(), signal.SIGTERM)
        finally:
            watchdog.uninstall()
        assert watchdog.reason == "signal SIGTERM"
        assert watchdog.kind == "preempted"
        watchdog.request("too late", kind="timeout")
        assert watchdog.reason == "signal SIGTERM"
        assert watchdog.kind == "preempted"
        assert signal.getsignal(signal.SIGTERM) is previous

    def test_requested_watchdog_snapshots_then_resumes(self, tmp_path):
        full = _simulate("dmv", ArchParams())
        watchdog = Watchdog()
        watchdog.request("node reclaim imminent")
        path = str(tmp_path / "reclaim.snap")
        with pytest.raises(SimulationPreempted, match="node reclaim"):
            _simulate(
                "dmv",
                ArchParams(),
                checkpoint=CheckpointConfig(path=path, watchdog=watchdog),
            )
        resumed = _simulate(
            "dmv",
            ArchParams(),
            checkpoint=CheckpointConfig(path=path),
            resume_from=path,
        )
        assert _digest(resumed) == _digest(full)
        assert resumed.memory == full.memory

    def test_wall_budget_preempts_with_timeout_kind(self, tmp_path):
        path = str(tmp_path / "wall.snap")
        with pytest.raises(SimulationPreempted) as info:
            _simulate(
                "dmv",
                ArchParams(),
                checkpoint=CheckpointConfig(path=path, wall_budget_s=0.0),
            )
        assert info.value.kind == "timeout"
        assert os.path.exists(path)

    def test_grace_alarm_allows_cooperative_exit(self):
        watchdog = Watchdog()

        def thunk():
            while watchdog.reason is None:
                pass
            return "cooperative"

        result = call_with_timeout(
            0.05, thunk, label="graceful", watchdog=watchdog, grace_s=30.0
        )
        assert result == "cooperative"
        assert watchdog.kind == "timeout"

    def test_grace_expiry_hard_kills(self):
        watchdog = Watchdog()

        def thunk():
            while True:
                pass

        with pytest.raises(JobTimeout):
            call_with_timeout(
                0.05, thunk, label="hung", watchdog=watchdog, grace_s=0.05
            )


# -- state_dict round-trip units ---------------------------------------------


class TestStateDictRoundTrips:
    def test_latency_reservoir_continues_exact_stream(self):
        acc = LatencyAccumulator()
        # Push well past the reservoir cap so the LCG cursor is live.
        for i in range(RESERVOIR_CAP + 1000):
            acc.add((i * 37) % 113)
        clone = LatencyAccumulator()
        clone.load_state_dict(acc.state_dict())
        for i in range(500):
            acc.add(i % 29)
            clone.add(i % 29)
        assert clone.state_dict() == acc.state_dict()
        assert clone.to_dict() == acc.to_dict()

    def test_fault_stream_continues_exact_sequence(self):
        stream = _Stream(3, "mem-delay", 0.25)
        for _ in range(100):
            stream.hit()
        clone = _Stream(3, "mem-delay", 0.25)
        clone.load_state_dict(stream.state_dict())
        assert [stream.hit() for _ in range(200)] == [
            clone.hit() for _ in range(200)
        ]
        assert clone.state_dict() == stream.state_dict()

    def test_preempted_exception_survives_pickling(self):
        # The process-pool path ships the exception back to the
        # supervisor by pickle; the snapshot coordinates must survive.
        exc = SimulationPreempted(
            "preempted at cycle 41",
            kind="timeout",
            snapshot_path="p.snap",
            cycle=41,
        )
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, SimulationPreempted)
        assert (clone.kind, clone.snapshot_path, clone.cycle) == (
            "timeout",
            "p.snap",
            41,
        )


# -- sweep recovery ----------------------------------------------------------


class TestSweepRecovery:
    def test_preempted_sweep_resumes_bit_identically(self, tmp_path):
        workloads = ["dmv", "spmspv"]
        kwargs = dict(
            scale=SCALE,
            seeds=(0,),
            max_workers=1,
            cache_dir=tmp_path / "cache",
        )
        clean_manifest = tmp_path / "clean.jsonl"
        clean = run_resilient(
            workloads, [MONACO], manifest_path=clean_manifest, **kwargs
        )
        assert not clean.failures

        # Budget 150 < both points' executed cycles: every point is
        # preempted at least once and must resume from its snapshot.
        snap_manifest = tmp_path / "snap.jsonl"
        snap_dir = tmp_path / "snaps"
        policy = SweepPolicy(
            on_failure="retry", max_retries=10, job_cycle_budget=150
        )
        swept = run_resilient(
            workloads,
            [MONACO],
            manifest_path=snap_manifest,
            sweep_policy=policy,
            snapshot_dir=snap_dir,
            **kwargs,
        )
        assert not swept.failures
        assert set(swept.results) == set(clean.results)
        for key in clean.results:
            assert (
                swept.results[key].stats.to_dict()
                == clean.results[key].stats.to_dict()
            )
            assert swept.results[key].cycles == clean.results[key].cycles

        # Manifest ok-records must be compared keyed by point digest:
        # retries requeue preempted points at the back, so record ORDER
        # legitimately differs from a clean sweep — content must not.
        def keyed(path):
            return {
                record["point_digest"]: stable_view(record)
                for record in read_manifest(path)
                if record["status"] == "ok"
            }

        assert keyed(snap_manifest) == keyed(clean_manifest)

        ok = [
            record
            for record in read_manifest(snap_manifest)
            if record["status"] == "ok"
        ]
        assert ok
        for record in ok:
            # Every point resumed mid-flight — its final attempt started
            # past cycle 0 and executed fewer cycles than the whole run.
            assert record["resume"]["from_cycle"] > 0
            assert record["resume"]["executed_before"] > 0

        # The checkpointer journaled its writes into the same manifest;
        # those records never count as completed points.
        snapshots = [
            record
            for record in read_manifest(snap_manifest)
            if record["status"] == "snapshot"
        ]
        assert snapshots
        assert all(
            record["snapshot_path"].endswith(".snap") for record in snapshots
        )
        assert completed_points(snap_manifest) == set(keyed(snap_manifest))

        # Clean completion drained the snapshot directory.
        assert not list(snap_dir.glob("*.snap"))

    def test_policy_validation(self):
        with pytest.raises(ExperimentError, match="checkpoint_every"):
            SweepPolicy(checkpoint_every=-1)
        with pytest.raises(ExperimentError, match="job_cycle_budget"):
            SweepPolicy(job_cycle_budget=-2)
        with pytest.raises(ExperimentError, match="grace_s"):
            SweepPolicy(grace_s=0)

    def test_preempted_is_retryable_by_default(self):
        assert "preempted" in SweepPolicy().retryable_kinds
        assert SweepPolicy(on_failure="retry").wants_retry("preempted", 1)
