"""Property test: the timed simulator agrees with the IR interpreter.

The strongest end-to-end check: random structured programs go through the
entire stack — parallelization-free lowering, criticality analysis,
NUPEA-aware PnR, cycle-level simulation with the Monaco fabric-memory NoC
— and must produce exactly the reference memory.
"""

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams, SimParams
from repro.core.policy import EFFCC
from repro.errors import PnRError
from repro.ir.interp import run_kernel
from repro.pnr.flow import compile_once
from repro.sim.engine import simulate

from test_equivalence_property import ARRAY_SIZE, kernels

FABRIC = monaco(12, 12)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
    ],
)
@given(
    kernel=kernels(),
    fifo=st.sampled_from([2, 3, 4]),
    outstanding=st.sampled_from([1, 2, 4]),
)
def test_timed_simulation_equivalence(kernel, fifo, outstanding):
    params = {"n": 3}
    arrays = {
        "A": [(i * 3 + 1) % 7 for i in range(ARRAY_SIZE)],
        "X": [(i * 5 + 2) % 9 for i in range(ARRAY_SIZE)],
    }
    reference = run_kernel(kernel, params, arrays)
    arch = ArchParams(
        sim=SimParams(fifo_capacity=fifo, max_outstanding=outstanding)
    )
    try:
        compiled = compile_once(
            kernel, FABRIC, arch, EFFCC, parallelism=1, anneal_moves=2000
        )
    except PnRError:
        assume(False)
        return
    result = simulate(compiled, params, arrays, arch)
    assert result.memory == reference
