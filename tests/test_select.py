"""Tests for the eager select (ternary) expression and DFG op."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams
from repro.core.policy import EFFCC
from repro.dfg.interp import run_dfg
from repro.dfg.lower import lower_kernel
from repro.ir.ast import select
from repro.ir.builder import KernelBuilder
from repro.ir.interp import run_kernel
from repro.ir.pretty import format_expr
from repro.ir.transform import parallelize
from repro.pnr.flow import compile_once
from repro.sim.engine import simulate


def clamp_kernel(n=8):
    """Branch-free clamp via select (the common dataflow idiom)."""
    b = KernelBuilder("clampsel", params=["n", "lo", "hi"])
    x = b.array("x", n)
    y = b.array("y", n)
    with b.parfor("i", 0, b.p.n) as i:
        v = x.load(i)
        clamped = select(v < b.p.lo, b.p.lo, select(v > b.p.hi, b.p.hi, v))
        y.store(i, clamped)
    return b.build()


PARAMS = {"n": 8, "lo": 0, "hi": 5}
ARRAYS = {"x": [-3, 0, 2, 5, 9, 4, -1, 7]}
EXPECTED = [0, 0, 2, 5, 5, 4, 0, 5]


def test_ir_interpreter_semantics():
    got = run_kernel(clamp_kernel(), PARAMS, ARRAYS)
    assert got["y"] == EXPECTED


def test_lowering_uses_select_nodes_not_merges():
    dfg = lower_kernel(clamp_kernel())
    ops = dfg.op_histogram()
    assert ops.get("select", 0) == 2
    assert "merge" not in ops  # no control flow introduced


def test_dfg_interpreter_matches():
    dfg = lower_kernel(clamp_kernel())
    for order in ("fifo", "lifo", "random"):
        got = run_dfg(dfg, PARAMS, ARRAYS, order=order, seed=3)
        assert got.memory["y"] == EXPECTED


def test_timed_simulation_matches():
    compiled = compile_once(
        clamp_kernel(), monaco(12, 12), ArchParams(), EFFCC, parallelism=2
    )
    result = simulate(compiled, PARAMS, ARRAYS, ArchParams())
    assert result.memory["y"] == EXPECTED


def test_constant_condition_folds():
    b = KernelBuilder("fold")
    y = b.array("y", 1)
    y.store(0, select(1 < 2, 7, 9))
    dfg = lower_kernel(b.build())
    assert "select" not in dfg.op_histogram()
    assert run_dfg(dfg).memory["y"] == [7]


def test_select_in_loop_condition_context():
    # select feeding a carried variable inside a while loop.
    b = KernelBuilder("gcd", params=["a", "b"])
    out = b.array("out", 1)
    x = b.let("x", b.p.a)
    yv = b.let("y", b.p.b)
    with b.while_(yv.ne(0)):
        r = b.let("r", x % yv)
        b.set(x, yv)
        b.set(yv, r)
    out.store(0, x)
    kernel = b.build()
    got = run_kernel(kernel, {"a": 48, "b": 36})
    assert got["out"] == [12]
    dfg = lower_kernel(kernel)
    assert run_dfg(dfg, {"a": 48, "b": 36}).memory["out"] == [12]


def test_parallelize_renames_select_operands():
    kernel = clamp_kernel()
    split = parallelize(kernel, 3)
    got = run_kernel(split, PARAMS, ARRAYS)
    assert got["y"] == EXPECTED
    dfg = lower_kernel(split)
    assert run_dfg(dfg, PARAMS, ARRAYS).memory["y"] == EXPECTED


def test_pretty_print():
    expr = select(1, 2, 3)
    assert format_expr(expr) == "select(1, 2, 3)"


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.integers(-20, 20), min_size=8, max_size=8
    ),
    lo=st.integers(-5, 0),
    hi=st.integers(1, 6),
)
def test_clamp_property(values, lo, hi):
    params = {"n": 8, "lo": lo, "hi": hi}
    arrays = {"x": values}
    expected = [min(max(v, lo), hi) for v in values]
    got = run_kernel(clamp_kernel(), params, arrays)
    assert got["y"] == expected
    dfg = lower_kernel(clamp_kernel())
    assert run_dfg(dfg, params, arrays, order="random").memory[
        "y"
    ] == expected
