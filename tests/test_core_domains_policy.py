"""Unit tests for NUPEA domains and placement policies."""

import pytest

from repro.core.domains import (
    NUPEADomain,
    placement_preference,
    validate_domain_order,
)
from repro.core.policy import (
    DOMAIN_AWARE,
    DOMAIN_UNAWARE,
    EFFCC,
    domain_latency_rank,
    get_policy,
)
from repro.errors import ArchError, PnRError


class TestDomains:
    def test_basic_domain(self):
        d = NUPEADomain(0, 0, (11, 10, 9))
        assert d.name == "D0"
        assert d.column_rank(11) == 0
        assert d.column_rank(9) == 2

    def test_column_not_in_domain(self):
        d = NUPEADomain(0, 0, (11,))
        with pytest.raises(ArchError):
            d.column_rank(3)

    def test_negative_index_rejected(self):
        with pytest.raises(ArchError):
            NUPEADomain(-1, 0)

    def test_order_validation(self):
        good = [NUPEADomain(0, 0, (5,)), NUPEADomain(1, 1, (4,))]
        validate_domain_order(good)
        with pytest.raises(ArchError):
            validate_domain_order([])
        with pytest.raises(ArchError):
            validate_domain_order([NUPEADomain(1, 0, (5,))])
        with pytest.raises(ArchError):
            validate_domain_order(
                [NUPEADomain(0, 2, (5,)), NUPEADomain(1, 1, (4,))]
            )

    def test_placement_preference_order(self):
        domains = [
            NUPEADomain(0, 0, (11, 10)),
            NUPEADomain(1, 1, (9, 8, 7)),
        ]
        order = placement_preference(domains)
        assert order == [(0, 0), (0, 1), (1, 0), (1, 1), (1, 2)]


class TestPolicies:
    def test_weights(self):
        assert EFFCC.weight("A") > EFFCC.weight("B") > EFFCC.weight("C")
        assert DOMAIN_AWARE.weight("A") == DOMAIN_AWARE.weight("C")
        assert DOMAIN_UNAWARE.weight("A") == 0.0

    def test_awareness_flags(self):
        assert not DOMAIN_UNAWARE.domain_aware
        assert DOMAIN_AWARE.domain_aware
        assert not DOMAIN_AWARE.criticality_aware
        assert EFFCC.criticality_aware

    def test_unknown_class_rejected(self):
        with pytest.raises(PnRError):
            EFFCC.weight("Z")

    def test_get_policy(self):
        assert get_policy("effcc") is EFFCC
        with pytest.raises(PnRError):
            get_policy("magic")

    def test_latency_rank_orders_as_paper(self):
        # ... D1.c0 is worse than D0.c2 which is worse than D0.c0.
        d0c0 = domain_latency_rank(0, 0)
        d0c2 = domain_latency_rank(0, 2)
        d1c0 = domain_latency_rank(1, 0)
        assert d0c0 < d0c2 < d1c0
