"""Tests for the observability layer (:mod:`repro.obs`).

Covers the tentpole contracts:

* tracing off is the default and changes nothing (bit-identical stats);
* tracing on is deterministic — two runs produce identical event
  streams, attribution tables, and Chrome traces;
* the cycle-attribution invariant: every node's buckets sum to
  ``system_cycles + 1`` (the final quiescence-check cycle is executed
  but does not advance the clock);
* the Chrome ``trace_event`` export is schema-valid JSON;
* structured run manifests are identical (modulo volatile fields)
  between serial and parallel sweeps.
"""

import json

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams, SimParams
from repro.exp.configs import MONACO, numa, upea
from repro.exp.runner import run_config, run_parallel, run_workload_on_configs
from repro.obs.events import FIRE, STALL_KINDS, TICK_KINDS, EventBus
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    config_digest,
    read_manifest,
    stable_view,
)
from repro.pnr.flow import compile_kernel
from repro.workloads.registry import make_workload

WORKLOAD = "spmspv"
SCALE = "tiny"


def _traced_arch(trace=True, trace_path=None, cycle_skip=True):
    return ArchParams(
        sim=SimParams(trace=trace, trace_path=trace_path, cycle_skip=cycle_skip)
    )


def _compile(arch):
    instance = make_workload(WORKLOAD, scale=SCALE, seed=0)
    fabric = monaco(12, 12)
    compiled = compile_kernel(instance.kernel, fabric, arch, seed=0)
    return instance, compiled


def _run(arch, config=MONACO):
    instance, compiled = _compile(arch)
    return run_config(instance, compiled, config, arch)


class TestZeroOverheadOff:
    def test_trace_off_is_default(self):
        assert ArchParams().sim.trace is False

    def test_off_run_has_no_obs(self):
        run = _run(ArchParams())
        assert run.obs is None

    def test_stats_bit_identical_with_tracing(self):
        off = _run(ArchParams())
        on = _run(_traced_arch())
        assert on.cycles == off.cycles
        assert on.stats == off.stats

    def test_stats_bit_identical_without_cycle_skip(self):
        off = _run(ArchParams(sim=SimParams(cycle_skip=False)))
        on = _run(_traced_arch(cycle_skip=False))
        assert on.stats == off.stats


class TestAttribution:
    @pytest.fixture(scope="class")
    def traced(self):
        return _run(_traced_arch())

    def test_every_node_sums_to_system_cycles(self, traced):
        att = traced.obs.attribution
        assert att.per_node, "attribution saw no nodes"
        for nid in att.per_node:
            assert att.node_total(nid) == traced.cycles + 1

    def test_aggregate_covers_all_kinds(self, traced):
        agg = traced.obs.attribution.aggregate()
        assert agg[FIRE] > 0
        assert set(agg) <= set(TICK_KINDS) | set(STALL_KINDS)

    def test_fractions_sum_to_one(self, traced):
        fracs = traced.obs.attribution.fractions()
        assert sum(fracs.values()) == pytest.approx(1.0)

    def test_per_pe_rollup_preserves_totals(self, traced):
        att = traced.obs.attribution
        per_pe = att.per_pe()
        assert sum(sum(c.values()) for c in per_pe.values()) == sum(
            sum(c.values()) for c in att.per_node.values()
        )

    def test_render_mentions_stall_columns(self, traced):
        text = traced.obs.attribution.render(top=5)
        assert "fire" in text and "op-wait" in text
        assert "divider-gap" in text and "skipped" in text

    def test_skip_on_off_attribution_identical(self):
        on = _run(_traced_arch(cycle_skip=True))
        off = _run(_traced_arch(cycle_skip=False))
        a, b = on.obs.attribution, off.obs.attribution
        assert a.per_node == b.per_node
        # Skipped cycles become executed divider-gap cycles when the
        # scheduler never jumps; their sum is invariant.
        assert a.divider_gap + a.skipped == b.divider_gap + b.skipped
        assert b.skipped == 0

    def test_heatmaps_render(self, traced):
        noc = traced.obs.noc_heatmap.render(12, 12)
        assert len(noc.splitlines()) >= 13
        fm = traced.obs.fmnoc_heatmap.render()
        assert "memory port" in fm


class TestTraceDeterminism:
    def test_two_runs_identical(self):
        a = _run(_traced_arch())
        b = _run(_traced_arch())
        assert a.obs.attribution.per_node == b.obs.attribution.per_node
        assert a.obs.noc_heatmap.channel_tokens == b.obs.noc_heatmap.channel_tokens
        assert a.obs.fmnoc_heatmap.stage_traffic == b.obs.fmnoc_heatmap.stage_traffic
        assert a.stats == b.stats

    def test_chrome_events_identical(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            _run(_traced_arch(trace_path=str(path)))
        a, b = (json.loads(p.read_text()) for p in paths)
        assert a == b


class TestChromeTraceSchema:
    @pytest.fixture(scope="class")
    def trace(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "trace.json"
        run = _run(_traced_arch(trace_path=str(path)))
        return run, json.loads(path.read_text())

    def test_top_level_keys(self, trace):
        _, doc = trace
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]

    def test_event_schema(self, trace):
        _, doc = trace
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "C", "M")
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
            if ev["ph"] == "X":
                assert isinstance(ev["ts"], int) and ev["ts"] >= 0
                assert isinstance(ev["dur"], int) and ev["dur"] >= 0
                assert ev["name"]
            if ev["ph"] == "C":
                assert isinstance(ev["args"], dict)

    def test_fire_events_match_stats(self, trace):
        run, doc = trace
        fires = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["pid"] == 0
        ]
        assert len(fires) == run.stats.total_firings

    def test_mem_events_carry_criticality(self, trace):
        _, doc = trace
        mems = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["pid"] == 1 and e["cat"] == "mem"
        ]
        assert mems
        assert all("criticality" in e["args"] for e in mems)


class TestManifests:
    def test_serial_manifest_records(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        run_workload_on_configs(
            WORKLOAD, [upea(2), MONACO], scale=SCALE, manifest_path=path
        )
        records = read_manifest(path)
        assert [r["config"] for r in records] == ["upea2", "monaco"]
        for record in records:
            assert record["schema"] == MANIFEST_SCHEMA
            assert record["workload"] == WORKLOAD
            assert record["cycles"] > 0
            assert len(record["digest"]) == 16
            assert record["wall_time_s"] >= 0.0
            assert "system_cycles" in record["stats"]

    def test_serial_vs_parallel_manifests_match(self, tmp_path):
        kwargs = dict(
            workloads=[WORKLOAD],
            configs=[upea(2), numa(2)],
            scale=SCALE,
            seeds=(0,),
        )
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        # No cache_dir on the serial run: it executes in-process, and
        # enabling the disk cache there would mutate GLOBAL_CACHE for
        # the rest of the test session. Workers enable it privately.
        serial = run_parallel(
            max_workers=1, manifest_path=serial_path, **kwargs
        )
        parallel = run_parallel(
            max_workers=2,
            manifest_path=parallel_path,
            cache_dir=tmp_path / "cache",
            **kwargs,
        )
        assert serial == parallel
        a = [stable_view(r) for r in read_manifest(serial_path)]
        b = [stable_view(r) for r in read_manifest(parallel_path)]
        assert a == b

    def test_stable_view_drops_volatile_fields(self):
        view = stable_view(
            {"cycles": 1, "wall_time_s": 0.5, "timestamp": "x", "git_rev": "y"}
        )
        assert view == {"cycles": 1}

    def test_config_digest_is_order_insensitive(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest(
            {"b": 2, "a": 1}
        )
        assert config_digest({"a": 1}) != config_digest({"a": 2})


class TestNumaAndEnergyReporting:
    """Counters that were tallied but never reported now surface.

    ``NumaFrontend.local_accesses``/``remote_accesses`` reach
    ``SimStats.numa`` (summary, to_dict, manifests) and every manifest
    record carries a deterministic ``energy`` block priced from stable
    counters — part of the stable view, equal serial vs parallel.
    """

    def test_numa_counters_surface_in_stats(self):
        arch = ArchParams()
        run = _run(arch, config=numa(2))
        stats = run.stats
        assert stats.numa
        total = (
            stats.numa["local_accesses"] + stats.numa["remote_accesses"]
        )
        # Every memory request was classified exactly once (no drops in
        # a clean run, so injects == serviced accesses).
        assert total == stats.mem.loads + stats.mem.stores
        assert "NUMA" in stats.summary()
        assert stats.to_dict()["numa"] == {
            "local_accesses": stats.numa["local_accesses"],
            "remote_accesses": stats.numa["remote_accesses"],
        }

    def test_non_numa_runs_report_nothing(self):
        # Monaco tallies no locality split: the key must stay absent so
        # existing stats digests are untouched.
        run = _run(ArchParams(), config=MONACO)
        assert run.stats.numa == {}
        assert "numa" not in run.stats.to_dict()
        assert "NUMA" not in run.stats.summary()

    def test_numa_counters_equal_serial_vs_parallel(self, tmp_path):
        kwargs = dict(
            workloads=[WORKLOAD],
            configs=[numa(2)],
            scale=SCALE,
            seeds=(0,),
        )
        serial = run_parallel(max_workers=1, **kwargs)
        pooled = run_parallel(
            max_workers=2, cache_dir=tmp_path / "cache", **kwargs
        )
        key = (WORKLOAD, numa(2).name, 0)
        assert serial[key].stats.numa == pooled[key].stats.numa
        assert serial[key].stats.numa["local_accesses"] > 0

    def test_manifest_carries_stable_energy_block(self, tmp_path):
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        for path in (first, second):
            run_workload_on_configs(
                WORKLOAD, [upea(2), MONACO], scale=SCALE, manifest_path=path
            )
        records = read_manifest(first)
        for record in records:
            energy = record["energy"]
            assert energy["total_pj"] > 0
            assert energy["mem_issue_pj"] > 0
            assert energy["data_movement_pj"] == pytest.approx(
                energy["total_pj"]
                - energy["compute_pj"]
                - energy["control_pj"]
            )
            # Energy derives from stable counters: part of the stable
            # view, not a volatile key.
            assert "energy" in stable_view(record)
        # Byte-for-byte digest stability across repeat runs.
        a = [json.dumps(stable_view(r), sort_keys=True)
             for r in records]
        b = [json.dumps(stable_view(r), sort_keys=True)
             for r in read_manifest(second)]
        assert a == b


class TestEventBus:
    def test_attach_binds_only_implemented_hooks(self):
        class Sink:
            def __init__(self):
                self.fired = []

            def on_fire(self, now, node, pe):
                self.fired.append((now, node, pe))

        bus = EventBus()
        sink = Sink()
        bus.attach(sink)
        bus.fire(3, "n", (0, 0))
        bus.gap(4)  # no on_gap handler: must be a no-op, not an error
        assert sink.fired == [(3, "n", (0, 0))]

    def test_counter_default_amount(self):
        class Sink:
            def __init__(self):
                self.counts = {}

            def on_counter(self, name, amount):
                self.counts[name] = self.counts.get(name, 0) + amount

        bus = EventBus()
        sink = Sink()
        bus.attach(sink)
        bus.counter("numa-local")
        bus.counter("numa-local", 2)
        assert sink.counts == {"numa-local": 3}


class TestNumaCounters:
    def test_numa_frontend_publishes_locality(self):
        run = _run(_traced_arch(), config=numa(2))
        counters = run.obs.attribution.counters
        total = counters["numa-local"] + counters["numa-remote"]
        assert total > 0


class TestDeadlockReport:
    def test_report_ranks_blocked_nodes(self):
        from repro.dfg.graph import PortRef
        from repro.errors import DeadlockError
        from repro.sim.engine import simulate

        arch = ArchParams(sim=SimParams(deadlock_cycles=2_000))
        instance, compiled = _compile(arch)
        victim = next(
            n for n in compiled.dfg.nodes.values() if n.op == "binop"
        )
        victim.inputs[0] = PortRef(victim.nid)
        with pytest.raises(DeadlockError) as excinfo:
            simulate(compiled, instance.params, instance.arrays, arch)
        text = str(excinfo.value)
        assert "Blocked nodes" in text
        # Each entry shows stall reason, FIFO occupancies, outstanding mem.
        assert "fifos" in text
        assert "mem-outstanding" in text
        assert "[operand-wait]" in text or "[output-backpressure]" in text
