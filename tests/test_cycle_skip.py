"""Event-driven cycle skipping must be bit-identical to the per-cycle loop.

The scheduler (``repro/sim/engine.py``) jumps the system clock over
provably-idle gaps (memory latency, clock-divider dead cycles). These
tests pin the skip-safety contract: identical ``system_cycles``, identical
``SimStats`` (``executed_cycles``/``skipped_cycles`` are excluded from
dataclass equality by design), identical final memory — across all 13
Table 1 workloads and all three frontend families.
"""

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams, SimParams
from repro.core.policy import EFFCC
from repro.errors import DeadlockError, SimulationError
from repro.pnr.flow import compile_once
from repro.sim.engine import simulate
from repro.sim.upea import NumaFrontend, UniformFrontend
from repro.workloads.registry import ALL_WORKLOADS, make_workload

from kernels import zoo_instance

FABRIC = monaco(12, 12)
SKIP_ON = ArchParams(sim=SimParams(cycle_skip=True))
SKIP_OFF = ArchParams(sim=SimParams(cycle_skip=False))

FRONTENDS = {
    "monaco": None,  # engine default
    "upea": lambda fabric, amap: UniformFrontend(4),
    "numa": lambda fabric, amap: NumaFrontend(4, fabric, amap, seed=0),
}


def _compile(instance):
    return compile_once(
        instance.kernel, FABRIC, ArchParams(), EFFCC, parallelism=1
    )


def _run(compiled, instance, arch, frontend):
    kwargs = {}
    if FRONTENDS[frontend] is not None:
        kwargs["frontend_factory"] = FRONTENDS[frontend]
    arrays = {name: list(data) for name, data in instance.arrays.items()}
    return simulate(compiled, instance.params, arrays, arch, **kwargs)


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_skip_bit_identical_all_workloads(name):
    """Acceptance: identical cycles/stats on every Table 1 workload."""
    instance = make_workload(name, scale="tiny")
    compiled = _compile(instance)
    on = _run(compiled, instance, SKIP_ON, "monaco")
    off = _run(compiled, instance, SKIP_OFF, "monaco")
    assert on.stats.system_cycles == off.stats.system_cycles
    assert on.stats == off.stats  # full SimStats equality, incl. memstats
    assert on.memory == off.memory
    assert on.stats.executed_cycles < off.stats.executed_cycles
    assert on.stats.skipped_cycles > 0
    assert (
        on.stats.executed_cycles + on.stats.skipped_cycles
        == off.stats.executed_cycles
    )


@pytest.mark.parametrize("frontend", sorted(FRONTENDS))
@pytest.mark.parametrize("name", ["spmspv", "fft", "mergesort"])
def test_skip_bit_identical_across_frontends(name, frontend):
    """Determinism holds for monaco, upea, and numa frontends alike."""
    instance = make_workload(name, scale="tiny")
    compiled = _compile(instance)
    on = _run(compiled, instance, SKIP_ON, frontend)
    off = _run(compiled, instance, SKIP_OFF, frontend)
    assert on.stats.system_cycles == off.stats.system_cycles
    assert on.stats == off.stats
    assert on.memory == off.memory


def test_skip_enabled_by_default():
    assert ArchParams().sim.cycle_skip is True
    kernel, params, arrays = zoo_instance("dot")
    ck = compile_once(kernel, FABRIC, ArchParams(), EFFCC, parallelism=1)
    res = simulate(ck, params, arrays, ArchParams())
    assert res.stats.skipped_cycles > 0


def test_skip_off_executes_every_cycle():
    kernel, params, arrays = zoo_instance("dot")
    ck = compile_once(kernel, FABRIC, ArchParams(), EFFCC, parallelism=1)
    res = simulate(ck, params, arrays, SKIP_OFF)
    assert res.stats.skipped_cycles == 0
    # The loop runs cycles 0..system_cycles inclusive.
    assert res.stats.executed_cycles == res.stats.system_cycles + 1


def test_skip_jumps_over_upea_delay():
    """A fixed-delay pipe is the canonical skippable gap."""
    kernel, params, arrays = zoo_instance("chase")
    ck = compile_once(kernel, FABRIC, ArchParams(), EFFCC, parallelism=1)
    results = {}
    for arch in (SKIP_ON, SKIP_OFF):
        results[arch.sim.cycle_skip] = simulate(
            ck, params, dict(arrays), arch,
            frontend_factory=lambda f, a: UniformFrontend(40),
        )
    assert (
        results[True].stats.system_cycles
        == results[False].stats.system_cycles
    )
    # The pointer chase idles through each 40-cycle pipe delay; skipping
    # must elide the bulk of the simulated cycles.
    assert (
        results[True].stats.executed_cycles
        < results[False].stats.executed_cycles / 2
    )


def test_skip_preserves_deadlock_diagnosis():
    """The detector trips at the same cycle with skipping on or off."""
    from repro.dfg.graph import PortRef

    errors = {}
    for cycle_skip in (True, False):
        kernel, params, arrays = zoo_instance("join")
        ck = compile_once(kernel, FABRIC, ArchParams(), EFFCC, parallelism=1)
        victim = next(n for n in ck.dfg.nodes.values() if n.op == "binop")
        victim.inputs[0] = PortRef(victim.nid)
        arch = ArchParams(
            sim=SimParams(deadlock_cycles=2_000, cycle_skip=cycle_skip)
        )
        with pytest.raises(DeadlockError) as excinfo:
            simulate(ck, params, arrays, arch)
        errors[cycle_skip] = str(excinfo.value)
    assert errors[True] == errors[False]


def test_skip_preserves_max_cycles_guard():
    kernel, params, arrays = zoo_instance("dot")
    ck = compile_once(kernel, FABRIC, ArchParams(), EFFCC, parallelism=1)
    arch = ArchParams(sim=SimParams(max_cycles=3))
    with pytest.raises(SimulationError, match="max_cycles"):
        simulate(ck, params, arrays, arch)


def test_frontends_expose_next_event_hints():
    """Idle components report None; busy ones report a concrete cycle."""
    from repro.arch.memory import AddressMap
    from repro.arch.params import MemoryParams
    from repro.sim.memsys import MemorySystem

    fe = UniformFrontend(7)
    assert fe.next_event(3) is None
    amap = AddressMap({"a": 64}, MemoryParams())
    memsys = MemorySystem(MemoryParams(), amap, {"a": [0] * 64})
    assert memsys.next_event(5) is None

    from repro.dfg.ops import MemRequest
    from repro.sim.memsys import RequestRecord

    record = RequestRecord(
        nid=1, seq=1, request=MemRequest("load", "a", 0),
        address=0, pe_coord=(0, 0), issue_cycle=3,
    )
    fe.inject(record, 3)
    assert fe.next_event(3) == 10  # now + delay
    memsys.enqueue(record, 10)
    assert memsys.next_event(10) == 10  # bank queues run every cycle
