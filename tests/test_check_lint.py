"""DFG static lint pass (``repro.check.lint``).

Each rule gets a deliberately broken graph built by mutating a real
lowering's output (the lint is defined against the lowering's
token-cadence discipline, so mutated-real graphs are the honest test
vehicle). The soundness side — every Table 1 workload lints clean under
``lower_kernel(..., strict=True)`` — is asserted over the full registry.
"""

from __future__ import annotations

import pytest

from repro.check.lint import (
    _lint_carries,
    lint_dfg,
    lint_strict,
)
from repro.dfg.graph import ImmRef, PortRef
from repro.dfg.lower import lower_kernel
from repro.errors import DFGError
from repro.workloads.registry import ALL_WORKLOADS, make_workload

from kernels import dot_kernel, nested_kernel


def rules(issues):
    return {issue.rule for issue in issues}


# -- soundness: real lowerings are clean ------------------------------------


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_all_workloads_lint_clean(name):
    instance = make_workload(name, scale="tiny")
    dfg = lower_kernel(instance.kernel, strict=True)  # raises on findings
    assert lint_dfg(dfg) == []


def test_strict_is_default_off_and_identical():
    plain = lower_kernel(dot_kernel())
    strict = lower_kernel(dot_kernel(), strict=True)
    assert plain.op_histogram() == strict.op_histogram()


# -- each rule fires on its broken graph ------------------------------------


def test_dangling_port_nonexistent_node():
    dfg = lower_kernel(dot_kernel())
    victim = next(
        n for n in dfg.nodes.values()
        if any(isinstance(i, PortRef) for i in n.inputs)
    )
    index = next(
        i for i, inp in enumerate(victim.inputs) if isinstance(inp, PortRef)
    )
    victim.inputs[index] = PortRef(999_999)
    issues = lint_dfg(dfg)
    assert rules(issues) == {"dangling-port"}
    assert any("nonexistent node 999999" in i.message for i in issues)


def test_dangling_port_flags_unpatched_placeholder():
    dfg = lower_kernel(nested_kernel())
    carry = next(n for n in dfg.nodes.values() if n.op == "carry")
    carry.inputs[1] = PortRef(-1)
    issues = lint_dfg(dfg)
    assert rules(issues) == {"dangling-port"}
    assert any("back-edge placeholder" in i.message for i in issues)
    with pytest.raises(DFGError, match="dangling-port"):
        lint_strict(dfg)


def test_unreachable_node():
    dfg = lower_kernel(dot_kernel())
    # A node with immediate-only inputs has no forward path from the
    # source: it can never receive a launch token.
    orphan = dfg.add(
        "binop",
        [ImmRef("const", 1), ImmRef("const", 2)],
        opname="+",
        tag="orphan",
    )
    issues = lint_dfg(dfg)
    assert "unreachable" in rules(issues)
    assert any(i.nid == orphan for i in issues if i.rule == "unreachable")


def test_dead_node():
    dfg = lower_kernel(dot_kernel())
    store = next(n for n in dfg.nodes.values() if n.op == "store")
    feeder = next(
        inp.src for inp in store.inputs if isinstance(inp, PortRef)
    )
    # Reachable (fed by a live node) but with no path to any store.
    dead = dfg.add(
        "unop", [PortRef(feeder)], opname="neg", tag="dead-limb"
    )
    issues = lint_dfg(dfg)
    assert any(
        i.rule == "dead" and i.nid == dead for i in issues
    ), issues


def test_carry_init_immediate():
    dfg = lower_kernel(nested_kernel())
    carry = next(n for n in dfg.nodes.values() if n.op == "carry")
    carry.inputs[0] = ImmRef("const", 0)
    issues = lint_dfg(dfg)
    assert any(
        i.rule == "carry-init-imm" and i.nid == carry.nid for i in issues
    )


def test_carry_placeholder_rule_directly():
    # Through ``lint_dfg`` a PortRef(-1) is reported as dangling-port
    # (and stops the pass); the carry rule itself must still recognise
    # the placeholder for graphs where node -1 hypothetically resolves.
    dfg = lower_kernel(nested_kernel())
    carry = next(n for n in dfg.nodes.values() if n.op == "carry")
    carry.inputs[2] = PortRef(-1)
    issues = _lint_carries(dfg)
    assert any(
        i.rule == "carry-placeholder" and i.nid == carry.nid
        for i in issues
    )


def test_steer_cadence_incomparable_regions():
    dfg = lower_kernel(nested_kernel())
    steer = next(
        n
        for n in dfg.nodes.values()
        if n.op == "steer"
        and any(
            isinstance(inp, PortRef)
            and dfg.nodes[inp.src].attrs.get("loop") is not None
            for inp in n.inputs[:2]
        )
    )
    # Retag the steer into a loop region that exists nowhere in the
    # nesting tree: neither region encloses the other.
    steer.attrs["loop"] = 999_999
    issues = lint_dfg(dfg)
    assert any(
        i.rule == "steer-cadence" and i.nid == steer.nid for i in issues
    ), issues


def test_lint_strict_raises_with_full_listing():
    dfg = lower_kernel(dot_kernel())
    dfg.add(
        "binop",
        [ImmRef("const", 1), ImmRef("const", 2)],
        opname="+",
        tag="orphan",
    )
    with pytest.raises(DFGError) as excinfo:
        lint_strict(dfg)
    assert "unreachable" in str(excinfo.value)
    assert "issue(s)" in str(excinfo.value)


def test_issue_describe_format():
    dfg = lower_kernel(dot_kernel())
    victim = next(
        n for n in dfg.nodes.values()
        if any(isinstance(i, PortRef) for i in n.inputs)
    )
    index = next(
        i for i, inp in enumerate(victim.inputs) if isinstance(inp, PortRef)
    )
    victim.inputs[index] = PortRef(-1)
    (issue, *_rest) = lint_dfg(dfg)
    text = issue.describe()
    assert text.startswith("[dangling-port]")
    assert f"node {victim.nid}" in text
