"""Unit tests for the shared scalar operation semantics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.isa import (
    BINARY_IMPLS,
    COMPARISON_OPS,
    UNARY_IMPLS,
    apply_binop,
    apply_unop,
    truthy,
)

ints = st.integers(min_value=-(2**31), max_value=2**31 - 1)
nonzero_ints = ints.filter(lambda v: v != 0)


class TestBinops:
    def test_add_sub_mul(self):
        assert apply_binop("+", 3, 4) == 7
        assert apply_binop("-", 3, 4) == -1
        assert apply_binop("*", -3, 4) == -12

    def test_c_division_truncates_toward_zero(self):
        assert apply_binop("//", 7, 2) == 3
        assert apply_binop("//", -7, 2) == -3
        assert apply_binop("//", 7, -2) == -3
        assert apply_binop("//", -7, -2) == 3

    def test_c_modulo_sign_follows_dividend(self):
        assert apply_binop("%", 7, 3) == 1
        assert apply_binop("%", -7, 3) == -1
        assert apply_binop("%", 7, -3) == 1
        assert apply_binop("%", -7, -3) == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(ReproError):
            apply_binop("//", 1, 0)
        with pytest.raises(ReproError):
            apply_binop("%", 1, 0)

    def test_true_division_is_float(self):
        assert apply_binop("/", 1, 2) == 0.5

    def test_comparisons_return_int(self):
        assert apply_binop("<", 1, 2) == 1
        assert apply_binop(">=", 1, 2) == 0
        assert isinstance(apply_binop("==", 1.0, 1.0), int)

    def test_min_max(self):
        assert apply_binop("min", 3, -1) == -1
        assert apply_binop("max", 3, -1) == 3

    def test_bitwise_and_shifts(self):
        assert apply_binop("&", 0b110, 0b011) == 0b010
        assert apply_binop("|", 0b110, 0b011) == 0b111
        assert apply_binop("^", 0b110, 0b011) == 0b101
        assert apply_binop("<<", 1, 5) == 32
        assert apply_binop(">>", 32, 5) == 1

    def test_unknown_op_raises(self):
        with pytest.raises(ReproError):
            apply_binop("**", 2, 3)

    @given(a=ints, b=nonzero_ints)
    def test_cdiv_cmod_identity(self, a, b):
        quotient = apply_binop("//", a, b)
        remainder = apply_binop("%", a, b)
        assert quotient * b + remainder == a
        assert abs(remainder) < abs(b)

    @given(a=ints, b=ints)
    def test_comparisons_are_boolean(self, a, b):
        for op in ("<", "<=", ">", ">=", "==", "!="):
            assert apply_binop(op, a, b) in (0, 1)


class TestUnops:
    def test_neg_abs_not(self):
        assert apply_unop("-", 5) == -5
        assert apply_unop("abs", -5) == 5
        assert apply_unop("not", 0) == 1
        assert apply_unop("not", 7) == 0

    def test_unknown_unop_raises(self):
        with pytest.raises(ReproError):
            apply_unop("sqrt", 4)

    @given(a=ints)
    def test_double_negation(self, a):
        assert apply_unop("-", apply_unop("-", a)) == a


class TestTruthy:
    def test_zero_is_false(self):
        assert not truthy(0)
        assert not truthy(0.0)

    def test_nonzero_is_true(self):
        assert truthy(1)
        assert truthy(-3)
        assert truthy(0.5)


def test_op_tables_are_consistent():
    assert set(COMPARISON_OPS) <= set(BINARY_IMPLS) | set(UNARY_IMPLS)
    assert "not" in UNARY_IMPLS
    assert not math.isnan(apply_binop("+", 1.5, 2.5))
