"""Unit tests for the IR reference interpreter."""

import pytest

from repro.errors import IRError
from repro.ir.builder import KernelBuilder
from repro.ir.interp import run_kernel

from kernels import zoo_instance


def test_zoo_expected_values():
    kernel, params, arrays = zoo_instance("dot")
    assert run_kernel(kernel, params, arrays)["out"] == [56]

    kernel, params, arrays = zoo_instance("join")
    assert run_kernel(kernel, params, arrays)["O"] == [3]

    kernel, params, arrays = zoo_instance("chase")
    # 0 -> 3 -> 7 -> 6 -> 5 -> 4
    assert run_kernel(kernel, params, arrays)["out"] == [4]


def test_branch_semantics():
    kernel, params, arrays = zoo_instance("branchy")
    out = run_kernel(kernel, params, arrays)["y"]
    expected = [(v - 2) * 2 if v > 2 else -v + 1 for v in arrays["x"]]
    assert out == expected


def test_zero_trip_loops():
    kernel, params, arrays = zoo_instance("zerotrip")
    assert run_kernel(kernel, params, arrays)["y"] == [0, 3, 0, 10]


def test_missing_param_raises():
    kernel, params, arrays = zoo_instance("dot")
    with pytest.raises(IRError, match="missing kernel parameters"):
        run_kernel(kernel, {}, arrays)


def test_wrong_array_length_raises():
    kernel, params, arrays = zoo_instance("dot")
    with pytest.raises(IRError, match="words"):
        run_kernel(kernel, params, {"x": [1, 2]})


def test_missing_arrays_zero_initialized():
    kernel, params, _ = zoo_instance("dot")
    out = run_kernel(kernel, params)
    assert out["out"] == [0]


def test_out_of_bounds_load_raises():
    b = KernelBuilder("oob")
    a = b.array("A", 2)
    a.load(5)
    with pytest.raises(IRError, match="out of bounds"):
        run_kernel(b.build())


def test_out_of_bounds_store_raises():
    b = KernelBuilder("oob")
    a = b.array("A", 2)
    a.store(-1, 0)
    with pytest.raises(IRError, match="out of bounds"):
        run_kernel(b.build())


def test_non_integer_index_raises():
    b = KernelBuilder("fidx")
    a = b.array("A", 4)
    x = b.let("x", 2.5)
    a.load(x)
    with pytest.raises(IRError, match="non-integer"):
        run_kernel(b.build())


def test_float_arrays():
    b = KernelBuilder("fsum", params=["n"])
    x = b.array("x", 4, "f")
    out = b.array("out", 1, "f")
    acc = b.let("acc", 0.0)
    with b.for_("i", 0, b.p.n) as i:
        b.set(acc, acc + x.load(i))
    out.store(0, acc)
    got = run_kernel(b.build(), {"n": 4}, {"x": [0.5, 0.25, 0.125, 1.0]})
    assert got["out"] == [1.875]


def test_caller_arrays_not_mutated():
    kernel, params, arrays = zoo_instance("parphases")
    original = list(arrays["A"])
    run_kernel(kernel, params, arrays)
    assert arrays["A"] == original


def test_for_loop_step():
    b = KernelBuilder("stepper", params=["n"])
    y = b.array("y", 10)
    with b.for_("i", 0, b.p.n, step=3) as i:
        y.store(i, 1)
    got = run_kernel(b.build(), {"n": 10})
    assert got["y"] == [1, 0, 0, 1, 0, 0, 1, 0, 0, 1]


def test_runtime_nonpositive_step_raises():
    b = KernelBuilder("badstep", params=["s"])
    y = b.array("y", 4)
    with b.for_("i", 0, 4, step=b.p.s) as i:
        y.store(i, 1)
    with pytest.raises(IRError, match="step"):
        run_kernel(b.build(), {"s": 0})


def test_par_blocks_do_not_share_scalars():
    from repro.ir.ast import Assign, Const, Par, Store

    b = KernelBuilder("parscope")
    y = b.array("y", 2)
    b.emit(
        Par(
            [
                [Assign("t", Const(1)), Store("y", Const(0), Const(1))],
                [Assign("t", Const(2)), Store("y", Const(1), Const(2))],
            ]
        )
    )
    got = run_kernel(b.build(validate=False))
    assert got["y"] == [1, 2]


def test_iteration_safety_limit():
    import repro.ir.interp as interp_mod

    b = KernelBuilder("forever")
    out = b.array("out", 1)
    i = b.let("i", 0)
    with b.while_(i < 10):
        b.set(i, i * 1)  # never advances
    out.store(0, i)
    old = interp_mod.MAX_LOOP_ITERATIONS
    interp_mod.MAX_LOOP_ITERATIONS = 1000
    try:
        with pytest.raises(IRError, match="safety limit"):
            run_kernel(b.build())
    finally:
        interp_mod.MAX_LOOP_ITERATIONS = old
