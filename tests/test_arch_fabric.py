"""Unit tests for fabric topologies (paper Sec. 4.2 / Fig. 13)."""

import pytest

from repro.arch.fabric import (
    build_fabric,
    clustered_double,
    clustered_single,
    monaco,
)
from repro.errors import ArchError


class TestMonaco:
    def test_paper_configuration(self):
        fab = monaco(12, 12)
        assert len(fab.ls_pes()) == 72  # half the PEs are LS
        assert fab.n_ports == 18  # 3 per LS row x 6 rows
        assert len(fab.domains) == 4  # D0..D3
        assert [d.arbiter_hops for d in fab.domains] == [0, 1, 2, 3]

    def test_alternating_rows(self):
        fab = monaco(12, 12)
        for y in range(12):
            kinds = {fab.pe_at(x, y).kind for x in range(12)}
            assert len(kinds) == 1  # rows are fully LS or fully arith
        assert fab.ls_rows() == [1, 3, 5, 7, 9, 11]

    def test_domains_partition_columns_near_memory_first(self):
        fab = monaco(12, 12)
        assert fab.domains[0].columns == (11, 10, 9)
        assert fab.domains[3].columns == (2, 1, 0)

    def test_d0_pes_have_direct_ports(self):
        fab = monaco(12, 12)
        for pe in fab.ls_pes():
            if pe.domain == 0:
                assert pe.direct_port is not None
            else:
                assert pe.direct_port is None

    def test_shared_port_per_ls_row(self):
        fab = monaco(12, 12)
        assert set(fab.row_shared_port) == set(fab.ls_rows())
        assert len(set(fab.row_shared_port.values())) == 6

    def test_odd_rows_rejected(self):
        with pytest.raises(ArchError):
            monaco(11, 12)

    @pytest.mark.parametrize("size", [8, 16, 24])
    def test_scaled_sizes(self, size):
        fab = monaco(size, size)
        assert len(fab.ls_pes()) == size * size // 2
        assert fab.n_ports == 3 * (size // 2)


class TestClustered:
    def test_cs_paper_configuration(self):
        fab = clustered_single(12, 12)
        assert len(fab.ls_pes()) == 72  # same LS count as Monaco
        assert fab.n_ports == 12  # one per row
        assert len(fab.domains[0].columns) == 1

    def test_cd_paper_configuration(self):
        fab = clustered_double(12, 12)
        assert len(fab.ls_pes()) == 72
        assert fab.n_ports == 24  # two per row
        assert len(fab.domains[0].columns) == 2

    def test_ls_hug_memory(self):
        fab = clustered_single(12, 12)
        for pe in fab.ls_pes():
            assert pe.x >= 6  # right half only

    def test_every_row_has_ls(self):
        fab = clustered_double(12, 12)
        assert fab.ls_rows() == list(range(12))


class TestFabricApi:
    def test_build_fabric_by_name(self):
        assert build_fabric("monaco", 8, 8).name == "monaco-8x8"
        with pytest.raises(ArchError):
            build_fabric("torus", 8, 8)

    def test_pe_lookup_errors(self):
        fab = monaco(8, 8)
        with pytest.raises(ArchError):
            fab.pe_at(99, 0)

    def test_preferred_slots_ordering(self):
        fab = monaco(12, 12)
        slots = fab.preferred_ls_slots()
        assert slots[0].domain == 0 and slots[0].column_rank == 0
        # First six slots: D0.c0 across the six LS rows.
        assert [pe.column_rank for pe in slots[:6]] == [0] * 6
        assert len({pe.y for pe in slots[:6]}) == 6
        # Domains appear in non-decreasing order.
        domains = [pe.domain for pe in slots]
        assert domains == sorted(domains)

    def test_describe_mentions_domains(self):
        text = monaco(12, 12).describe()
        assert "72 LS PEs" in text and "D0" in text

    def test_pe_supports(self):
        fab = monaco(12, 12)
        ls = fab.ls_pes()[0]
        arith = fab.arith_pes()[0]
        assert ls.supports("load") and ls.supports("binop")
        assert not arith.supports("store")
        assert arith.supports("carry")
