"""Three-level equivalence for every Table 1 workload.

IR interpreter == untimed DFG interpreter (several firing orders and
parallelism degrees) == timed Monaco simulation. This is the repository's
central correctness claim (DESIGN.md).
"""

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams
from repro.core.policy import EFFCC
from repro.dfg.interp import run_dfg
from repro.dfg.lower import lower_kernel
from repro.ir.transform import parallelize
from repro.pnr.flow import compile_kernel
from repro.sim.engine import simulate
from repro.workloads import ALL_WORKLOADS, make_workload


@pytest.mark.parametrize("name", ALL_WORKLOADS)
@pytest.mark.parametrize("degree", [1, 2])
def test_dfg_interpreter_matches_reference(name, degree):
    inst = make_workload(name, scale="tiny")
    dfg = lower_kernel(parallelize(inst.kernel, degree))
    for order in ("fifo", "lifo", "random"):
        result = run_dfg(
            dfg, inst.params, inst.arrays, order=order, seed=17
        )
        inst.check(result.memory)


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_timed_simulation_matches_reference(name):
    inst = make_workload(name, scale="tiny")
    arch = ArchParams()
    compiled = compile_kernel(
        inst.kernel, monaco(12, 12), arch, policy=EFFCC, seed=1
    )
    result = simulate(compiled, inst.params, inst.arrays, arch)
    inst.check(result.memory)
    assert result.stats.system_cycles > 0
    assert result.stats.mem.loads > 0


@pytest.mark.parametrize("name", ["spmspv", "fft", "mergesort"])
def test_serialize_mode_matches_reference(name):
    inst = make_workload(name, scale="tiny")
    dfg = lower_kernel(inst.kernel, mem_mode="serialize")
    result = run_dfg(dfg, inst.params, inst.arrays, order="random", seed=5)
    inst.check(result.memory)
