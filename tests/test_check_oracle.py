"""Three-way differential oracle (``repro.check.oracle``).

The system-level sweep over all 13 workloads runs in CI as
``repro check --all`` (and the invariant suite already simulates the
full registry); here a representative subset keeps the oracle's own
behaviours pinned: green reports, digest determinism, structured
divergences, and the comparability rules for op counts — including the
regression for the one-sided load comparison the fuzzer forced us to
adopt (``eliminate_dead`` may legally prune an unused load).
"""

from __future__ import annotations

import pytest

from repro.check.oracle import (
    ConformanceReport,
    Divergence,
    check_kernel,
    check_workload,
    run_conformance,
)
from repro.ir.ast import ArraySpec, Const, Kernel, Load, Store

from kernels import dot_kernel, join_kernel, nested_kernel

SUBSET = ("spmspv", "dmv", "mergesort")


@pytest.mark.parametrize("name", SUBSET)
def test_workloads_conform(name):
    report = check_workload(name, scale="tiny")
    assert report.ok, report.describe()
    assert report.name == f"{name}@tiny"
    assert set(report.layers) >= {"ir", "dfg-fifo", "sim"}
    assert report.cycles > 0
    # The two DFG layers executed the same graph: ledgers are identical.
    assert report.op_counts["dfg-fifo"] == report.op_counts["dfg-lifo"]
    assert report.op_counts["sim"] == report.op_counts["dfg-fifo"]
    # Memory-op subset vs the IR ground truth.
    ir, dfg = report.op_counts["ir"], report.op_counts["dfg-fifo"]
    assert dfg.get("store", 0) == ir.get("store", 0)
    assert dfg.get("load", 0) <= ir.get("load", 0)


def test_digest_is_deterministic():
    a = check_workload("spmspv", scale="tiny")
    b = check_workload("spmspv", scale="tiny")
    assert a.digest() == b.digest()
    assert len(a.digest()) == 16


def test_digest_distinguishes_workloads():
    a = check_workload("spmspv", scale="tiny")
    b = check_workload("dmv", scale="tiny")
    assert a.digest() != b.digest()


def test_run_conformance_subset():
    reports = run_conformance(SUBSET[:2], scale="tiny")
    assert [r.name.split("@")[0] for r in reports] == list(SUBSET[:2])
    assert all(r.ok for r in reports)


@pytest.mark.parametrize(
    "kernel,params",
    [
        (dot_kernel(), {"n": 4}),
        (join_kernel(), {"na": 6, "nb": 6}),
        (nested_kernel(), {"n": 3, "m": 3}),
    ],
    ids=["dot", "join", "nested"],
)
def test_zoo_kernels_conform(kernel, params):
    report = check_kernel(kernel, params, anneal_moves=400)
    assert report.ok, report.describe()


def test_reference_divergence_is_reported():
    kernel = dot_kernel()
    size = next(a.size for a in kernel.arrays if a.name == "out")
    wrong = {"out": [-12345] * size}
    report = check_kernel(
        kernel, {"n": 4}, anneal_moves=400, reference_outputs=wrong
    )
    assert not report.ok
    kinds = {d.kind for d in report.divergences}
    assert kinds == {"reference"}
    first = report.divergences[0]
    assert first.array == "out"
    assert ("golden", -12345) in first.values
    assert "out" in first.describe()


def test_dead_load_is_not_a_divergence():
    """Regression: the fuzzer's first findings were all this shape.

    A load whose value never reaches a store is legally pruned by
    ``eliminate_dead``; the oracle must treat the IR-vs-DFG load count
    as one-sided, not flag it.
    """
    kernel = Kernel(
        "dead_load",
        [],
        [ArraySpec("A", 8, "i"), ArraySpec("X", 8, "i")],
        [
            Load("v3", "X", Const(0)),  # result unused
            Store("A", Const(0), Const(0)),
        ],
    )
    report = check_kernel(kernel, {}, anneal_moves=400)
    assert report.ok, report.describe()
    assert report.op_counts["ir"].get("load", 0) == 1
    assert report.op_counts["dfg-fifo"].get("load", 0) == 0


def test_report_round_trips_to_dict():
    report = check_workload("dmv", scale="tiny")
    data = report.to_dict()
    assert data["ok"] is True
    assert data["name"] == "dmv@tiny"
    assert data["digest"] == report.digest()
    import json

    json.dumps(data)  # must be plain-JSON serialisable


def test_divergence_describe_and_report_cap():
    d = Divergence(
        "array",
        ("ir", "sim"),
        array="A",
        index=3,
        values=(("ir", 1), ("sim", 2)),
    )
    assert "A[3]" in d.describe()
    report = ConformanceReport(
        name="x",
        config="deadbeef",
        layers=("ir", "sim"),
        divergences=[d],
        op_counts={},
        cycles=0,
    )
    assert not report.ok
    assert "A[3]" in report.describe()
