"""Unit tests for the fabric-memory interconnect frontends."""

from repro.arch.fabric import monaco
from repro.arch.memory import AddressMap
from repro.arch.params import MemoryParams
from repro.dfg.ops import MemRequest
from repro.sim.fmnoc_sim import MonacoFrontend
from repro.sim.memsys import RequestRecord
from repro.sim.upea import NumaFrontend, UniformFrontend


def record_at(coord, address=0, seq=0):
    return RequestRecord(
        nid=seq,
        seq=seq,
        request=MemRequest("load", "a", address),
        address=address,
        pe_coord=coord,
        issue_cycle=0,
    )


def drain(frontend, cycles, start=0):
    delivered = []
    for t in range(start, start + cycles):
        frontend.tick(t, delivered.append)
    return delivered


class TestUniformFrontend:
    def test_exact_delay(self):
        fe = UniformFrontend(5)
        rec = record_at((0, 0))
        fe.inject(rec, now=3)
        out = []
        for t in range(3, 8):
            fe.tick(t, out.append)
            assert not out or t >= 8
        fe.tick(8, out.append)
        assert out == [rec]
        assert not fe.busy()

    def test_zero_delay_delivers_same_cycle(self):
        fe = UniformFrontend(0)
        rec = record_at((0, 0))
        fe.inject(rec, now=4)
        out = []
        fe.tick(4, out.append)
        assert out == [rec]

    def test_fifo_order_preserved(self):
        fe = UniformFrontend(2)
        a, b = record_at((0, 0), seq=1), record_at((0, 0), seq=2)
        fe.inject(a, now=0)
        fe.inject(b, now=0)
        out = drain(fe, 5)
        assert out == [a, b]


class TestNumaFrontend:
    def make(self, delay=4):
        fab = monaco(12, 12)
        amap = AddressMap({"a": 4096}, MemoryParams())
        return NumaFrontend(delay, fab, amap, n_domains=4, seed=1), fab, amap

    def test_assignment_covers_all_ls_pes(self):
        fe, fab, _ = self.make()
        assert set(fe.pe_domain) == {pe.coord for pe in fab.ls_pes()}
        assert set(fe.pe_domain.values()) <= {0, 1, 2, 3}

    def test_local_skips_delay_remote_pays(self):
        fe, fab, amap = self.make(delay=6)
        pe = fab.ls_pes()[0].coord
        home = fe.pe_domain[pe]
        line_words = amap.memory.line_words
        local_addr = next(
            a
            for a in range(0, 4096, line_words)
            if fe.domain_of_address(a) == home
        )
        remote_addr = next(
            a
            for a in range(0, 4096, line_words)
            if fe.domain_of_address(a) != home
        )
        local = record_at(pe, local_addr, seq=1)
        remote = record_at(pe, remote_addr, seq=2)
        fe.inject(remote, now=0)
        fe.inject(local, now=0)
        out = []
        fe.tick(0, out.append)
        assert out == [local]  # local overtakes older remote
        out2 = drain(fe, 7, start=1)
        assert out2 == [remote]
        assert fe.local_accesses == 1 and fe.remote_accesses == 1

    def test_interleave_is_line_granular(self):
        fe, _, amap = self.make()
        lw = amap.memory.line_words
        assert fe.domain_of_address(0) == 0
        assert fe.domain_of_address(lw) == 1
        assert fe.domain_of_address(4 * lw) == 0

    def test_deterministic_assignment(self):
        fe1, _, _ = self.make()
        fe2, _, _ = self.make()
        assert fe1.pe_domain == fe2.pe_domain


class TestMonacoFrontend:
    def make(self):
        fab = monaco(12, 12)
        return MonacoFrontend(fab), fab

    def d0_pe(self, fab, rank=0):
        return next(
            pe
            for pe in fab.ls_pes()
            if pe.domain == 0 and pe.column_rank == rank
        )

    def far_pe(self, fab):
        return next(pe for pe in fab.ls_pes() if pe.domain == 3)

    def test_d0_bypasses_arbitration(self):
        fe, fab = self.make()
        pe = self.d0_pe(fab)
        rec = record_at(pe.coord)
        fe.inject(rec, now=0)
        assert rec.response_hops == 0
        out = []
        fe.tick(1, out.append)
        assert out == [rec]  # one cycle later, straight through the port

    def test_far_domain_takes_one_cycle_per_hop(self):
        fe, fab = self.make()
        pe = self.far_pe(fab)
        rec = record_at(pe.coord)
        fe.inject(rec, now=0)
        assert rec.response_hops == 3
        out = []
        t = 1
        while not out and t < 20:
            fe.tick(t, out.append)
            t += 1
        # D3 -> D2 -> D1 -> port: one cycle per arbitration stage.
        assert t - 1 == 4

    def test_port_bandwidth_one_per_cycle(self):
        fe, fab = self.make()
        pe = self.d0_pe(fab)
        records = [record_at(pe.coord, seq=i) for i in range(3)]
        for rec in records:
            fe.inject(rec, now=0)
        for expected_total, t in ((1, 1), (2, 2), (3, 3)):
            out = []
            fe.tick(t, out.append)
            assert len(out) == 1
        assert not fe.busy()

    def test_round_robin_on_shared_port(self):
        fe, fab = self.make()
        row = fab.ls_rows()[0]
        shared_rank_pe = next(
            pe
            for pe in fab.ls_pes()
            if pe.y == row
            and pe.domain == 0
            and pe.direct_port == fab.row_shared_port[row]
        )
        d1_pe = next(
            pe
            for pe in fab.ls_pes()
            if pe.y == row and pe.domain == 1 and pe.column_rank == 0
        )
        # Saturate both sources; the shared port must alternate.
        for i in range(4):
            fe.inject(record_at(shared_rank_pe.coord, seq=100 + i), now=0)
            fe.inject(record_at(d1_pe.coord, seq=200 + i), now=0)
        delivered = drain(fe, 16, start=1)
        d0_seqs = [r.seq for r in delivered if r.seq < 200]
        d1_seqs = [r.seq for r in delivered if r.seq >= 200]
        assert len(d0_seqs) == 4 and len(d1_seqs) == 4
        # Neither source starves: interleaving, not back-to-back bursts.
        order = [r.seq >= 200 for r in delivered]
        assert order.count(True) == 4
        assert any(order[i] != order[i + 1] for i in range(len(order) - 1))

    def test_busy_reflects_inflight(self):
        fe, fab = self.make()
        assert not fe.busy()
        fe.inject(record_at(self.far_pe(fab).coord), now=0)
        assert fe.busy()
        drain(fe, 10, start=1)
        assert not fe.busy()
