"""Edge cases for region splitting and execution."""

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams
from repro.core.policy import DOMAIN_UNAWARE, EFFCC
from repro.ir.builder import KernelBuilder
from repro.ir.interp import run_kernel
from repro.pnr.regions import (
    SPILL_WORDS,
    compile_region_program,
    split_kernel,
)
from repro.sim.regions import simulate_regions
from repro.sim.upea import UniformFrontend

ARCH = ArchParams()


def chain_kernel(phases=6, n=8):
    """Phases where each consumes the previous phase's scalar result."""
    b = KernelBuilder("chain", params=["n"])
    data = b.array("D", n)
    running = b.let("running", 0)
    for p in range(phases):
        acc = b.let(f"acc{p}", running)
        with b.for_(f"i{p}", 0, b.p.n) as i:
            b.set(acc, acc + data.load(i) + p)
        b.set(running, acc)
        data.store(0, running)
    return b.build()


def test_scalar_chain_spills_through_every_boundary():
    kernel = chain_kernel()
    params = {"n": 8}
    arrays = {"D": list(range(8))}
    reference = run_kernel(kernel, params, arrays)
    program = split_kernel(kernel, monaco(6, 6))
    assert len(program) >= 3
    assert "running" in program.spill_slots
    compiled = compile_region_program(kernel, monaco(6, 6), ARCH, seed=2)
    result = simulate_regions(compiled, params, arrays, ARCH)
    assert result.memory["D"] == reference["D"]


def test_regions_run_under_baseline_frontends():
    kernel = chain_kernel(phases=4)
    params = {"n": 8}
    arrays = {"D": list(range(8))}
    reference = run_kernel(kernel, params, arrays)
    compiled = compile_region_program(kernel, monaco(6, 6), ARCH, seed=2)
    result = simulate_regions(
        compiled, params, arrays, ARCH,
        frontend_factory=lambda f, a: UniformFrontend(4),
    )
    assert result.memory["D"] == reference["D"]


def test_regions_respect_policy():
    kernel = chain_kernel(phases=4)
    compiled = compile_region_program(
        kernel, monaco(6, 6), ARCH, policy=DOMAIN_UNAWARE, seed=2
    )
    assert all(ck.policy is DOMAIN_UNAWARE for ck in compiled.compiled)


def test_region_stats_collected_per_launch():
    kernel = chain_kernel(phases=4)
    compiled = compile_region_program(kernel, monaco(6, 6), ARCH, seed=2)
    result = simulate_regions(
        compiled, {"n": 8}, {"D": list(range(8))}, ARCH
    )
    assert len(result.region_stats) == result.regions
    assert all(s.system_cycles > 0 for s in result.region_stats)
    assert result.regions == len(compiled)


def test_spill_area_exhaustion_detected():
    b = KernelBuilder("spilly", params=["n"])
    data = b.array("D", 4)
    names = []
    # More long-lived scalars than the spill area holds.
    for i in range(SPILL_WORDS + 2):
        names.append(b.let(f"s{i}", i))
    # A fabric-filling loop per scalar forces one region per few stmts.
    total = b.let("total", 0)
    for i, var in enumerate(names):
        with b.for_(f"i{i}", 0, b.p.n) as ix:
            b.set(total, total + data.load(ix % 4))
        b.set(total, total + var)
    data.store(0, total)
    kernel = b.build()
    fabric = monaco(4, 4)
    with pytest.raises(Exception):
        # Either the statements don't fit individually or the spill area
        # overflows; both are PnR failures.
        split_kernel(kernel, fabric)


def test_tiny_single_statement_region_ok():
    b = KernelBuilder("one", params=["n"])
    y = b.array("y", 4)
    y.store(0, b.p.n * 2)
    program = split_kernel(b.build(), monaco(4, 4))
    assert len(program) == 1
