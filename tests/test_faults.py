"""Deterministic fault injection (``repro.sim.faults``).

Contracts under test:

* off-path purity — ``faults=None`` (or all probabilities zero) is
  bit-identical to a build without the fault layer;
* determinism — the same fault seed reproduces the same run, and
  injected runs are bit-identical with cycle-skipping on or off;
* the detectors the faults exercise actually fire: dropped responses
  wedge the machine into a ``DeadlockError`` whose blocked report names
  the dropped requests, and the ``max_cycles`` watchdog cuts off a run
  that jitter has slowed past its budget.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams, FaultParams, SimParams
from repro.core.policy import EFFCC
from repro.errors import ArchError, DeadlockError, SimulationError
from repro.exp.configs import MONACO, upea
from repro.exp.runner import compile_cached, run_config
from repro.sim.faults import FaultInjector, make_injector
from repro.workloads.registry import make_workload


def _arch_with(faults: FaultParams | None, **sim_kwargs) -> ArchParams:
    arch = ArchParams()
    return replace(arch, sim=replace(arch.sim, faults=faults, **sim_kwargs))


def _run(name, config, arch, scale="tiny", seed=0):
    instance = make_workload(name, scale=scale, seed=seed)
    compiled = compile_cached(
        instance, monaco(12, 12), arch, policy=EFFCC, seed=seed
    )
    return run_config(instance, compiled, config, arch)


# -- params -----------------------------------------------------------------


def test_fault_params_validation_and_signature():
    with pytest.raises(ArchError):
        FaultParams(mem_delay_prob=1.5)
    with pytest.raises(ArchError):
        FaultParams(mem_drop_prob=-0.1)
    assert not FaultParams().active()
    assert FaultParams(seed=9).active() is False  # seed alone is not a fault
    params = FaultParams(seed=3, mem_delay_prob=0.25, mem_delay_cycles=16)
    assert params.active()
    assert params.signature() == "seed=3,mem-delay=0.25:16"


def test_make_injector_off_paths():
    assert make_injector(SimParams()) is None
    assert make_injector(SimParams(faults=FaultParams())) is None
    assert make_injector(
        SimParams(faults=FaultParams(pe_stall_prob=0.5))
    ) is not None


def test_streams_are_decorrelated_and_gated():
    """An off category draws nothing, so it cannot shift the others."""
    delay_only = FaultInjector(FaultParams(mem_delay_prob=0.5))
    both = FaultInjector(
        FaultParams(mem_delay_prob=0.5, mem_drop_prob=0.5)
    )
    a = [delay_only.delay_response() for _ in range(64)]
    b = []
    for _ in range(64):
        both.drop_response()
        b.append(both.delay_response())
    assert a == b  # enabling drops did not perturb the delay stream
    assert delay_only._mem_drop.draws == 0


# -- off-path purity --------------------------------------------------------


def test_faults_off_is_bit_identical():
    clean = _run("spmspv", MONACO, ArchParams())
    explicit_off = _run("spmspv", MONACO, _arch_with(FaultParams()))
    assert clean.cycles == explicit_off.cycles
    assert clean.stats == explicit_off.stats
    assert clean.stats.faults_injected == {}


# -- determinism ------------------------------------------------------------

JITTER = FaultParams(seed=5, mem_delay_prob=0.2, mem_delay_cycles=8)


def test_jitter_is_seed_deterministic_and_skip_invariant():
    runs = [
        _run("spmspv", MONACO, _arch_with(JITTER, cycle_skip=skip))
        for skip in (True, False, True)
    ]
    cycles = {r.cycles for r in runs}
    assert len(cycles) == 1
    injected = [r.stats.faults_injected for r in runs]
    assert injected[0] == injected[1] == injected[2]
    assert injected[0].get("mem-delay", 0) > 0
    assert runs[0].stats == runs[1].stats  # executed/skipped excluded


def test_jitter_degrades_but_stays_correct():
    clean = _run("dmv", MONACO, ArchParams())
    noisy = _run(
        "dmv",
        MONACO,
        _arch_with(FaultParams(seed=1, mem_delay_prob=0.5, mem_delay_cycles=32)),
    )
    # run_config validated both outputs; jitter only costs cycles.
    assert noisy.cycles > clean.cycles


def test_different_fault_seeds_differ():
    a = _run("spmspv", MONACO, _arch_with(replace(JITTER, seed=1)))
    b = _run("spmspv", MONACO, _arch_with(replace(JITTER, seed=2)))
    assert a.stats.faults_injected != b.stats.faults_injected or (
        a.cycles != b.cycles
    )


# -- detector coverage ------------------------------------------------------


def test_dropped_responses_trip_the_deadlock_detector():
    arch = _arch_with(
        FaultParams(seed=0, mem_drop_prob=1.0), deadlock_cycles=2_000
    )
    with pytest.raises(DeadlockError) as err:
        _run("spmspv", MONACO, arch)
    message = str(err.value)
    assert "dropped by fault injection" in message
    assert "memory ops in flight" in message


def test_drops_trip_deadlock_on_uniform_frontends_too():
    arch = _arch_with(
        FaultParams(seed=0, mem_drop_prob=1.0), deadlock_cycles=2_000
    )
    with pytest.raises(DeadlockError):
        _run("spmspv", upea(2), arch)


def test_pe_stall_storm_trips_the_deadlock_detector():
    arch = _arch_with(
        FaultParams(seed=0, pe_stall_prob=1.0), deadlock_cycles=2_000
    )
    with pytest.raises(DeadlockError):
        _run("spmspv", MONACO, arch)


def test_max_cycles_watchdog_fires_under_heavy_jitter():
    arch = _arch_with(
        FaultParams(seed=0, mem_delay_prob=1.0, mem_delay_cycles=512),
        max_cycles=3_000,
    )
    with pytest.raises(SimulationError, match="max_cycles"):
        _run("spmspv", MONACO, arch)


def test_grant_skip_degrades_gracefully_on_monaco():
    clean = _run("spmspv", MONACO, ArchParams())
    perturbed = _run(
        "spmspv", MONACO, _arch_with(FaultParams(seed=2, grant_skip_prob=0.2))
    )
    assert perturbed.stats.faults_injected.get("grant-skip", 0) > 0
    assert perturbed.cycles >= clean.cycles  # output already validated


def test_faults_injected_lands_in_stats_dict():
    run = _run("spmspv", MONACO, _arch_with(JITTER))
    payload = run.stats.to_dict()
    assert payload["faults_injected"] == run.stats.faults_injected
    clean = _run("spmspv", MONACO, ArchParams())
    assert "faults_injected" not in clean.stats.to_dict()
