"""Property test: region splitting preserves program semantics.

Random structured programs are split onto a small fabric and executed as
multi-bitstream region programs; the final memory must match the IR
interpreter's, regardless of where the splitter cut and which scalars it
spilled.
"""

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams
from repro.core.policy import EFFCC
from repro.errors import PnRError
from repro.ir.interp import run_kernel
from repro.pnr.regions import compile_region_program
from repro.sim.regions import simulate_regions

from test_equivalence_property import ARRAY_SIZE, kernels

ARCH = ArchParams()
FABRIC = monaco(8, 8)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
    ],
)
@given(kernel=kernels())
def test_region_execution_matches_reference(kernel):
    params = {"n": 3}
    arrays = {
        "A": [(i * 3 + 1) % 7 for i in range(ARRAY_SIZE)],
        "X": [(i * 5 + 2) % 9 for i in range(ARRAY_SIZE)],
    }
    reference = run_kernel(kernel, params, arrays)
    try:
        compiled = compile_region_program(
            kernel, FABRIC, ARCH, EFFCC, seed=0
        )
    except PnRError:
        assume(False)  # a single statement exceeded the fabric
        return
    result = simulate_regions(compiled, params, arrays, ARCH)
    for name, expected in reference.items():
        assert result.memory[name] == expected, (name, len(compiled))
