"""Parallel experiment harness + persistent compile cache.

The sweep contract: ``run_parallel`` over (workload x config x seed) is
bit-identical to running each point serially — the simulator and PnR are
deterministic, and jobs share compiled kernels only through the
content-keyed on-disk cache (``repro.exp.cache``), never through live
process state.
"""

from __future__ import annotations

import pickle

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams
from repro.core.policy import EFFCC
from repro.exp.cache import CACHE_SCHEMA_VERSION, CompileCache
from repro.exp.configs import MONACO, upea
from repro.exp.runner import (
    PAPER_DIVIDER,
    run_config,
    run_parallel,
    run_workload_on_configs,
)
from repro.pnr.flow import compile_once
from repro.sim.engine import simulate
from repro.workloads.registry import make_workload

WORKLOADS = ["spmspv", "dmv"]
CONFIGS = [MONACO, upea(2)]
SEEDS = (0, 1)


def serial_reference():
    """The ground truth: each point run by the plain serial helpers."""
    reference = {}
    for seed in SEEDS:
        for name in WORKLOADS:
            runs = run_workload_on_configs(
                name, CONFIGS, scale="tiny", seed=seed
            )
            for config_name, run in runs.items():
                reference[(name, config_name, seed)] = run
    return reference


@pytest.fixture(scope="module")
def reference():
    return serial_reference()


def assert_matches(results, reference):
    assert set(results) == set(reference)
    for key, run in results.items():
        ref = reference[key]
        assert run.cycles == ref.cycles, key
        assert run.stats == ref.stats, key
        assert run.parallelism == ref.parallelism


def test_in_process_sweep_matches_serial(reference):
    """max_workers<=1 exercises the job function without a pool."""
    results = run_parallel(
        WORKLOADS, CONFIGS, scale="tiny", seeds=SEEDS, max_workers=1
    )
    assert_matches(results, reference)


def test_process_pool_sweep_matches_serial(tmp_path, reference):
    """Two real worker processes, sharing a fresh on-disk cache."""
    from repro.exp.cache import GLOBAL_CACHE

    # Workers are forked from this process; drop the in-memory layer so
    # they really compile (or disk-load) rather than inheriting kernels.
    GLOBAL_CACHE.clear()
    results = run_parallel(
        WORKLOADS,
        CONFIGS,
        scale="tiny",
        seeds=SEEDS,
        max_workers=2,
        cache_dir=tmp_path / "cache",
    )
    assert_matches(results, reference)
    # The workers populated the shared cache: one entry per distinct
    # (workload, seed) PnR key.
    entries = list((tmp_path / "cache").glob("*.pkl"))
    assert len(entries) == len(WORKLOADS) * len(SEEDS)


class TestDiskCache:
    KEY = ("spmspv", None, "monaco-12x12", 3, "effcc", None, 0)

    def compile_thunk(self):
        instance = make_workload("spmspv", scale="tiny")
        return lambda: compile_once(
            instance.kernel, monaco(12, 12), ArchParams(), EFFCC,
            parallelism=1,
        )

    def test_cold_then_warm(self, tmp_path):
        """A second cache instance (fresh process stand-in) hits disk."""
        thunk = self.compile_thunk()
        cold = CompileCache(tmp_path)
        first = cold.get_or_compile(self.KEY, thunk)
        assert (cold.hits, cold.misses, cold.disk_hits) == (0, 1, 0)

        warm = CompileCache(tmp_path)
        second = warm.get_or_compile(
            self.KEY, lambda: pytest.fail("warm cache must not recompile")
        )
        assert (warm.hits, warm.misses, warm.disk_hits) == (0, 0, 1)
        # Third lookup in the same instance is a pure memory hit.
        warm.get_or_compile(
            self.KEY, lambda: pytest.fail("memory layer must hit")
        )
        assert warm.hits == 1

        # The disk copy simulates bit-identically to the original.
        instance = make_workload("spmspv", scale="tiny")
        a = run_config(instance, first, MONACO, ArchParams())
        b = run_config(instance, second, MONACO, ArchParams())
        assert a.cycles == b.cycles and a.stats == b.stats

    def test_torn_entry_recompiles(self, tmp_path):
        cache = CompileCache(tmp_path)
        compiled = cache.get_or_compile(self.KEY, self.compile_thunk())
        path = cache._path_for(self.KEY)
        path.write_bytes(b"\x80truncated garbage")
        fresh = CompileCache(tmp_path)
        again = fresh.get_or_compile(self.KEY, self.compile_thunk())
        assert fresh.misses == 1 and fresh.disk_hits == 0
        assert again.parallelism == compiled.parallelism
        # The repaired entry is valid for the next reader.
        reader = CompileCache(tmp_path)
        reader.get_or_compile(
            self.KEY, lambda: pytest.fail("repaired entry must load")
        )
        assert reader.disk_hits == 1

    def test_schema_version_partitions_keys(self, tmp_path, monkeypatch):
        cache = CompileCache(tmp_path)
        path = cache._path_for(self.KEY)
        other = CompileCache(tmp_path)
        assert other._path_for(self.KEY) == path  # deterministic digest
        assert cache._path_for(self.KEY + ("x",)) != path
        # Bumping the schema version makes every old entry unreachable.
        from repro.exp import cache as cache_mod

        monkeypatch.setattr(
            cache_mod, "CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1
        )
        assert cache._path_for(self.KEY) != path

    def test_disable_disk(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.disable_disk()
        cache.get_or_compile(self.KEY, self.compile_thunk())
        assert not list(tmp_path.glob("*.pkl"))


class TestCacheMaintenance:
    """``repro cache``'s backing operations: info, clear, prune, sweep."""

    def _seed_entries(self, cache, n):
        """Store n distinct picklable payloads (stand-ins for kernels)."""
        for i in range(n):
            cache.get_or_compile(("k", i), lambda i=i: {"payload": i})

    def test_info_counts_both_layers(self, tmp_path):
        cache = CompileCache(tmp_path)
        self._seed_entries(cache, 3)
        info = cache.info()
        assert info["memory_entries"] == 3
        assert info["disk_entries"] == 3
        assert info["disk_bytes"] > 0
        assert info["disk_dir"] == str(tmp_path)
        off = CompileCache()
        assert off.info()["disk_entries"] == 0

    def test_clear_disk_removes_everything(self, tmp_path):
        cache = CompileCache(tmp_path)
        self._seed_entries(cache, 3)
        (tmp_path / "leftover.tmp").write_text("x")
        assert cache.clear_disk() == 3
        assert not list(tmp_path.glob("*.pkl"))
        assert not list(tmp_path.glob("*.tmp"))
        # The memory layer went too: a lookup recompiles and restores.
        cache.get_or_compile(("k", 0), lambda: {"payload": 0})
        assert cache.misses == 1

    def test_prune_evicts_lru_first(self, tmp_path):
        import os as _os

        cache = CompileCache(tmp_path)
        self._seed_entries(cache, 4)
        # Age entries deterministically: k0 oldest ... k3 newest.
        for i in range(4):
            path = cache._path_for(("k", i))
            _os.utime(path, (1_000_000 + i, 1_000_000 + i))
        # A disk hit refreshes k0's timestamp, protecting it from prune.
        fresh = CompileCache(tmp_path)
        fresh.get_or_compile(("k", 0), lambda: pytest.fail("must disk-hit"))
        sizes = sum(p.stat().st_size for p in tmp_path.glob("*.pkl"))
        one = sizes // 4 + 1
        evicted = cache.prune(max_bytes=2 * one)
        assert evicted == 2
        survivors = {p.name for p in tmp_path.glob("*.pkl")}
        assert cache._path_for(("k", 0)).name in survivors  # refreshed
        assert cache._path_for(("k", 3)).name in survivors  # newest
        assert cache.prune(max_bytes=0) == 2  # drains the rest
        assert not list(tmp_path.glob("*.pkl"))

    def test_sweep_stale_tmp(self, tmp_path):
        import os as _os
        import time as _time

        cache = CompileCache(tmp_path)
        stale = tmp_path / "dead-worker.tmp"
        stale.write_text("partial pickle from a killed worker")
        old = _time.time() - 7200
        _os.utime(stale, (old, old))
        live = tmp_path / "inflight.tmp"
        live.write_text("currently being written")
        assert cache.sweep_stale_tmp(max_age_s=3600) == 1
        assert not stale.exists() and live.exists()

    def test_torn_entry_is_unlinked(self, tmp_path):
        """Corruption recovery physically removes the bad file."""
        cache = CompileCache(tmp_path)
        cache.get_or_compile(("k", 0), lambda: {"payload": 0})
        path = cache._path_for(("k", 0))
        path.write_bytes(b"\x80garbage that is not a pickle")
        fresh = CompileCache(tmp_path)
        assert fresh._disk_load(("k", 0)) is None
        assert not path.exists()


def test_sweep_job_attaches_requested_cache_dir(tmp_path, monkeypatch):
    """A warm in-process worker must switch to the sweep's cache dir.

    Regression: ``_run_sweep_job`` used to keep whatever disk dir the
    GLOBAL_CACHE already had, silently writing one sweep's kernels into
    another sweep's directory.
    """
    from repro.exp.cache import GLOBAL_CACHE
    from repro.exp.runner import _run_sweep_job

    monkeypatch.setattr(GLOBAL_CACHE, "disk_dir", None)
    monkeypatch.setattr(GLOBAL_CACHE, "_store", {})
    stale = tmp_path / "stale"
    wanted = tmp_path / "wanted"
    GLOBAL_CACHE.enable_disk(stale)
    run = _run_sweep_job(
        "spmspv", MONACO, "tiny", 0, ArchParams(), PAPER_DIVIDER,
        EFFCC.name, ("monaco", 12, 12), str(wanted),
    )
    assert run.cycles > 0
    assert str(GLOBAL_CACHE.disk_dir) == str(wanted)
    assert list(wanted.glob("*.pkl")) and not list(stale.glob("*.pkl"))


def test_compiled_kernel_pickle_roundtrip():
    """Worker processes receive kernels via pickle; results must match."""
    instance = make_workload("dmv", scale="tiny")
    compiled = compile_once(
        instance.kernel, monaco(12, 12), ArchParams(), EFFCC, parallelism=1
    )
    clone = pickle.loads(pickle.dumps(compiled))
    arch = ArchParams()
    a = simulate(
        compiled, instance.params,
        {k: list(v) for k, v in instance.arrays.items()}, arch,
        divider=PAPER_DIVIDER,
    )
    b = simulate(
        clone, instance.params,
        {k: list(v) for k, v in instance.arrays.items()}, arch,
        divider=PAPER_DIVIDER,
    )
    assert a.stats == b.stats
    assert a.memory == b.memory


def test_fig11_jobs_matches_serial():
    """fig11 fanned over >=4 workers matches the serial path bit-for-bit.

    (This container exposes one CPU, so the assertion here is correctness
    of the 4-worker fan-out; wall-clock scaling is documented in
    EXPERIMENTS.md and shows up on multi-core machines.)
    """
    from repro.exp.figures import fig11

    serial = fig11(scale="tiny", workloads=["spmspv"])
    fanned = fig11(scale="tiny", workloads=["spmspv"], jobs=4)
    assert fanned.rows == serial.rows
    assert fanned.raw == serial.raw
