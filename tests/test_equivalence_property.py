"""Property-based lowering equivalence.

Generates random structured kernels (loops, branches, loads, stores over
shared arrays) and checks that the IR interpreter and the untimed DFG
interpreter produce identical final memory under several firing orders.
This is the strongest check on the steering-control lowering: any token
cadence bug shows up as a wrong value, a token leak, or a stuck protocol
state on some program in this space.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dfg.interp import run_dfg
from repro.dfg.lower import lower_kernel
from repro.ir.ast import (
    ArraySpec,
    Assign,
    BinOp,
    Const,
    For,
    If,
    Kernel,
    Load,
    Store,
    Var,
    While,
)
from repro.ir.interp import run_kernel
from repro.ir.validate import validate_kernel

ARRAY_SIZE = 8
SAFE_BINOPS = ("+", "-", "*", "min", "max", "<", "<=", "==", "&", "|")


def safe_index(expr):
    """Clamp an arbitrary integer expression into [0, ARRAY_SIZE)."""
    wrapped = BinOp("%", expr, Const(ARRAY_SIZE))
    return BinOp(
        "%", BinOp("+", wrapped, Const(ARRAY_SIZE)), Const(ARRAY_SIZE)
    )


@st.composite
def expressions(draw, variables, depth=2):
    if depth == 0 or not variables:
        if variables and draw(st.booleans()):
            return Var(draw(st.sampled_from(sorted(variables))))
        return Const(draw(st.integers(min_value=-4, max_value=4)))
    op = draw(st.sampled_from(SAFE_BINOPS))
    lhs = draw(expressions(variables, depth - 1))
    rhs = draw(expressions(variables, depth - 1))
    if op in ("&", "|"):
        # Keep bitwise ops on comparison results (non-negative).
        lhs = BinOp("<", lhs, Const(2))
        rhs = BinOp("<", rhs, Const(2))
    return BinOp(op, lhs, rhs)


@st.composite
def statements(draw, variables, counter, depth):
    """One statement; mutates ``variables`` to track definitions."""
    choices = ["assign", "load", "store"]
    if depth > 0:
        choices += ["if", "for", "while"]
    kind = draw(st.sampled_from(choices))
    if kind == "assign":
        name = draw(
            st.sampled_from(["v0", "v1", "v2", "v3"])
        )
        stmt = Assign(name, draw(expressions(variables)))
        variables.add(name)
        return stmt
    if kind == "load":
        name = draw(st.sampled_from(["v0", "v1", "v2", "v3"]))
        array = draw(st.sampled_from(["A", "X"]))
        index = safe_index(draw(expressions(variables)))
        variables.add(name)
        return Load(name, array, index)
    if kind == "store":
        return Store(
            "A",
            safe_index(draw(expressions(variables))),
            draw(expressions(variables)),
        )
    if kind == "if":
        cond = draw(expressions(variables))
        then_vars = set(variables)
        then_body = draw(blocks(then_vars, counter, depth - 1))
        else_vars = set(variables)
        else_body = draw(blocks(else_vars, counter, depth - 1))
        variables |= then_vars & else_vars
        return If(cond, then_body, else_body)
    if kind == "for":
        loop_var = f"i{counter[0]}"
        counter[0] += 1
        body_vars = set(variables) | {loop_var}
        body = draw(blocks(body_vars, counter, depth - 1))
        hi = draw(st.integers(min_value=0, max_value=4))
        return For(loop_var, Const(0), Const(hi), Const(1), body)
    # while: a bounded counter guarantees termination; the extra
    # data-dependent term exercises irregular iteration counts.
    guard = f"w{counter[0]}"
    counter[0] += 1
    variables.add(guard)
    body_vars = set(variables)
    body = draw(blocks(body_vars, counter, depth - 1))
    bound = draw(st.integers(min_value=0, max_value=4))
    body = body + [Assign(guard, BinOp("+", Var(guard), Const(1)))]
    return _Seq(
        [
            Assign(guard, Const(0)),
            While(BinOp("<", Var(guard), Const(bound)), body),
        ]
    )


class _Seq:
    """Marker for a statement that expands to several."""

    def __init__(self, stmts):
        self.stmts = stmts


@st.composite
def blocks(draw, variables, counter, depth):
    out = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        stmt = draw(statements(variables, counter, depth))
        if isinstance(stmt, _Seq):
            out.extend(stmt.stmts)
        else:
            out.append(stmt)
    return out


@st.composite
def kernels(draw):
    variables: set[str] = {"n"}
    counter = [0]
    body = draw(blocks(variables, counter, depth=2))
    # Guarantee at least one observable effect.
    body.append(Store("A", Const(0), draw(expressions(variables))))
    kernel = Kernel(
        "prop",
        ["n"],
        [ArraySpec("A", ARRAY_SIZE), ArraySpec("X", ARRAY_SIZE)],
        body,
    )
    validate_kernel(kernel)
    return kernel


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(kernel=kernels(), seed=st.integers(min_value=0, max_value=3))
def test_lowering_equivalence(kernel, seed):
    params = {"n": 3}
    arrays = {
        "A": [(i * 3 + 1) % 7 for i in range(ARRAY_SIZE)],
        "X": [(i * 5 + 2) % 9 for i in range(ARRAY_SIZE)],
    }
    reference = run_kernel(kernel, params, arrays)
    dfg = lower_kernel(kernel)
    for order in ("fifo", "lifo", "random"):
        got = run_dfg(dfg, params, arrays, order=order, seed=seed)
        assert got.memory == reference


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(kernel=kernels())
def test_serialize_mode_equivalence(kernel):
    params = {"n": 3}
    arrays = {
        "A": list(range(ARRAY_SIZE)),
        "X": [(i * 2 + 1) % 5 for i in range(ARRAY_SIZE)],
    }
    reference = run_kernel(kernel, params, arrays)
    dfg = lower_kernel(kernel, mem_mode="serialize")
    got = run_dfg(dfg, params, arrays, order="random", seed=1)
    assert got.memory == reference


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(kernel=kernels(), degree=st.integers(min_value=2, max_value=4))
def test_parallelize_then_lower_equivalence(kernel, degree):
    from repro.ir.transform import parallelize

    params = {"n": 3}
    arrays = {
        "A": list(range(ARRAY_SIZE)),
        "X": [(i * 2 + 1) % 5 for i in range(ARRAY_SIZE)],
    }
    reference = run_kernel(kernel, params, arrays)
    dfg = lower_kernel(parallelize(kernel, degree))
    got = run_dfg(dfg, params, arrays, order="random", seed=2)
    assert got.memory == reference
