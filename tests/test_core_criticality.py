"""Unit tests for critical-load analysis."""

from repro.core.criticality import (
    analyze_criticality,
    dependence_graph,
    format_report,
    leaf_loops,
)
from repro.dfg.lower import lower_kernel

from kernels import zoo_instance


def classes(dfg):
    report = analyze_criticality(dfg)
    return report


def test_stream_join_loads_are_class_a():
    kernel, _, _ = zoo_instance("join")
    dfg = lower_kernel(kernel)
    report = classes(dfg)
    a_arrays = {
        dfg.nodes[n].attrs["array"] for n in report.class_a
    }
    assert a_arrays == {"A", "B"}
    assert len(report.class_a) == 2


def test_pointer_chase_load_is_class_a():
    kernel, _, _ = zoo_instance("chase")
    dfg = lower_kernel(kernel)
    report = classes(dfg)
    assert len(report.class_a) == 1
    assert dfg.nodes[report.class_a[0]].attrs["array"] == "next"


def test_dense_loop_loads_are_class_b():
    kernel, _, _ = zoo_instance("dot")
    dfg = lower_kernel(kernel)
    report = classes(dfg)
    assert not report.class_a
    loads = [n for n in dfg.nodes.values() if n.op == "load"]
    assert {n.nid for n in loads} <= set(report.class_b)


def test_top_level_store_is_class_c():
    kernel, _, _ = zoo_instance("dot")
    dfg = lower_kernel(kernel)
    report = classes(dfg)
    stores = [n.nid for n in dfg.nodes.values() if n.op == "store"]
    assert set(stores) <= set(report.class_c)


def test_in_place_update_load_is_on_ordering_recurrence():
    # The in-place update chains load -> store -> next load through the
    # memory-ordering token: the load sits on a loop recurrence "added by
    # effcc for memory ordering", exactly the paper's jacobi2d case, so
    # it is class A; the store is inner-loop class B.
    kernel, _, _ = zoo_instance("nested")
    dfg = lower_kernel(kernel)
    report = classes(dfg)
    loads = [n.nid for n in dfg.nodes.values() if n.op == "load"]
    stores = [n.nid for n in dfg.nodes.values() if n.op == "store"]
    assert set(loads) <= set(report.class_a)
    assert set(stores) <= set(report.class_b)


def test_read_only_nested_loop_loads_are_class_b():
    # Without an in-place update there is no ordering recurrence: loads
    # in the leaf loop are class B.
    from repro.ir.builder import KernelBuilder

    b = KernelBuilder("ro", params=["n", "m"])
    src = b.array("S", 16)
    dst = b.array("D", 16)
    with b.for_("i", 0, b.p.n) as i:
        with b.for_("j", 0, b.p.m) as j:
            dst.store(i * b.p.m + j, src.load(i * b.p.m + j) * 2)
    dfg = lower_kernel(b.build())
    report = classes(dfg)
    assert not report.class_a
    loads = [n.nid for n in dfg.nodes.values() if n.op == "load"]
    assert set(loads) <= set(report.class_b)


def test_nodes_annotated_in_place():
    kernel, _, _ = zoo_instance("join")
    dfg = lower_kernel(kernel)
    report = analyze_criticality(dfg)
    for nid in report.class_a:
        assert dfg.nodes[nid].criticality == "A"
    for nid in report.class_b:
        assert dfg.nodes[nid].criticality == "B"


def test_recurrences_contain_carries():
    kernel, _, _ = zoo_instance("join")
    dfg = lower_kernel(kernel)
    report = analyze_criticality(dfg)
    assert report.recurrences
    for component in report.recurrences:
        assert any(dfg.nodes[n].op == "carry" for n in component)


def test_leaf_loops_identified():
    kernel, _, _ = zoo_instance("nested")
    dfg = lower_kernel(kernel)
    leaves = leaf_loops(dfg)
    assert len(leaves) == 1


def test_dependence_graph_mirrors_edges():
    kernel, _, _ = zoo_instance("dot")
    dfg = lower_kernel(kernel)
    graph = dependence_graph(dfg)
    assert graph.number_of_nodes() == len(dfg)
    assert graph.number_of_edges() == len(dfg.edge_list())


def test_counts_and_klass_helpers():
    kernel, _, _ = zoo_instance("join")
    dfg = lower_kernel(kernel)
    report = analyze_criticality(dfg)
    counts = report.counts()
    assert counts["A"] == 2
    for nid in report.class_a:
        assert report.klass(nid) == "A"


def test_format_report_mentions_classes():
    kernel, _, _ = zoo_instance("join")
    dfg = lower_kernel(kernel)
    report = analyze_criticality(dfg)
    text = format_report(dfg, report)
    assert "class A" in text and "recurrences" in text
