"""Shared kernel zoo for tests: small programs covering every construct."""

from __future__ import annotations

from repro.ir.builder import KernelBuilder


def dot_kernel(n: int = 8):
    """Counted loop with an accumulator."""
    b = KernelBuilder("dot", params=["n"])
    x = b.array("x", n)
    y = b.array("y", n)
    out = b.array("out", 1)
    acc = b.let("acc", 0)
    with b.for_("i", 0, b.p.n) as i:
        b.set(acc, acc + x.load(i) * y.load(i))
    out.store(0, acc)
    return b.build()


def join_kernel(n: int = 16):
    """Stream join: while + if, class-A critical loads."""
    b = KernelBuilder("join", params=["na", "nb"])
    a = b.array("A", n)
    c = b.array("B", n)
    out = b.array("O", 1)
    ia = b.let("ia", 0)
    ib = b.let("ib", 0)
    cnt = b.let("cnt", 0)
    with b.while_((ia < b.p.na) & (ib < b.p.nb)):
        av = a.load(ia)
        bv = c.load(ib)
        with b.if_(av.eq(bv)):
            b.set(cnt, cnt + 1)
        b.set(ia, ia + (av <= bv))
        b.set(ib, ib + (bv <= av))
    out.store(0, cnt)
    return b.build()


def branchy_kernel(n: int = 8):
    """If/else with merges of both pre-existing and branch-defined vars."""
    b = KernelBuilder("branchy", params=["n"])
    x = b.array("x", n)
    y = b.array("y", n)
    with b.for_("i", 0, b.p.n) as i:
        v = x.load(i)
        r = b.let("r", 0)
        with b.if_(v > 2):
            s = b.let("s", v - 2)
            b.set(r, s * 2)
        with b.else_():
            s = b.let("s", 0 - v)
            b.set(r, s + 1)
        y.store(i, r)
    return b.build()


def nested_kernel(n: int = 4):
    """Doubly nested counted loops with an in-place array update."""
    b = KernelBuilder("nested", params=["n", "m"])
    grid = b.array("M", n * n)
    with b.for_("i", 0, b.p.n) as i:
        with b.for_("j", 0, b.p.m) as j:
            v = grid.load(i * b.p.m + j)
            grid.store(i * b.p.m + j, v * 2 + i + j)
    return b.build()


def zerotrip_kernel(n: int = 4):
    """While loops that may run zero iterations."""
    b = KernelBuilder("zerotrip", params=["n"])
    x = b.array("x", n)
    y = b.array("y", n)
    with b.for_("i", 0, b.p.n) as i:
        lim = x.load(i)
        s = b.let("s", 0)
        j = b.let("j", 0)
        with b.while_(j < lim):
            b.set(s, s + j)
            b.set(j, j + 1)
        y.store(i, s)
    return b.build()


def parphases_kernel(n: int = 8):
    """Two parfors with a read-after-write dependence between them."""
    b = KernelBuilder("parphases", params=["n"])
    a = b.array("A", n)
    c = b.array("B", n)
    with b.parfor("i", 0, b.p.n) as i:
        c.store(i, a.load(i) + 10)
    with b.parfor("k", 0, b.p.n) as k:
        a.store(k, c.load(k) * 2)
    return b.build()


def store_only_kernel(n: int = 4):
    """Stores with constant data (exercises inject/token plumbing)."""
    b = KernelBuilder("storeonly", params=["n"])
    y = b.array("y", n)
    with b.for_("i", 0, b.p.n) as i:
        y.store(i, i * 3 + 1)
    return b.build()


def pointer_chase_kernel(n: int = 8):
    """Dependent loads: next[i] chains (the classic class-A pattern)."""
    b = KernelBuilder("chase", params=["steps"])
    nxt = b.array("next", n)
    out = b.array("out", 1)
    cur = b.let("cur", 0)
    i = b.let("i", 0)
    with b.while_(i < b.p.steps):
        b.set(cur, nxt.load(cur))
        b.set(i, i + 1)
    out.store(0, cur)
    return b.build()


ZOO = {
    "dot": (dot_kernel, {"n": 8}, {"x": list(range(8)), "y": [2] * 8}),
    "join": (
        join_kernel,
        {"na": 6, "nb": 6},
        {
            "A": [1, 3, 5, 7, 9, 11] + [0] * 10,
            "B": [2, 3, 5, 8, 9, 12] + [0] * 10,
        },
    ),
    "branchy": (branchy_kernel, {"n": 8}, {"x": [0, 1, 2, 3, 4, 5, 6, 7]}),
    "nested": (nested_kernel, {"n": 4, "m": 4}, {"M": list(range(16))}),
    "zerotrip": (zerotrip_kernel, {"n": 4}, {"x": [0, 3, 0, 5]}),
    "parphases": (parphases_kernel, {"n": 8}, {"A": list(range(8))}),
    "storeonly": (store_only_kernel, {"n": 4}, {}),
    "chase": (
        pointer_chase_kernel,
        {"steps": 5},
        {"next": [3, 0, 1, 7, 2, 4, 5, 6]},
    ),
}


def zoo_instance(name: str):
    builder, params, arrays = ZOO[name]
    return builder(), params, arrays
