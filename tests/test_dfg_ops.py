"""Unit tests for DFG firing semantics (the decide() state machines)."""

from collections import deque

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dfg.graph import DFG, ImmRef, Node, PortRef
from repro.dfg.ops import NO_EMIT, FifoLike, decide, fresh_state
from repro.isa import apply_binop


class Fifos(FifoLike):
    """Hand-fed FIFO stub."""

    def __init__(self):
        self.queues: dict[tuple[int, int], deque] = {}

    def feed(self, nid, index, *values):
        self.queues.setdefault((nid, index), deque()).extend(values)

    def has(self, node, index):
        return bool(self.queues.get((node.nid, index)))

    def peek(self, node, index):
        return self.queues[(node.nid, index)][0]

    def pop(self, node, index):
        return self.queues[(node.nid, index)].popleft()


def apply(node, state, fifos, decision):
    for index in decision.pops:
        fifos.pop(node, index)
    if decision.state is not None:
        state.update(decision.state)


def node_of(op, inputs, **attrs):
    return Node(0, op, inputs, attrs)


SRC = PortRef(99)


class TestSource:
    def test_fires_once(self):
        node = node_of("source", [])
        state = fresh_state(node)
        fifos = Fifos()
        d = decide(node, state, fifos, {})
        assert d.emit == 0
        apply(node, state, fifos, d)
        assert decide(node, state, fifos, {}) is None


class TestInject:
    def test_emits_value_per_trigger(self):
        node = node_of("inject", [SRC], value=ImmRef("param", "n"))
        state = fresh_state(node)
        fifos = Fifos()
        assert decide(node, state, fifos, {"n": 7}) is None
        fifos.feed(0, 0, 0, 0)
        d = decide(node, state, fifos, {"n": 7})
        assert d.emit == 7 and d.pops == [0]


class TestBinop:
    def test_port_port(self):
        node = node_of("binop", [SRC, PortRef(98)], opname="-")
        fifos = Fifos()
        fifos.feed(0, 0, 10)
        assert decide(node, {}, fifos, {}) is None
        fifos.feed(0, 1, 4)
        d = decide(node, {}, fifos, {})
        assert d.emit == 6 and sorted(d.pops) == [0, 1]

    def test_port_imm(self):
        node = node_of("binop", [SRC, ImmRef("const", 3)], opname="*")
        fifos = Fifos()
        fifos.feed(0, 0, 5)
        d = decide(node, {}, fifos, {})
        assert d.emit == 15 and d.pops == [0]

    @given(
        op=st.sampled_from(["+", "-", "*", "min", "max", "<", "=="]),
        a=st.integers(-100, 100),
        b=st.integers(-100, 100),
    )
    def test_matches_isa(self, op, a, b):
        node = node_of("binop", [SRC, PortRef(98)], opname=op)
        fifos = Fifos()
        fifos.feed(0, 0, a)
        fifos.feed(0, 1, b)
        assert decide(node, {}, fifos, {}).emit == apply_binop(op, a, b)


class TestUnop:
    def test_negation(self):
        node = node_of("unop", [SRC], opname="-")
        fifos = Fifos()
        fifos.feed(0, 0, 4)
        assert decide(node, {}, fifos, {}).emit == -4


class TestSteer:
    def test_true_polarity_forwards_on_true(self):
        node = node_of("steer", [SRC, PortRef(98)], polarity=True)
        fifos = Fifos()
        fifos.feed(0, 0, 1)
        fifos.feed(0, 1, 42)
        d = decide(node, {}, fifos, {})
        assert d.emit == 42

    def test_true_polarity_drops_on_false(self):
        node = node_of("steer", [SRC, PortRef(98)], polarity=True)
        fifos = Fifos()
        fifos.feed(0, 0, 0)
        fifos.feed(0, 1, 42)
        d = decide(node, {}, fifos, {})
        assert d.emit is NO_EMIT and sorted(d.pops) == [0, 1]

    def test_false_polarity(self):
        node = node_of("steer", [SRC, PortRef(98)], polarity=False)
        fifos = Fifos()
        fifos.feed(0, 0, 0)
        fifos.feed(0, 1, 7)
        assert decide(node, {}, fifos, {}).emit == 7

    def test_imm_value_operand(self):
        node = node_of(
            "steer", [SRC, ImmRef("const", 5)], polarity=True
        )
        fifos = Fifos()
        fifos.feed(0, 0, 1)
        d = decide(node, {}, fifos, {})
        assert d.emit == 5 and d.pops == [0]


class TestCarry:
    def make(self):
        node = node_of("carry", [SRC, PortRef(98), PortRef(97)])
        return node, fresh_state(node), Fifos()

    def test_full_loop_protocol(self):
        node, state, fifos = self.make()
        # INIT: emits the init value.
        fifos.feed(0, 0, 100)
        d = decide(node, state, fifos, {})
        assert d.emit == 100 and d.state == {"phase": "run"}
        apply(node, state, fifos, d)
        # RUN, dec true: forwards the back value.
        fifos.feed(0, 2, 1)
        assert decide(node, state, fifos, {}) is None  # back missing
        fifos.feed(0, 1, 101)
        d = decide(node, state, fifos, {})
        assert d.emit == 101 and d.state is None
        apply(node, state, fifos, d)
        # RUN, dec false: resets without emitting.
        fifos.feed(0, 2, 0)
        d = decide(node, state, fifos, {})
        assert d.emit is NO_EMIT and d.state == {"phase": "init"}
        apply(node, state, fifos, d)
        # Next activation re-reads init.
        fifos.feed(0, 0, 200)
        assert decide(node, state, fifos, {}).emit == 200

    def test_zero_trip_loop(self):
        node, state, fifos = self.make()
        fifos.feed(0, 0, 9)
        apply(node, state, fifos, decide(node, state, fifos, {}))
        fifos.feed(0, 2, 0)
        d = decide(node, state, fifos, {})
        assert d.emit is NO_EMIT and d.state == {"phase": "init"}


class TestInvariant:
    def make(self):
        node = node_of("invariant", [SRC, PortRef(98)])
        return node, fresh_state(node), Fifos()

    def test_holds_and_replays(self):
        node, state, fifos = self.make()
        fifos.feed(0, 0, 77)
        assert decide(node, state, fifos, {}) is None  # no dec yet
        fifos.feed(0, 1, 1)
        d = decide(node, state, fifos, {})
        assert d.emit == 77 and d.state["held"]
        apply(node, state, fifos, d)
        fifos.feed(0, 1, 1)
        d = decide(node, state, fifos, {})
        assert d.emit == 77 and d.state is None
        apply(node, state, fifos, d)
        fifos.feed(0, 1, 0)
        d = decide(node, state, fifos, {})
        assert d.emit is NO_EMIT and not d.state["held"]

    def test_zero_trip_discards_value(self):
        node, state, fifos = self.make()
        fifos.feed(0, 0, 77)
        fifos.feed(0, 1, 0)
        d = decide(node, state, fifos, {})
        assert d.emit is NO_EMIT
        assert sorted(d.pops) == [0, 1]
        apply(node, state, fifos, d)
        assert not state["held"]


class TestMerge:
    def make(self):
        node = node_of("merge", [SRC, PortRef(98), PortRef(97)])
        return node, Fifos()

    def test_waits_for_chosen_arm_only(self):
        node, fifos = self.make()
        fifos.feed(0, 0, 1)  # choose t
        fifos.feed(0, 2, 500)  # f arm present but not chosen
        assert decide(node, {}, fifos, {}) is None
        fifos.feed(0, 1, 400)
        d = decide(node, {}, fifos, {})
        assert d.emit == 400 and sorted(d.pops) == [0, 1]

    def test_false_chooses_f(self):
        node, fifos = self.make()
        fifos.feed(0, 0, 0)
        fifos.feed(0, 2, 500)
        assert decide(node, {}, fifos, {}).emit == 500

    def test_imm_arm(self):
        node = node_of(
            "merge", [SRC, ImmRef("const", 7), PortRef(97)]
        )
        fifos = Fifos()
        fifos.feed(0, 0, 1)
        d = decide(node, {}, fifos, {})
        assert d.emit == 7 and d.pops == [0]


class TestMemoryOps:
    def test_load_produces_request(self):
        node = node_of("load", [SRC], array="A", has_ord=False)
        fifos = Fifos()
        fifos.feed(0, 0, 3)
        d = decide(node, {}, fifos, {})
        assert d.emit is NO_EMIT
        assert d.mem.kind == "load" and d.mem.index == 3

    def test_load_with_ord_waits_for_token(self):
        node = node_of("load", [SRC, PortRef(98)], array="A", has_ord=True)
        fifos = Fifos()
        fifos.feed(0, 0, 3)
        assert decide(node, {}, fifos, {}) is None
        fifos.feed(0, 1, 0)
        assert decide(node, {}, fifos, {}).mem is not None

    def test_store_request_carries_value(self):
        node = node_of(
            "store", [SRC, PortRef(98)], array="A", has_ord=False
        )
        fifos = Fifos()
        fifos.feed(0, 0, 2)
        fifos.feed(0, 1, 55)
        d = decide(node, {}, fifos, {})
        assert d.mem.kind == "store"
        assert d.mem.index == 2 and d.mem.value == 55

    def test_non_integer_index_raises(self):
        from repro.errors import DFGError

        node = node_of("load", [SRC], array="A", has_ord=False)
        fifos = Fifos()
        fifos.feed(0, 0, 2.5)
        with pytest.raises(DFGError, match="non-integer"):
            decide(node, {}, fifos, {})


class TestJoin:
    def test_waits_for_all(self):
        node = node_of("join", [SRC, PortRef(98), PortRef(97)])
        fifos = Fifos()
        fifos.feed(0, 0, 0)
        fifos.feed(0, 1, 0)
        assert decide(node, {}, fifos, {}) is None
        fifos.feed(0, 2, 0)
        d = decide(node, {}, fifos, {})
        assert d.emit == 0 and sorted(d.pops) == [0, 1, 2]
