"""Unit tests for IR validation rules."""

import pytest

from repro.errors import IRError
from repro.ir.ast import (
    ArraySpec,
    Assign,
    Const,
    For,
    If,
    Kernel,
    Load,
    Par,
    ParFor,
    Store,
    Var,
    While,
)
from repro.ir.validate import validate_kernel


def kernel_of(body, params=("n",), arrays=(ArraySpec("A", 8),)):
    return Kernel("k", list(params), list(arrays), body)


def test_valid_kernel_passes():
    validate_kernel(
        kernel_of([Assign("x", Var("n")), Store("A", Const(0), Var("x"))])
    )


def test_use_before_definition_rejected():
    with pytest.raises(IRError, match="used before definition"):
        validate_kernel(kernel_of([Assign("x", Var("y"))]))


def test_undeclared_array_rejected():
    with pytest.raises(IRError, match="not declared"):
        validate_kernel(kernel_of([Load("x", "B", Const(0))]))


def test_duplicate_array_declaration_rejected():
    with pytest.raises(IRError, match="duplicate array"):
        validate_kernel(
            kernel_of([], arrays=(ArraySpec("A", 8), ArraySpec("A", 4)))
        )


def test_duplicate_parameter_rejected():
    with pytest.raises(IRError, match="duplicate parameter"):
        validate_kernel(kernel_of([], params=("n", "n")))


def test_if_var_defined_in_one_arm_not_usable_after():
    body = [
        If(Var("n"), [Assign("x", Const(1))], []),
        Assign("y", Var("x")),
    ]
    with pytest.raises(IRError, match="used before definition"):
        validate_kernel(kernel_of(body))


def test_if_var_defined_in_both_arms_usable_after():
    body = [
        If(Var("n"), [Assign("x", Const(1))], [Assign("x", Const(2))]),
        Assign("y", Var("x")),
    ]
    validate_kernel(kernel_of(body))


def test_while_cond_must_read_defined_vars():
    with pytest.raises(IRError):
        validate_kernel(kernel_of([While(Var("q"), [])]))


def test_while_body_temp_not_defined_after():
    body = [
        Assign("i", Const(0)),
        While(
            Var("i") < Var("n"),
            [Assign("t", Const(1)), Assign("i", Var("i") + 1)],
        ),
        Assign("y", Var("t")),
    ]
    with pytest.raises(IRError, match="used before definition"):
        validate_kernel(kernel_of(body))


def test_loop_carried_accumulator_usable_after():
    body = [
        Assign("i", Const(0)),
        Assign("s", Const(0)),
        While(
            Var("i") < Var("n"),
            [Assign("s", Var("s") + Var("i")), Assign("i", Var("i") + 1)],
        ),
        Store("A", Const(0), Var("s")),
    ]
    validate_kernel(kernel_of(body))


def test_for_var_not_defined_after_loop():
    body = [
        For("i", Const(0), Var("n"), Const(1), []),
        Assign("y", Var("i")),
    ]
    with pytest.raises(IRError, match="used before definition"):
        validate_kernel(kernel_of(body))


def test_loop_var_shadowing_rejected():
    body = [
        Assign("i", Const(0)),
        For("i", Const(0), Var("n"), Const(1), []),
    ]
    with pytest.raises(IRError, match="shadows"):
        validate_kernel(kernel_of(body))


def test_nonpositive_const_step_rejected():
    body = [For("i", Const(0), Var("n"), Const(0), [])]
    with pytest.raises(IRError, match="non-positive step"):
        validate_kernel(kernel_of(body))


def test_parfor_assigning_outer_var_rejected():
    body = [
        Assign("acc", Const(0)),
        ParFor(
            "i",
            Const(0),
            Var("n"),
            Const(1),
            [Assign("acc", Var("acc") + Var("i"))],
        ),
    ]
    with pytest.raises(IRError, match="assigns outer"):
        validate_kernel(kernel_of(body))


def test_parfor_assigning_outer_var_in_nested_region_rejected():
    body = [
        Assign("acc", Const(0)),
        ParFor(
            "i",
            Const(0),
            Var("n"),
            Const(1),
            [If(Var("i"), [Assign("acc", Const(1))], [])],
        ),
    ]
    with pytest.raises(IRError, match="assigns outer"):
        validate_kernel(kernel_of(body))


def test_parfor_local_reuse_of_outer_name_after_local_def_ok():
    body = [
        ParFor(
            "i",
            Const(0),
            Var("n"),
            Const(1),
            [Assign("t", Const(1)), Assign("t", Var("t") + 1)],
        ),
    ]
    validate_kernel(kernel_of(body))


def test_parfor_reads_of_shared_state_allowed():
    body = [
        Assign("base", Const(3)),
        ParFor(
            "i",
            Const(0),
            Var("n"),
            Const(1),
            [Store("A", Var("i"), Var("base"))],
        ),
    ]
    validate_kernel(kernel_of(body))


def test_par_blocks_validated_independently():
    body = [
        Par([[Assign("x", Var("missing"))]]),
    ]
    with pytest.raises(IRError, match="used before definition"):
        validate_kernel(kernel_of(body))


def test_store_value_expression_checked():
    with pytest.raises(IRError):
        validate_kernel(kernel_of([Store("A", Const(0), Var("zzz"))]))
