"""Per-node placement-weight overrides and the feedback-directed loop.

Two contracts are load-bearing:

* **Bit-identity of the no-override path.** ``PlacementPolicy.node_weight``
  with no override map (or an empty one) must return the exact float the
  class-weight path returns, so every pinned pre-override compile digest
  — the whole :data:`test_pnr_incremental.PINNED_DIGESTS` set — survives
  the refactor unchanged.
* **Determinism of the loop.** Two FDO runs of the same point, serial or
  portfolio-parallel compiles, cold or warm cache, must produce byte-
  identical round journals.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams
from repro.core.policy import EFFCC, PlacementPolicy
from repro.exp.cache import GLOBAL_CACHE
from repro.exp.fdo import FdoRound, blame_to_weights, run_fdo
from repro.exp.runner import compile_cached, weight_map_digest
from repro.obs.critpath import blame_shares
from repro.pnr.flow import compile_once
from repro.pnr.netlist import build_netlist
from repro.dfg.lower import lower_kernel
from repro.pnr.place import CostTable, anneal, initial_placement
from repro.workloads.registry import make_workload

from test_pnr_incremental import PINNED_DIGESTS


def _netlist(workload: str):
    kernel = make_workload(workload, scale="tiny", seed=0).kernel
    return build_netlist(lower_kernel(kernel))


# -- node_weight override semantics --------------------------------------


def test_node_weight_no_overrides_is_class_weight():
    """The fallback returns the *identical* float, not a recomputation."""
    for klass in ("A", "B", "C"):
        assert EFFCC.node_weight(klass, 7) == EFFCC.weight(klass)
        assert EFFCC.node_weight(klass, 7, None) == EFFCC.weight(klass)
        assert EFFCC.node_weight(klass, 7, {}) == EFFCC.weight(klass)


def test_node_weight_override_hits_and_misses():
    overrides = {3: 5.5}
    assert EFFCC.node_weight("C", 3, overrides) == 5.5
    # A node absent from the map falls back to its class weight.
    assert EFFCC.node_weight("A", 4, overrides) == EFFCC.weight("A")


def test_placement_normalizes_empty_override_map():
    """{} must be exactly the class-weight path (None), not a third mode."""
    netlist = _netlist("dmv")
    placement = initial_placement(
        netlist, monaco(12, 12), EFFCC, random.Random(0), node_weights={}
    )
    assert placement.node_weights is None


# -- bit-identity of the no-override compile path ------------------------


@pytest.mark.parametrize("workload", sorted(PINNED_DIGESTS))
def test_empty_override_map_preserves_pinned_digest(workload):
    """compile_once(node_weights={}) == the pre-override pinned artifact."""
    from benchmarks.bench_pnr_compile import pnr_digest

    kernel = make_workload(workload, scale="tiny", seed=0).kernel
    compiled = compile_once(
        kernel,
        monaco(12, 12),
        ArchParams(),
        parallelism=1,
        seed=0,
        node_weights={},
    )
    assert pnr_digest(compiled) == PINNED_DIGESTS[workload]
    assert "node_weights" not in compiled.meta


def test_nonempty_override_map_changes_the_artifact():
    """Inverting the class weights (demote A, promote C) must steer the
    anneal somewhere else."""
    from benchmarks.bench_pnr_compile import pnr_digest

    kernel = make_workload("spmv", scale="tiny", seed=0).kernel
    base = compile_once(
        kernel, monaco(12, 12), ArchParams(), parallelism=1, seed=0
    )
    weights = {
        n.nid: (0.5 if n.criticality == "A" else 9.0)
        for n in base.dfg.memory_nodes()
    }
    overridden = compile_once(
        kernel,
        monaco(12, 12),
        ArchParams(),
        parallelism=1,
        seed=0,
        node_weights=weights,
    )
    assert overridden.meta["node_weights"] == weights
    assert pnr_digest(overridden) != pnr_digest(base)


# -- incremental CostTable with overrides --------------------------------


@pytest.mark.parametrize("workload", ["spmspm", "mergesort"])
@pytest.mark.parametrize("seed", [0, 3])
def test_anneal_with_overrides_incremental_matches_naive(workload, seed):
    """Per-node weights through the CostTable == naive recompute path."""
    netlist = _netlist(workload)
    fabric = monaco(12, 12)
    mems = [n.nid for n in netlist.dfg.memory_nodes()]
    weights = {
        nid: 1.0 + (i % 5) * 1.75 for i, nid in enumerate(sorted(mems))
    }

    outcomes = []
    for incremental in (True, False):
        rng = random.Random(seed)
        placement = initial_placement(
            netlist, fabric, EFFCC, rng, node_weights=weights
        )
        cost = anneal(
            placement, rng, moves=4000, incremental=incremental, check=True
        )
        outcomes.append((dict(placement.loc), cost))
    (fast_loc, fast_cost), (naive_loc, naive_cost) = outcomes
    assert fast_loc == naive_loc
    assert fast_cost == naive_cost


def test_cost_table_total_matches_with_overrides():
    netlist = _netlist("spmv")
    fabric = monaco(12, 12)
    mems = [n.nid for n in netlist.dfg.memory_nodes()]
    weights = {nid: 4.25 for nid in mems}
    placement = initial_placement(
        netlist, fabric, EFFCC, random.Random(1), node_weights=weights
    )
    assert CostTable(placement).total() == placement.total_cost()


# -- blame -> weights mapping --------------------------------------------


def test_blame_to_weights_interpolates_c_to_a():
    blame = {
        1: {"share": 0.5},
        2: {"share": 0.25},
        3: {"share": 0.0},
    }
    weights = blame_to_weights(blame, EFFCC)
    assert weights[1] == EFFCC.weight("A")
    assert weights[3] == EFFCC.weight("C")
    w_a, w_c = EFFCC.weight("A"), EFFCC.weight("C")
    assert weights[2] == round(w_c + (w_a - w_c) * 0.5, 6)


def test_blame_to_weights_degenerate_is_empty():
    assert blame_to_weights({}, EFFCC) == {}
    assert blame_to_weights({1: {"share": 0.0}}, EFFCC) == {}


def test_blame_shares_round_trips_through_json():
    report = {
        "system_cycles": 200,
        "memory_nodes": {
            "7": {
                "cycles": 50,
                "class": "C",
                "op": "load",
                "label": "x",
            }
        },
    }
    shares = blame_shares(json.loads(json.dumps(report)))
    assert shares == {
        7: {
            "cycles": 50,
            "share": 0.25,
            "class": "C",
            "op": "load",
            "label": "x",
        }
    }


def test_weight_map_digest_is_order_insensitive():
    a = {3: 1.5, 11: 8.0}
    b = {11: 8.0, 3: 1.5}
    assert weight_map_digest(a) == weight_map_digest(b)
    assert weight_map_digest(a) != weight_map_digest({3: 1.5, 11: 7.0})


# -- the feedback loop ---------------------------------------------------


def test_fdo_round_journal_is_deterministic_serial_vs_parallel():
    """Byte-identical journals: cold vs warm cache, serial vs portfolio."""
    journals = []
    for portfolio_jobs in (1, 2):
        GLOBAL_CACHE.clear()
        res = run_fdo(
            "spmspv", rounds=2, scale="tiny", portfolio_jobs=portfolio_jobs
        )
        journals.append(
            json.dumps(res.to_dict(), sort_keys=True).encode()
        )
    assert journals[0] == journals[1]


def test_fdo_improves_spmv_with_class_c_recall_miss():
    """spmv@tiny is a static recall miss — class-C nodes carry ~4% of
    the measured makespan each — and the loop beats static EFFCC."""
    GLOBAL_CACHE.clear()
    res = run_fdo("spmv", rounds=2, scale="tiny")
    round0 = res.rounds[0]
    assert round0.next_weights, "round 0 must propose weights"
    # Recall-miss evidence, from the journal itself: some node the
    # static analysis put in class C was proposed a weight well above
    # the class-C weight by measured blame.
    compiled = compile_cached(
        make_workload("spmv", scale="tiny", seed=0),
        monaco(12, 12),
        ArchParams(),
        policy=EFFCC,
        parallelism=round0.parallelism,
        seed=0,
    )
    classes = {
        n.nid: n.criticality for n in compiled.dfg.memory_nodes()
    }
    w_c = EFFCC.weight("C")
    missed = [
        nid
        for nid, weight in round0.next_weights.items()
        if classes.get(nid) == "C" and weight >= w_c + 0.5
    ]
    assert missed, "expected a class-C node with significant blame"
    # The loop journals the static round then improves on it.
    assert res.best.round > 0
    assert res.best_cycles < res.baseline_cycles
    assert res.baseline_cycles == round0.cycles


def test_fdo_pins_parallelism_across_rounds():
    GLOBAL_CACHE.clear()
    res = run_fdo("dmv", rounds=2, scale="tiny")
    degrees = {r.parallelism for r in res.rounds}
    assert len(degrees) == 1


def test_fdo_round_record_has_no_volatile_fields():
    rnd = FdoRound(
        round=1,
        weights={5: 2.0},
        parallelism=2,
        divider=2,
        cycles=100,
        next_weights={5: 2.5},
    )
    record = rnd.to_record(workload="w", config="c")
    assert "timestamp" not in record
    assert "wall_time_s" not in record
    assert record["weights"] == {"5": 2.0}
    assert record["weights_digest"] == weight_map_digest({5: 2.0})


def test_fdo_manifest_journal_matches_result(tmp_path):
    GLOBAL_CACHE.clear()
    path = tmp_path / "fdo.jsonl"
    res = run_fdo("spmspv", rounds=1, scale="tiny", manifest_path=path)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == len(res.rounds)
    for line, rnd in zip(lines, res.rounds):
        record = json.loads(line)
        assert record["round"] == rnd.round
        assert record["cycles"] == rnd.cycles
        assert record["kind"] == "fdo-round"


# -- cache-key separation ------------------------------------------------


def test_compile_cached_keys_profile_and_weights_separately():
    """Static, profile-guided and weight-overridden compiles of the same
    instance never alias each other in the cache."""
    GLOBAL_CACHE.clear()
    instance = make_workload("spmspv", scale="tiny", seed=0)
    fabric = monaco(12, 12)
    arch = ArchParams()
    static = compile_cached(
        instance, fabric, arch, policy=EFFCC, parallelism=1, seed=0
    )
    guided = compile_cached(
        instance,
        fabric,
        arch,
        policy=EFFCC,
        parallelism=1,
        seed=0,
        profile_guided=True,
    )
    mems = [n.nid for n in static.dfg.memory_nodes()]
    weighted = compile_cached(
        instance,
        fabric,
        arch,
        policy=EFFCC,
        parallelism=1,
        seed=0,
        node_weights={mems[0]: 8.0},
    )
    assert static is not guided
    assert static is not weighted
    assert guided is not weighted
    assert "profile" in guided.meta and "profile" not in static.meta
    assert "node_weights" in weighted.meta
    # And a repeat static compile is still a cache hit on the old key.
    assert (
        compile_cached(
            instance, fabric, arch, policy=EFFCC, parallelism=1, seed=0
        )
        is static
    )
