"""Tests for energy accounting."""

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams
from repro.core.policy import DOMAIN_UNAWARE, EFFCC
from repro.pnr.flow import compile_once
from repro.sim.energy import EnergyParams, EnergyReport, estimate_energy
from repro.sim.engine import simulate
from repro.sim.stats import SimStats

from kernels import zoo_instance

ARCH = ArchParams()


def run(name="join", policy=EFFCC):
    kernel, params, arrays = zoo_instance(name)
    compiled = compile_once(
        kernel, monaco(12, 12), ARCH, policy, parallelism=1
    )
    return simulate(compiled, params, arrays, ARCH)


class TestCounting:
    def test_noc_hops_counted(self):
        result = run("dot")
        assert result.stats.noc_hops > 0

    def test_fmnoc_hops_zero_when_all_memory_in_d0(self):
        result = run("join", policy=EFFCC)
        # effcc puts the join's few memory ops into D0: no arbitration.
        assert result.stats.fmnoc_hops == 0

    def test_fmnoc_hops_positive_for_far_placement(self):
        result = run("join", policy=DOMAIN_UNAWARE)
        assert result.stats.fmnoc_hops > 0


class TestEstimate:
    def test_breakdown_sums_to_total(self):
        report = estimate_energy(run("join").stats)
        parts = (
            report.compute
            + report.control
            + report.mem_issue
            + report.data_noc
            + report.fabric_memory_noc
            + report.cache
            + report.main_memory
        )
        assert report.total == pytest.approx(parts)
        assert report.total > 0

    def test_data_movement_share(self):
        report = estimate_energy(run("join").stats)
        assert 0 < report.data_movement < report.total
        assert "data movement" in report.summary()

    def test_custom_params_scale(self):
        stats = run("dot").stats
        base = estimate_energy(stats)
        doubled = estimate_energy(
            stats, EnergyParams(pj_noc_hop=0.4)
        )
        assert doubled.data_noc == pytest.approx(2 * base.data_noc)

    def test_empty_stats(self):
        report = estimate_energy(SimStats())
        assert report.total == 0.0
        assert report.data_movement == 0.0

    def test_far_placement_costs_more_movement_energy(self):
        near = estimate_energy(run("join", EFFCC).stats)
        far = estimate_energy(run("join", DOMAIN_UNAWARE).stats)
        assert far.fabric_memory_noc > near.fabric_memory_noc


class TestMemIssueBucket:
    """Regression: load/store-issue firings are *data movement*.

    They were historically priced into ``compute``, silently deflating
    the data-movement share — the paper's Sec. 1 headline metric.
    """

    def test_mem_issue_priced_separately(self):
        stats = SimStats(firings={"load": 10, "store": 4, "binop": 6})
        report = estimate_energy(stats)
        params = report.params
        assert report.mem_issue == pytest.approx(14 * params.pj_mem_issue)
        assert report.compute == pytest.approx(6 * params.pj_alu)

    def test_movement_share_counts_mem_issue(self):
        result = run("join")
        report = estimate_energy(result.stats)
        assert report.mem_issue > 0
        # The share with the bucket correctly under movement must exceed
        # what the old compute-bucket accounting reported.
        deflated = (report.data_movement - report.mem_issue) / report.total
        share = report.data_movement / report.total
        assert share == pytest.approx(
            (report.total - report.compute - report.control) / report.total
        )
        assert share > deflated

    def test_unknown_op_is_an_error(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="no energy class"):
            estimate_energy(SimStats(firings={"frobnicate": 1}))

    def test_breakdown_dict_is_stable(self):
        stats = SimStats(firings={"load": 3, "binop": 2}, noc_hops=7)
        first = estimate_energy(stats).to_dict()
        # Same counters inserted in a different dict order: identical
        # block (accumulation is sorted, so floats match bit-for-bit).
        again = estimate_energy(
            SimStats(firings={"binop": 2, "load": 3}, noc_hops=7)
        ).to_dict()
        assert first == again
        assert first["data_movement_pj"] == pytest.approx(
            first["total_pj"] - first["compute_pj"] - first["control_pj"]
        )


def test_energy_report_defaults():
    report = EnergyReport()
    assert report.total == 0.0
    assert isinstance(report.params, EnergyParams)
