"""Tests for energy accounting."""

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams
from repro.core.policy import DOMAIN_UNAWARE, EFFCC
from repro.pnr.flow import compile_once
from repro.sim.energy import EnergyParams, EnergyReport, estimate_energy
from repro.sim.engine import simulate
from repro.sim.stats import SimStats

from kernels import zoo_instance

ARCH = ArchParams()


def run(name="join", policy=EFFCC):
    kernel, params, arrays = zoo_instance(name)
    compiled = compile_once(
        kernel, monaco(12, 12), ARCH, policy, parallelism=1
    )
    return simulate(compiled, params, arrays, ARCH)


class TestCounting:
    def test_noc_hops_counted(self):
        result = run("dot")
        assert result.stats.noc_hops > 0

    def test_fmnoc_hops_zero_when_all_memory_in_d0(self):
        result = run("join", policy=EFFCC)
        # effcc puts the join's few memory ops into D0: no arbitration.
        assert result.stats.fmnoc_hops == 0

    def test_fmnoc_hops_positive_for_far_placement(self):
        result = run("join", policy=DOMAIN_UNAWARE)
        assert result.stats.fmnoc_hops > 0


class TestEstimate:
    def test_breakdown_sums_to_total(self):
        report = estimate_energy(run("join").stats)
        parts = (
            report.compute
            + report.control
            + report.data_noc
            + report.fabric_memory_noc
            + report.cache
            + report.main_memory
        )
        assert report.total == pytest.approx(parts)
        assert report.total > 0

    def test_data_movement_share(self):
        report = estimate_energy(run("join").stats)
        assert 0 < report.data_movement < report.total
        assert "data movement" in report.summary()

    def test_custom_params_scale(self):
        stats = run("dot").stats
        base = estimate_energy(stats)
        doubled = estimate_energy(
            stats, EnergyParams(pj_noc_hop=0.4)
        )
        assert doubled.data_noc == pytest.approx(2 * base.data_noc)

    def test_empty_stats(self):
        report = estimate_energy(SimStats())
        assert report.total == 0.0
        assert report.data_movement == 0.0

    def test_far_placement_costs_more_movement_energy(self):
        near = estimate_energy(run("join", EFFCC).stats)
        far = estimate_energy(run("join", DOMAIN_UNAWARE).stats)
        assert far.fabric_memory_noc > near.fabric_memory_noc


def test_energy_report_defaults():
    report = EnergyReport()
    assert report.total == 0.0
    assert isinstance(report.params, EnergyParams)
