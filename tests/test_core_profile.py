"""Tests for profile-guided criticality refinement."""

from repro.core.criticality import analyze_criticality
from repro.core.profile import (
    analyze_with_profile,
    apply_classes,
    profile_dfg,
)
from repro.dfg.lower import lower_kernel
from repro.ir.builder import KernelBuilder

from kernels import zoo_instance


def cold_branch_kernel(n=16):
    """A load behind a rarely taken branch plus a hot unconditional load."""
    b = KernelBuilder("coldload", params=["n"])
    x = b.array("x", n)
    rare = b.array("rare", n)
    y = b.array("y", n)
    with b.for_("i", 0, b.p.n) as i:
        v = x.load(i, "hot")
        r = b.let("r", 0)
        with b.if_(v.eq(12345)):  # never true for our inputs
            b.set(r, rare.load(i, "cold"))
        y.store(i, v + r)
    return b.build()


def test_profile_counts_reflect_execution():
    kernel, params, arrays = zoo_instance("join")
    dfg = lower_kernel(kernel)
    counts = profile_dfg(dfg, params, arrays)
    loads = [n for n in dfg.nodes.values() if n.op == "load"]
    for load in loads:
        assert counts.get(load.nid, 0) > 0


def test_cold_conditional_load_demoted():
    kernel = cold_branch_kernel()
    params = {"n": 16}
    arrays = {"x": list(range(16)), "rare": [7] * 16}
    dfg = lower_kernel(kernel)
    static = analyze_criticality(dfg)
    cold = next(
        n.nid for n in dfg.nodes.values()
        if n.op == "load" and n.tag == "cold"
    )
    hot = next(
        n.nid for n in dfg.nodes.values()
        if n.op == "load" and n.tag == "hot"
    )
    assert cold in static.class_b  # static analysis thinks it's inner-loop
    profiled = analyze_with_profile(dfg, params, arrays)
    assert cold in profiled.demoted
    assert cold in profiled.report.class_c
    assert hot in profiled.report.class_b
    # The caller's DFG keeps its *static* annotation (see the
    # no-mutation regression below); opting in annotates the refinement.
    assert dfg.nodes[cold].criticality == "B"
    analyze_with_profile(dfg, params, arrays, in_place=True)
    assert dfg.nodes[cold].criticality == "C"


def test_class_a_never_changed_by_profile():
    kernel, params, arrays = zoo_instance("join")
    dfg = lower_kernel(kernel)
    static_a = set(analyze_criticality(dfg).class_a)
    profiled = analyze_with_profile(dfg, params, arrays)
    assert set(profiled.report.class_a) == static_a
    for nid in static_a:
        assert dfg.nodes[nid].criticality == "A"


def test_hot_top_level_load_promoted():
    # A class-C load (top level, no loop) that executes as often as the
    # hottest memory op in a kernel whose loops are tiny.
    b = KernelBuilder("hotc", params=["n"])
    x = b.array("x", 8)
    y = b.array("y", 8)
    v = x.load(0, "toplevel")  # class C statically
    with b.for_("i", 0, 1) as i:  # single-iteration loop
        y.store(i, x.load(i) + v)
    dfg = lower_kernel(b.build())
    static = analyze_criticality(dfg)
    top = next(
        n.nid for n in dfg.nodes.values() if n.tag == "toplevel"
    )
    assert top in static.class_c
    profiled = analyze_with_profile(dfg, {"n": 8}, {"x": [1] * 8})
    assert top in profiled.promoted
    assert top in profiled.report.class_b


def test_no_mutation_by_default_cache_poisoning_regression():
    """Refinement must not rewrite the caller's node annotations.

    The old in-place behavior silently changed class labels under a DFG
    the compile cache had already keyed on the *unrefined* graph —
    cached artifacts looked valid while their criticality annotations
    no longer matched the bytes they were compiled from.
    """
    kernel = cold_branch_kernel()
    params = {"n": 16}
    arrays = {"x": list(range(16)), "rare": [7] * 16}
    dfg = lower_kernel(kernel)
    analyze_criticality(dfg)
    before = {
        n.nid: n.criticality for n in dfg.memory_nodes()
    }
    profiled = analyze_with_profile(dfg, params, arrays)
    after = {n.nid: n.criticality for n in dfg.memory_nodes()}
    assert after == before
    assert profiled.demoted  # the refinement itself did find changes


def test_apply_classes_annotates_a_copy():
    kernel = cold_branch_kernel()
    params = {"n": 16}
    arrays = {"x": list(range(16)), "rare": [7] * 16}
    dfg = lower_kernel(kernel)
    profiled = analyze_with_profile(dfg, params, arrays)
    fresh = lower_kernel(kernel)
    apply_classes(fresh, profiled.report)
    for node in fresh.memory_nodes():
        assert node.criticality == profiled.report.klass(node.nid)


def test_degenerate_profile_keeps_static_classes():
    """All memory nodes firing zero times must not demote class B to C."""
    b = KernelBuilder("zerotrip", params=["n"])
    x = b.array("x", 8)
    y = b.array("y", 8)
    with b.for_("i", 0, b.p.n) as i:  # zero-trip with n=0
        y.store(i, x.load(i, "inner") + 1)
    dfg = lower_kernel(b.build())
    static = analyze_criticality(dfg)
    assert static.class_b  # the inner load/store are class B statically
    profiled = analyze_with_profile(dfg, {"n": 0}, {"x": [1] * 8})
    assert profiled.degenerate
    assert profiled.note and "degenerate" in profiled.note
    assert not profiled.promoted and not profiled.demoted
    # Static classes are kept verbatim (the old behavior demoted every
    # class-B node to C here).
    assert profiled.report.class_b == static.class_b
    assert profiled.report.class_c == static.class_c
    assert profiled.report.class_a == static.class_a


def test_profile_report_to_dict_is_json_safe():
    import json

    kernel = cold_branch_kernel()
    dfg = lower_kernel(kernel)
    profiled = analyze_with_profile(
        dfg, {"n": 16}, {"x": list(range(16)), "rare": [7] * 16}
    )
    payload = profiled.to_dict()
    assert json.loads(json.dumps(payload)) == payload
    assert set(payload) == {
        "promoted", "demoted", "degenerate", "note", "counts",
    }
    assert payload["degenerate"] is False
