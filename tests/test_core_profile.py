"""Tests for profile-guided criticality refinement."""

from repro.core.criticality import analyze_criticality
from repro.core.profile import analyze_with_profile, profile_dfg
from repro.dfg.lower import lower_kernel
from repro.ir.builder import KernelBuilder

from kernels import zoo_instance


def cold_branch_kernel(n=16):
    """A load behind a rarely taken branch plus a hot unconditional load."""
    b = KernelBuilder("coldload", params=["n"])
    x = b.array("x", n)
    rare = b.array("rare", n)
    y = b.array("y", n)
    with b.for_("i", 0, b.p.n) as i:
        v = x.load(i, "hot")
        r = b.let("r", 0)
        with b.if_(v.eq(12345)):  # never true for our inputs
            b.set(r, rare.load(i, "cold"))
        y.store(i, v + r)
    return b.build()


def test_profile_counts_reflect_execution():
    kernel, params, arrays = zoo_instance("join")
    dfg = lower_kernel(kernel)
    counts = profile_dfg(dfg, params, arrays)
    loads = [n for n in dfg.nodes.values() if n.op == "load"]
    for load in loads:
        assert counts.get(load.nid, 0) > 0


def test_cold_conditional_load_demoted():
    kernel = cold_branch_kernel()
    params = {"n": 16}
    arrays = {"x": list(range(16)), "rare": [7] * 16}
    dfg = lower_kernel(kernel)
    static = analyze_criticality(dfg)
    cold = next(
        n.nid for n in dfg.nodes.values()
        if n.op == "load" and n.tag == "cold"
    )
    hot = next(
        n.nid for n in dfg.nodes.values()
        if n.op == "load" and n.tag == "hot"
    )
    assert cold in static.class_b  # static analysis thinks it's inner-loop
    profiled = analyze_with_profile(dfg, params, arrays)
    assert cold in profiled.demoted
    assert cold in profiled.report.class_c
    assert hot in profiled.report.class_b
    assert dfg.nodes[cold].criticality == "C"


def test_class_a_never_changed_by_profile():
    kernel, params, arrays = zoo_instance("join")
    dfg = lower_kernel(kernel)
    static_a = set(analyze_criticality(dfg).class_a)
    profiled = analyze_with_profile(dfg, params, arrays)
    assert set(profiled.report.class_a) == static_a
    for nid in static_a:
        assert dfg.nodes[nid].criticality == "A"


def test_hot_top_level_load_promoted():
    # A class-C load (top level, no loop) that executes as often as the
    # hottest memory op in a kernel whose loops are tiny.
    b = KernelBuilder("hotc", params=["n"])
    x = b.array("x", 8)
    y = b.array("y", 8)
    v = x.load(0, "toplevel")  # class C statically
    with b.for_("i", 0, 1) as i:  # single-iteration loop
        y.store(i, x.load(i) + v)
    dfg = lower_kernel(b.build())
    static = analyze_criticality(dfg)
    top = next(
        n.nid for n in dfg.nodes.values() if n.tag == "toplevel"
    )
    assert top in static.class_c
    profiled = analyze_with_profile(dfg, {"n": 8}, {"x": [1] * 8})
    assert top in profiled.promoted
    assert top in profiled.report.class_b
