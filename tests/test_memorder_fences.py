"""Unit tests for the RAW/WAR memory-ordering fence construction."""

from repro.dfg.interp import run_dfg
from repro.dfg.lower import (
    acc_token_var,
    lower_kernel,
    store_token_var,
)
from repro.ir.builder import KernelBuilder
from repro.ir.interp import run_kernel


def ops_of(dfg, op):
    return [n for n in dfg.nodes.values() if n.op == op]


def test_straight_line_store_fences_all_prior_loads_without_joins():
    # load, load, store to the same array: the store takes both load
    # tokens as ordering inputs directly (n-ary fence, zero join nodes).
    b = KernelBuilder("fence")
    a = b.array("A", 4)
    x = a.load(0)
    y = a.load(1)
    a.store(2, x + y)
    dfg = lower_kernel(b.build())
    assert not ops_of(dfg, "join")
    store = ops_of(dfg, "store")[0]
    # idx, value, store-token(source), and two load tokens.
    assert store.attrs["ord_count"] == 3


def test_war_hazard_resolved_under_adversarial_order():
    # Load A[1], then store A[1]: the store must wait for the load.
    b = KernelBuilder("war")
    a = b.array("A", 4)
    out = b.array("out", 1)
    v = a.load(1)
    a.store(1, 999)
    out.store(0, v)
    kernel = b.build()
    reference = run_kernel(kernel, {}, {"A": [5, 7, 9, 11]})
    assert reference["out"] == [7]
    dfg = lower_kernel(kernel)
    for seed in range(8):
        got = run_dfg(dfg, {}, {"A": [5, 7, 9, 11]}, order="random",
                      seed=seed)
        assert got.memory == reference


def test_waw_hazard_stores_stay_ordered():
    b = KernelBuilder("waw")
    a = b.array("A", 2)
    a.store(0, 1)
    a.store(0, 2)
    dfg = lower_kernel(b.build())
    for order in ("fifo", "lifo", "random"):
        got = run_dfg(dfg, order=order, seed=3)
        assert got.memory["A"][0] == 2


def test_loads_between_stores_share_the_same_store_token():
    # Loads after one store are unordered among themselves: both take the
    # same store token, not a chain.
    b = KernelBuilder("parallel_loads")
    a = b.array("A", 4)
    out = b.array("out", 2)
    a.store(0, 5)
    x = a.load(0)
    y = a.load(1)
    out.store(0, x)
    out.store(1, y)
    dfg = lower_kernel(b.build())
    loads = ops_of(dfg, "load")
    a_loads = [n for n in loads if n.attrs["array"] == "A"]
    stores = [
        n for n in ops_of(dfg, "store") if n.attrs["array"] == "A"
    ]
    ord_sources = {
        inp.src
        for n in a_loads
        for i, inp in enumerate(n.inputs)
        if n.port_name(i) == "ord"
        for inp in [inp]
    }
    assert ord_sources == {stores[0].nid}


def test_loop_boundary_flattens_pending_tokens_into_join():
    # Loads inside a loop body accumulate; the back-edge needs a single
    # token, so a join appears at the loop boundary.
    b = KernelBuilder("loopfence", params=["n"])
    a = b.array("A", 8)
    with b.for_("i", 0, b.p.n) as i:
        x = a.load(i)
        y = a.load((i + 1) % 8)
        a.store(i, x + y)
    dfg = lower_kernel(b.build())
    # Store consumes the loads' tokens directly within the iteration, so
    # no join is needed here; verify execution is order-independent.
    reference = run_kernel(b.build(), {"n": 8}, {"A": list(range(8))})
    for order in ("fifo", "lifo", "random"):
        got = run_dfg(
            dfg, {"n": 8}, {"A": list(range(8))}, order=order, seed=1
        )
        assert got.memory == reference


def test_trailing_loads_tokens_are_dead_code_eliminated():
    b = KernelBuilder("trailing")
    a = b.array("A", 4)
    out = b.array("out", 1)
    a.store(0, 3)
    v = a.load(0)  # load after the last store: token never consumed
    out.store(0, v)
    dfg = lower_kernel(b.build())
    assert not ops_of(dfg, "join")
    got = run_dfg(dfg)
    assert got.memory["out"] == [3]


def test_token_var_names():
    assert store_token_var("A") == "__memst$A"
    assert acc_token_var("A") == "__memacc$A"
