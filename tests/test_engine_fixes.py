"""Regression tests for engine correctness fixes.

1. Intra-tick FIFO overflow: capacity checks must count pushes already
   pending in the current fabric tick, and ``commit_pushes`` must reject
   any commit that would exceed ``fifo_capacity``.
2. Deadlock detector: requests advancing through the fabric-memory NoC
   (Monaco's arbiter chain) are forward progress — a long arbiter
   pipeline with a small ``deadlock_cycles`` must not false-trip.
3. ``RequestRecord.enqueue_cycle`` replaces the ``id(record)``-keyed side
   dict in the memory system (robust under pickling and object reuse).
"""

import pytest

from repro.arch.fabric import monaco
from repro.arch.memory import AddressMap
from repro.arch.params import ArchParams, MemoryParams, SimParams
from repro.core.policy import DOMAIN_UNAWARE, EFFCC
from repro.dfg.ops import MemRequest
from repro.errors import SimulationError
from repro.pnr.flow import compile_once
from repro.sim.engine import _Engine, simulate
from repro.sim.fmnoc_sim import MonacoFrontend
from repro.sim.memsys import MemorySystem, RequestRecord
from repro.workloads.registry import make_workload

from kernels import zoo_instance

ARCH = ArchParams()
FABRIC = monaco(12, 12)


def make_engine(name="join", arch=ARCH):
    kernel, params, arrays = zoo_instance(name)
    ck = compile_once(kernel, FABRIC, arch, EFFCC, parallelism=1)
    memory = {}
    for array, size in ck.dfg.arrays.items():
        memory[array] = list(arrays.get(array, [0] * size))
    amap = AddressMap(ck.dfg.arrays, arch.memory)
    memsys = MemorySystem(arch.memory, amap, memory)
    frontend = MonacoFrontend(ck.fabric)
    return _Engine(
        ck, dict(params), arch, ck.timing.clock_divider, memsys, frontend,
        amap,
    )


class TestIntraTickFifoCapacity:
    def _producer_consumer(self, engine):
        """Pick any routed producer -> (consumer, port) edge."""
        for nid, consumers in engine.consumers.items():
            if consumers:
                return nid, consumers[0]
        raise AssertionError("no edges")

    def test_can_emit_counts_pending_pushes(self):
        engine = make_engine()
        producer, key = self._producer_consumer(engine)
        # Fill the consumer FIFO to capacity - 1 committed tokens...
        queue = engine.fifos.queues[key]
        for _ in range(engine.capacity - 1):
            queue.append(0)
        assert engine.can_emit(producer)
        # ...then stage one pending push in the same fabric tick: the
        # remaining slot is spoken for, so a second capacity check within
        # this tick must refuse. (Pre-fix, can_emit only saw committed
        # tokens and both checks would claim the same slot.)
        pushes = []
        engine.push_output(producer, 1, pushes)
        assert not engine.can_emit(producer)
        # Committing the staged push lands exactly at capacity.
        engine.commit_pushes(pushes)
        assert len(queue) == engine.capacity
        assert engine.pending_pushes == {}
        assert engine.can_emit(producer) is False

    def test_commit_rejects_overflow(self):
        """commit_pushes enforces len(queue) <= capacity at every commit."""
        engine = make_engine()
        producer, key = self._producer_consumer(engine)
        queue = engine.fifos.queues[key]
        for _ in range(engine.capacity):
            queue.append(0)
        pushes = []
        engine.push_output(producer, 1, pushes)
        with pytest.raises(SimulationError, match="FIFO overflow"):
            engine.commit_pushes(pushes)

    @pytest.mark.parametrize("name", ["spmspv", "mergesort", "fft"])
    def test_capacity_invariant_across_workloads(self, name):
        """End to end: no commit ever exceeds capacity (shallow FIFOs)."""
        from repro.sim import engine as engine_mod

        arch = ArchParams(sim=SimParams(fifo_capacity=2, max_outstanding=2))
        instance = make_workload(name, scale="tiny")
        ck = compile_once(
            instance.kernel, FABRIC, arch, EFFCC, parallelism=1
        )
        original = engine_mod._Engine.commit_pushes
        occupancies = []

        def checked(self, pushes):
            original(self, pushes)
            occupancies.append(
                max(len(q) for q in self.fifos.queues.values())
            )

        engine_mod._Engine.commit_pushes = checked
        try:
            result = simulate(ck, instance.params, instance.arrays, arch)
        finally:
            engine_mod._Engine.commit_pushes = original
        instance.check(result.memory)
        assert occupancies and max(occupancies) <= arch.sim.fifo_capacity


class TestDeadlockDetectorSeesFrontendProgress:
    def test_monaco_tick_reports_movement(self):
        """tick() is True exactly while a request is moving."""
        fabric = FABRIC
        frontend = MonacoFrontend(fabric)
        # An idle network does nothing.
        assert frontend.tick(0, lambda r: None) is False
        # Inject from the farthest-domain LS PE: the request crosses one
        # arbiter stage per cycle, and every stage must read as progress.
        far_pe = max(fabric.ls_pes(), key=lambda pe: pe.domain)
        record = RequestRecord(
            nid=0, seq=1, request=MemRequest("load", "a", 0),
            address=0, pe_coord=far_pe.coord, issue_cycle=0,
        )
        frontend.inject(record, 0)
        delivered = []
        ticks = 0
        while not delivered:
            assert frontend.tick(ticks, delivered.append) is True
            ticks += 1
        # One cycle per arbitration stage plus the port hop.
        assert ticks == far_pe.domain + 1
        assert frontend.busy() is False
        assert frontend.tick(ticks, delivered.append) is False

    def test_small_deadlock_window_survives_arbiter_chain(self):
        """deadlock_cycles=8 is smaller than the request's end-to-end trip
        through the arbiter chain (~10 cycles issue-to-completion on this
        placement); pre-fix the detector saw that whole trip as silence
        and raised DeadlockError. With frontend progress counted, the run
        completes and validates.
        """
        instance = make_workload("spmspv", scale="tiny")
        arch = ArchParams(sim=SimParams(deadlock_cycles=8))
        ck = compile_once(
            instance.kernel, FABRIC, arch, DOMAIN_UNAWARE, parallelism=1
        )
        result = simulate(ck, instance.params, instance.arrays, arch)
        instance.check(result.memory)

    def test_upea_tick_reports_delivery(self):
        from repro.sim.upea import UniformFrontend

        frontend = UniformFrontend(3)
        record = RequestRecord(
            nid=0, seq=1, request=MemRequest("load", "a", 0),
            address=0, pe_coord=(0, 0), issue_cycle=0,
        )
        frontend.inject(record, 0)
        assert frontend.tick(1, lambda r: None) is False
        out = []
        assert frontend.tick(3, out.append) is True
        assert out == [record]


class TestEnqueueCycleField:
    def make_memsys(self):
        amap = AddressMap({"a": 64}, MemoryParams())
        return MemorySystem(MemoryParams(), amap, {"a": list(range(64))})

    def make_record(self, seq=1, index=0):
        return RequestRecord(
            nid=7, seq=seq, request=MemRequest("load", "a", index),
            address=index, pe_coord=(0, 0), issue_cycle=0,
        )

    def test_enqueue_cycle_lives_on_the_record(self):
        memsys = self.make_memsys()
        record = self.make_record()
        assert record.enqueue_cycle == -1
        memsys.enqueue(record, 11)
        assert record.enqueue_cycle == 11
        # No id()-keyed side table anywhere on the memory system.
        assert not any(
            isinstance(v, dict) and record.enqueue_cycle in v
            for k, v in vars(memsys).items()
            if k.startswith("_enqueue")
        )
        assert "_enqueue_cycle" not in vars(memsys)

    def test_bank_wait_accounted_from_field(self):
        memsys = self.make_memsys()
        first = self.make_record(seq=1, index=0)
        second = self.make_record(seq=2, index=0)  # same bank: queues
        memsys.enqueue(first, 5)
        memsys.enqueue(second, 5)
        memsys.tick(5)  # serves first (throughput 1/bank/cycle)
        memsys.tick(6)  # serves second, one cycle late
        assert first.serve_cycle == 5 and second.serve_cycle == 6
        assert memsys.stats.bank_wait_cycles == 0 + 1

    def test_records_survive_pickling(self):
        import pickle

        record = self.make_record()
        memsys = self.make_memsys()
        memsys.enqueue(record, 4)
        clone = pickle.loads(pickle.dumps(record))
        assert clone.enqueue_cycle == 4
