"""Unit tests for IR -> DFG lowering."""

import pytest

from repro.dfg.graph import ImmRef, PortRef
from repro.dfg.interp import run_dfg
from repro.dfg.lower import eliminate_dead, lower_kernel, mem_token_var
from repro.errors import LoweringError
from repro.ir.builder import KernelBuilder
from repro.ir.interp import run_kernel

from kernels import zoo_instance


def ops_of(dfg, op):
    return [n for n in dfg.nodes.values() if n.op == op]


def test_constant_folding_leaves_no_const_nodes():
    b = KernelBuilder("fold")
    y = b.array("y", 1)
    v = b.let("v", 2 + 3)
    b.set(v, v * 4)
    y.store(0, v)
    dfg = lower_kernel(b.build())
    # 2+3 and (2+3)*4 fold to immediates: no binops survive.
    assert not ops_of(dfg, "binop")


def test_cse_dedupes_identical_binops():
    b = KernelBuilder("cse", params=["n"])
    x = b.array("x", 8)
    y = b.array("y", 8)
    with b.for_("i", 0, b.p.n) as i:
        a = x.load(i + 1)
        c = x.load(i + 1)  # same index expression
        y.store(i, a + c)
    dfg = lower_kernel(b.build())
    adds = [
        n for n in ops_of(dfg, "binop") if n.attrs["opname"] == "+"
    ]
    # i+1 is CSE'd to a single node (plus the loop increment and a+c).
    index_adds = [
        n for n in adds if any(isinstance(i, ImmRef) for i in n.inputs)
    ]
    assert len(index_adds) <= 2


def test_while_creates_carries_and_exit_steers():
    kernel, params, arrays = zoo_instance("join")
    dfg = lower_kernel(kernel)
    carries = ops_of(dfg, "carry")
    assert len(carries) >= 3  # ia, ib, cnt
    steers = ops_of(dfg, "steer")
    assert any(s.tag.startswith("exit:") for s in steers)


def test_if_creates_merges():
    kernel, params, arrays = zoo_instance("branchy")
    dfg = lower_kernel(kernel)
    assert ops_of(dfg, "merge")


def test_no_carry_has_immediate_init():
    for name in ("dot", "join", "branchy", "nested", "zerotrip"):
        kernel, _, _ = zoo_instance(name)
        dfg = lower_kernel(kernel)
        for carry in ops_of(dfg, "carry"):
            assert isinstance(carry.inputs[0], PortRef), carry.tag


def test_loop_invariant_while_condition_rejected():
    b = KernelBuilder("inv", params=["n"])
    y = b.array("y", 1)
    i = b.let("i", 0)
    with b.while_(b.p.n > 0):  # body never changes the condition
        b.set(i, i + 1)
    y.store(0, i)
    with pytest.raises(LoweringError, match="loop-invariant"):
        lower_kernel(b.build())


def test_constant_true_if_folds_to_taken_branch():
    b = KernelBuilder("cfold")
    y = b.array("y", 1)
    with b.if_(1 < 2):
        y.store(0, 7)
    with b.else_():
        y.store(0, 9)
    dfg = lower_kernel(b.build())
    assert len(ops_of(dfg, "store")) == 1
    got = run_dfg(dfg)
    assert got.memory["y"] == [7]


def test_mem_ordering_raw_chains_stores():
    kernel, params, arrays = zoo_instance("nested")
    dfg = lower_kernel(kernel, mem_mode="raw")
    stores = ops_of(dfg, "store")
    loads = ops_of(dfg, "load")
    assert all(s.attrs["has_ord"] for s in stores)
    assert all(ld.attrs["has_ord"] for ld in loads)


def test_mem_ordering_none_has_no_ord_ports():
    kernel, params, arrays = zoo_instance("nested")
    dfg = lower_kernel(kernel, mem_mode="none")
    assert all(
        not n.attrs["has_ord"]
        for n in dfg.nodes.values()
        if n.is_memory()
    )


def test_mem_ordering_readonly_arrays_unordered():
    kernel, params, arrays = zoo_instance("dot")
    dfg = lower_kernel(kernel, mem_mode="raw")
    for node in dfg.memory_nodes():
        if node.op == "load":  # x and y are never stored
            assert not node.attrs["has_ord"]


def test_serialize_mode_chains_loads_too():
    kernel, params, arrays = zoo_instance("nested")
    ref = run_kernel(kernel, params, arrays)
    dfg = lower_kernel(kernel, mem_mode="serialize")
    got = run_dfg(dfg, params, arrays, order="random", seed=3)
    assert got.memory == ref


def test_unknown_mem_mode_rejected():
    kernel, _, _ = zoo_instance("dot")
    with pytest.raises(LoweringError, match="memory-ordering mode"):
        lower_kernel(kernel, mem_mode="chaos")


def test_mem_token_var_name():
    assert mem_token_var("A") == "__mem$A"


def test_dce_removes_unused_computation():
    b = KernelBuilder("dce", params=["n"])
    x = b.array("x", 8)
    y = b.array("y", 1)
    dead = b.let("dead", 0)
    with b.for_("i", 0, b.p.n) as i:
        b.set(dead, dead + x.load(i))  # never stored
    y.store(0, 5)
    dfg = lower_kernel(b.build())
    assert not ops_of(dfg, "load")
    assert not ops_of(dfg, "carry")


def test_dce_keeps_store_dependencies():
    kernel, params, arrays = zoo_instance("dot")
    dfg = lower_kernel(kernel)
    removed = eliminate_dead(dfg)
    assert removed == 0  # already clean after lowering


def test_kernel_without_stores_left_intact():
    b = KernelBuilder("nostore", params=["n"])
    x = b.array("x", 4)
    x.load(0)
    dfg = lower_kernel(b.build())
    assert len(dfg) > 0


def test_lowered_params_recorded():
    kernel, _, _ = zoo_instance("dot")
    dfg = lower_kernel(kernel)
    assert dfg.params == ["n"]
    assert set(dfg.arrays) == {"x", "y", "out"}


def test_loop_metadata_tracks_nesting():
    kernel, _, _ = zoo_instance("nested")
    dfg = lower_kernel(kernel)
    parents = dfg.loops_parent
    assert len(parents) == 2
    inner = [k for k, v in parents.items() if v is not None]
    assert len(inner) == 1
    depths = {n.depth for n in dfg.nodes.values()}
    assert 2 in depths  # inner-loop body nodes


def test_every_lowered_graph_validates():
    for name in (
        "dot", "join", "branchy", "nested", "zerotrip", "parphases",
        "storeonly", "chase",
    ):
        kernel, _, _ = zoo_instance(name)
        dfg = lower_kernel(kernel)
        dfg.validate()  # raises on violation


def test_store_with_constant_operands_gets_trigger():
    kernel, params, arrays = zoo_instance("storeonly")
    ref = run_kernel(kernel, params, arrays)
    dfg = lower_kernel(kernel)
    got = run_dfg(dfg, params, arrays)
    assert got.memory == ref


def test_par_join_inserted_between_phases():
    from repro.ir.transform import parallelize

    kernel, params, arrays = zoo_instance("parphases")
    dfg = lower_kernel(parallelize(kernel, 3))
    joins = ops_of(dfg, "join")
    assert joins, "expected a memory-token join after the first parfor"


def test_loop_under_untaken_branch_does_not_leak_carry_init():
    """A loop nested in an If arm consumes its carry inits at arm cadence.

    Regression: a variable *written* (but never read) by a loop inside a
    branch arm was not gated into the arm, so its carry init token arrived
    even when the other arm was taken and wedged in the loop's ``exit:``
    steer. The trigger needs the variable bound to a real node (not an
    immediate) — here CSE shares it with the If condition, which is how
    the property test originally found it.
    """
    from repro.ir.ast import (
        ArraySpec, Assign, BinOp, Const, For, If, Kernel, Store, Var,
    )

    shared = BinOp("+", BinOp("+", Const(0), Const(0)),
                   BinOp("+", Const(0), Var("n")))
    zero = BinOp("+", Const(0), Const(0))
    kernel = Kernel(
        name="leak",
        params=["n"],
        arrays=[ArraySpec("A", 4, "i")],
        body=[
            Assign("v", shared),
            If(
                cond=shared,
                then_body=[Assign("v", zero)],
                else_body=[
                    For("i", Const(0), Const(0), Const(1),
                        body=[Assign("v", zero)])
                ],
            ),
            Store("A", Const(0), BinOp("+", Const(0), Var("v"))),
        ],
    )
    params = {"n": 3}  # truthy: then taken, the For's arm is dead
    arrays = {"A": [7, 7, 7, 7]}
    ref = run_kernel(kernel, params, arrays)
    dfg = lower_kernel(kernel)
    for order in ("fifo", "lifo", "random"):
        got = run_dfg(dfg, params, arrays, order=order, seed=0)
        assert got.memory == ref  # and quiescence found no leaked tokens
