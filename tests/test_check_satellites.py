"""Satellite fixes riding with the conformance subsystem.

* ``MemStats.latency_total`` is wired at response arrival and must agree
  exactly with the per-class latency reservoirs (both observe the same
  ``arrived - issue`` sequence);
* ``MemStats.record_service`` rejects records that were never enqueued
  (``enqueue_cycle == -1``) instead of silently producing negative
  bank-wait cycles;
* cache/bank accounting is fault-invariant: a faulted run (response
  jitter) serves exactly the accesses a clean run does, so
  ``loads + stores`` and ``hits + misses`` agree (see the
  ``repro.sim.memsys`` module docstring);
* :class:`ConformanceReport` digests are identical whether checks run
  serially or in worker processes, and ``run_parallel`` composes with
  the invariant checker.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams, FaultParams, SimParams
from repro.check.oracle import check_workload
from repro.core.policy import EFFCC
from repro.dfg.ops import MemRequest
from repro.errors import SimulationError
from repro.exp.configs import MONACO
from repro.exp.runner import run_parallel
from repro.pnr.flow import compile_once
from repro.sim.engine import simulate
from repro.sim.memsys import MemStats, RequestRecord
from repro.workloads.registry import make_workload

CHECKED = ArchParams(sim=SimParams(check=True))
JITTER = ArchParams(
    sim=SimParams(
        check=True,
        faults=FaultParams(seed=5, mem_delay_prob=0.25, mem_delay_cycles=8),
    )
)


def _run(name, arch):
    instance = make_workload(name, scale="tiny")
    compiled = compile_once(
        instance.kernel, monaco(12, 12), ArchParams(), EFFCC, parallelism=1
    )
    arrays = {k: list(v) for k, v in instance.arrays.items()}
    return simulate(compiled, instance.params, arrays, arch)


# -- memory latency accounting ----------------------------------------------


def make_record(**overrides):
    record = RequestRecord(
        nid=1,
        seq=1,
        request=MemRequest("load", "a", 0),
        address=0,
        pe_coord=(0, 0),
        issue_cycle=0,
    )
    for key, value in overrides.items():
        setattr(record, key, value)
    return record


def test_record_service_rejects_never_enqueued_records():
    stats = MemStats()
    record = make_record(hit=True, enqueue_cycle=-1, serve_cycle=5)
    with pytest.raises(SimulationError, match="never enqueued"):
        stats.record_service(record)
    # Nothing was counted for the rejected record.
    assert stats.loads == 0 and stats.hits == 0


def test_record_arrival_accumulates_latency():
    stats = MemStats()
    stats.record_arrival(make_record(issue_cycle=4), now=10)
    stats.record_arrival(make_record(issue_cycle=8), now=10)
    assert stats.latency_total == 8
    assert stats.responses == 2
    assert stats.avg_latency == pytest.approx(4.0)


def test_latency_ledger_matches_reservoirs_end_to_end():
    """Arrival-side total == sum of per-class reservoir totals, exactly."""
    result = _run("spmspv", CHECKED)
    stats = result.stats
    acc_total = sum(acc.total for acc in stats.load_latency.values())
    acc_count = sum(acc.count for acc in stats.load_latency.values())
    assert stats.mem.latency_total == acc_total
    assert stats.mem.responses == acc_count
    assert acc_count > 0
    assert stats.avg_mem_latency == pytest.approx(acc_total / acc_count)
    assert "avg mem latency" in stats.summary()
    d = stats.to_dict()
    assert d["mem"]["latency_total"] == acc_total
    assert d["mem"]["responses"] == acc_count
    assert d["mem"]["avg_mem_latency"] == pytest.approx(
        acc_total / acc_count, abs=1e-3
    )


# -- fault-invariant bank accounting ----------------------------------------


def test_bank_accounting_is_fault_invariant():
    clean = _run("spmspv", CHECKED)  # invariants armed in both runs
    faulted = _run("spmspv", JITTER)
    assert faulted.stats.faults_injected.get("mem-delay", 0) > 0
    cm, fm = clean.stats.mem, faulted.stats.mem
    assert fm.loads + fm.stores == cm.loads + cm.stores
    assert fm.hits + fm.misses == cm.hits + cm.misses
    assert fm.hits + fm.misses == fm.loads + fm.stores
    # Jitter delays arrivals, so only the arrival-side ledger moves.
    assert fm.responses == cm.responses
    assert fm.latency_total > cm.latency_total
    assert clean.memory == faulted.memory


# -- serial vs parallel ------------------------------------------------------


def _digest(name: str) -> str:
    return check_workload(name, scale="tiny").digest()


def test_conformance_digests_serial_vs_parallel():
    names = ["spmspv", "dmv"]
    serial = [_digest(name) for name in names]
    with ProcessPoolExecutor(max_workers=2) as pool:
        parallel = list(pool.map(_digest, names))
    assert parallel == serial


def test_run_parallel_composes_with_invariant_checking():
    kwargs = dict(
        workloads=["spmspv"],
        configs=[MONACO],
        scale="tiny",
        seeds=(0,),
        arch=CHECKED,
    )
    serial = run_parallel(max_workers=1, **kwargs)
    pooled = run_parallel(max_workers=2, **kwargs)
    assert set(serial) == set(pooled)
    for key, run in serial.items():
        assert run.stats == pooled[key].stats, key
        assert run.cycles == pooled[key].cycles
