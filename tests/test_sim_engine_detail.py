"""Deeper engine invariants: backpressure, response ordering, hop counts."""

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams, MemoryParams, SimParams
from repro.core.policy import EFFCC
from repro.dfg.graph import DFG, ImmRef, PortRef
from repro.pnr.flow import compile_once
from repro.sim.engine import _Engine, simulate  # noqa: F401
from repro.sim.upea import UniformFrontend

from kernels import zoo_instance

ARCH = ArchParams()
FABRIC = monaco(12, 12)


def compiled(name, arch=ARCH, **kwargs):
    kernel, params, arrays = zoo_instance(name)
    ck = compile_once(kernel, FABRIC, arch, EFFCC, **kwargs)
    return ck, params, arrays


class InstrumentedEngineTest:
    pass


def test_fifo_capacity_never_exceeded():
    arch = ArchParams(sim=SimParams(fifo_capacity=2))
    ck, params, arrays = compiled("join", arch=arch)

    # Wrap the engine's commit to check occupancy after every push.
    from repro.sim import engine as engine_mod

    original = engine_mod._Engine.commit_pushes
    violations = []

    def checked(self, pushes):
        original(self, pushes)
        for queue in self.fifos.queues.values():
            if len(queue) > self.capacity:
                violations.append(len(queue))

    engine_mod._Engine.commit_pushes = checked
    try:
        result = simulate(ck, params, arrays, arch)
    finally:
        engine_mod._Engine.commit_pushes = original
    assert result.memory["O"] == [3]
    assert not violations


def test_responses_delivered_in_issue_order():
    # Strided accesses hit alternating banks with different hit/miss
    # latencies; the PE must still emit responses in issue order.
    from repro.ir.builder import KernelBuilder
    from repro.ir.interp import run_kernel

    b = KernelBuilder("strided", params=["n"])
    x = b.array("x", 512)
    y = b.array("y", 32)
    with b.for_("i", 0, b.p.n) as i:
        # Alternate between a hot line and cold lines.
        a = x.load(i % 4)
        c = x.load(i * 16)
        y.store(i, a * 100 + c)
    kernel = b.build()
    params = {"n": 32}
    arrays = {"x": [i % 97 for i in range(512)]}
    reference = run_kernel(kernel, params, arrays)
    ck = compile_once(kernel, FABRIC, ARCH, EFFCC, parallelism=1)
    result = simulate(ck, params, arrays, ARCH)
    assert result.memory["y"] == reference["y"]


def test_max_outstanding_limits_pipelining():
    ck, params, arrays = compiled("dot")
    shallow = ArchParams(sim=SimParams(max_outstanding=1))
    deep = ArchParams(sim=SimParams(fifo_capacity=4, max_outstanding=4))
    slow = simulate(ck, params, arrays, shallow)
    fast = simulate(ck, params, arrays, deep)
    assert fast.stats.system_cycles <= slow.stats.system_cycles


def test_noc_hops_scale_with_placement_spread():
    ck, params, arrays = compiled("join")
    result = simulate(ck, params, arrays, ARCH)
    # Every token transfer crosses at least its Manhattan distance; a
    # design with all nodes adjacent would have hops ~= token count.
    assert result.stats.noc_hops >= 0
    total_tokens = sum(
        result.stats.firings.get(op, 0)
        for op in ("binop", "unop", "steer", "carry", "merge")
    )
    assert result.stats.noc_hops < total_tokens * FABRIC.rows * 4


def test_cache_capacity_pressure_increases_misses():
    tiny_cache = ArchParams(
        memory=MemoryParams(cache_lines=2), sim=SimParams()
    )
    ck, params, arrays = compiled("dot")
    cold = simulate(ck, params, arrays, tiny_cache)
    warm = simulate(ck, params, arrays, ARCH)
    assert cold.stats.mem.misses >= warm.stats.mem.misses
    assert cold.stats.system_cycles >= warm.stats.system_cycles


def test_zero_memory_kernel_terminates():
    # A store-only kernel with constant data exercises the
    # inject/source plumbing without loads.
    ck, params, arrays = compiled("storeonly")
    result = simulate(ck, params, arrays, ARCH)
    assert result.memory["y"] == [1, 4, 7, 10]
    assert result.stats.mem.loads == 0


def test_engine_rejects_bad_array_lengths():
    from repro.errors import SimulationError

    ck, params, arrays = compiled("dot")
    with pytest.raises(SimulationError, match="words"):
        simulate(ck, params, {"x": [1, 2, 3]}, ARCH)


def test_uniform_frontend_delay_is_in_system_cycles():
    ck, params, arrays = compiled("chase")
    lat = {}
    for delay in (0, 6):
        res = simulate(
            ck, params, arrays, ARCH, divider=2,
            frontend_factory=lambda f, a, d=delay: UniformFrontend(d),
        )
        lat[delay] = res.stats.load_latency["A"].mean
    # The pointer chase's critical-load latency absorbs the full delay.
    assert lat[6] - lat[0] == pytest.approx(6, abs=2.1)


def test_edge_hops_fallback_for_unrouted_edges():
    # Build a compiled kernel, then clear its routing info: the engine
    # must fall back to Manhattan distances, not crash.
    ck, params, arrays = compiled("dot")
    ck.routing.sink_hops = {}
    result = simulate(ck, params, arrays, ARCH)
    assert result.stats.noc_hops > 0
