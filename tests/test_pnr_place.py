"""Unit tests for netlist extraction and placement."""

import random

import pytest

from repro.arch.fabric import monaco
from repro.core.policy import DOMAIN_AWARE, DOMAIN_UNAWARE, EFFCC
from repro.core.criticality import analyze_criticality
from repro.dfg.lower import lower_kernel
from repro.errors import PlacementError
from repro.ir.builder import KernelBuilder
from repro.pnr.netlist import build_netlist
from repro.pnr.place import (
    Placement,
    _clusters,
    anneal,
    initial_placement,
)

from kernels import zoo_instance


def compiled_netlist(name="join"):
    kernel, _, _ = zoo_instance(name)
    dfg = lower_kernel(kernel)
    analyze_criticality(dfg)
    return build_netlist(dfg)


class TestNetlist:
    def test_cells_cover_all_nodes(self):
        netlist = compiled_netlist()
        assert sorted(netlist.cells) == sorted(netlist.dfg.nodes)

    def test_nets_group_fanout(self):
        netlist = compiled_netlist()
        for net in netlist.nets:
            assert net.sinks == tuple(sorted(set(net.sinks)))
        producers = {net.src for net in netlist.nets}
        assert len(producers) == len(netlist.nets)

    def test_nets_of_indexing(self):
        netlist = compiled_netlist()
        for nid, indices in netlist.nets_of.items():
            for index in indices:
                net = netlist.nets[index]
                assert net.src == nid or nid in net.sinks


class TestInitialPlacement:
    def test_legality(self):
        netlist = compiled_netlist()
        fab = monaco(12, 12)
        placement = initial_placement(
            netlist, fab, EFFCC, random.Random(0)
        )
        for nid, coord in placement.loc.items():
            node = netlist.dfg.nodes[nid]
            assert fab.pes[coord].supports(node.op)
        assert len(set(placement.loc.values())) == len(placement.loc)

    def test_effcc_places_critical_loads_in_d0(self):
        netlist = compiled_netlist("join")
        fab = monaco(12, 12)
        placement = initial_placement(
            netlist, fab, EFFCC, random.Random(0)
        )
        for node in netlist.dfg.memory_nodes():
            if node.criticality == "A":
                assert fab.pes[placement.loc[node.nid]].domain == 0

    def test_too_many_nodes_rejected(self):
        netlist = compiled_netlist("join")
        with pytest.raises(PlacementError):
            initial_placement(netlist, monaco(2, 2), EFFCC, random.Random(0))

    def test_too_many_memory_nodes_rejected(self):
        # Hand-built DFG: more loads than LS PEs, but fewer nodes than PEs.
        from repro.dfg.graph import DFG, PortRef

        dfg = DFG("memheavy")
        dfg.declare_array("a", 4)
        src = dfg.add("source", [])
        for _ in range(10):
            dfg.add("load", [PortRef(src)], array="a", has_ord=False)
        netlist = build_netlist(dfg)
        fab = monaco(4, 4)  # 16 PEs, only 8 LS
        with pytest.raises(PlacementError, match="memory nodes"):
            initial_placement(netlist, fab, EFFCC, random.Random(0))

    def test_deterministic(self):
        netlist = compiled_netlist()
        fab = monaco(12, 12)
        a = initial_placement(netlist, fab, EFFCC, random.Random(7))
        b = initial_placement(netlist, fab, EFFCC, random.Random(7))
        assert a.loc == b.loc


class TestClusters:
    def test_parallel_workers_are_separate_clusters(self):
        from repro.ir.transform import parallelize

        kernel, _, _ = zoo_instance("parphases")
        dfg = lower_kernel(parallelize(kernel, 3))
        analyze_criticality(dfg)
        netlist = build_netlist(dfg)
        clusters = _clusters(netlist)
        # 3 workers x 2 phases, plus broadcast singletons.
        big = [c for c in clusters if len(c) > 3]
        assert len(big) >= 6


class TestAnneal:
    def test_anneal_does_not_increase_cost(self):
        netlist = compiled_netlist()
        fab = monaco(12, 12)
        rng = random.Random(3)
        placement = initial_placement(netlist, fab, EFFCC, rng)
        before = placement.total_cost()
        anneal(placement, rng, moves=4000)
        after = placement.total_cost()
        assert after <= before * 1.05

    def test_anneal_keeps_legality(self):
        netlist = compiled_netlist()
        fab = monaco(12, 12)
        rng = random.Random(3)
        placement = initial_placement(netlist, fab, EFFCC, rng)
        anneal(placement, rng, moves=4000)
        for nid, coord in placement.loc.items():
            assert fab.pes[coord].supports(netlist.dfg.nodes[nid].op)
        occupants = list(placement.occupant.items())
        assert all(placement.loc[n] == c for c, n in occupants)

    def test_incremental_cost_consistency(self):
        netlist = compiled_netlist()
        fab = monaco(12, 12)
        rng = random.Random(5)
        placement = initial_placement(netlist, fab, EFFCC, rng)
        tracked = anneal(placement, rng, moves=2000)
        assert tracked == pytest.approx(placement.total_cost())

    def test_mem_scale_zeroes_pull(self):
        netlist = compiled_netlist()
        fab = monaco(12, 12)
        placement = Placement(netlist, fab, EFFCC, mem_scale=0.0)
        rng = random.Random(0)
        placement2 = initial_placement(
            netlist, fab, EFFCC, rng, mem_scale=0.0
        )
        assert placement2.mem_cost(netlist.cells[0]) == 0.0
        del placement

    def test_domain_unaware_ignores_domains_in_cost(self):
        netlist = compiled_netlist()
        fab = monaco(12, 12)
        placement = initial_placement(
            netlist, fab, DOMAIN_UNAWARE, random.Random(0)
        )
        for nid in netlist.cells:
            assert placement.mem_cost(nid) == 0.0

    def test_domain_aware_cost_positive_for_far_memory(self):
        netlist = compiled_netlist()
        fab = monaco(12, 12)
        placement = initial_placement(
            netlist, fab, DOMAIN_AWARE, random.Random(0)
        )
        mem = netlist.dfg.memory_nodes()[0]
        free_far = [
            pe
            for pe in fab.ls_pes()
            if pe.domain == 3 and pe.coord not in placement.occupant
        ]
        placement.move(mem.nid, free_far[0].coord)
        assert placement.mem_cost(mem.nid) > 0
