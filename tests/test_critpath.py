"""Tests for the dynamic critical-path profiler (:mod:`repro.obs.critpath`).

Contracts under test:

* **detached purity** — ``sim.critpath`` off (the default) is
  bit-identical to a build without the profiler, on every workload;
* **the sum invariant** — attributed category costs sum *exactly* to
  ``system_cycles``, on every workload, under deterministic fault
  injection, and with cycle skipping on or off (identical reports);
* **derived views** — dynamic criticality, slack histograms and the
  zero-latency what-if bound are internally consistent;
* **static-vs-dynamic validation** — the precision/recall scoring of the
  class-A/B heuristics behaves on hand-built inputs;
* **manifests** — serial and parallel sweeps journal identical critpath
  blocks (modulo volatile fields);
* the satellite **zero-event guards** and the **by-class rollup** of the
  stall-attribution sink.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import replace

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams, FaultParams, SimParams
from repro.core.criticality import (
    CriticalityReport,
    format_validation_table,
    validate_against_dynamic,
)
from repro.core.policy import EFFCC
from repro.exp.configs import MONACO, upea
from repro.exp.runner import compile_cached, run_config, run_parallel
from repro.obs import CATEGORIES, ROLLUP, ROLLUP_ORDER
from repro.obs.manifest import read_manifest, stable_view
from repro.obs.sinks import CycleAttribution, FmnocHeatmap, NocHeatmap
from repro.workloads.registry import ALL_WORKLOADS, make_workload

SCALE = "tiny"


def _arch(**sim_kwargs) -> ArchParams:
    arch = ArchParams()
    return replace(arch, sim=replace(arch.sim, **sim_kwargs))


def _run(name, config=MONACO, arch=None, seed=0):
    arch = arch if arch is not None else _arch(critpath=True)
    instance = make_workload(name, scale=SCALE, seed=seed)
    compiled = compile_cached(
        instance, monaco(12, 12), arch, policy=EFFCC, seed=seed
    )
    return compiled, run_config(instance, compiled, config, arch)


# -- detached purity + the sum invariant, all workloads ---------------------


class TestAttachedVsDetached:
    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_bit_identity_and_sum_invariant(self, name):
        _, off = _run(name, arch=ArchParams())
        _, on = _run(name)

        # Detached: no observation object, no critpath block.
        assert off.obs is None
        assert not off.stats.critpath

        # Attached: recorder present, stats bit-identical (critpath is
        # compare-excluded, like executed_cycles), outputs were verified
        # by run_config on both runs.
        recorder = on.obs.critpath
        assert recorder is not None
        assert on.stats == off.stats
        assert on.cycles == off.cycles

        # The hard invariant: category costs sum exactly to the makespan.
        report = recorder.report
        assert report["system_cycles"] == on.cycles
        assert sum(report["categories"].values()) == on.cycles
        assert sum(report["rollup"].values()) == on.cycles
        assert set(report["categories"]) == set(CATEGORIES)
        assert set(report["rollup"]) == set(ROLLUP_ORDER)

    def test_critpath_off_is_default(self):
        assert ArchParams().sim.critpath is False


class TestInvariantUnderStress:
    def test_sum_invariant_under_fault_injection(self):
        faults = FaultParams(
            seed=3,
            mem_delay_prob=0.3,
            mem_delay_cycles=16,
            pe_stall_prob=0.05,
            grant_skip_prob=0.1,
        )
        _, run = _run("spmspv", arch=_arch(critpath=True, faults=faults))
        report = run.obs.critpath.report
        assert run.stats.faults_injected  # the injectors actually fired
        assert sum(report["categories"].values()) == run.cycles

    def test_cycle_skip_invariant(self):
        _, skip = _run(
            "spmspv", upea(2), arch=_arch(critpath=True, cycle_skip=True)
        )
        _, loop = _run(
            "spmspv", upea(2), arch=_arch(critpath=True, cycle_skip=False)
        )
        assert skip.cycles == loop.cycles
        assert skip.obs.critpath.report == loop.obs.critpath.report

    def test_attached_runs_are_deterministic(self):
        _, a = _run("dmv")
        _, b = _run("dmv")
        assert a.obs.critpath.report == b.obs.critpath.report

    def test_upea_shifts_blame_into_arbitration(self):
        """The NUPEA causal story: uniform access pays per-request
        FM-NoC delay, and the profiler pins the makespan on it."""
        _, nupea = _run("spmspv", MONACO)
        _, upea2 = _run("spmspv", upea(2))
        mono = nupea.obs.critpath.report["rollup"]["fmnoc-arbitration"]
        uni = upea2.obs.critpath.report["rollup"]["fmnoc-arbitration"]
        assert uni > mono


# -- derived views ----------------------------------------------------------


class TestDerivedViews:
    @pytest.fixture(scope="class")
    def profiled(self):
        return _run("spmspv")

    def test_memory_node_entries_consistent(self, profiled):
        compiled, run = profiled
        report = run.obs.critpath.report
        sc = report["system_cycles"]
        mem_nids = {n.nid for n in compiled.dfg.memory_nodes()}
        assert {int(nid) for nid in report["memory_nodes"]} == mem_nids
        for entry in report["memory_nodes"].values():
            assert 0 <= entry["cycles"] <= sc
            assert 0.0 <= entry["criticality"] <= 1.0
            assert entry["whatif_savings_bound"] == entry["cycles"]
            assert entry["whatif_min_cycles"] == sc - entry["cycles"]
            assert entry["class"] in ("A", "B", "C")

    def test_top_loads_ranked_and_nonzero(self, profiled):
        _, run = profiled
        top = run.obs.critpath.report["top_loads"]
        assert top, "spmspv has loads on the critical path"
        cycles = [e["cycles"] for e in top]
        assert cycles == sorted(cycles, reverse=True)
        assert all(c > 0 for c in cycles)
        assert len(top) <= 5

    def test_slack_histograms_consistent(self, profiled):
        _, run = profiled
        report = run.obs.critpath.report
        slacks = [
            e["slack"]
            for e in report["memory_nodes"].values()
            if "slack" in e
        ]
        assert slacks, "spmspv consumes load responses"
        for slack in slacks:
            hist = {int(k): v for k, v in slack["histogram"].items()}
            assert sum(hist.values()) == slack["uses"]
            assert slack["zero"] == hist.get(0, 0)
            assert slack["min"] == min(hist)
            assert slack["max"] == max(hist)
            assert slack["min"] >= 0

    def test_dynamic_criticality_view(self, profiled):
        _, run = profiled
        recorder = run.obs.critpath
        dynamic = recorder.dynamic_criticality()
        report = run.obs.critpath.report
        assert dynamic == {
            int(nid): e["criticality"]
            for nid, e in report["memory_nodes"].items()
        }

    def test_compact_view_flows_into_stats(self, profiled):
        _, run = profiled
        compact = run.stats.critpath
        report = run.obs.critpath.report
        assert compact["categories"] == report["categories"]
        assert compact["top_loads"] == report["top_loads"]
        assert "memory_nodes" not in compact  # per-node detail stays off
        assert "critpath" in run.stats.to_dict()
        summary = run.stats.summary()
        assert "critical path" in summary
        assert "top critical loads" in summary

    def test_render_carries_the_invariant_line(self, profiled):
        _, run = profiled
        text = run.obs.critpath.render()
        assert "hard invariant" in text
        assert "critical memory nodes" in text

    def test_rollup_table_is_total(self):
        assert set(ROLLUP) == set(CATEGORIES)
        assert set(ROLLUP.values()) <= set(ROLLUP_ORDER)


# -- static-vs-dynamic validation -------------------------------------------


class TestValidation:
    def _report(self):
        return CriticalityReport(
            class_a=[1], class_b=[2, 3], class_c=[4]
        )

    def test_precision_recall_arithmetic(self):
        dynamic = {1: 0.4, 2: 0.02, 3: 0.001, 4: 0.0}
        rows = validate_against_dynamic(
            "toy", self._report(), dynamic, threshold=0.01
        )
        by = {row.classes: row for row in rows}
        # Dynamically critical: {1, 2}. Class A predicts {1}.
        assert by["A"].predicted == 1
        assert by["A"].actual == 2
        assert by["A"].true_positive == 1
        assert by["A"].precision == 1.0
        assert by["A"].recall == 0.5
        # A+B predicts {1, 2, 3}: recall 1.0, precision 2/3.
        assert by["A+B"].true_positive == 2
        assert by["A+B"].recall == 1.0
        assert by["A+B"].precision == pytest.approx(2 / 3)

    def test_zero_denominators_render_as_dash(self):
        rows = validate_against_dynamic(
            "toy", CriticalityReport(), {}, threshold=0.01
        )
        assert all(row.precision is None for row in rows)
        assert all(row.recall is None for row in rows)
        table = format_validation_table(rows, 0.01)
        assert "-" in table
        assert "precision" in table and "recall" in table

    def test_table_has_micro_averages(self):
        dynamic = {1: 0.5}
        rows = validate_against_dynamic(
            "a", self._report(), dynamic
        ) + validate_against_dynamic("b", self._report(), dynamic)
        table = format_validation_table(rows, 0.01)
        assert "(micro avg)" in table

    def test_measured_validation_on_a_real_workload(self):
        compiled, run = _run("spmspv")
        rows = validate_against_dynamic(
            "spmspv",
            compiled.criticality,
            run.obs.critpath.dynamic_criticality(),
        )
        by = {row.classes: row for row in rows}
        # spmspv is the paper's flagship recurrence workload: its class-A
        # loads must show up as dynamically critical.
        assert by["A"].predicted > 0
        assert by["A"].true_positive > 0


# -- manifests: serial == parallel ------------------------------------------


class TestManifests:
    def test_serial_vs_parallel_critpath_manifests_match(self, tmp_path):
        arch = _arch(critpath=True)
        kwargs = dict(
            workloads=["spmspv"],
            configs=[upea(2), MONACO],
            scale=SCALE,
            arch=arch,
            cache_dir=tmp_path / "cache",
        )
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        run_parallel(max_workers=1, manifest_path=serial_path, **kwargs)
        run_parallel(max_workers=2, manifest_path=parallel_path, **kwargs)
        serial = [stable_view(r) for r in read_manifest(serial_path)]
        parallel = [stable_view(r) for r in read_manifest(parallel_path)]
        assert serial == parallel
        for record in serial:
            block = record["stats"]["critpath"]
            assert sum(block["categories"].values()) == record["cycles"]


# -- satellite: zero-event guards + by-class rollup -------------------------


class TestSinkGuards:
    def test_attribution_render_guards_empty_run(self):
        sink = CycleAttribution({})
        assert "(no events recorded)" in sink.render()
        assert "(no events recorded)" in sink.render_by_class()

    def test_attribution_fractions_guard_empty_run(self):
        fractions = CycleAttribution({}).fractions()
        assert fractions
        assert all(value == 0.0 for value in fractions.values())

    def test_noc_heatmap_guards_empty_run(self):
        assert "(no token traffic recorded)" in NocHeatmap({}).render(12, 12)

    def test_fmnoc_heatmap_guards_empty_run(self):
        assert "no arbitrated traffic" in FmnocHeatmap().render()


class TestByClassRollup:
    def test_per_class_conserves_node_cycles(self):
        _, run = _run("spmspv", arch=_arch(trace=True))
        sink = run.obs.attribution
        rolled = sink.per_class()
        assert sum(nodes for nodes, _ in rolled.values()) == len(
            sink.node_info
        )
        per_class_total = sum(
            (counts for _, counts in rolled.values()), start=Counter()
        )
        per_node_total = Counter()
        for counts in sink.per_node.values():
            per_node_total.update(counts)
        assert per_class_total == per_node_total

    def test_render_by_class_lists_classes(self):
        _, run = _run("spmspv", arch=_arch(trace=True))
        text = run.obs.attribution.render_by_class()
        assert "non-mem" in text
        assert "A" in text


# -- CLI smoke --------------------------------------------------------------


class TestCli:
    def test_critpath_command(self, capsys):
        from repro import cli

        rc = cli.main(["critpath", "spmspv", "--scale", SCALE])
        out = capsys.readouterr().out
        assert rc == 0
        assert "hard invariant" in out
        assert "static classification" in out

    def test_critpath_requires_workload_or_validate(self):
        from repro import cli

        with pytest.raises(SystemExit):
            cli.main(["critpath"])

    def test_profile_by_class(self, capsys):
        from repro import cli

        rc = cli.main(
            ["profile", "spmspv", "--scale", SCALE, "--by-class"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "cycle attribution by criticality class" in out
