"""The dense-dispatch engine hot path must be bit-identical to pre-PR.

The executed-tick rebuild (dense nid-indexed dispatch arrays, the
incrementally-maintained ordered active list, interned firing counters,
the memory system's busy-bank calendar, the resolved-reference FM-NoC
tick) is an *optimization, not an approximation*: every observable —
``SimStats``, final memory, fault schedules, snapshot layouts — must be
exactly what the pre-PR per-tick loop produced.

Three layers of evidence:

1. **Pinned digests** (``tests/data/engine_hot_digests.json``): the
   stable stats+memory digest of every Table 1 workload at tiny scale,
   captured on the pre-PR engine, for a clean run and a fault-injected
   run. Every (skip, trace, check, critpath, faults) variant the engine
   supports must still land on those exact digests. Regenerate — only
   after an *intentional* semantic change — with::

       PYTHONPATH=src:tests python tests/test_engine_hot.py --regen

2. **Order property**: the ordered active list must visit exactly the
   nodes ``sorted(set)`` would, under adversarial add/discard
   interleavings (the pre-PR loop's snapshot semantics).

3. **Snapshot portability**: a mid-run snapshot written by the pre-PR
   engine (``tests/data/engine_hot_pre_pr.snap``) must restore into the
   dense layout and finish bit-identically.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import random

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams, FaultParams, SimParams
from repro.core.policy import EFFCC
from repro.pnr.flow import compile_once
from repro.sim.engine import simulate
from repro.workloads.registry import ALL_WORKLOADS, make_workload

DATA_DIR = pathlib.Path(__file__).parent / "data"
DIGEST_PATH = DATA_DIR / "engine_hot_digests.json"
SNAP_PATH = DATA_DIR / "engine_hot_pre_pr.snap"
#: The workload the committed pre-PR snapshot fixture was taken from.
SNAP_WORKLOAD = "spmspv"
SNAP_EVERY = 400

FABRIC = monaco(12, 12)

#: Deterministic fault mix used for the pinned "faults" digests. Delay,
#: stall and grant-skip only — drops would (correctly) deadlock.
FAULTS = FaultParams(
    seed=3,
    mem_delay_prob=0.2,
    mem_delay_cycles=5,
    pe_stall_prob=0.1,
    grant_skip_prob=0.1,
)

#: (variant name, SimParams kwargs, pinned-digest key).
VARIANTS = [
    ("skip", dict(cycle_skip=True), "clean"),
    ("noskip", dict(cycle_skip=False), "clean"),
    ("trace", dict(cycle_skip=True, trace=True), "clean"),
    ("check", dict(cycle_skip=True, check=True), "clean"),
    ("critpath", dict(cycle_skip=True, critpath=True), "clean"),
    ("faults", dict(cycle_skip=True, faults=FAULTS), "faults"),
    ("faults-noskip", dict(cycle_skip=False, faults=FAULTS), "faults"),
]

_COMPILED: dict[str, object] = {}


def compiled_for(name: str):
    """One compile per workload per session (PnR is deterministic)."""
    if name not in _COMPILED:
        instance = make_workload(name, scale="tiny")
        _COMPILED[name] = (
            instance,
            compile_once(
                instance.kernel, FABRIC, ArchParams(), EFFCC, parallelism=1
            ),
        )
    return _COMPILED[name]


def run_digest(result) -> str:
    """Stable digest of one run's observable outcome.

    Covers the full machine-readable stats plus the final memory image.
    ``executed_cycles``/``skipped_cycles`` are scheduler telemetry
    (excluded from ``SimStats`` equality by design) and ``critpath`` is
    a profiling artifact — both are stripped so every variant of the
    same point digests identically.
    """
    stats = result.stats.to_dict()
    stats.pop("executed_cycles", None)
    stats.pop("skipped_cycles", None)
    stats.pop("critpath", None)
    blob = json.dumps(
        {"stats": stats, "memory": result.memory}, sort_keys=True
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def run_variant(name: str, sim_kwargs: dict):
    instance, compiled = compiled_for(name)
    arch = ArchParams(sim=SimParams(**sim_kwargs))
    arrays = {k: list(v) for k, v in instance.arrays.items()}
    return simulate(compiled, instance.params, arrays, arch)


def pinned() -> dict:
    return json.loads(DIGEST_PATH.read_text())


# -- 1. pinned pre-PR digests ------------------------------------------------


@pytest.mark.parametrize("variant,sim_kwargs,key", VARIANTS)
@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_digest_matches_pre_pr(name, variant, sim_kwargs, key):
    result = run_variant(name, sim_kwargs)
    assert run_digest(result) == pinned()[name][key], (
        f"{name} [{variant}] diverged from the pinned pre-PR digest — "
        "the hot-path rebuild is no longer bit-identical"
    )


# -- 2. ordered active list == sorted(set) -----------------------------------


def test_active_list_order_property():
    """The ordered active list visits exactly sorted(reference set).

    Mirrors the engine's usage pattern: batched adds between ticks,
    lazy discards (including discard-then-readd within one tick), and
    per-tick iteration snapshots that must equal ``sorted()`` of a
    reference Python set at the same point.
    """
    from repro.sim.engine import _OrderedIntSet

    rng = random.Random(20250808)
    n = 97
    active = _OrderedIntSet(n)
    reference: set[int] = set()
    for _tick in range(400):
        for _ in range(rng.randrange(8)):
            op = rng.randrange(3)
            nid = rng.randrange(n)
            if op == 0:
                active.add(nid)
                reference.add(nid)
            elif op == 1:
                active.discard(nid)
                reference.discard(nid)
            else:
                # discard-then-readd: the stale-copy + pending-dup case.
                active.discard(nid)
                active.add(nid)
                reference.add(nid)
        assert bool(active) == bool(reference)
        snapshot = [nid for nid in active.iter_ordered() if active.has(nid)]
        assert snapshot == sorted(reference)
        assert sorted(active) == sorted(reference)
        assert set(active.members()) == reference
        for nid in rng.sample(range(n), 10):
            assert active.has(nid) == (nid in reference)


def test_active_list_additions_during_iteration_not_visited():
    """Adds made mid-iteration land in the *next* tick's snapshot —
    exactly the pre-PR ``sorted(self.active)`` snapshot semantics."""
    from repro.sim.engine import _OrderedIntSet

    active = _OrderedIntSet(10)
    for nid in (1, 5, 7):
        active.add(nid)
    seen = []
    for nid in active.iter_ordered():
        if not active.has(nid):
            continue
        seen.append(nid)
        if nid == 1:
            active.add(3)  # too late for this tick
            active.discard(5)  # lazy delete: skipped below
    assert seen == [1, 7]
    assert list(active.iter_ordered()) == [1, 3, 7]


# -- 3. old snapshots restore into the new layout ----------------------------


def _snapshot_digest_parts():
    from repro.sim.snapshot import sim_config_digest

    instance, compiled = compiled_for(SNAP_WORKLOAD)
    arch = ArchParams(sim=SimParams(cycle_skip=True))
    from repro.sim.fmnoc_sim import MonacoFrontend

    frontend = MonacoFrontend(compiled.fabric)
    digest = sim_config_digest(
        compiled, arch, compiled.timing.clock_divider, frontend,
        dict(instance.params),
    )
    return instance, compiled, arch, digest


def test_pre_pr_snapshot_restores_into_dense_layout():
    """The committed pre-PR mid-run snapshot resumes bit-identically."""
    from repro.sim.snapshot import load_snapshot

    instance, compiled, arch, digest = _snapshot_digest_parts()
    snap = load_snapshot(str(SNAP_PATH), expect_digest=digest)
    assert snap.cycle > 0
    arrays = {k: list(v) for k, v in instance.arrays.items()}
    result = simulate(
        compiled, instance.params, arrays, arch, resume_from=snap
    )
    assert result.resume_info["from_cycle"] == snap.cycle
    instance.check(result.memory)
    assert run_digest(result) == pinned()[SNAP_WORKLOAD]["clean"]


def test_state_dict_roundtrip_mid_run_new_layout():
    """state_dict/load_state_dict keep the portable schema: a snapshot
    taken by the new engine mid-run restores into a *fresh* new engine
    and finishes on the pinned digest (checkpoint cadence exercises the
    dense layout's fold/refill paths)."""
    import os
    import tempfile

    from repro.sim.snapshot import CheckpointConfig

    instance, compiled = compiled_for(SNAP_WORKLOAD)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "mid.snap")
        arch = ArchParams(sim=SimParams(cycle_skip=True))
        arrays = {k: list(v) for k, v in instance.arrays.items()}
        from repro.errors import SimulationPreempted

        checkpoint = CheckpointConfig(path=path, cycle_budget=300)
        with pytest.raises(SimulationPreempted):
            simulate(
                compiled, instance.params, arrays, arch,
                checkpoint=checkpoint,
            )
        arrays = {k: list(v) for k, v in instance.arrays.items()}
        result = simulate(
            compiled, instance.params, arrays, arch, resume_from=path
        )
        assert result.resume_info is not None
        assert run_digest(result) == pinned()[SNAP_WORKLOAD]["clean"]


# -- regeneration entry point ------------------------------------------------


def _regen() -> None:
    """Capture the pinned digests and the snapshot fixture.

    Run this ONLY on a revision whose engine behavior is the intended
    reference (originally: the pre-PR per-tick loop).
    """
    DATA_DIR.mkdir(exist_ok=True)
    digests: dict[str, dict[str, str]] = {}
    for name in ALL_WORKLOADS:
        clean = run_digest(run_variant(name, dict(cycle_skip=True)))
        faulty = run_digest(
            run_variant(name, dict(cycle_skip=True, faults=FAULTS))
        )
        digests[name] = {"clean": clean, "faults": faulty}
        print(f"{name:12s} clean={clean} faults={faulty}")
    DIGEST_PATH.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
    print(f"wrote {DIGEST_PATH}")

    # Mid-run snapshot fixture: preempt SNAP_WORKLOAD after a cycle
    # budget, keeping the snapshot file for the restore test.
    from repro.errors import SimulationPreempted
    from repro.sim.snapshot import CheckpointConfig

    instance, compiled = compiled_for(SNAP_WORKLOAD)
    arch = ArchParams(sim=SimParams(cycle_skip=True))
    arrays = {k: list(v) for k, v in instance.arrays.items()}
    checkpoint = CheckpointConfig(path=str(SNAP_PATH), cycle_budget=SNAP_EVERY)
    try:
        simulate(
            compiled, instance.params, arrays, arch, checkpoint=checkpoint
        )
    except SimulationPreempted as exc:
        print(f"snapshot fixture written at cycle {exc.cycle}: {SNAP_PATH}")
    else:  # pragma: no cover - regen-time sanity
        raise SystemExit("run completed before the snapshot budget; "
                         "lower SNAP_EVERY")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        raise SystemExit("usage: python tests/test_engine_hot.py --regen")
