"""Tests for the IR/DFG pretty-printers and placement visualization."""

from repro.arch.fabric import clustered_single, monaco
from repro.arch.params import ArchParams
from repro.core.policy import EFFCC
from repro.dfg.lower import lower_kernel
from repro.dfg.pretty import format_dfg, format_node, to_dot
from repro.ir.pretty import format_expr, format_kernel, format_stmt
from repro.ir.ast import BinOp, Const, Store, UnOp, Var
from repro.pnr.flow import compile_once
from repro.pnr.viz import fabric_map, placement_map

from kernels import zoo_instance


class TestIRPretty:
    def test_expr_formatting(self):
        assert format_expr(Var("a") + 1) == "(a + 1)"
        assert format_expr(Var("a").min(Var("b"))) == "min(a, b)"
        assert format_expr(UnOp("abs", Var("x"))) == "abs(x)"
        assert format_expr(-Var("x")) == "(- x)"
        assert format_expr(Const(3.5)) == "3.5"

    def test_stmt_formatting(self):
        lines = format_stmt(Store("A", Const(0), BinOp("*", Var("v"), Const(2))))
        assert lines == ["A[0] = (v * 2)"]

    def test_kernel_roundtrip_readable(self):
        kernel, _, _ = zoo_instance("join")
        text = format_kernel(kernel)
        assert "kernel join(na, nb):" in text
        assert "while ((ia < na) & (ib < nb)):" in text
        assert "array A[16] : i" in text

    def test_for_with_step(self):
        from repro.ir.builder import KernelBuilder

        b = KernelBuilder("s")
        y = b.array("y", 8)
        with b.for_("i", 0, 8, step=2) as i:
            y.store(i, 1)
        text = format_kernel(b.build())
        assert "for i in range(0, 8, 2):" in text

    def test_parfor_and_if_render(self):
        kernel, _, _ = zoo_instance("branchy")
        text = format_kernel(kernel)
        assert "if (" in text and "else:" in text


class TestDFGPretty:
    def test_listing_covers_every_node(self):
        kernel, _, _ = zoo_instance("join")
        dfg = lower_kernel(kernel)
        text = format_dfg(dfg)
        for nid in dfg.nodes:
            assert f"%{nid}" in text

    def test_node_format_shows_ports_and_imms(self):
        kernel, _, _ = zoo_instance("dot")
        dfg = lower_kernel(kernel)
        loads = [n for n in dfg.nodes.values() if n.op == "load"]
        line = format_node(loads[0])
        assert "load.x" in line or "load.y" in line
        assert "idx=" in line

    def test_dot_export_wellformed(self):
        kernel, _, _ = zoo_instance("join")
        dfg = lower_kernel(kernel)
        from repro.core.criticality import analyze_criticality

        analyze_criticality(dfg)
        dot = to_dot(dfg)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == len(dfg.edge_list())
        assert "color=red" in dot  # class-A loads highlighted


class TestViz:
    def test_fabric_map_dimensions(self):
        text = fabric_map(monaco(8, 8))
        rows = [l for l in text.splitlines() if l.endswith("|mem")]
        assert len(rows) == 8
        assert "0" in rows[1]  # a D0 LS PE near memory

    def test_fabric_map_clustered(self):
        text = fabric_map(clustered_single(8, 8))
        rows = [l for l in text.splitlines() if l.endswith("|mem")]
        # Every row has LS PEs in CS.
        assert all(any(ch.isdigit() for ch in row) for row in rows)

    def test_placement_map_marks_criticality(self):
        kernel, _, _ = zoo_instance("join")
        compiled = compile_once(
            kernel, monaco(12, 12), ArchParams(), EFFCC, parallelism=1
        )
        text = placement_map(compiled)
        assert "A" in text  # critical loads visible
        assert "memory nodes per domain" in text
        rows = [l for l in text.splitlines() if l.endswith("|mem")]
        assert len(rows) == 12
