"""Integration tests for the timed simulator engine."""

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams, SimParams
from repro.core.policy import EFFCC
from repro.errors import DeadlockError
from repro.ir.interp import run_kernel
from repro.pnr.flow import compile_once
from repro.sim.engine import simulate
from repro.sim.upea import NumaFrontend, UniformFrontend

from kernels import ZOO, zoo_instance

ARCH = ArchParams()
FABRIC = monaco(12, 12)


def compiled(name, parallelism=1, policy=EFFCC, fabric=FABRIC, arch=ARCH):
    kernel, params, arrays = zoo_instance(name)
    ck = compile_once(kernel, fabric, arch, policy, parallelism=parallelism)
    return ck, params, arrays


@pytest.mark.parametrize("name", sorted(ZOO))
def test_results_match_reference(name):
    ck, params, arrays = compiled(name)
    kernel, _, _ = zoo_instance(name)
    reference = run_kernel(kernel, params, arrays)
    result = simulate(ck, params, arrays, ARCH)
    for array, expected in reference.items():
        assert result.memory[array] == expected, array


def test_determinism():
    ck, params, arrays = compiled("join")
    a = simulate(ck, params, arrays, ARCH)
    b = simulate(ck, params, arrays, ARCH)
    assert a.stats.system_cycles == b.stats.system_cycles
    assert a.stats.firings == b.stats.firings


def test_divider_scales_execution_time():
    ck, params, arrays = compiled("dot")
    fast = simulate(ck, params, arrays, ARCH, divider=1)
    slow = simulate(ck, params, arrays, ARCH, divider=4)
    assert slow.stats.system_cycles > fast.stats.system_cycles
    assert slow.stats.clock_divider == 4


def test_upea_delay_slows_execution():
    ck, params, arrays = compiled("join")
    cycles = []
    for delay in (0, 2, 8):
        res = simulate(
            ck,
            params,
            arrays,
            ARCH,
            frontend_factory=lambda f, a, d=delay: UniformFrontend(d),
            divider=2,
        )
        cycles.append(res.stats.system_cycles)
    assert cycles[0] < cycles[1] < cycles[2]


def test_numa_between_ideal_and_upea():
    ck, params, arrays = compiled("join")
    ideal = simulate(
        ck, params, arrays, ARCH,
        frontend_factory=lambda f, a: UniformFrontend(0), divider=2,
    ).stats.system_cycles
    numa = simulate(
        ck, params, arrays, ARCH,
        frontend_factory=lambda f, a: NumaFrontend(4, f, a, seed=2),
        divider=2,
    ).stats.system_cycles
    upea = simulate(
        ck, params, arrays, ARCH,
        frontend_factory=lambda f, a: UniformFrontend(4), divider=2,
    ).stats.system_cycles
    assert ideal <= numa <= upea


def test_monaco_critical_latency_tracks_domain():
    ck, params, arrays = compiled("join")
    res = simulate(ck, params, arrays, ARCH, divider=2)
    stats = res.stats
    # Both class-A loads sit in D0: mean latency is the cache round trip
    # with no fabric-memory NoC delay on top.
    assert stats.load_latency["A"].count > 0
    assert 0 in stats.domain_latency


def test_domain_latency_increases_with_distance():
    # Place the same kernel domain-unaware: far loads see larger latency.
    from repro.core.policy import DOMAIN_UNAWARE

    ck_near, params, arrays = compiled("join", policy=EFFCC)
    ck_far, _, _ = compiled("join", policy=DOMAIN_UNAWARE)
    near = simulate(ck_near, params, arrays, ARCH, divider=2)
    far = simulate(ck_far, params, arrays, ARCH, divider=2)
    assert (
        far.stats.load_latency["A"].mean
        > near.stats.load_latency["A"].mean
    )
    assert far.stats.system_cycles > near.stats.system_cycles


def test_stats_accounting():
    ck, params, arrays = compiled("dot")
    res = simulate(ck, params, arrays, ARCH)
    stats = res.stats
    assert stats.firings["load"] == 16
    assert stats.firings["store"] == 1
    assert stats.mem.loads == 16 and stats.mem.stores == 1
    assert stats.total_firings == sum(stats.firings.values())
    assert 0 < stats.ipc
    assert "loads" in stats.summary()


def test_shallow_fifos_still_correct():
    arch = ArchParams(sim=SimParams(fifo_capacity=2, max_outstanding=1))
    ck, params, arrays = compiled("join", arch=arch)
    kernel, _, _ = zoo_instance("join")
    reference = run_kernel(kernel, params, arrays)
    res = simulate(ck, params, arrays, arch)
    assert res.memory["O"] == reference["O"]


def test_parallel_workers_simulate_correctly():
    ck, params, arrays = compiled("parphases", parallelism=4)
    kernel, _, _ = zoo_instance("parphases")
    reference = run_kernel(kernel, params, arrays)
    res = simulate(ck, params, arrays, ARCH)
    assert res.memory["A"] == reference["A"]


def test_deadlock_detection():
    # Corrupt a compiled graph so a node waits on a token that never
    # arrives: the engine must diagnose rather than spin forever.
    from repro.dfg.graph import PortRef

    ck, params, arrays = compiled("join")
    arch = ArchParams(sim=SimParams(deadlock_cycles=2_000))
    # Rewire one binop input to a never-firing consumer-less node pair:
    # point it at itself (no token will ever arrive on that port).
    victim = next(
        n for n in ck.dfg.nodes.values() if n.op == "binop"
    )
    victim.inputs[0] = PortRef(victim.nid)
    with pytest.raises(DeadlockError, match="Stuck FIFOs|stranded"):
        simulate(ck, params, arrays, arch)


def test_frontend_name_recorded():
    ck, params, arrays = compiled("dot")
    res = simulate(ck, params, arrays, ARCH)
    assert res.stats.frontend == "monaco"
