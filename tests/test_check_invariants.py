"""Runtime invariant checkers (``repro.check.invariants``).

Two layers of coverage:

* **system** — every Table 1 workload simulates to quiescence with the
  checker armed, with cycle skipping on *and* off, and the results are
  bit-identical to an unchecked run (the checker only reads state);
* **unit** — every rule in the catalog is driven to a violation through
  the checker's hook API with hand-built histories, pinning both the
  trigger condition and the diagnostic text.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams, SimParams
from repro.check.invariants import InvariantChecker, InvariantViolation
from repro.core.policy import EFFCC
from repro.dfg.graph import PortRef
from repro.dfg.lower import lower_kernel
from repro.errors import SimulationError
from repro.pnr.flow import compile_once
from repro.sim.engine import simulate
from repro.sim.memsys import MemStats
from repro.workloads.registry import ALL_WORKLOADS, make_workload

from kernels import dot_kernel

FABRIC = monaco(12, 12)
PLAIN = ArchParams()
CHECKED = ArchParams(sim=SimParams(check=True))
CHECKED_NOSKIP = ArchParams(sim=SimParams(check=True, cycle_skip=False))

_COMPILED: dict[str, object] = {}


def _compiled(name):
    if name not in _COMPILED:
        instance = make_workload(name, scale="tiny")
        _COMPILED[name] = (
            instance,
            compile_once(
                instance.kernel, FABRIC, PLAIN, EFFCC, parallelism=1
            ),
        )
    return _COMPILED[name]


def _run(name, arch):
    instance, compiled = _compiled(name)
    arrays = {k: list(v) for k, v in instance.arrays.items()}
    return simulate(compiled, instance.params, arrays, arch)


# -- system: checker armed on the full registry -----------------------------


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_checked_run_is_bit_identical_and_skip_invariant(name):
    """Every workload passes every invariant, skip on and off, and the

    checker perturbs nothing: stats and memory equal the unchecked run.
    """
    plain = _run(name, PLAIN)
    checked = _run(name, CHECKED)
    checked_noskip = _run(name, CHECKED_NOSKIP)
    assert checked.stats == plain.stats
    assert checked.memory == plain.memory
    # SimStats equality already excludes executed/skipped by design;
    # pin the invariant ledger across the scheduler A/B explicitly.
    assert checked_noskip.stats == checked.stats
    assert checked_noskip.memory == checked.memory
    assert checked_noskip.stats.skipped_cycles == 0
    assert (
        checked_noskip.stats.executed_cycles
        == checked.stats.executed_cycles + checked.stats.skipped_cycles
    )
    instance, _ = _compiled(name)
    instance.check(checked.memory)


def test_violation_is_a_simulation_error():
    assert issubclass(InvariantViolation, SimulationError)


# -- unit: every rule fires --------------------------------------------------


def make_checker(capacity=2, max_outstanding=2):
    dfg = lower_kernel(dot_kernel())
    return InvariantChecker(dfg, capacity, max_outstanding), dfg


def edge_key(checker):
    return next(iter(checker.shadow))


def mem_nid(dfg, op="load"):
    return next(n.nid for n in dfg.nodes.values() if n.op == op)


def test_pop_from_empty_shadow_is_token_conservation():
    checker, _dfg = make_checker()
    consumer, port = edge_key(checker)
    decision = SimpleNamespace(pops=(port,))
    with pytest.raises(InvariantViolation, match="token-conservation"):
        checker.fire(5, consumer, decision)


def test_same_tick_consume_is_token_cadence():
    checker, dfg = make_checker()
    consumer, port = edge_key(checker)
    producer = dfg.nodes[consumer].inputs[port].src
    consumers = {producer: [(consumer, port)]}
    checker.commit(7, [(producer, 1)], consumers)
    decision = SimpleNamespace(pops=(port,))
    with pytest.raises(InvariantViolation, match="token-cadence"):
        checker.fire(7, consumer, decision)  # pushed at 7, popped at 7
    # ...but the next tick is fine.
    checker.commit(7, [(producer, 1)], consumers)
    checker.fire(8, consumer, decision)


def test_overfull_fifo_is_fifo_capacity():
    checker, dfg = make_checker(capacity=2)
    consumer, port = edge_key(checker)
    producer = dfg.nodes[consumer].inputs[port].src
    consumers = {producer: [(consumer, port)]}
    checker.commit(1, [(producer, 1)], consumers)
    checker.commit(2, [(producer, 1)], consumers)
    with pytest.raises(InvariantViolation, match="fifo-capacity"):
        checker.commit(3, [(producer, 1)], consumers)


def test_issue_over_limit_is_max_outstanding():
    checker, dfg = make_checker(max_outstanding=2)
    nid = mem_nid(dfg)
    checker.issue(3, nid, outstanding=1)  # one in flight: fine
    with pytest.raises(InvariantViolation, match="max-outstanding"):
        checker.issue(4, nid, outstanding=2)


def test_issue_before_predecessor_response_is_memory_ordering():
    # A RAW hazard on A[0] makes the lowering chain the load behind the
    # store with an ordering token.
    from repro.ir.ast import ArraySpec, Const, Kernel, Load, Store, Var

    kernel = Kernel(
        "raw_chain",
        [],
        [ArraySpec("A", 2, "i"), ArraySpec("B", 2, "i")],
        [
            Store("A", Const(0), Const(7)),
            Load("v", "A", Const(0)),
            Store("B", Const(0), Var("v")),
        ],
    )
    dfg = lower_kernel(kernel)
    checker = InvariantChecker(dfg, 2, 2)
    assert checker._mem_preds, "expected an ordering chain for the RAW pair"
    nid, (pred, *_rest) = next(iter(checker._mem_preds.items()))
    with pytest.raises(InvariantViolation, match="memory-ordering"):
        checker.issue(9, nid, outstanding=0)
    # Predecessor responds at 9 -> issuing *at* 9 is still too early...
    record = SimpleNamespace(seq=0, issue_cycle=1, arrived_cycle=8)
    checker.response(9, pred, record)
    with pytest.raises(InvariantViolation, match="memory-ordering"):
        checker.issue(9, nid, outstanding=0)
    # ...strictly after is legal.
    checker.issue(10, nid, outstanding=0)


def test_response_timing_and_order_rules():
    checker, dfg = make_checker()
    nid = mem_nid(dfg)
    bad = SimpleNamespace(seq=0, issue_cycle=5, arrived_cycle=3)
    with pytest.raises(InvariantViolation, match="response-timing"):
        checker.response(6, nid, bad)  # arrived before issue

    checker2, dfg2 = make_checker()
    nid2 = mem_nid(dfg2)
    checker2.response(
        6, nid2, SimpleNamespace(seq=1, issue_cycle=1, arrived_cycle=5)
    )
    with pytest.raises(InvariantViolation, match="response-order"):
        checker2.response(
            7, nid2, SimpleNamespace(seq=1, issue_cycle=2, arrived_cycle=6)
        )


def _quiescent_stats():
    """A stats/engine pair that satisfies every finish() identity."""
    stats = SimpleNamespace(
        executed_cycles=6,
        skipped_cycles=5,
        system_cycles=10,
        mem=MemStats(),
        firings={},
    )
    frontend = SimpleNamespace(audit=lambda: 0, in_network=0)
    engine = SimpleNamespace(tokens=0, mem_inflight=0, frontend=frontend)
    return stats, engine


def test_finish_accepts_a_consistent_ledger():
    checker, _dfg = make_checker()
    stats, engine = _quiescent_stats()
    checker.finish(stats, engine)  # must not raise


@pytest.mark.parametrize(
    "rule,mutate",
    [
        ("cycle-ledger", lambda s, e: setattr(s, "skipped_cycles", 99)),
        ("cache-ledger", lambda s, e: setattr(s.mem, "hits", 1)),
        (
            "service-ledger",
            lambda s, e: (
                setattr(s.mem, "loads", 1),
                setattr(s.mem, "hits", 1),
            ),
        ),
        ("quiescence", lambda s, e: setattr(e, "tokens", 3)),
        (
            "firing-ledger",
            lambda s, e: setattr(s, "firings", {"binop": 1}),
        ),
        (
            "frontend-audit",
            lambda s, e: setattr(
                e, "frontend", SimpleNamespace(audit=lambda: 2, in_network=2)
            ),
        ),
    ],
)
def test_finish_rejects_each_broken_ledger(rule, mutate):
    checker, _dfg = make_checker()
    stats, engine = _quiescent_stats()
    mutate(stats, engine)
    with pytest.raises(InvariantViolation, match=rule):
        checker.finish(stats, engine)


def test_finish_arrival_and_completion_ledgers():
    checker, _dfg = make_checker()
    stats, engine = _quiescent_stats()
    # A load was served but its response never arrived at a PE.
    stats.mem.loads = 1
    stats.mem.misses = 1
    stats.firings = {"load": 1}
    checker.fired = {"load": 1}
    with pytest.raises(InvariantViolation, match="arrival-ledger"):
        checker.finish(stats, engine)
    stats.mem.responses = 1
    # Arrivals now balance, but the checker saw an issue with no
    # delivered response.
    checker.issues = 1
    with pytest.raises(InvariantViolation, match="completion-ledger"):
        checker.finish(stats, engine)
    checker.responses = 1
    checker.finish(stats, engine)


def test_finish_flags_leftover_tokens_per_edge():
    checker, dfg = make_checker()
    consumer, port = edge_key(checker)
    producer = dfg.nodes[consumer].inputs[port].src
    checker.commit(1, [(producer, 1)], {producer: [(consumer, port)]})
    stats, engine = _quiescent_stats()
    with pytest.raises(InvariantViolation, match="token-conservation"):
        checker.finish(stats, engine)


def test_shadow_mirrors_every_edge():
    checker, dfg = make_checker()
    edges = {
        (node.nid, index)
        for node in dfg.nodes.values()
        for index, inp in enumerate(node.inputs)
        if isinstance(inp, PortRef)
    }
    assert set(checker.shadow) == edges
