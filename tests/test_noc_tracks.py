"""Tests for the heterogeneous cardinal/diagonal/skip track model."""

import random

import pytest

from repro.arch.fabric import monaco
from repro.arch.noc import MonacoTrackGraph, build_channel_graph
from repro.arch.params import ArchParams
from repro.core.criticality import analyze_criticality
from repro.core.policy import EFFCC
from repro.dfg.lower import lower_kernel
from repro.errors import ArchError
from repro.pnr.flow import compile_once
from repro.pnr.netlist import build_netlist
from repro.pnr.place import anneal, initial_placement
from repro.pnr.route import route_design
from repro.sim.engine import simulate

from kernels import zoo_instance


class TestGraphStructure:
    def test_edge_kinds_present(self):
        graph = MonacoTrackGraph(monaco(8, 8))
        kinds = {key[2] for _, key, _ in graph.edges_from((3, 3))}
        assert kinds == {"cardinal", "diagonal", "skip"}

    def test_segment_geometry(self):
        graph = MonacoTrackGraph(monaco(8, 8))
        for dst, key, wire in graph.edges_from((3, 3)):
            dx = abs(dst[0] - 3)
            dy = abs(dst[1] - 3)
            if key[2] == "cardinal":
                assert dx + dy == 1 and wire == 1.0
            elif key[2] == "diagonal":
                assert dx == 2 and dy == 2 and wire == 2.0
            else:
                assert dx + dy == 2 and (dx == 0 or dy == 0)
                assert wire == 2.0

    def test_border_clipping(self):
        graph = MonacoTrackGraph(monaco(8, 8))
        for dst, _, _ in graph.edges_from((0, 0)):
            assert 0 <= dst[0] < 8 and 0 <= dst[1] < 8

    def test_per_kind_capacity(self):
        graph = MonacoTrackGraph(monaco(8, 8), cardinal=3, diagonal=1, skip=2)
        cardinal_key = next(
            k for _, k, _ in graph.edges_from((3, 3)) if k[2] == "cardinal"
        )
        diagonal_key = next(
            k for _, k, _ in graph.edges_from((3, 3)) if k[2] == "diagonal"
        )
        assert graph.capacity(cardinal_key) == 3
        assert graph.capacity(diagonal_key) == 1

    def test_zero_capacity_kind_omitted(self):
        graph = MonacoTrackGraph(monaco(8, 8), diagonal=0)
        kinds = {key[2] for _, key, _ in graph.edges_from((3, 3))}
        assert "diagonal" not in kinds

    def test_requires_cardinal(self):
        with pytest.raises(ArchError):
            MonacoTrackGraph(monaco(8, 8), cardinal=0)

    def test_builder_dispatch(self):
        fab = monaco(8, 8)
        assert build_channel_graph(fab, 3, "simple").name == "simple"
        tracked = build_channel_graph(fab, 3, "monaco-tracks")
        assert tracked.name == "monaco-tracks"
        assert tracked.capacities == {
            "cardinal": 1, "diagonal": 1, "skip": 1
        }
        with pytest.raises(ArchError):
            build_channel_graph(fab, 3, "hyperspace")


class TestRoutingOnTracks:
    def route(self, graph):
        kernel, _, _ = zoo_instance("join")
        dfg = lower_kernel(kernel)
        analyze_criticality(dfg)
        netlist = build_netlist(dfg)
        fab = monaco(12, 12)
        rng = random.Random(0)
        placement = initial_placement(netlist, fab, EFFCC, rng)
        anneal(placement, rng, moves=3000)
        return netlist, placement, route_design(netlist, placement, graph)

    def test_diagonal_tracks_shorten_long_paths(self):
        from repro.arch.noc import ChannelGraph

        fab = monaco(12, 12)
        # Equal cardinal capacity: the tracked graph strictly adds
        # diagonal/skip segments, so routed delay should not get worse
        # (small slack for the negotiation heuristic).
        _, _, simple = self.route(ChannelGraph(fab, 1))
        _, _, tracked = self.route(MonacoTrackGraph(fab))
        assert tracked.max_hops <= simple.max_hops + 1

    def test_capacity_respected_per_kind(self):
        graph = MonacoTrackGraph(monaco(12, 12))
        _, _, routing = self.route(graph)
        usage: dict = {}
        for keys in routing.net_channels.values():
            for key in keys:
                usage[key] = usage.get(key, 0) + 1
        for key, use in usage.items():
            assert use <= graph.capacity(key), key


class TestEndToEnd:
    def test_compile_and_simulate_with_track_model(self):
        kernel, params, arrays = zoo_instance("join")
        arch = ArchParams(noc_model="monaco-tracks")
        compiled = compile_once(
            kernel, monaco(12, 12), arch, EFFCC, parallelism=1
        )
        result = simulate(compiled, params, arrays, arch)
        assert result.memory["O"] == [3]

    def test_bad_model_rejected_in_params(self):
        with pytest.raises(ArchError):
            ArchParams(noc_model="wormhole")
