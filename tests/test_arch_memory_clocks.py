"""Unit tests for address mapping, memory params, and clock rules."""

import pytest

from repro.arch.clocks import divider_for_max_hops, path_delay_units
from repro.arch.memory import AddressMap
from repro.arch.params import (
    ArchParams,
    MemoryParams,
    SimParams,
    TimingParams,
)
from repro.errors import ArchError


class TestAddressMap:
    def test_line_aligned_bases(self):
        mem = MemoryParams()
        amap = AddressMap({"a": 5, "b": 40}, mem)
        assert amap.bases["a"] == 0
        assert amap.bases["b"] % mem.line_words == 0
        assert amap.bases["b"] >= 5

    def test_address_and_bounds(self):
        amap = AddressMap({"a": 8}, MemoryParams())
        assert amap.address("a", 3) == 3
        with pytest.raises(ArchError):
            amap.address("a", 8)
        with pytest.raises(ArchError):
            amap.address("zzz", 0)

    def test_bank_interleaves_lines(self):
        mem = MemoryParams(n_banks=4, line_words=8)
        amap = AddressMap({"a": 64}, mem)
        assert amap.bank(0) == 0
        assert amap.bank(8) == 1
        assert amap.bank(31) == 3
        assert amap.bank(32) == 0

    def test_capacity_overflow(self):
        mem = MemoryParams(total_words=64)
        with pytest.raises(ArchError):
            AddressMap({"a": 128}, mem)


class TestParams:
    def test_defaults_match_paper(self):
        mem = MemoryParams()
        assert mem.n_banks == 32
        assert mem.hit_cycles == 2
        assert mem.memory_cycles == 4
        assert mem.miss_latency() == 6
        assert mem.cache_lines * mem.line_words * 4 == 256 * 1024  # 256KB
        assert mem.total_words * 4 == 8 * 1024 * 1024  # 8MB

    def test_invalid_params_rejected(self):
        with pytest.raises(ArchError):
            MemoryParams(n_banks=0)
        with pytest.raises(ArchError):
            SimParams(fifo_capacity=1)
        with pytest.raises(ArchError):
            SimParams(clock_divider=0)
        with pytest.raises(ArchError):
            ArchParams(noc_tracks=0)


class TestClocks:
    def test_path_delay_units(self):
        t = TimingParams()
        assert path_delay_units(0, t) == t.pe_logic_units
        assert path_delay_units(4, t) == t.pe_logic_units + 4

    def test_divider_monotone_in_hops(self):
        t = TimingParams()
        dividers = [divider_for_max_hops(h, t) for h in range(0, 30)]
        assert dividers == sorted(dividers)
        assert dividers[0] == 1

    def test_divider_two_for_typical_paths(self):
        # A typical 12x12 placement routes its longest net in ~4-6 hops;
        # the paper runs Monaco at divider 2.
        t = TimingParams()
        assert divider_for_max_hops(5, t) == 2
