"""Unit tests for statistics containers and their reporting helpers."""

import pytest

from repro.sim.memsys import MemStats
from repro.sim.stats import LatencyAccumulator, SimStats


class TestLatencyAccumulator:
    def test_streaming_mean(self):
        acc = LatencyAccumulator()
        for value in (2, 4, 6):
            acc.add(value)
        assert acc.count == 3
        assert acc.mean == pytest.approx(4.0)

    def test_empty_mean_is_zero(self):
        assert LatencyAccumulator().mean == 0.0

    def test_empty_percentile_is_zero(self):
        acc = LatencyAccumulator()
        assert acc.percentile(50) == 0.0
        assert acc.describe() == "-"

    def test_percentiles_nearest_rank(self):
        acc = LatencyAccumulator()
        for value in range(1, 101):  # 1..100
            acc.add(value)
        assert acc.percentile(50) == 50
        assert acc.percentile(95) == 95
        assert acc.percentile(99) == 99
        assert acc.percentile(100) == 100

    def test_reservoir_caps_sample_count(self):
        from repro.sim.stats import RESERVOIR_CAP

        acc = LatencyAccumulator()
        for value in range(RESERVOIR_CAP * 3):
            acc.add(value)
        assert len(acc.samples) == RESERVOIR_CAP
        assert acc.count == RESERVOIR_CAP * 3
        # Reservoir sampling keeps the percentile in the right ballpark.
        p50 = acc.percentile(50)
        assert RESERVOIR_CAP * 3 * 0.3 < p50 < RESERVOIR_CAP * 3 * 0.7

    def test_reservoir_is_deterministic(self):
        a, b = LatencyAccumulator(), LatencyAccumulator()
        for value in range(10_000):
            a.add(value)
            b.add(value)
        assert a.samples == b.samples
        assert a == b

    def test_to_dict_round_numbers(self):
        acc = LatencyAccumulator()
        for value in (2, 4, 6):
            acc.add(value)
        d = acc.to_dict()
        assert d["count"] == 3
        assert d["mean"] == pytest.approx(4.0)
        assert d["p50"] == 4


class TestSimStats:
    def make(self):
        stats = SimStats(clock_divider=2)
        stats.system_cycles = 100
        stats.firings = {"binop": 30, "load": 10, "store": 5}
        return stats

    def test_fabric_cycles(self):
        assert self.make().fabric_cycles == 50

    def test_total_firings_and_ipc(self):
        stats = self.make()
        assert stats.total_firings == 45
        assert stats.ipc == pytest.approx(45 / 50)

    def test_ipc_zero_without_cycles(self):
        assert SimStats().ipc == 0.0

    def test_record_load_buckets_by_class_and_domain(self):
        stats = SimStats()
        stats.record_load("A", 0, 4)
        stats.record_load("A", 0, 6)
        stats.record_load("B", 2, 10)
        stats.record_load("C", None, 3)
        assert stats.load_latency["A"].mean == pytest.approx(5.0)
        assert stats.domain_latency[0].count == 2
        assert stats.domain_latency[2].mean == pytest.approx(10.0)
        assert None not in stats.domain_latency

    def test_summary_includes_key_numbers(self):
        stats = self.make()
        stats.record_load("A", 0, 4)
        text = stats.summary()
        assert "100 system cycles" in text
        assert "divider 2" in text
        assert "A: p50=4" in text
        assert "mean 4.0" in text

    def test_summary_handles_no_loads(self):
        text = SimStats().summary()
        assert "0 system cycles" in text

    def test_to_dict_is_json_serialisable(self):
        import json

        stats = self.make()
        stats.record_load("A", 0, 4)
        d = stats.to_dict()
        text = json.dumps(d, sort_keys=True)
        assert d["system_cycles"] == 100
        assert d["load_latency"]["A"]["count"] == 1
        assert "p95" in text


class TestMemStats:
    @staticmethod
    def _record(issue_cycle=0):
        from repro.dfg.ops import MemRequest
        from repro.sim.memsys import RequestRecord

        return RequestRecord(
            nid=1,
            seq=1,
            request=MemRequest("load", "a", 0),
            address=0,
            pe_coord=(0, 0),
            issue_cycle=issue_cycle,
        )

    def test_record_service_counts(self):
        stats = MemStats()
        record = self._record()
        record.hit = True
        record.enqueue_cycle = 3
        record.serve_cycle = 5
        stats.record_service(record)
        assert stats.loads == 1 and stats.hits == 1
        assert stats.bank_wait_cycles == 2

    def test_avg_latency_tracks_arrivals(self):
        stats = MemStats()
        assert stats.avg_latency == 0.0  # no responses yet
        stats.record_arrival(self._record(issue_cycle=2), now=8)
        stats.record_arrival(self._record(issue_cycle=4), now=8)
        assert stats.latency_total == 10
        assert stats.responses == 2
        assert stats.avg_latency == pytest.approx(5.0)


class TestAvgMemLatency:
    """``SimStats.avg_mem_latency`` must agree with the reservoirs.

    The arrival-side ledger (``mem.latency_total / mem.responses``) and
    the per-class :class:`LatencyAccumulator` means observe the same
    ``arrived - issue`` sequence, so they agree *exactly*, not just
    approximately (the reservoir mean is exact; only percentiles are
    sampled).
    """

    def make(self, latencies):
        from repro.dfg.ops import MemRequest
        from repro.sim.memsys import RequestRecord

        stats = SimStats()
        for seq, latency in enumerate(latencies):
            stats.record_load("A" if seq % 2 else "B", 0, latency)
            record = RequestRecord(
                nid=1,
                seq=seq,
                request=MemRequest("load", "a", 0),
                address=0,
                pe_coord=(0, 0),
                issue_cycle=0,
            )
            stats.mem.record_arrival(record, now=latency)
        return stats

    def test_matches_reservoir_mean_exactly(self):
        latencies = [3, 7, 4, 11, 9, 2, 5]
        stats = self.make(latencies)
        acc_total = sum(a.total for a in stats.load_latency.values())
        acc_count = sum(a.count for a in stats.load_latency.values())
        assert stats.mem.latency_total == acc_total == sum(latencies)
        assert stats.mem.responses == acc_count == len(latencies)
        assert stats.avg_mem_latency == pytest.approx(
            sum(latencies) / len(latencies)
        )

    def test_zero_without_responses(self):
        assert SimStats().avg_mem_latency == 0.0

    def test_summary_and_to_dict_expose_it(self):
        stats = self.make([4, 6])
        assert "avg mem latency 5.0 cycles" in stats.summary()
        d = stats.to_dict()
        assert d["mem"]["avg_mem_latency"] == pytest.approx(5.0)
        assert d["mem"]["latency_total"] == 10
        assert d["mem"]["responses"] == 2
        # An idle machine reports no latency line rather than 0.0.
        assert "avg mem latency" not in SimStats().summary()
