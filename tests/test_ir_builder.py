"""Unit tests for the KernelBuilder DSL."""

import pytest

from repro.errors import IRError
from repro.ir.ast import Assign, For, If, Load, ParFor, Store, While
from repro.ir.builder import KernelBuilder


def test_params_namespace():
    b = KernelBuilder("k", params=["n", "m"])
    assert b.p.n.name == "n"
    assert b.p.m.name == "m"


def test_let_and_set_emit_assigns():
    b = KernelBuilder("k")
    v = b.let("v", 1)
    b.set(v, v + 1)
    b.set("v", 3)
    kernel = b.build()
    assert all(isinstance(s, Assign) for s in kernel.body)
    assert [s.var for s in kernel.body] == ["v", "v", "v"]


def test_array_load_store():
    b = KernelBuilder("k")
    a = b.array("A", 4)
    v = a.load(0)
    a.store(1, v)
    kernel = b.build()
    assert isinstance(kernel.body[0], Load)
    assert isinstance(kernel.body[1], Store)
    assert kernel.array("A").size == 4


def test_duplicate_array_rejected():
    b = KernelBuilder("k")
    b.array("A", 4)
    with pytest.raises(IRError):
        b.array("A", 8)


def test_unknown_array_lookup_raises():
    b = KernelBuilder("k")
    kernel = b.build()
    with pytest.raises(IRError):
        kernel.array("missing")


def test_for_region_nesting():
    b = KernelBuilder("k", params=["n"])
    a = b.array("A", 16)
    with b.for_("i", 0, b.p.n) as i:
        with b.for_("j", 0, 4) as j:
            a.store(i * 4 + j, i + j)
    kernel = b.build()
    outer = kernel.body[0]
    assert isinstance(outer, For)
    inner = outer.body[0]
    assert isinstance(inner, For)
    assert isinstance(inner.body[0], Store)


def test_parfor_region():
    b = KernelBuilder("k", params=["n"])
    a = b.array("A", 8)
    with b.parfor("i", 0, b.p.n) as i:
        a.store(i, i)
    assert isinstance(b.build().body[0], ParFor)


def test_while_region():
    b = KernelBuilder("k")
    a = b.array("A", 8)
    i = b.let("i", 0)
    with b.while_(i < 4):
        a.store(i, i)
        b.set(i, i + 1)
    assert isinstance(b.build().body[1], While)


def test_if_else_attachment():
    b = KernelBuilder("k")
    a = b.array("A", 2)
    x = b.let("x", 1)
    with b.if_(x > 0):
        a.store(0, 1)
    with b.else_():
        a.store(1, 1)
    stmt = b.build().body[1]
    assert isinstance(stmt, If)
    assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1


def test_else_without_if_rejected():
    b = KernelBuilder("k")
    with pytest.raises(IRError):
        with b.else_():
            pass


def test_double_else_rejected():
    b = KernelBuilder("k")
    x = b.let("x", 1)
    with b.if_(x):
        pass
    with b.else_():
        pass
    with pytest.raises(IRError):
        with b.else_():
            pass


def test_else_must_directly_follow_if():
    b = KernelBuilder("k")
    x = b.let("x", 1)
    with b.if_(x):
        pass
    b.let("y", 2)
    with pytest.raises(IRError):
        with b.else_():
            pass


def test_build_with_open_region_rejected():
    b = KernelBuilder("k", params=["n"])
    ctx = b.for_("i", 0, b.p.n)
    ctx.__enter__()
    with pytest.raises(IRError):
        b.build()


def test_emit_after_build_rejected():
    b = KernelBuilder("k")
    b.build()
    with pytest.raises(IRError):
        b.let("x", 1)


def test_fresh_names_are_unique():
    b = KernelBuilder("k")
    names = {b.fresh("t") for _ in range(100)}
    assert len(names) == 100


def test_load_auto_names_are_fresh():
    b = KernelBuilder("k")
    a = b.array("A", 4)
    v1 = a.load(0)
    v2 = a.load(1)
    assert v1.name != v2.name
