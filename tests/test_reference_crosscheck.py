"""Cross-check workload references against independent implementations.

The reference outputs packaged with each workload are computed in plain
Python; these tests recompute them with numpy / scipy / networkx so a bug
in the hand-rolled reference cannot silently validate a matching bug in
the kernel.
"""

import numpy as np
import pytest

from repro.workloads import make_workload
from repro.workloads.data import csr_to_dense


def as_np(values):
    return np.array(values, dtype=np.int64)


def test_dmv_matches_numpy():
    inst = make_workload("dmv", scale="small")
    n, m = inst.params["n"], inst.params["m"]
    a = as_np(inst.arrays["A"]).reshape(n, m)
    x = as_np(inst.arrays["x"])
    assert (a @ x).tolist() == inst.reference["y"]


def test_spmv_matches_numpy():
    inst = make_workload("spmv", scale="small")
    n = inst.params["n"]
    dense = as_np(
        sum(
            csr_to_dense(
                inst.arrays["pos"], inst.arrays["crd"],
                inst.arrays["val"], n, n,
            ),
            [],
        )
    ).reshape(n, n)
    x = as_np(inst.arrays["x"])
    assert (dense @ x).tolist() == inst.reference["y"]


def test_spmspv_matches_scipy():
    scipy_sparse = pytest.importorskip("scipy.sparse")
    inst = make_workload("spmspv", scale="small")
    n = inst.params["n"]
    matrix = scipy_sparse.csr_matrix(
        (
            inst.arrays["val"],
            inst.arrays["crd"],
            inst.arrays["pos"],
        ),
        shape=(n, n),
    )
    vector = np.zeros(n, dtype=np.int64)
    for c, v in zip(inst.arrays["vcrd"], inst.arrays["vval"]):
        vector[c] = v
    assert (matrix @ vector).tolist() == inst.reference["D"]


def test_spmspm_matches_numpy():
    inst = make_workload("spmspm", scale="small")
    n = inst.params["n"]
    a = as_np(
        sum(
            csr_to_dense(
                inst.arrays["apos"], inst.arrays["acrd"],
                inst.arrays["aval"], n, n,
            ),
            [],
        )
    ).reshape(n, n)
    bt = as_np(
        sum(
            csr_to_dense(
                inst.arrays["tpos"], inst.arrays["tcrd"],
                inst.arrays["tval"], n, n,
            ),
            [],
        )
    ).reshape(n, n)
    assert (a @ bt.T).reshape(-1).tolist() == inst.reference["C"]


def test_spadd_matches_numpy():
    inst = make_workload("spadd", scale="small")
    n = inst.params["n"]
    a = as_np(
        sum(
            csr_to_dense(
                inst.arrays["apos"], inst.arrays["acrd"],
                inst.arrays["aval"], n, n,
            ),
            [],
        )
    )
    b = as_np(
        sum(
            csr_to_dense(
                inst.arrays["bpos"], inst.arrays["bcrd"],
                inst.arrays["bval"], n, n,
            ),
            [],
        )
    )
    assert (a + b).tolist() == inst.reference["C"]


def test_jacobi2d_matches_numpy_stencil():
    inst = make_workload("jacobi2d", scale="small")
    n, pairs = inst.params["n"], inst.params["pairs"]
    a = as_np(inst.arrays["A"]).reshape(n, n)
    b = np.zeros_like(a)

    def sweep(src, dst):
        total = (
            src[1:-1, 1:-1]
            + src[:-2, 1:-1]
            + src[2:, 1:-1]
            + src[1:-1, :-2]
            + src[1:-1, 2:]
        )
        dst[1:-1, 1:-1] = total // 5  # non-negative: floor == trunc

    for _ in range(pairs):
        sweep(a, b)
        sweep(b, a)
    assert a.reshape(-1).tolist() == inst.reference["A"]
    assert b.reshape(-1).tolist() == inst.reference["B"]


def test_heat3d_matches_numpy_stencil():
    inst = make_workload("heat3d", scale="small")
    n, pairs = inst.params["n"], inst.params["pairs"]
    a = as_np(inst.arrays["A"]).reshape(n, n, n)
    b = np.zeros_like(a)

    def sweep(src, dst):
        core = src[1:-1, 1:-1, 1:-1]
        total = (
            2 * core
            + src[:-2, 1:-1, 1:-1]
            + src[2:, 1:-1, 1:-1]
            + src[1:-1, :-2, 1:-1]
            + src[1:-1, 2:, 1:-1]
            + src[1:-1, 1:-1, :-2]
            + src[1:-1, 1:-1, 2:]
        )
        dst[1:-1, 1:-1, 1:-1] = total // 8

    for _ in range(pairs):
        sweep(a, b)
        sweep(b, a)
    assert a.reshape(-1).tolist() == inst.reference["A"]


def test_tc_matches_networkx():
    nx = pytest.importorskip("networkx")
    inst = make_workload("tc", scale="small")
    nodes = inst.params["n"]
    pos, crd = inst.arrays["pos"], inst.arrays["crd"]
    graph = nx.Graph()
    graph.add_nodes_from(range(nodes))
    for u in range(nodes):
        for k in range(pos[u], pos[u + 1]):
            graph.add_edge(u, crd[k])
    expected_total = sum(nx.triangles(graph).values()) // 3
    assert sum(inst.reference["counts"]) == expected_total


def test_mergesort_matches_sorted():
    inst = make_workload("mergesort", scale="small")
    n = inst.params["n"]
    assert inst.reference["buf"][:n] == sorted(inst.arrays["buf"][:n])


def test_fft_matches_numpy():
    inst = make_workload("fft", scale="small")
    signal = np.array(inst.arrays["xre"]) + 1j * np.array(
        inst.arrays["xim"]
    )
    expected = np.fft.fft(signal)
    got = np.array(inst.reference["re"]) + 1j * np.array(
        inst.reference["im"]
    )
    assert np.allclose(got, expected, atol=1e-9)


def test_ic_conv_matches_scipy():
    correlate = pytest.importorskip("scipy.signal").correlate
    inst = make_workload("ic", scale="small")
    hw = inst.params["hw"]
    cin, cout = inst.params["cin"], inst.params["cout"]
    oh = hw - 2
    x = as_np(inst.arrays["X"]).reshape(cin, hw, hw)
    w = as_np(inst.arrays["W"]).reshape(cout, cin, 3, 3)
    bias = as_np(inst.arrays["bias"])
    conv = np.zeros((cout, oh, oh), dtype=np.int64)
    for oc in range(cout):
        acc = np.zeros((oh, oh), dtype=np.int64)
        for ci in range(cin):
            acc += correlate(x[ci], w[oc, ci], mode="valid").astype(
                np.int64
            )
        conv[oc] = np.maximum(acc + bias[oc], 0)
    assert conv.reshape(-1).tolist() == inst.reference["conv"]


def test_ad_matches_numpy():
    inst = make_workload("ad", scale="small")
    nin, nh = inst.params["nin"], inst.params["nh"]
    x = as_np(inst.arrays["x"])
    w1 = as_np(inst.arrays["W1"]).reshape(nh, nin)
    b1 = as_np(inst.arrays["b1"])
    w2 = as_np(inst.arrays["W2"]).reshape(nin, nh)
    b2 = as_np(inst.arrays["b2"])
    hidden = np.maximum(w1 @ x + b1, 0)
    assert (w2 @ hidden + b2).tolist() == inst.reference["y"]


def test_vww_matches_numpy():
    correlate = pytest.importorskip("scipy.signal").correlate
    inst = make_workload("vww", scale="small")
    hw, ch = inst.params["hw"], inst.params["ch"]
    cout, classes = inst.params["cout"], inst.params["classes"]
    oh = hw - 2
    area = oh * oh
    x = as_np(inst.arrays["X"]).reshape(ch, hw, hw)
    dw = as_np(inst.arrays["DW"]).reshape(ch, 3, 3)
    pw = as_np(inst.arrays["PW"]).reshape(cout, ch)
    fcw = as_np(inst.arrays["FCW"]).reshape(classes, cout * area)
    dwo = np.stack(
        [
            np.maximum(
                correlate(x[c], dw[c], mode="valid").astype(np.int64), 0
            )
            for c in range(ch)
        ]
    ).reshape(ch, area)
    pwo = np.maximum(pw @ dwo, 0).reshape(cout * area)
    assert (fcw @ pwo).tolist() == inst.reference["out"]
