"""Unit tests for the full compile flow and parallelism search."""

import pytest

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams
from repro.core.policy import DOMAIN_UNAWARE, EFFCC
from repro.errors import PnRError
from repro.pnr.flow import _search_degrees, compile_kernel, compile_once

from kernels import zoo_instance


ARCH = ArchParams()


class TestCompileOnce:
    def test_join_compiles_and_places_critically(self):
        kernel, _, _ = zoo_instance("join")
        fab = monaco(12, 12)
        compiled = compile_once(kernel, fab, ARCH, EFFCC, parallelism=1)
        hist = compiled.domain_histogram()
        assert hist["A"] == {0: 2}
        assert compiled.timing.clock_divider >= 1
        assert compiled.parallelism == 1

    def test_domain_unaware_scatters_memory(self):
        kernel, _, _ = zoo_instance("join")
        fab = monaco(12, 12)
        compiled = compile_once(
            kernel, fab, ARCH, DOMAIN_UNAWARE, parallelism=1
        )
        domains = [
            compiled.domain_of(n.nid) for n in compiled.dfg.memory_nodes()
        ]
        assert any(d != 0 for d in domains)

    def test_does_not_fit_raises(self):
        kernel, _, _ = zoo_instance("join")
        with pytest.raises(PnRError):
            compile_once(kernel, monaco(2, 2), ARCH, EFFCC, parallelism=1)

    def test_deterministic(self):
        kernel, _, _ = zoo_instance("join")
        fab = monaco(12, 12)
        a = compile_once(kernel, fab, ARCH, EFFCC, parallelism=1, seed=4)
        b = compile_once(kernel, fab, ARCH, EFFCC, parallelism=1, seed=4)
        assert a.placement == b.placement
        assert a.timing == b.timing

    def test_summary_mentions_key_facts(self):
        kernel, _, _ = zoo_instance("join")
        compiled = compile_once(
            kernel, monaco(12, 12), ARCH, EFFCC, parallelism=1
        )
        text = compiled.summary()
        assert "effcc" in text and "divider" in text


class TestParallelismSearch:
    def test_search_degrees_monotone(self):
        degrees = _search_degrees(32)
        assert degrees == sorted(degrees)
        assert degrees[0] == 1 and degrees[-1] == 32

    def test_search_finds_multi_worker_fit(self):
        kernel, _, _ = zoo_instance("parphases")
        compiled = compile_kernel(kernel, monaco(12, 12), ARCH, EFFCC)
        assert compiled.parallelism >= 2

    def test_search_prefers_throughput_score(self):
        kernel, _, _ = zoo_instance("parphases")
        compiled = compile_kernel(kernel, monaco(12, 12), ARCH, EFFCC)
        score = compiled.parallelism / compiled.timing.clock_divider
        one = compile_once(kernel, monaco(12, 12), ARCH, EFFCC, 1)
        assert score >= 1.0 / one.timing.clock_divider

    def test_impossible_kernel_raises(self):
        kernel, _, _ = zoo_instance("join")
        with pytest.raises(PnRError, match="does not fit"):
            compile_kernel(kernel, monaco(2, 2), ARCH, EFFCC)
