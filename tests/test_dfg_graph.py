"""Unit tests for the DFG representation and its structural validation."""

import pytest

from repro.dfg.graph import DFG, ImmRef, PortRef
from repro.errors import DFGError


def make_dfg():
    return DFG("t")


def test_add_and_len():
    dfg = make_dfg()
    src = dfg.add("source", [])
    dfg.add("inject", [PortRef(src)], value=ImmRef("const", 1))
    assert len(dfg) == 2


def test_unknown_op_rejected():
    with pytest.raises(DFGError):
        make_dfg().add("frobnicate", [])


def test_immref_kinds():
    assert ImmRef("const", 3).resolve({}) == 3
    assert ImmRef("param", "n").resolve({"n": 9}) == 9
    with pytest.raises(DFGError):
        ImmRef("thing", 1)
    with pytest.raises(DFGError):
        ImmRef("param", "n").resolve({})


def test_consumers_and_edges():
    dfg = make_dfg()
    src = dfg.add("source", [])
    a = dfg.add(
        "binop", [PortRef(src), ImmRef("const", 1)], opname="+"
    )
    b = dfg.add("binop", [PortRef(src), PortRef(a)], opname="*")
    consumers = dfg.consumers()
    assert (a, 0) in consumers[src]
    assert (b, 0) in consumers[src]
    assert (b, 1) in consumers[a]
    assert len(dfg.edge_list()) == 3


def test_validate_passes_on_wellformed():
    dfg = make_dfg()
    src = dfg.add("source", [])
    dfg.declare_array("A", 8)
    dfg.add("load", [PortRef(src)], array="A", has_ord=False)
    dfg.validate()


def test_two_sources_rejected():
    dfg = make_dfg()
    dfg.add("source", [])
    dfg.add("source", [])
    with pytest.raises(DFGError, match="multiple source"):
        dfg.validate()


def test_wrong_arity_rejected():
    dfg = make_dfg()
    src = dfg.add("source", [])
    dfg.add("steer", [PortRef(src)], polarity=True)
    with pytest.raises(DFGError, match="expected 2 inputs"):
        dfg.validate()


def test_dangling_edge_rejected():
    dfg = make_dfg()
    dfg.add("unop", [PortRef(999)], opname="-")
    with pytest.raises(DFGError, match="dangling"):
        dfg.validate()


def test_imm_forbidden_on_cadence_ports():
    dfg = make_dfg()
    src = dfg.add("source", [])
    dfg.add(
        "carry",
        [ImmRef("const", 0), PortRef(src), PortRef(src)],
    )
    with pytest.raises(DFGError, match="immediate not allowed"):
        dfg.validate()


def test_steer_dec_must_be_edge():
    dfg = make_dfg()
    src = dfg.add("source", [])
    dfg.add("steer", [ImmRef("const", 1), PortRef(src)], polarity=True)
    with pytest.raises(DFGError, match="immediate not allowed"):
        dfg.validate()


def test_all_imm_node_is_self_firing_and_rejected():
    dfg = make_dfg()
    dfg.add("binop", [ImmRef("const", 1), ImmRef("const", 2)], opname="+")
    with pytest.raises(DFGError, match="self-firing"):
        dfg.validate()


def test_load_missing_array_attr_rejected():
    dfg = make_dfg()
    src = dfg.add("source", [])
    dfg.add("load", [PortRef(src)], has_ord=False)
    with pytest.raises(DFGError, match="missing array"):
        dfg.validate()


def test_load_undeclared_array_rejected():
    dfg = make_dfg()
    src = dfg.add("source", [])
    dfg.add("load", [PortRef(src)], array="Z", has_ord=False)
    with pytest.raises(DFGError, match="not declared"):
        dfg.validate()


def test_binop_missing_opname_rejected():
    dfg = make_dfg()
    src = dfg.add("source", [])
    dfg.add("binop", [PortRef(src), PortRef(src)])
    with pytest.raises(DFGError, match="missing opname"):
        dfg.validate()


def test_steer_missing_polarity_rejected():
    dfg = make_dfg()
    src = dfg.add("source", [])
    dfg.add("steer", [PortRef(src), PortRef(src)])
    with pytest.raises(DFGError, match="missing polarity"):
        dfg.validate()


def test_join_needs_inputs():
    dfg = make_dfg()
    dfg.add("join", [])
    with pytest.raises(DFGError, match="no inputs"):
        dfg.validate()


def test_source_with_inputs_rejected():
    dfg = make_dfg()
    first = dfg.add("source", [])
    dfg.nodes[first].inputs.append(PortRef(first))
    with pytest.raises(DFGError, match="no inputs"):
        dfg.validate()


def test_array_redeclaration_size_conflict():
    dfg = make_dfg()
    dfg.declare_array("A", 8)
    with pytest.raises(DFGError, match="redeclared"):
        dfg.declare_array("A", 4)


def test_op_histogram_and_memory_nodes():
    dfg = make_dfg()
    src = dfg.add("source", [])
    dfg.declare_array("A", 8)
    dfg.add("load", [PortRef(src)], array="A", has_ord=False)
    dfg.add("load", [PortRef(src)], array="A", has_ord=False)
    hist = dfg.op_histogram()
    assert hist == {"source": 1, "load": 2}
    assert len(dfg.memory_nodes()) == 2


def test_port_names():
    dfg = make_dfg()
    src = dfg.add("source", [])
    nid = dfg.add("carry", [PortRef(src), PortRef(src), PortRef(src)])
    node = dfg.nodes[nid]
    assert [node.port_name(i) for i in range(3)] == ["init", "back", "dec"]
    dfg.declare_array("A", 4)
    load = dfg.add(
        "load", [PortRef(src), PortRef(src)], array="A", has_ord=True
    )
    assert dfg.nodes[load].port_name(1) == "ord"
