"""The paper's running example: spmspv and its critical loads.

Reproduces, at example scale, the story of Fig. 3/5/6: the sparse
matrix-sparse vector product's intersection loop has loads on a
loop-governing recurrence; effcc classifies them as class-A critical and
places them in NUPEA domain D0, which recovers most of an idealized
memory's performance.

Run with::

    python examples/spmspv_criticality.py
"""

from repro import ArchParams, compile_kernel, make_workload, monaco, simulate
from repro.core import DOMAIN_UNAWARE, EFFCC, format_report
from repro.sim import NumaFrontend, UniformFrontend


def main():
    instance = make_workload("spmspv", scale="small")
    fabric = monaco(12, 12)
    arch = ArchParams()

    compiled = compile_kernel(instance.kernel, fabric, arch, policy=EFFCC)
    print(compiled.summary())
    print(format_report(compiled.dfg, compiled.criticality))
    print("memory nodes per NUPEA domain:", compiled.domain_histogram())
    print()

    # Compare fabric-memory interconnects on the same compiled design
    # (mini Fig. 6c / Fig. 11).
    frontends = {
        "ideal (UPEA0)": lambda f, a: UniformFrontend(0),
        "UPEA2": lambda f, a: UniformFrontend(2 * 2),
        "NUMA-UPEA2": lambda f, a: NumaFrontend(2 * 2, f, a, seed=0),
        "Monaco (NUPEA)": None,  # default Monaco frontend
    }
    cycles = {}
    for label, factory in frontends.items():
        kwargs = {"divider": 2}
        if factory is not None:
            kwargs["frontend_factory"] = factory
        result = simulate(
            compiled, instance.params, instance.arrays, arch, **kwargs
        )
        instance.check(result.memory)
        cycles[label] = result.stats.system_cycles
        lat = result.stats.load_latency["A"]
        print(
            f"{label:16s}: {result.stats.system_cycles:7d} cycles"
            f"   (mean class-A load latency {lat.mean:5.1f})"
        )
    base = cycles["Monaco (NUPEA)"]
    print(
        f"\nNUPEA vs UPEA2 speedup: {cycles['UPEA2'] / base:.2f}x; "
        f"vs ideal: {cycles['ideal (UPEA0)'] / base:.2f}x"
    )

    # The ablation at the heart of Fig. 12: throw away criticality and
    # domain awareness and watch the critical loads drift to far domains.
    unaware = compile_kernel(
        instance.kernel,
        fabric,
        arch,
        policy=DOMAIN_UNAWARE,
        parallelism=compiled.parallelism,
    )
    result = simulate(unaware, instance.params, instance.arrays, arch,
                      divider=2)
    print(
        f"\ndomain-unaware PnR: {result.stats.system_cycles} cycles "
        f"({result.stats.system_cycles / base:.2f}x slower), "
        f"class-A loads now in domains "
        f"{sorted(unaware.domain_histogram()['A'])}"
    )


if __name__ == "__main__":
    main()
