"""Design-space exploration of NUPEA fabric topologies (mini Fig. 16/17).

Compiles and simulates spmspv on Monaco and the clustered alternatives
(Fig. 13) across fabric sizes and NoC track budgets, reporting execution
time, the PnR-chosen parallelism, and the max routed path delay that sets
the fabric clock divider.

Run with::

    python examples/topology_exploration.py
"""

from repro import ArchParams, build_fabric, compile_kernel, make_workload, simulate
from repro.core import EFFCC
from repro.errors import PnRError

TOPOLOGIES = ("monaco", "clustered-single", "clustered-double")
SIZES = (8, 16)
TRACKS = (2, 7)


def main():
    instance = make_workload("spmspv", scale="small")
    print(
        f"{'topology':18s} {'fabric':8s} {'tracks':>6s} {'par':>4s} "
        f"{'maxhops':>8s} {'divider':>8s} {'cycles':>9s}"
    )
    for tracks in TRACKS:
        arch = ArchParams(noc_tracks=tracks)
        for size in SIZES:
            for topology in TOPOLOGIES:
                fabric = build_fabric(topology, size, size)
                try:
                    compiled = compile_kernel(
                        instance.kernel, fabric, arch, policy=EFFCC
                    )
                except PnRError:
                    print(f"{topology:18s} {size}x{size:<5d} {tracks:6d}"
                          "  unroutable")
                    continue
                divider = max(2, compiled.timing.clock_divider)
                result = simulate(
                    compiled,
                    instance.params,
                    instance.arrays,
                    arch,
                    divider=divider,
                )
                instance.check(result.memory)
                print(
                    f"{topology:18s} {size}x{size:<5d} {tracks:6d} "
                    f"{compiled.parallelism:4d} "
                    f"{compiled.timing.max_hops:8d} {divider:8d} "
                    f"{result.stats.system_cycles:9d}"
                )
    print(
        "\nThe paper's claim (Fig. 16/17): with scarce tracks, clustered"
        "\ntopologies suffer longer paths and worse dividers on large"
        "\nfabrics, while Monaco keeps LS PEs adjacent to arithmetic rows."
    )


if __name__ == "__main__":
    main()
