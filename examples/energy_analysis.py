"""Energy analysis: where does the energy go, and what does NUPEA save?

Data movement is the paper's motivating bottleneck. This example runs
spmspv under effcc and domain-unaware placement, and under the UPEA
baseline, then breaks each run's energy down by component.

Run with::

    python examples/energy_analysis.py
"""

from repro import ArchParams, compile_kernel, make_workload, monaco, simulate
from repro.core import DOMAIN_UNAWARE, EFFCC
from repro.sim import UniformFrontend, estimate_energy


def main():
    instance = make_workload("spmspv", scale="small")
    fabric = monaco(12, 12)
    arch = ArchParams()

    effcc = compile_kernel(instance.kernel, fabric, arch, policy=EFFCC)
    unaware = compile_kernel(
        instance.kernel,
        fabric,
        arch,
        policy=DOMAIN_UNAWARE,
        parallelism=effcc.parallelism,
    )

    runs = {
        "Monaco + effcc": (effcc, None),
        "Monaco + domain-unaware": (unaware, None),
        "UPEA2 + effcc": (effcc, lambda f, a: UniformFrontend(4)),
    }
    print(f"{'configuration':26s} {'cycles':>8s} {'total pJ':>9s} "
          f"{'data-NoC':>9s} {'FM-NoC':>7s} {'movement':>9s}")
    for label, (compiled, factory) in runs.items():
        kwargs = {"divider": 2}
        if factory is not None:
            kwargs["frontend_factory"] = factory
        result = simulate(
            compiled, instance.params, instance.arrays, arch, **kwargs
        )
        instance.check(result.memory)
        energy = estimate_energy(result.stats)
        share = energy.data_movement / energy.total
        print(
            f"{label:26s} {result.stats.system_cycles:8d} "
            f"{energy.total:9.0f} {energy.data_noc:9.0f} "
            f"{energy.fabric_memory_noc:7.0f} {share:9.0%}"
        )
    print(
        "\nNUPEA's effect in energy terms: criticality-aware placement"
        "\neliminates fabric-memory arbitration traversals for the loads"
        "\nthat fire most, so the FM-NoC column collapses under effcc."
    )


if __name__ == "__main__":
    main()
