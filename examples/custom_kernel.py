"""Bring your own kernel: a pointer-chasing workload on NUPEA.

Linked-list traversal is the textbook critical-load pattern: every next
pointer load gates the next iteration, so its latency is the loop's
initiation interval. This example defines the kernel from scratch with
:class:`KernelBuilder`, validates it against a Python reference, and shows
NUPEA recovering most of the latency an UPEA design would add.

Run with::

    python examples/custom_kernel.py
"""

import random

from repro import ArchParams, KernelBuilder, compile_kernel, monaco, simulate
from repro.core import format_report
from repro.sim import UniformFrontend


def build_list_rank(n: int):
    """Walk ``steps`` links of a list, summing payloads along the way."""
    b = KernelBuilder("list_rank", params=["steps"])
    nxt = b.array("next", n)
    payload = b.array("payload", n)
    out = b.array("out", 2)
    cursor = b.let("cursor", 0)
    total = b.let("total", 0)
    i = b.let("i", 0)
    with b.while_(i < b.p.steps):
        total_new = total + payload.load(cursor)
        b.set(total, total_new)
        b.set(cursor, nxt.load(cursor, "link"))  # the critical load
        b.set(i, i + 1)
    out.store(0, cursor)
    out.store(1, total)
    return b.build()


def random_permutation_list(n: int, seed: int):
    rng = random.Random(seed)
    order = list(range(1, n))
    rng.shuffle(order)
    order = [0] + order
    nxt = [0] * n
    for pos in range(n):
        nxt[order[pos]] = order[(pos + 1) % n]
    payload = [rng.randint(1, 9) for _ in range(n)]
    return nxt, payload


def reference(nxt, payload, steps):
    cursor, total = 0, 0
    for _ in range(steps):
        total += payload[cursor]
        cursor = nxt[cursor]
    return cursor, total


def main():
    n, steps = 256, 200
    nxt, payload = random_permutation_list(n, seed=7)
    kernel = build_list_rank(n)
    arch = ArchParams()
    compiled = compile_kernel(kernel, monaco(12, 12), arch)
    print(compiled.summary())
    print(format_report(compiled.dfg, compiled.criticality))

    params = {"steps": steps}
    arrays = {"next": nxt, "payload": payload}
    want_cursor, want_total = reference(nxt, payload, steps)

    nupea = simulate(compiled, params, arrays, arch, divider=2)
    assert nupea.memory["out"] == [want_cursor, want_total]
    upea2 = simulate(
        compiled, params, arrays, arch, divider=2,
        frontend_factory=lambda f, a: UniformFrontend(4),
    )
    print(
        f"\nNUPEA:  {nupea.stats.system_cycles} cycles "
        f"(II-critical load latency "
        f"{nupea.stats.load_latency['A'].mean:.1f})"
    )
    print(
        f"UPEA2:  {upea2.stats.system_cycles} cycles "
        f"({upea2.stats.system_cycles / nupea.stats.system_cycles:.2f}x "
        "slower — every added cycle lands on the recurrence)"
    )


if __name__ == "__main__":
    main()
