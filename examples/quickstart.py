"""Quickstart: write a kernel, compile it onto Monaco, simulate it.

Run with::

    python examples/quickstart.py
"""

from repro import ArchParams, KernelBuilder, compile_kernel, monaco, simulate
from repro.core import format_report


def build_saxpy(n: int):
    """y = a*x + y over integers — the 'hello world' of kernels."""
    b = KernelBuilder("saxpy", params=["n", "a"])
    x = b.array("x", n)
    y = b.array("y", n)
    with b.parfor("i", 0, b.p.n) as i:
        y.store(i, b.p.a * x.load(i) + y.load(i))
    return b.build()


def main():
    n = 64
    kernel = build_saxpy(n)
    fabric = monaco(12, 12)
    arch = ArchParams()

    # Compile: parallelize -> lower to dataflow -> criticality analysis ->
    # NUPEA-aware place-and-route -> static timing.
    compiled = compile_kernel(kernel, fabric, arch)
    print(compiled.summary())
    print(format_report(compiled.dfg, compiled.criticality))
    print("memory nodes per NUPEA domain:", compiled.domain_histogram())

    # Simulate on the cycle-level Monaco model.
    params = {"n": n, "a": 3}
    arrays = {"x": list(range(n)), "y": [1] * n}
    result = simulate(compiled, params, arrays, arch)
    expected = [3 * i + 1 for i in range(n)]
    assert result.memory["y"] == expected
    print("result verified:", result.memory["y"][:8], "...")
    print("stats:", result.stats.summary())


if __name__ == "__main__":
    main()
