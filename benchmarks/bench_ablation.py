"""Ablations for the design choices DESIGN.md calls out.

* Criticality weighting in the PnR cost — covered per-workload by Fig. 12;
  here we additionally ablate the *column-aware* preference within a
  domain (``D0.c0 <= D0.c1 <= ...``) by collapsing the column step.
* Token-buffer depth and memory-level parallelism (PE pipelining).
* Memory-ordering mode: sound RAW/WAR fences (default) vs full
  serialization of every access to a written array.
"""


from conftest import BENCH_SCALE, save_result
from repro.arch.fabric import monaco
from repro.arch.params import ArchParams, SimParams
from repro.core import policy as policy_mod
from repro.core.policy import EFFCC
from repro.pnr.flow import compile_kernel
from repro.sim.engine import simulate
from repro.workloads import make_workload


def _run(compiled, inst, arch):
    result = simulate(compiled, inst.params, inst.arrays, arch, divider=2)
    inst.check(result.memory)
    return result.stats.system_cycles


def test_ablation_buffering(benchmark):
    """FIFO depth / outstanding-load sensitivity on spmspv."""
    inst = make_workload("spmspv", scale=BENCH_SCALE)
    fabric = monaco(12, 12)

    def sweep():
        rows = []
        base = ArchParams()
        compiled = compile_kernel(inst.kernel, fabric, base, EFFCC, seed=0)
        for fifo, outstanding in ((2, 1), (2, 2), (4, 2), (4, 4)):
            arch = ArchParams(
                sim=SimParams(
                    fifo_capacity=fifo, max_outstanding=outstanding
                )
            )
            rows.append(
                (fifo, outstanding, _run(compiled, inst, arch))
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "ablation: token-buffer depth / outstanding loads (spmspv)\n"
    text += "\n".join(
        f"  fifo={f} outstanding={o}: {c} cycles" for f, o, c in rows
    )
    save_result("ablation_buffering", text)
    cycles = [c for _, _, c in rows]
    assert cycles[-1] <= cycles[0], "deeper buffering should not hurt"


def test_ablation_memory_ordering(benchmark):
    """Sound RAW/WAR fences vs full serialization on fft (ordering-heavy).

    Two effects pull in opposite directions: at equal parallelism the raw
    fences win (loads overlap), but the fence plumbing costs DFG nodes, so
    full serialization sometimes fits one more parallel worker. The bench
    reports both the iso-parallelism comparison (the mechanism) and the
    end-to-end searched result (the area tradeoff).
    """
    inst = make_workload("fft", scale=BENCH_SCALE)
    fabric = monaco(12, 12)
    arch = ArchParams()

    def sweep():
        out = {}
        for mode in ("raw", "serialize"):
            fixed = compile_kernel(
                inst.kernel, fabric, arch, EFFCC, parallelism=1,
                mem_mode=mode, seed=0,
            )
            searched = compile_kernel(
                inst.kernel, fabric, arch, EFFCC, mem_mode=mode, seed=0
            )
            out[mode] = {
                "iso-parallelism": _run(fixed, inst, arch),
                "searched": _run(searched, inst, arch),
                "nodes": len(fixed.dfg),
                "best-parallelism": searched.parallelism,
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["ablation: memory-ordering mode (fft)"]
    for mode, row in results.items():
        lines.append(
            f"  {mode:9s}: iso-par {row['iso-parallelism']} cyc "
            f"({row['nodes']} nodes), searched {row['searched']} cyc "
            f"(par {row['best-parallelism']})"
        )
    save_result("ablation_memorder", "\n".join(lines))
    assert (
        results["raw"]["iso-parallelism"]
        <= results["serialize"]["iso-parallelism"]
    ), "at equal parallelism, parallel loads beat full serialization"


def test_ablation_noc_model(benchmark):
    """Uniform mesh vs cardinal/diagonal/skip track model (Sec. 4.1)."""
    inst = make_workload("spmspv", scale=BENCH_SCALE)
    fabric = monaco(12, 12)

    def sweep():
        out = {}
        for model in ("simple", "monaco-tracks"):
            arch = ArchParams(noc_model=model)
            compiled = compile_kernel(
                inst.kernel, fabric, arch, EFFCC, seed=0
            )
            divider = max(2, compiled.timing.clock_divider)
            result = simulate(
                compiled, inst.params, inst.arrays, arch, divider=divider
            )
            inst.check(result.memory)
            out[model] = {
                "cycles": result.stats.system_cycles,
                "max_path": compiled.timing.max_hops,
                "divider": divider,
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["ablation: data NoC channel model (spmspv)"]
    for model, row in results.items():
        lines.append(
            f"  {model:14s}: {row['cycles']} cyc, max path "
            f"{row['max_path']}, divider {row['divider']}"
        )
    save_result("ablation_noc_model", "\n".join(lines))
    assert all(r["cycles"] > 0 for r in results.values())


def test_ablation_column_preference(benchmark):
    """Column-aware preference within a domain vs domain-only ranking."""
    inst = make_workload("spmspm", scale=BENCH_SCALE)
    fabric = monaco(12, 12)
    arch = ArchParams()

    def sweep():
        out = {}
        original = policy_mod.COLUMN_STEP
        try:
            for label, step in (("column-aware", original), ("flat", 0.0)):
                policy_mod.COLUMN_STEP = step
                compiled = compile_kernel(
                    inst.kernel, fabric, arch, EFFCC, seed=0
                )
                out[label] = _run(compiled, inst, arch)
        finally:
            policy_mod.COLUMN_STEP = original
        return out

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = (
        "ablation: intra-domain column preference (spmspm)\n"
        + "\n".join(f"  {m}: {c} cycles" for m, c in cycles.items())
    )
    save_result("ablation_column_pref", text)
    assert all(c > 0 for c in cycles.values())
