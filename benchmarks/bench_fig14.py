"""Fig. 14: sweep of uniform PE-access latency (0-4 cycles) vs Monaco.

Paper claim: performance degrades almost linearly as UPEA delay grows;
Monaco is on par with UPEA1 and increasingly better than UPEA2-4.
"""

from conftest import BENCH_SCALE, save_result
from repro.exp.figures import fig14
from repro.exp.report import format_figure


def test_fig14(benchmark):
    result = benchmark.pedantic(
        lambda: fig14(scale=BENCH_SCALE), rounds=1, iterations=1
    )
    save_result("fig14", format_figure(result))
    sweep = [result.geomean(f"upea{n}") for n in range(5)]
    assert sweep == sorted(sweep), "UPEA should degrade monotonically"
    assert sweep[4] > sweep[2] > 1.0
