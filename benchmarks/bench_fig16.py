"""Fig. 16: spmspv execution time across topologies, sizes, NoC tracks.

Paper claim: with plentiful NoC tracks (7) all topologies are competitive
as the fabric scales; with scarce tracks (2) routing pressure on large
fabrics degrades parallelization and the clustered topologies fall behind.
"""

from conftest import BENCH_SCALE, save_result
from repro.exp.figures import fig16
from repro.exp.report import format_figure


def test_fig16(benchmark):
    result = benchmark.pedantic(
        lambda: fig16(scale=BENCH_SCALE), rounds=1, iterations=1
    )
    save_result("fig16", format_figure(result, precision=0))
    for topology in ("monaco", "clustered-single", "clustered-double"):
        row = result.rows[topology]
        # More tracks never hurt at the largest fabric.
        assert row["24x24/7trk"] <= row["24x24/2trk"]
        # Scaling the fabric up helps when tracks are plentiful.
        assert row["24x24/7trk"] <= row["8x8/7trk"]
