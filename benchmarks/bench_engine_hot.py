"""Engine hot-path benchmark and CI regression guard.

Times end-to-end simulation of the firing-dense Table 1 subset — the
workloads that execute nearly every fabric tick, where cycle skipping
cannot help and per-executed-tick cost is everything. Each workload is
compiled once (through the persistent compile cache) and simulated
best-of-``--rounds``; the stable stats+memory digest is asserted equal
across rounds, so the benchmark never reports a number for a
non-deterministic build.

Unlike ``bench_pnr_compile.py``, the pre-optimization engine is not kept
behind a flag (the rewrite replaces single-implementation hot loops in
the engine, memory system and FM-NoC frontend at once), so the A/B
baseline is *pinned*: ``--capture-pre-pr`` was run once on the last
pre-rewrite revision to record ``pre_pr_s`` wall times, and the reported
speedup is ``pre_pr_s / current_s`` on the same machine. Raw walls are
machine-dependent, so the CI guard normalizes by a fixed pure-Python
calibration loop timed in the same process:

    PYTHONPATH=src python benchmarks/bench_engine_hot.py \
        --check benchmarks/results/BENCH_engine_hot.json --tolerance 0.25

fails when the calibration-normalized suite wall rises more than 25%
above the committed baseline's. ``--update-baseline`` re-measures
``current_s`` (and the calibration) after an intentional change,
preserving the pinned ``pre_pr_s`` column.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys
import time

from conftest import RESULTS_DIR, record_bench

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams
from repro.core.policy import EFFCC
from repro.exp.runner import compile_cached
from repro.sim.engine import simulate
from repro.workloads.registry import make_workload

BASELINE_PATH = RESULTS_DIR / "BENCH_engine_hot.json"

#: The firing-dense subset: dense linear algebra, the FFT butterfly and
#: the NN stacks fire on nearly every fabric tick, so cycle skipping is
#: structurally useless and executed-tick cost dominates wall clock.
FIRING_DENSE = ("dmv", "fft", "ad", "ic", "vww")


def run_digest(result) -> str:
    """Stable stats+memory digest (same scheme as tests/test_engine_hot)."""
    stats = result.stats.to_dict()
    stats.pop("executed_cycles", None)
    stats.pop("skipped_cycles", None)
    stats.pop("critpath", None)
    blob = json.dumps(
        {"stats": stats, "memory": result.memory}, sort_keys=True
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def calibrate(rounds: int = 3) -> float:
    """Fixed pure-Python workload timing this machine's interpreter.

    The guard compares *normalized* walls (suite seconds per calibration
    second), so a faster or slower CI runner shifts both sides equally.
    """
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        total = 0
        d: dict[int, int] = {}
        for i in range(1_500_000):
            total += i * i
            if i & 1023 == 0:
                d[i] = total
        assert total > 0 and d
        best = min(best, time.perf_counter() - start)
    return best


def run_suite(workloads, scale: str, rounds: int) -> dict:
    fabric = monaco(12, 12)
    arch = ArchParams()
    per_workload: dict[str, dict] = {}
    for name in workloads:
        instance = make_workload(name, scale=scale, seed=0)
        compiled = compile_cached(
            instance, fabric, arch, EFFCC, parallelism=1, seed=0
        )
        entry: dict = {}
        for _ in range(rounds):
            arrays = {k: list(v) for k, v in instance.arrays.items()}
            start = time.perf_counter()
            result = simulate(compiled, instance.params, arrays, arch)
            elapsed = time.perf_counter() - start
            digest = run_digest(result)
            entry["current_s"] = round(
                min(entry.get("current_s", elapsed), elapsed), 4
            )
            entry["cycles"] = result.stats.system_cycles
            entry["firings"] = result.stats.total_firings
            if entry.setdefault("digest", digest) != digest:
                raise SystemExit(
                    f"FAIL: {name} digest diverged between rounds: "
                    f"{digest} != {entry['digest']} — the engine is "
                    "non-deterministic; refusing to report a timing"
                )
        instance.check(result.memory)
        per_workload[name] = entry
    return {
        "scale": scale,
        "rounds": rounds,
        "calib_s": round(calibrate(), 4),
        "workloads": per_workload,
        "total_current_s": round(
            sum(e["current_s"] for e in per_workload.values()), 4
        ),
    }


def merge_pre_pr(results: dict, baseline: dict | None) -> dict:
    """Attach the pinned ``pre_pr_s`` column and per-workload speedups."""
    pinned = (baseline or {}).get("workloads", {})
    total_pre = 0.0
    for name, entry in results["workloads"].items():
        pre = pinned.get(name, {}).get("pre_pr_s")
        if pre is None:
            continue
        entry["pre_pr_s"] = pre
        entry["speedup"] = round(pre / entry["current_s"], 2)
        total_pre += pre
    if total_pre:
        results["total_pre_pr_s"] = round(total_pre, 4)
        results["speedup_vs_pre_pr"] = round(
            total_pre / results["total_current_s"], 2
        )
    return results


def render(results: dict) -> str:
    lines = [
        f"Engine hot-path benchmark — scale={results['scale']}, "
        f"best of {results['rounds']} round(s), "
        f"calibration {results['calib_s']:.3f}s",
        f"{'workload':<12}{'cycles':>10}{'firings':>10}{'pre-PR':>9}"
        f"{'current':>9}{'speedup':>9}  digest",
    ]
    for name, e in results["workloads"].items():
        pre = f"{e['pre_pr_s']:>8.3f}s" if "pre_pr_s" in e else f"{'-':>9}"
        spd = f"{e['speedup']:>8.2f}x" if "speedup" in e else f"{'-':>9}"
        lines.append(
            f"{name:<12}{e['cycles']:>10}{e['firings']:>10}{pre}"
            f"{e['current_s']:>8.3f}s{spd}  {e['digest']}"
        )
    total = f"{results['total_current_s']:>8.3f}s"
    if "total_pre_pr_s" in results:
        lines.append(
            f"{'TOTAL':<12}{'':>20}{results['total_pre_pr_s']:>8.3f}s{total}"
            f"{results['speedup_vs_pre_pr']:>8.2f}x"
        )
    else:
        lines.append(f"{'TOTAL':<12}{'':>20}{'':>9}{total}")
    return "\n".join(lines)


def check_against(results: dict, baseline_path: str, tolerance: float) -> int:
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    status = 0
    for name, entry in results["workloads"].items():
        want = baseline["workloads"].get(name, {}).get("digest")
        got = entry["digest"]
        if want is not None and got != want:
            print(
                f"check {name}: digest {got} != baseline {want} — "
                "semantics changed; rerun --update-baseline if intended"
            )
            status = 1
    measured = results["total_current_s"] / results["calib_s"]
    want = baseline["total_current_s"] / baseline["calib_s"]
    ceiling = want * (1.0 + tolerance)
    verdict = "ok" if measured <= ceiling else "REGRESSION"
    print(
        f"check wall (calibration-normalized): measured {measured:.2f} vs "
        f"baseline {want:.2f} (ceiling {ceiling:.2f}) — {verdict}"
    )
    if measured > ceiling:
        status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small", help="workload scale")
    parser.add_argument(
        "--workloads", nargs="*", default=list(FIRING_DENSE),
        help="firing-dense subset to time",
    )
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="timing rounds per workload; best-of is reported",
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare normalized wall against a committed baseline JSON",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional normalized-wall rise vs the baseline",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help=f"rewrite {BASELINE_PATH} (current_s; keeps pinned pre_pr_s)",
    )
    parser.add_argument(
        "--capture-pre-pr", action="store_true",
        help="record the measured walls as the pinned pre_pr_s column "
        "(run once, on the last pre-rewrite revision)",
    )
    args = parser.parse_args(argv)

    if args.check and not pathlib.Path(args.check).is_file():
        parser.error(f"baseline not found: {args.check}")

    baseline = (
        json.loads(BASELINE_PATH.read_text())
        if BASELINE_PATH.is_file()
        else None
    )
    results = run_suite(args.workloads, args.scale, max(1, args.rounds))
    if args.capture_pre_pr:
        for entry in results["workloads"].values():
            entry["pre_pr_s"] = entry["current_s"]
    results = merge_pre_pr(results, baseline)
    print(render(results))

    if args.update_baseline or args.capture_pre_pr:
        record_bench(
            "engine_hot",
            wall_s=results["total_current_s"],
            workload=",".join(results["workloads"]),
            cycles=sum(e["cycles"] for e in results["workloads"].values()),
            config={
                "scale": results["scale"],
                "rounds": results["rounds"],
                "workloads": list(results["workloads"]),
            },
            extra=results,
        )
        print(f"baseline updated: {BASELINE_PATH}")
    if args.check:
        return check_against(results, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
