"""Wall-clock effect of the event-driven cycle-skipping scheduler.

Cycle counts and stats are bit-identical with skipping on or off (that is
the contract ``tests/test_cycle_skip.py`` pins); this benchmark measures
the *time* the equivalence buys on a memory-latency-bound configuration —
spmspv with the cache disabled and main memory at 256 system cycles,
where the per-cycle loop burns ~90% of its iterations ticking through
idle latency gaps. Acceptance floor: >= 3x.
"""

import time

from conftest import BENCH_SCALE, record_bench, save_result
from repro.arch.fabric import monaco
from repro.arch.params import ArchParams, MemoryParams, SimParams
from repro.core.policy import EFFCC
from repro.exp.runner import PAPER_DIVIDER, compile_cached
from repro.sim.engine import simulate
from repro.workloads.registry import make_workload

#: Latency-bound memory system: no cache, slow main memory.
LATENCY_BOUND = MemoryParams(cache_lines=0, memory_cycles=256)


def _arch(cycle_skip: bool) -> ArchParams:
    return ArchParams(
        memory=LATENCY_BOUND, sim=SimParams(cycle_skip=cycle_skip)
    )


def _run(compiled, instance, arch):
    arrays = {name: list(data) for name, data in instance.arrays.items()}
    start = time.perf_counter()
    result = simulate(
        compiled, instance.params, arrays, arch, divider=PAPER_DIVIDER
    )
    elapsed = time.perf_counter() - start
    instance.check(result.memory)
    return result, elapsed


def test_cycle_skip_speedup(benchmark):
    instance = make_workload("spmspv", scale=BENCH_SCALE)
    compiled = compile_cached(instance, monaco(12, 12), _arch(True))
    # The benchmarked quantity is the skip-on run; the per-cycle loop is
    # timed alongside it for the speedup table.
    on, on_s = benchmark.pedantic(
        lambda: _run(compiled, instance, _arch(True)),
        rounds=1,
        iterations=1,
    )
    off, off_s = _run(compiled, instance, _arch(False))

    assert on.stats == off.stats, "skip must be bit-identical"
    assert on.memory == off.memory
    speedup = off_s / on_s
    skipped = on.stats.skipped_cycles / off.stats.executed_cycles
    lines = [
        "cycle-skip micro-benchmark "
        "(spmspv, cache off, 256-cycle memory, scale=small)",
        f"  system cycles     {on.stats.system_cycles:>10,d}  "
        "(identical on/off)",
        f"  per-cycle loop    {off_s:>9.2f}s  "
        f"({off.stats.executed_cycles:,d} executed cycles)",
        f"  event-driven      {on_s:>9.2f}s  "
        f"({on.stats.executed_cycles:,d} executed, "
        f"{on.stats.skipped_cycles:,d} skipped = {skipped:.0%})",
        f"  wall-clock speedup {speedup:>7.1f}x  (acceptance floor: 3x)",
    ]
    save_result("cycle_skip", "\n".join(lines))
    record_bench(
        "cycle_skip",
        workload="spmspv",
        cycles=on.stats.system_cycles,
        wall_s=on_s,
        config={
            "scale": BENCH_SCALE,
            "cache_lines": 0,
            "memory_cycles": 256,
            "cycle_skip": True,
        },
        extra={
            "wall_s_per_cycle_loop": round(off_s, 6),
            "speedup": round(speedup, 3),
            "skipped_fraction": round(skipped, 4),
        },
    )
    assert speedup >= 3.0, f"expected >=3x, got {speedup:.2f}x"


def test_compile_cache_warm_vs_cold(benchmark, tmp_path):
    """The persistent cache turns PnR into a disk read on re-invocation."""
    from repro.exp.cache import CompileCache
    from repro.pnr.flow import compile_kernel

    instance = make_workload("spmspv", scale=BENCH_SCALE)
    fabric = monaco(12, 12)
    arch = ArchParams()

    def compile_with(cache):
        key = ("bench-cache", instance.name, fabric.name, arch.noc_tracks)
        start = time.perf_counter()
        cache.get_or_compile(
            key,
            lambda: compile_kernel(
                instance.kernel, fabric, arch, policy=EFFCC, seed=0
            ),
        )
        return time.perf_counter() - start

    cold_s = compile_with(CompileCache(tmp_path))
    warm_cache = CompileCache(tmp_path)  # fresh instance = fresh process
    warm_s = benchmark.pedantic(
        lambda: compile_with(warm_cache), rounds=1, iterations=1
    )
    assert warm_cache.disk_hits == 1
    save_result(
        "compile_cache",
        "persistent compile cache (spmspv PnR, scale=small)\n"
        f"  cold (place-and-route) {cold_s:>8.2f}s\n"
        f"  warm (disk pickle)     {warm_s:>8.2f}s\n"
        f"  speedup                {cold_s / warm_s:>7.0f}x",
    )
    assert warm_s < cold_s
