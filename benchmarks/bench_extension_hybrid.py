"""Extension: non-uniformity in both memory and PE access (paper Sec. 3).

"One could design SDAs with non-uniformity in both memory and PE access to
further scale data movement." This bench runs the hybrid NUMA+NUPEA
interconnect — Monaco's arbiter hierarchy with spatially partitioned
memory regions behind the ports — against pure Monaco and the NUMA-UPEA
baseline.

Expected outcome at this scale: the hybrid pays partition-crossing
penalties that the centralized-memory Monaco doesn't, so pure NUPEA stays
ahead — consistent with the paper's framing that data-centric
non-uniformity becomes necessary only "to scale to truly huge fabrics".
The interesting observation is that even with NUMA-partitioned memory, the
NUPEA placement keeps the hybrid at or below the NUMA-UPEA baseline.
"""

from conftest import BENCH_SCALE, save_result
from repro.arch.fabric import monaco
from repro.arch.params import ArchParams
from repro.core.policy import EFFCC
from repro.exp.runner import compile_cached
from repro.sim.engine import simulate
from repro.sim.hybrid import HybridFrontend
from repro.sim.upea import NumaFrontend
from repro.workloads import make_workload

WORKLOADS = ("spmspv", "dmv", "fft")


def test_extension_hybrid(benchmark):
    arch = ArchParams()
    fabric = monaco(12, 12)

    def sweep():
        rows = {}
        for name in WORKLOADS:
            inst = make_workload(name, scale=BENCH_SCALE)
            compiled = compile_cached(
                inst, fabric, arch, policy=EFFCC, seed=0
            )
            cycles = {}
            for label, factory in (
                ("monaco", None),
                (
                    "monaco+numa(r2)",
                    lambda f, a: HybridFrontend(f, a, remote_cycles=2),
                ),
                (
                    "numa-upea2",
                    lambda f, a: NumaFrontend(4, f, a, seed=0),
                ),
            ):
                kwargs = {"divider": 2}
                if factory is not None:
                    kwargs["frontend_factory"] = factory
                result = simulate(
                    compiled, inst.params, inst.arrays, arch, **kwargs
                )
                inst.check(result.memory)
                cycles[label] = result.stats.system_cycles
            rows[name] = cycles
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["extension: hybrid NUMA+NUPEA vs pure NUPEA vs NUMA-UPEA"]
    for name, cycles in rows.items():
        lines.append(
            f"  {name:8s}: "
            + "  ".join(f"{k}={v}" for k, v in cycles.items())
        )
    save_result("extension_hybrid", "\n".join(lines))
    for name, cycles in rows.items():
        # The hybrid pays remote-region penalties pure Monaco doesn't,
        # but its NUPEA placement keeps it well ahead of NUMA-UPEA.
        assert cycles["monaco"] <= cycles["monaco+numa(r2)"]
        assert cycles["monaco+numa(r2)"] < cycles["numa-upea2"] * 1.1, name
