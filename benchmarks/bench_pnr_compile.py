"""PnR compile-time benchmark and CI regression guard.

Compiles every Table 1 workload three ways and times each end to end:

- ``naive``       — full-recompute anneal + full-reroute PathFinder
                    (``incremental=False``, the pre-optimization path,
                    kept behind a flag as the A/B baseline),
- ``incremental`` — cached-cost anneal + dirty-net rerouting,
- ``portfolio``   — incremental plus the mem-scale candidate portfolio
                    evaluated concurrently in a process pool.

All three modes must produce bit-identical compiled artifacts — the
incremental structures are an optimization, not an approximation — so
the benchmark asserts digest equality per workload before it reports a
single number. The digest covers placement, routing trees, sink hops,
clock divider, max hops and placement cost.

Timings are machine-dependent; *speedups* are ratios on the same
machine and therefore portable. The CI guard compares the measured
suite speedup against the committed baseline's speedup:

    PYTHONPATH=src python benchmarks/bench_pnr_compile.py \
        --check benchmarks/results/pnr_baseline.json --tolerance 0.25

fails when either measured speedup drops more than 25% below the
baseline ratio. ``--update-baseline`` rewrites the baseline JSON after
an intentional change.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys
import time

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams
from repro.pnr.flow import compile_once, shutdown_portfolio_pool
from repro.workloads.registry import ALL_WORKLOADS, make_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "pnr_baseline.json"

#: Matches the portfolio size (len(MEM_SCALE_SCHEDULE)).
DEFAULT_JOBS = 3


def pnr_digest(compiled) -> str:
    """Stable digest of everything PnR decides for a compiled kernel."""
    payload = {
        "placement": sorted(
            (str(n), list(c)) for n, c in compiled.placement.items()
        ),
        "trees": sorted(
            (str(i), sorted(str(k) for k in chans))
            for i, chans in compiled.routing.net_channels.items()
        ),
        "sink_hops": sorted(
            (str(i), sorted((str(s), h) for s, h in hops.items()))
            for i, hops in compiled.routing.sink_hops.items()
        ),
        "divider": compiled.timing.clock_divider,
        "max_hops": float(compiled.timing.max_hops),
        "place_cost": round(compiled.place_cost, 3),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


#: mode name -> compile_once kwargs.
MODES = {
    "naive": {"incremental": False, "portfolio_jobs": 1},
    "incremental": {"incremental": True, "portfolio_jobs": 1},
    "portfolio": {"incremental": True, "portfolio_jobs": DEFAULT_JOBS},
}


def run_suite(workloads, scale: str, jobs: int, rounds: int) -> dict:
    fabric = monaco(12, 12)
    arch = ArchParams()
    modes = dict(MODES)
    modes["portfolio"] = {"incremental": True, "portfolio_jobs": jobs}

    kernels = {
        name: make_workload(name, scale=scale, seed=0).kernel
        for name in workloads
    }

    # Warm the process pool outside the timed region: worker spawn and
    # module import are one-time costs the long-lived compile server
    # (and every subsequent compile) never pays again.
    compile_once(
        kernels[workloads[0]], fabric, arch, parallelism=1, seed=0,
        incremental=True, portfolio_jobs=jobs,
    )

    # Best-of-``rounds`` per (mode, workload): the minimum is the least
    # noise-contaminated observation, and interleaving the modes round
    # by round keeps slow machine-load drift from biasing the ratios.
    per_workload: dict[str, dict] = {name: {} for name in workloads}
    for _ in range(rounds):
        for mode, kwargs in modes.items():
            for name in workloads:
                start = time.perf_counter()
                compiled = compile_once(
                    kernels[name], fabric, arch, parallelism=1, seed=0,
                    **kwargs,
                )
                elapsed = time.perf_counter() - start
                digest = pnr_digest(compiled)
                entry = per_workload[name]
                key = f"{mode}_s"
                entry[key] = round(min(entry.get(key, elapsed), elapsed), 4)
                if entry.setdefault("digest", digest) != digest:
                    raise SystemExit(
                        f"FAIL: {name} digest diverged in mode {mode!r}: "
                        f"{digest} != {entry['digest']} — the incremental "
                        "path is no longer bit-identical to the naive one"
                    )
    shutdown_portfolio_pool()

    totals = {
        mode: sum(per_workload[name][f"{mode}_s"] for name in workloads)
        for mode in modes
    }
    return {
        "scale": scale,
        "portfolio_jobs": jobs,
        "rounds": rounds,
        "workloads": per_workload,
        "totals": {mode: round(t, 3) for mode, t in totals.items()},
        "speedup": {
            "incremental": round(totals["naive"] / totals["incremental"], 3),
            "portfolio": round(totals["naive"] / totals["portfolio"], 3),
        },
    }


def render(results: dict) -> str:
    lines = [
        f"PnR compile benchmark — scale={results['scale']}, "
        f"portfolio_jobs={results['portfolio_jobs']}, "
        f"best of {results['rounds']} round(s)",
        f"{'workload':<12}{'naive':>9}{'incr':>9}{'portfolio':>11}  digest",
    ]
    for name, entry in results["workloads"].items():
        lines.append(
            f"{name:<12}{entry['naive_s']:>8.3f}s{entry['incremental_s']:>8.3f}s"
            f"{entry['portfolio_s']:>10.3f}s  {entry['digest']}"
        )
    t = results["totals"]
    s = results["speedup"]
    lines.append(
        f"{'TOTAL':<12}{t['naive']:>8.3f}s{t['incremental']:>8.3f}s"
        f"{t['portfolio']:>10.3f}s"
    )
    lines.append(
        f"speedup vs naive: incremental {s['incremental']:.2f}x, "
        f"portfolio {s['portfolio']:.2f}x"
    )
    return "\n".join(lines)


def check_against(results: dict, baseline_path: str, tolerance: float) -> int:
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    status = 0
    for mode in ("incremental", "portfolio"):
        want = baseline["speedup"][mode]
        got = results["speedup"][mode]
        floor = want * (1.0 - tolerance)
        verdict = "ok" if got >= floor else "REGRESSION"
        print(
            f"check {mode}: measured {got:.2f}x vs baseline {want:.2f}x "
            f"(floor {floor:.2f}x) — {verdict}"
        )
        if got < floor:
            status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", default="tiny", help="workload input scale"
    )
    parser.add_argument(
        "--workloads", nargs="*", default=list(ALL_WORKLOADS),
        help="subset of Table 1 workloads",
    )
    parser.add_argument(
        "--jobs", type=int, default=DEFAULT_JOBS,
        help="portfolio process-pool size",
    )
    parser.add_argument(
        "--rounds", type=int, default=2,
        help="timing rounds per mode; best-of is reported",
    )
    parser.add_argument(
        "--out", default=None, help="write results JSON here"
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare speedups against a committed baseline JSON",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional speedup drop vs the baseline",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help=f"rewrite {BASELINE_PATH}",
    )
    args = parser.parse_args(argv)

    # Validate before the (minutes-long) suite runs, not after.
    if args.check and not pathlib.Path(args.check).is_file():
        parser.error(f"baseline not found: {args.check}")

    results = run_suite(
        args.workloads, args.scale, args.jobs, max(1, args.rounds)
    )
    print(render(results))

    if args.out:
        pathlib.Path(args.out).write_text(
            json.dumps(results, indent=2) + "\n"
        )
    if args.update_baseline:
        RESULTS_DIR.mkdir(exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"baseline updated: {BASELINE_PATH}")
    if args.check:
        return check_against(results, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
