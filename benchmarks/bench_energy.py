"""Energy comparison: NUPEA vs baselines in the paper's motivating metric.

Data movement is "the dominant energy, performance, and scalability
bottleneck" (Sec. 1). This bench reports the energy breakdown for Monaco
under effcc vs domain-unaware placement: criticality-aware placement
removes fabric-memory arbitration traversals for the hottest loads, so
the FM-NoC energy component collapses.
"""

from conftest import BENCH_SCALE, save_result
from repro.arch.fabric import monaco
from repro.arch.params import ArchParams
from repro.core.policy import DOMAIN_UNAWARE, EFFCC
from repro.exp.runner import compile_cached
from repro.sim.energy import estimate_energy
from repro.sim.engine import simulate
from repro.workloads import make_workload

WORKLOADS = ("spmspv", "jacobi2d", "tc")


def test_energy_breakdown(benchmark):
    arch = ArchParams()
    fabric = monaco(12, 12)

    def sweep():
        rows = {}
        for name in WORKLOADS:
            inst = make_workload(name, scale=BENCH_SCALE)
            reference = compile_cached(
                inst, fabric, arch, policy=EFFCC, seed=0
            )
            per_policy = {}
            for policy in (EFFCC, DOMAIN_UNAWARE):
                compiled = compile_cached(
                    inst, fabric, arch, policy=policy,
                    parallelism=reference.parallelism, seed=0,
                )
                result = simulate(
                    compiled, inst.params, inst.arrays, arch, divider=2
                )
                inst.check(result.memory)
                per_policy[policy.name] = estimate_energy(result.stats)
            rows[name] = per_policy
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["energy breakdown by placement policy (pJ)"]
    for name, per_policy in rows.items():
        for policy, report in per_policy.items():
            lines.append(f"  {name:10s} {policy:16s} {report.summary()}")
    save_result("energy", "\n".join(lines))
    for name, per_policy in rows.items():
        effcc = per_policy["effcc"]
        unaware = per_policy["domain-unaware"]
        assert effcc.fabric_memory_noc < unaware.fabric_memory_noc, name
        share = effcc.data_movement / effcc.total
        assert share > 0.5, "data movement should dominate energy"
