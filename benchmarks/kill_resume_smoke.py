"""CI guard: a SIGKILLed sweep resumes from its snapshots bit-identically.

End-to-end preemption drill, driven through the real CLI in real
subprocesses (no cooperation from the victim):

1. run a clean reference sweep and key its manifest by point digest;
2. launch the same sweep with ``--snapshot-dir``/``--checkpoint-every``,
   poll until the first snapshot file is published, then SIGKILL the
   whole process — no signal handler runs, exactly like an OOM kill or
   a node reclaim;
3. ``repro sweep --resume`` against the same journal: completed points
   are skipped, the interrupted point continues from its last valid
   snapshot (the torn journal line and any stale ``.tmp`` are ignored);
4. assert the final journal's ok-records equal the clean sweep's —
   keyed by ``point_digest`` and compared on
   :func:`repro.obs.manifest.stable_view`, since retries may reorder
   records but must never change results — and that any resumed record
   carries ``resume.from_cycle > 0`` with its final attempt executing
   fewer cycles than the whole run.

The kill races the sweep by construction; if the victim finishes before
the signal lands, the drill degrades to the plain resume-skips-all path
(still asserted) and says so. CI treats that as success — the race is
rare at small scale and the bit-identity contract is covered either way.

Run: ``python benchmarks/kill_resume_smoke.py [--workdir DIR] [--keep]``
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.manifest import read_manifest, stable_view  # noqa: E402

WORKLOADS = ["spmspv", "dmv"]
CONFIGS = ["monaco"]
SCALE = "small"
CHECKPOINT_EVERY = "500"
#: How long to wait for the victim's first snapshot file.
SNAPSHOT_WAIT_S = 120.0


def sweep_cmd(
    manifest: Path,
    cache: Path,
    stats_json: Path | None = None,
    snapshot_dir: Path | None = None,
    resume: bool = False,
) -> list[str]:
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "sweep",
        "--workloads",
        *WORKLOADS,
        "--configs",
        *CONFIGS,
        "--scale",
        SCALE,
        "--jobs",
        "1",
        "--cache-dir",
        str(cache),
        "--manifest",
        str(manifest),
    ]
    if stats_json is not None:
        cmd += ["--stats-json", str(stats_json)]
    if snapshot_dir is not None:
        cmd += [
            "--snapshot-dir",
            str(snapshot_dir),
            "--checkpoint-every",
            CHECKPOINT_EVERY,
        ]
    if resume:
        cmd += ["--resume"]
    return cmd


def run(cmd: list[str], log: Path) -> None:
    env = {**os.environ, "PYTHONPATH": "src"}
    with open(log, "ab") as handle:
        subprocess.run(
            cmd, cwd=REPO, env=env, stdout=handle, stderr=handle, check=True
        )


def keyed_ok(manifest: Path) -> dict:
    return {
        record["point_digest"]: stable_view(record)
        for record in read_manifest(manifest, strict=False)
        if record.get("status") == "ok"
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workdir",
        type=Path,
        default=None,
        help="where manifests/snapshots/logs land (default: a temp dir)",
    )
    parser.add_argument(
        "--keep",
        action="store_true",
        help="keep the workdir for triage instead of deleting it",
    )
    args = parser.parse_args()

    workdir = args.workdir or Path(tempfile.mkdtemp(prefix="kill-resume-"))
    workdir.mkdir(parents=True, exist_ok=True)
    cache = workdir / "cache"
    snaps = workdir / "snaps"
    clean_manifest = workdir / "clean.jsonl"
    victim_manifest = workdir / "victim.jsonl"
    log = workdir / "log.txt"

    # 1. Reference sweep — also warms the shared compile cache, so the
    #    victim spends its wall time simulating, not compiling.
    print(f"[1/4] clean reference sweep -> {clean_manifest}")
    run(sweep_cmd(clean_manifest, cache), log)
    clean = keyed_ok(clean_manifest)
    expected_points = len(WORKLOADS) * len(CONFIGS)
    assert len(clean) == expected_points, (
        f"clean sweep journaled {len(clean)} ok points, "
        f"expected {expected_points}"
    )

    # 2. Victim sweep: SIGKILL as soon as the first snapshot publishes.
    print("[2/4] victim sweep, SIGKILL after first snapshot")
    env = {**os.environ, "PYTHONPATH": "src"}
    with open(log, "ab") as handle:
        victim = subprocess.Popen(
            sweep_cmd(victim_manifest, cache, snapshot_dir=snaps),
            cwd=REPO,
            env=env,
            stdout=handle,
            stderr=handle,
        )
        killed = False
        deadline = time.monotonic() + SNAPSHOT_WAIT_S
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                break
            if list(snaps.glob("*.snap")):
                victim.send_signal(signal.SIGKILL)
                killed = True
                break
            time.sleep(0.02)
        returncode = victim.wait(timeout=60)

    if killed:
        assert returncode != 0, "SIGKILLed sweep exited 0"
        print(
            f"      killed mid-flight (rc={returncode}); snapshots on "
            f"disk: {[p.name for p in sorted(snaps.glob('*.snap'))]}"
        )
    else:
        assert returncode == 0, f"victim sweep failed on its own: {log}"
        print("      victim finished before the kill landed; the drill "
              "degrades to resume-skips-all")

    # 3. Resume the journal. Completed points skip; the interrupted one
    #    continues from its snapshot.
    print("[3/4] repro sweep --resume")
    run(
        sweep_cmd(
            victim_manifest,
            cache,
            stats_json=workdir / "resumed-stats.json",
            snapshot_dir=snaps,
            resume=True,
        ),
        log,
    )

    # 4. The recovered journal must equal the clean one — keyed, since
    #    recovery may reorder records but never change their content.
    print("[4/4] comparing journals")
    recovered = keyed_ok(victim_manifest)
    assert set(recovered) == set(clean), (
        f"recovered sweep covers {sorted(recovered)}, "
        f"clean covers {sorted(clean)}"
    )
    mismatched = [d for d in clean if recovered[d] != clean[d]]
    assert not mismatched, (
        f"resumed points diverged from the uninterrupted sweep: {mismatched}"
    )

    # ``resume`` is volatile (stripped by stable_view) — read it raw.
    raw_resumed = [
        record
        for record in read_manifest(victim_manifest, strict=False)
        if record.get("status") == "ok" and record.get("resume")
    ]
    for record in raw_resumed:
        info = record["resume"]
        assert info["from_cycle"] > 0, record
        assert info["executed_before"] > 0, record
        final_attempt = record["stats"]["executed_cycles"] - info["executed_before"]
        assert 0 < final_attempt < record["stats"]["executed_cycles"], (
            "resumed attempt did not execute fewer cycles than the full run"
        )
        print(
            f"      {record['workload']}/{record['config']}: resumed from "
            f"cycle {info['from_cycle']} "
            f"({final_attempt}/{record['stats']['executed_cycles']} cycles "
            "in the final attempt)"
        )
    if killed and not raw_resumed:
        # Kill landed after the in-flight point's last journal append but
        # before its snapshot could matter — point simply reran clean.
        print("      kill landed between points; all reran/skipped clean")

    snapshots = [
        record
        for record in read_manifest(victim_manifest, strict=False)
        if record.get("status") == "snapshot"
    ]
    if killed:
        assert snapshots, "victim died after a snapshot but journaled none"
    leftover = list(snaps.glob("*.snap"))
    assert not leftover, f"recovered sweep left snapshots behind: {leftover}"

    print(
        f"OK: {len(recovered)} points bit-identical to the clean sweep "
        f"({len(raw_resumed)} resumed mid-flight, "
        f"{len(snapshots)} snapshot journal records)"
    )
    if not args.keep and args.workdir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
