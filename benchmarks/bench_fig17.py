"""Fig. 17: maximum routed path delay from PnR, same sweep as Fig. 16.

Paper claim: the maximum path delay (which sets the fabric clock divider)
grows with fabric size, and scarce tracks amplify it on large fabrics.
"""

from conftest import BENCH_SCALE, save_result
from repro.exp.figures import fig17
from repro.exp.report import format_figure


def test_fig17(benchmark):
    result = benchmark.pedantic(
        lambda: fig17(scale=BENCH_SCALE), rounds=1, iterations=1
    )
    save_result("fig17", format_figure(result, precision=1))
    for topology, row in result.rows.items():
        assert row["8x8/7trk"] <= row["24x24/7trk"], topology
        assert all(v > 0 for v in row.values())
