"""Fig. 6c: spmspv on NUPEA vs idealized and practical UPEA fabrics.

Paper claim: NUPEA performs nearly as well as an idealized 0-cycle UPEA
design and ~32% better than a practical 2-cycle UPEA design.
"""

import time

from conftest import BENCH_SCALE, record_bench, save_result
from repro.exp.figures import fig6c
from repro.exp.report import format_figure


def test_fig6c(benchmark):
    start = time.perf_counter()
    result = benchmark.pedantic(
        lambda: fig6c(scale=BENCH_SCALE), rounds=1, iterations=1
    )
    wall_s = time.perf_counter() - start
    save_result("fig06c", format_figure(result))
    row = result.rows["spmspv"]
    record_bench(
        "fig06c",
        workload="spmspv",
        cycles=result.raw["spmspv"]["nupea"],
        wall_s=wall_s,
        config={"scale": BENCH_SCALE, "configs": ["upea0", "upea2", "nupea"]},
        extra={"slowdown_upea2": round(row["upea2"], 4)},
    )
    assert row["upea2"] > 1.05, "practical UPEA should lose to NUPEA"
    assert row["upea0"] <= 1.05, "NUPEA should be near the ideal design"
