"""Design-space exploration of LS-PE placement (paper contribution 4).

The paper explores where to put load-store PEs within the fabric and ships
Monaco with three-column NUPEA domains on alternating LS rows. This bench
sweeps domain width (direct D0 ports per row) and LS-row density and
reports execution time per variant.
"""

from conftest import BENCH_SCALE, save_result
from repro.exp.dse import ls_placement_dse
from repro.exp.report import format_figure


def test_dse_ls_placement(benchmark):
    result = benchmark.pedantic(
        lambda: ls_placement_dse(
            workloads=("spmspv", "dmv"), scale=BENCH_SCALE
        ),
        rounds=1,
        iterations=1,
    )
    save_result("dse_ls_placement", format_figure(result, precision=0))
    for name, row in result.rows.items():
        finite = [v for v in row.values() if v != float("inf")]
        assert finite, name
        # Monaco's shipping point (w3/s2) should be competitive: within
        # 25% of the best point found for each workload.
        assert row["w3/s2"] <= min(finite) * 1.25
