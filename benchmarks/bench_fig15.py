"""Fig. 15: sweep of NUMA-UPEA remote-access latency vs Monaco.

Paper claim: NUMA recovers some performance relative to plain UPEA (local
accesses skip the delay) but degrades with the same linear trend — adding
NUMA does not fix UPEA's unscalability.
"""

from conftest import BENCH_SCALE, save_result
from repro.exp.figures import fig14, fig15
from repro.exp.report import format_figure


def test_fig15(benchmark):
    result = benchmark.pedantic(
        lambda: fig15(scale=BENCH_SCALE), rounds=1, iterations=1
    )
    save_result("fig15", format_figure(result))
    sweep = [result.geomean(f"numa-upea{n}") for n in range(5)]
    assert sweep == sorted(sweep)
    # NUMA at the same delay beats plain UPEA (cross-check vs Fig. 14,
    # served from the shared compile cache).
    upea = fig14(scale=BENCH_SCALE)
    assert sweep[4] <= upea.geomean("upea4") + 1e-9
