"""Fig. 12: speedup from NUPEA-aware PnR heuristics.

Paper claim: Only-Domain-Aware gives avg 16% speedup over Domain-Unaware;
fusing criticality (effcc) reaches avg 25%, with sparse intersection
workloads (spmspv, spmspm) benefiting most from criticality and dense
NN/stencil workloads benefiting from domain awareness alone.
"""

from conftest import BENCH_SCALE, save_result
from repro.exp.figures import fig12
from repro.exp.report import format_figure


def test_fig12(benchmark):
    result = benchmark.pedantic(
        lambda: fig12(scale=BENCH_SCALE), rounds=1, iterations=1
    )
    save_result("fig12", format_figure(result))
    assert result.geomean("only-domain-aware") > 1.05
    assert result.geomean("effcc") > result.geomean("only-domain-aware")
    # Criticality matters most on the stream-join workload.
    spmspv = result.rows["spmspv"]
    assert spmspv["effcc"] > spmspv["only-domain-aware"]
