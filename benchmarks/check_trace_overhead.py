"""CI guard: the observability layer must cost nothing when off.

Three checks, all deterministic except the timing ratio:

1. **Gating** — an untraced run must carry no observation object at all
   (``result.obs is None``): every publish site in the engine, memory
   system, and frontends is gated on that attribute, so this is the
   single failure point through which off-path tracing work could leak.
2. **Bit-identity** — tracing on must not change a single stat or output
   byte (it observes the machine, it never steers it).
3. **Timing sanity** — the untraced median must not exceed the traced
   median (with slack for CI noise): if the off path ever does the on
   path's work, the two medians collapse together from the wrong side.

The absolute pre/post-PR regression gate is ``bench_cycle_skip``'s >=3x
speedup floor, which runs in the same CI job; this script pins the
*mechanism* (None-gating) that keeps the off path free.

Run: ``PYTHONPATH=src python benchmarks/check_trace_overhead.py``
"""

from __future__ import annotations

import statistics
import sys
import time

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams, SimParams
from repro.exp.configs import MONACO
from repro.exp.runner import PAPER_DIVIDER, compile_cached
from repro.sim.engine import simulate
from repro.workloads.registry import make_workload

WORKLOAD = "spmspv"
SCALE = "small"
ROUNDS = 3
#: Allowed off/on ratio: off must not be slower than on beyond CI noise.
NOISE_SLACK = 1.10


def timed_run(compiled, instance, arch):
    arrays = {name: list(data) for name, data in instance.arrays.items()}
    start = time.perf_counter()
    result = simulate(
        compiled,
        instance.params,
        arrays,
        arch,
        frontend_factory=MONACO.frontend_factory(PAPER_DIVIDER),
        divider=PAPER_DIVIDER,
    )
    elapsed = time.perf_counter() - start
    instance.check(result.memory)
    return result, elapsed


def main() -> int:
    instance = make_workload(WORKLOAD, scale=SCALE)
    arch_off = ArchParams(sim=SimParams(trace=False))
    arch_on = ArchParams(sim=SimParams(trace=True))
    compiled = compile_cached(instance, monaco(12, 12), arch_off)

    runs = {}
    for label, arch in (("off", arch_off), ("on", arch_on)):
        results, times = [], []
        for _ in range(ROUNDS):
            result, elapsed = timed_run(compiled, instance, arch)
            results.append(result)
            times.append(elapsed)
        runs[label] = (results, statistics.median(times))

    off_results, off_s = runs["off"]
    on_results, on_s = runs["on"]

    # 1. Gating: no observation object may exist on the off path.
    assert all(r.obs is None for r in off_results), (
        "untraced run carried an observation object -- the "
        "zero-overhead-when-off gating is broken"
    )
    assert all(r.obs is not None for r in on_results)

    # 2. Bit-identity: tracing observes, never steers.
    assert on_results[0].stats == off_results[0].stats, (
        "tracing changed simulation stats"
    )
    assert on_results[0].memory == off_results[0].memory, (
        "tracing changed simulated memory"
    )

    overhead = (on_s - off_s) / off_s
    print(
        f"{WORKLOAD}/{SCALE}: trace-off median {off_s:.3f}s, "
        f"trace-on median {on_s:.3f}s "
        f"(tracing-on overhead {overhead:+.1%}, {ROUNDS} rounds)"
    )

    # 3. Timing sanity.
    if off_s > on_s * NOISE_SLACK:
        print(
            f"FAIL: untraced run slower than traced run "
            f"({off_s:.3f}s vs {on_s:.3f}s) -- off path is doing "
            "tracing work",
            file=sys.stderr,
        )
        return 1
    print("OK: off path carries no observation and matches traced stats")
    return 0


if __name__ == "__main__":
    sys.exit(main())
