"""CI guard: the observability layer must cost nothing when off.

Five checks, all deterministic except the timing ratios:

1. **Gating** — an untraced run must carry no observation object at all
   (``result.obs is None``): every publish site in the engine, memory
   system, and frontends is gated on that attribute, so this is the
   single failure point through which off-path tracing work could leak.
2. **Bit-identity** — tracing on must not change a single stat or output
   byte (it observes the machine, it never steers it).
3. **Timing sanity** — the untraced median must not exceed the traced
   median (with slack for CI noise): if the off path ever does the on
   path's work, the two medians collapse together from the wrong side.
4. **Detached critical-path profiler** — with ``sim.critpath`` false
   (the default), the profiler's publish sites (``fire_pops``/``push``)
   must vanish behind the same None gate: stats and memory bit-identical
   to the plain off run, wall time within the same noise bound, and
   ``stats.critpath`` empty. A critpath-on run must carry the recorder
   and a report whose category costs sum to ``system_cycles`` exactly.
5. **Detached snapshot layer** — with the checkpoint knobs off (the
   default) the engine carries no checkpointer and the run is
   bit-identical to pre-snapshot builds; a checkpoint-armed run writes
   periodic snapshots yet still produces identical stats and memory,
   retires its file on clean completion, and the detached median stays
   within the noise bound of the armed one. One preempt/resume
   round-trip is timed for restore-latency telemetry.

The absolute pre/post-PR regression gate is ``bench_cycle_skip``'s >=3x
speedup floor, which runs in the same CI job; this script pins the
*mechanism* (None-gating) that keeps the off path free.

Run: ``PYTHONPATH=src python benchmarks/check_trace_overhead.py``
"""

from __future__ import annotations

import os
import shutil
import statistics
import sys
import tempfile
import time

from repro.arch.fabric import monaco
from repro.arch.params import ArchParams, SimParams
from repro.errors import SimulationPreempted
from repro.exp.configs import MONACO
from repro.exp.runner import PAPER_DIVIDER, compile_cached
from repro.sim.engine import simulate
from repro.sim.snapshot import CheckpointConfig
from repro.workloads.registry import make_workload

WORKLOAD = "spmspv"
SCALE = "small"
ROUNDS = 3
#: Allowed off/on ratio: off must not be slower than on beyond CI noise.
NOISE_SLACK = 1.10


def timed_run(compiled, instance, arch):
    arrays = {name: list(data) for name, data in instance.arrays.items()}
    start = time.perf_counter()
    result = simulate(
        compiled,
        instance.params,
        arrays,
        arch,
        frontend_factory=MONACO.frontend_factory(PAPER_DIVIDER),
        divider=PAPER_DIVIDER,
    )
    elapsed = time.perf_counter() - start
    instance.check(result.memory)
    return result, elapsed


def main() -> int:
    instance = make_workload(WORKLOAD, scale=SCALE)
    arch_off = ArchParams(sim=SimParams(trace=False))
    arch_on = ArchParams(sim=SimParams(trace=True))
    arch_crit = ArchParams(sim=SimParams(critpath=True))
    snap_dir = tempfile.mkdtemp(prefix="bench-snap-")
    snap_path = os.path.join(snap_dir, "bench.snap")
    arch_snap = ArchParams(
        sim=SimParams(checkpoint_path=snap_path, checkpoint_every=2000)
    )
    compiled = compile_cached(instance, monaco(12, 12), arch_off)

    runs = {}
    for label, arch in (
        ("off", arch_off),
        ("on", arch_on),
        ("crit", arch_crit),
        ("snap", arch_snap),
    ):
        results, times = [], []
        for _ in range(ROUNDS):
            result, elapsed = timed_run(compiled, instance, arch)
            results.append(result)
            times.append(elapsed)
        runs[label] = (results, statistics.median(times))

    off_results, off_s = runs["off"]
    on_results, on_s = runs["on"]
    crit_results, crit_s = runs["crit"]
    snap_results, snap_s = runs["snap"]

    # 1. Gating: no observation object may exist on the off path.
    assert all(r.obs is None for r in off_results), (
        "untraced run carried an observation object -- the "
        "zero-overhead-when-off gating is broken"
    )
    assert all(r.obs is not None for r in on_results)

    # 2. Bit-identity: tracing observes, never steers.
    assert on_results[0].stats == off_results[0].stats, (
        "tracing changed simulation stats"
    )
    assert on_results[0].memory == off_results[0].memory, (
        "tracing changed simulated memory"
    )

    overhead = (on_s - off_s) / off_s
    print(
        f"{WORKLOAD}/{SCALE}: trace-off median {off_s:.3f}s, "
        f"trace-on median {on_s:.3f}s "
        f"(tracing-on overhead {overhead:+.1%}, {ROUNDS} rounds)"
    )

    # 3. Timing sanity.
    if off_s > on_s * NOISE_SLACK:
        print(
            f"FAIL: untraced run slower than traced run "
            f"({off_s:.3f}s vs {on_s:.3f}s) -- off path is doing "
            "tracing work",
            file=sys.stderr,
        )
        return 1

    # 4. Critical-path profiler: attached it must balance its books;
    #    detached (the plain off run) it must not exist at all.
    assert all(r.obs is not None for r in crit_results)
    assert crit_results[0].stats == off_results[0].stats, (
        "critical-path profiling changed simulation stats"
    )
    assert crit_results[0].memory == off_results[0].memory, (
        "critical-path profiling changed simulated memory"
    )
    report = crit_results[0].obs.critpath.report
    total = sum(report["categories"].values())
    assert total == report["system_cycles"], (
        f"critpath attribution sums to {total}, "
        f"system_cycles is {report['system_cycles']}"
    )
    assert not off_results[0].stats.critpath, (
        "detached run carries a critpath report"
    )
    crit_overhead = (crit_s - off_s) / off_s
    print(
        f"{WORKLOAD}/{SCALE}: critpath-on median {crit_s:.3f}s "
        f"(overhead {crit_overhead:+.1%}); attribution sums to "
        f"{total:,d} == system_cycles"
    )
    if off_s > crit_s * NOISE_SLACK:
        print(
            f"FAIL: profiler-detached run slower than profiler-attached "
            f"run ({off_s:.3f}s vs {crit_s:.3f}s) -- the detached path "
            "is doing critpath work",
            file=sys.stderr,
        )
        return 1

    # 5. Snapshot layer: armed it must observe, never steer — and retire
    #    its file on clean completion; detached it must not exist at all.
    assert all(r.snapshot_stats is None for r in off_results), (
        "checkpoint-detached run carries a checkpointer -- the "
        "zero-overhead-when-off gating is broken"
    )
    snap_writes = snap_results[0].snapshot_stats["writes"]
    assert snap_writes >= 1, "checkpoint-armed run wrote no snapshots"
    assert snap_results[0].stats == off_results[0].stats, (
        "periodic checkpointing changed simulation stats"
    )
    assert snap_results[0].memory == off_results[0].memory, (
        "periodic checkpointing changed simulated memory"
    )
    assert not os.path.exists(snap_path), (
        "clean completion left its snapshot behind"
    )
    snap_overhead = (snap_s - off_s) / off_s
    write_wall_s = snap_results[0].snapshot_stats["write_wall_s"]
    print(
        f"{WORKLOAD}/{SCALE}: checkpoint-armed median {snap_s:.3f}s "
        f"({snap_writes} writes, {write_wall_s:.3f}s in writes, "
        f"overhead {snap_overhead:+.1%})"
    )
    if off_s > snap_s * NOISE_SLACK:
        print(
            f"FAIL: checkpoint-detached run slower than checkpoint-armed "
            f"run ({off_s:.3f}s vs {snap_s:.3f}s) -- the detached path "
            "is doing snapshot work",
            file=sys.stderr,
        )
        return 1

    # One preempt/resume round-trip for restore-latency telemetry; the
    # resumed half must land on the uninterrupted run's stats exactly.
    restore_path = os.path.join(snap_dir, "restore.snap")
    arrays = {name: list(data) for name, data in instance.arrays.items()}
    try:
        simulate(
            compiled,
            instance.params,
            arrays,
            arch_off,
            frontend_factory=MONACO.frontend_factory(PAPER_DIVIDER),
            divider=PAPER_DIVIDER,
            checkpoint=CheckpointConfig(path=restore_path, cycle_budget=4000),
        )
    except SimulationPreempted:
        pass
    else:
        raise AssertionError("cycle-budgeted run was not preempted")
    arrays = {name: list(data) for name, data in instance.arrays.items()}
    resumed = simulate(
        compiled,
        instance.params,
        arrays,
        arch_off,
        frontend_factory=MONACO.frontend_factory(PAPER_DIVIDER),
        divider=PAPER_DIVIDER,
        checkpoint=CheckpointConfig(path=restore_path),
        resume_from=restore_path,
    )
    instance.check(resumed.memory)
    assert resumed.stats == off_results[0].stats, (
        "preempt/resume round-trip changed simulation stats"
    )
    restore_s = resumed.resume_info["restore_wall_s"]
    print(
        f"{WORKLOAD}/{SCALE}: restored from cycle "
        f"{resumed.resume_info['from_cycle']:,d} in {restore_s:.3f}s"
    )
    shutil.rmtree(snap_dir, ignore_errors=True)

    try:
        from conftest import record_bench
    except ImportError:
        record_bench = None
    if record_bench is not None:
        record_bench(
            "trace_overhead",
            workload=WORKLOAD,
            cycles=off_results[0].stats.system_cycles,
            wall_s=off_s,
            config={"scale": SCALE, "rounds": ROUNDS},
            extra={
                "wall_s_traced": round(on_s, 6),
                "wall_s_critpath": round(crit_s, 6),
                "wall_s_checkpointed": round(snap_s, 6),
                "trace_overhead": round(overhead, 4),
                "critpath_overhead": round(crit_overhead, 4),
                "snapshot_overhead": round(snap_overhead, 4),
                "snapshot_writes": snap_writes,
                "snapshot_write_wall_s": round(write_wall_s, 6),
                "snapshot_restore_wall_s": round(restore_s, 6),
            },
        )

    print("OK: off path carries no observation and matches traced stats")
    return 0


if __name__ == "__main__":
    sys.exit(main())
