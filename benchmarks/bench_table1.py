"""Table 1: the application inventory, paper inputs vs reproduced inputs.

Also validates every instantiated workload against its reference output
through the IR interpreter (the cheapest full-semantics pass).
"""

from conftest import BENCH_SCALE, save_result
from repro.exp.tables import format_table1, table1
from repro.ir.interp import run_kernel
from repro.workloads import all_workloads


def test_table1(benchmark):
    rows = benchmark.pedantic(
        lambda: table1(scale=BENCH_SCALE), rounds=1, iterations=1
    )
    save_result("table1", format_table1(rows))
    assert len(rows) == 13
    for inst in all_workloads(scale="tiny"):
        inst.check(run_kernel(inst.kernel, inst.params, inst.arrays))
