"""Shared benchmark helpers.

Each benchmark regenerates one table or figure of the paper's evaluation
at the ``small`` input scale, prints the same rows/series the paper
reports, and saves the rendered table under ``benchmarks/results/``.
Compiled kernels are shared across benchmarks through the experiment
harness's global compile cache, mirroring how the paper reuses one binary
per workload across machine configurations — and, via the persistent
on-disk layer enabled below, across *invocations* of the benchmark suite
and across the parallel harness's worker processes (PnR dominated the
suite's wall clock before this; see EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.exp.cache import GLOBAL_CACHE
from repro.obs.manifest import config_digest, git_rev

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Persistent compile cache shared by all benchmarks, re-invocations, and
#: run_parallel workers. Keys embed CACHE_SCHEMA_VERSION, so a stale
#: directory is never *wrong*, merely cold. Delete it to force re-PnR.
COMPILE_CACHE_DIR = pathlib.Path(__file__).parent / ".compile-cache"
GLOBAL_CACHE.enable_disk(COMPILE_CACHE_DIR)

#: Input scale used by every benchmark (see EXPERIMENTS.md for the
#: paper-to-repro scaling table).
BENCH_SCALE = "small"


def save_result(name: str, text: str) -> None:
    """Print and persist a rendered figure/table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}")


def record_bench(
    name: str,
    *,
    wall_s: float,
    workload: str | None = None,
    cycles: int | None = None,
    config: dict | None = None,
    extra: dict | None = None,
) -> pathlib.Path:
    """Persist machine-readable telemetry for one benchmark.

    Writes ``results/BENCH_<name>.json`` with the workload, simulated
    cycle count, wall time, and a stable digest of the configuration
    knobs that define the measurement (same digest helper the run
    manifests use, so a perf regression can be tied to the exact config
    it ran under). One file per benchmark, overwritten in place — the
    perf-trajectory record is the sequence of these files across
    revisions, keyed by ``git_rev``.
    """
    config = dict(config or {})
    payload = {
        "schema": 1,
        "bench": name,
        "workload": workload,
        "cycles": cycles,
        "wall_s": round(wall_s, 6),
        "config": {key: config[key] for key in sorted(config)},
        "config_digest": config_digest(config),
        "git_rev": git_rev(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        **(extra or {}),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
