"""Shared benchmark helpers.

Each benchmark regenerates one table or figure of the paper's evaluation
at the ``small`` input scale, prints the same rows/series the paper
reports, and saves the rendered table under ``benchmarks/results/``.
Compiled kernels are shared across benchmarks through the experiment
harness's global compile cache, mirroring how the paper reuses one binary
per workload across machine configurations — and, via the persistent
on-disk layer enabled below, across *invocations* of the benchmark suite
and across the parallel harness's worker processes (PnR dominated the
suite's wall clock before this; see EXPERIMENTS.md).
"""

from __future__ import annotations

import pathlib

from repro.exp.cache import GLOBAL_CACHE

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Persistent compile cache shared by all benchmarks, re-invocations, and
#: run_parallel workers. Keys embed CACHE_SCHEMA_VERSION, so a stale
#: directory is never *wrong*, merely cold. Delete it to force re-PnR.
COMPILE_CACHE_DIR = pathlib.Path(__file__).parent / ".compile-cache"
GLOBAL_CACHE.enable_disk(COMPILE_CACHE_DIR)

#: Input scale used by every benchmark (see EXPERIMENTS.md for the
#: paper-to-repro scaling table).
BENCH_SCALE = "small"


def save_result(name: str, text: str) -> None:
    """Print and persist a rendered figure/table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}")
