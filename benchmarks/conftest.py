"""Shared benchmark helpers.

Each benchmark regenerates one table or figure of the paper's evaluation
at the ``small`` input scale, prints the same rows/series the paper
reports, and saves the rendered table under ``benchmarks/results/``.
Compiled kernels are shared across benchmarks through the experiment
harness's global compile cache, mirroring how the paper reuses one binary
per workload across machine configurations.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Input scale used by every benchmark (see EXPERIMENTS.md for the
#: paper-to-repro scaling table).
BENCH_SCALE = "small"


def save_result(name: str, text: str) -> None:
    """Print and persist a rendered figure/table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}")
