"""Fig. 11: Monaco vs Ideal / UPEA2 / NUMA-UPEA2 across all 13 workloads.

Paper claim: Monaco improves over realistic UPEA by avg 28% and over
NUMA-UPEA by avg 20%, and is within 21% of the ideal design. At our scaled
inputs the same ordering holds with compressed magnitudes (EXPERIMENTS.md).
"""

import time

from conftest import BENCH_SCALE, record_bench, save_result
from repro.exp.figures import fig11
from repro.exp.report import format_figure


def test_fig11(benchmark):
    start = time.perf_counter()
    result = benchmark.pedantic(
        lambda: fig11(scale=BENCH_SCALE), rounds=1, iterations=1
    )
    wall_s = time.perf_counter() - start
    save_result("fig11", format_figure(result))
    record_bench(
        "fig11",
        wall_s=wall_s,
        config={"scale": BENCH_SCALE, "workloads": sorted(result.rows)},
        extra={
            "geomean_upea2": round(result.geomean("upea2"), 4),
            "geomean_numa_upea2": round(result.geomean("numa-upea2"), 4),
            "geomean_ideal": round(result.geomean("ideal"), 4),
        },
    )
    assert len(result.rows) == 13
    assert result.geomean("upea2") > 1.05
    assert result.geomean("numa-upea2") > 1.03
    assert result.geomean("upea2") >= result.geomean("numa-upea2")
    assert result.geomean("ideal") <= 1.01
