"""Thin shim so legacy installs work in offline environments without wheel.

All metadata lives in pyproject.toml; this file only enables
``python setup.py develop`` where PEP 660 editable installs are unavailable.
"""
from setuptools import setup

setup()
