"""Place-and-route: netlist, annealing placement, routing, timing, flow."""

from repro.pnr.flow import compile_kernel, compile_once
from repro.pnr.netlist import Net, Netlist, build_netlist
from repro.pnr.place import Placement, anneal, initial_placement
from repro.pnr.regions import (
    CompiledRegionProgram,
    Region,
    RegionProgram,
    compile_region_program,
    split_kernel,
)
from repro.pnr.result import CompiledKernel
from repro.pnr.route import RoutingResult, route_design
from repro.pnr.timing import TimingReport, analyze_timing
from repro.pnr.viz import fabric_map, placement_map

__all__ = [
    "CompiledKernel",
    "CompiledRegionProgram",
    "Net",
    "Netlist",
    "Placement",
    "Region",
    "RegionProgram",
    "RoutingResult",
    "TimingReport",
    "analyze_timing",
    "anneal",
    "build_netlist",
    "compile_kernel",
    "compile_once",
    "compile_region_program",
    "fabric_map",
    "initial_placement",
    "placement_map",
    "route_design",
    "split_kernel",
]
