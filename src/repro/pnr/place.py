"""Placement: NUPEA-aware simulated annealing (paper Sec. 5).

The flow mirrors effcc's: memory instructions are placed first, favoring
NUPEA domains in the preference order ``D0.c0 <= D0.c1 <= ... <= D1.c0``
weighted by criticality class; all other instructions are then placed
greedily in breadth-first order through defs and uses; finally simulated
annealing refines the placement under a cost that combines communication
locality with a throughput-reduction factor for memory latency.
"""

from __future__ import annotations

import math
import random
import time
from collections import deque

from repro.arch.fabric import Fabric
from repro.arch.pe import PE, manhattan

from repro.core.policy import PlacementPolicy, domain_latency_rank
from repro.dfg.graph import DFG, PortRef
from repro.errors import PlacementError
from repro.pnr.netlist import Netlist

Coord = tuple[int, int]

#: Weight of the memory-latency (throughput) term against wirelength.
MEM_WEIGHT = 6.0
#: Quadratic penalty that discourages individual long nets (a proxy for
#: the max-path-delay objective static timing later enforces).
QUAD_WEIGHT = 0.3


class Placement:
    """A complete node -> PE assignment with incremental cost tracking."""

    def __init__(
        self,
        netlist: Netlist,
        fabric: Fabric,
        policy: PlacementPolicy,
        mem_scale: float = 1.0,
        node_weights: dict[int, float] | None = None,
    ):
        self.netlist = netlist
        self.fabric = fabric
        self.policy = policy
        #: Scales the memory-preference term; the flow lowers it when
        #: timing feedback shows the near-memory pull is congesting the
        #: data NoC (placement/routing negotiation).
        self.mem_scale = mem_scale
        #: Optional per-node weight overrides (feedback-directed
        #: placement, :mod:`repro.exp.fdo`). An empty map is normalized
        #: to None so the override-free path stays bit-identical to the
        #: historical class-weight one.
        self.node_weights = node_weights or None
        self.loc: dict[int, Coord] = {}
        self.occupant: dict[Coord, int] = {}

    # -- assignment ------------------------------------------------------

    def assign(self, nid: int, coord: Coord) -> None:
        if coord in self.occupant:
            raise PlacementError(f"PE {coord} already occupied")
        self.loc[nid] = coord
        self.occupant[coord] = nid

    def move(self, nid: int, coord: Coord) -> None:
        del self.occupant[self.loc[nid]]
        self.loc[nid] = coord
        self.occupant[coord] = nid

    def swap(self, a: int, b: int) -> None:
        la, lb = self.loc[a], self.loc[b]
        self.loc[a], self.loc[b] = lb, la
        self.occupant[la], self.occupant[lb] = b, a

    def legal(self, nid: int, coord: Coord) -> bool:
        node = self.netlist.dfg.nodes[nid]
        return self.fabric.pes[coord].supports(node.op)

    # -- cost ------------------------------------------------------------

    def net_cost(self, net_index: int) -> float:
        net = self.netlist.nets[net_index]
        src = self.loc[net.src]
        cost = 0.0
        for sink in net.sinks:
            if sink == net.src:
                continue
            dist = manhattan(src, self.loc[sink])
            cost += dist + QUAD_WEIGHT * dist * dist
        return cost

    def mem_cost(self, nid: int) -> float:
        node = self.netlist.dfg.nodes[nid]
        if not node.is_memory():
            return 0.0
        weight = self.policy.node_weight(
            node.criticality, nid, self.node_weights
        )
        if weight == 0.0:
            return 0.0
        pe = self.fabric.pes[self.loc[nid]]
        rank = domain_latency_rank(
            self.fabric.domains[pe.domain].arbiter_hops, pe.column_rank
        )
        return MEM_WEIGHT * self.mem_scale * weight * rank

    def cell_cost(self, nid: int) -> float:
        cost = self.mem_cost(nid)
        for net_index in self.netlist.nets_of[nid]:
            cost += self.net_cost(net_index)
        return cost

    def total_cost(self) -> float:
        cost = sum(self.net_cost(i) for i in range(len(self.netlist.nets)))
        cost += sum(self.mem_cost(nid) for nid in self.netlist.cells)
        return cost


class CostTable:
    """Per-net cached costs for O(fanout) anneal move/swap deltas.

    The table mirrors :meth:`Placement.net_cost` / :meth:`Placement.mem_cost`
    value-for-value: every cached entry is the exact float the placement
    would recompute fresh at the current positions. Sums over cached
    entries therefore use the *same addition order and the same operand
    bits* as the naive :meth:`Placement.cell_cost` / :func:`_pair_cost`,
    which is what makes the incremental anneal's accept/reject trajectory
    bit-identical to the full-recompute one (asserted at every step by
    ``tests/test_pnr_incremental.py``'s property suite).

    Protocol: read the cached "before" via :meth:`cell_cost` /
    :meth:`pair_cost`, mutate the placement, compute the "after" via
    :meth:`fresh_cell_cost` / :meth:`fresh_pair_cost` (which stages the
    recomputed entries), then :meth:`commit` on accept or :meth:`discard`
    on revert.
    """

    __slots__ = (
        "placement",
        "net",
        "mem",
        "_mem_base",
        "_rank",
        "_pins",
        "_staged_nets",
        "_staged_mem",
    )

    def __init__(self, placement: Placement):
        self.placement = placement
        netlist = placement.netlist
        self.net: list[float] = [
            placement.net_cost(i) for i in range(len(netlist.nets))
        ]
        self.mem: dict[int, float] = {
            nid: placement.mem_cost(nid) for nid in netlist.cells
        }
        # Position-independent part of mem_cost, precomputed per cell with
        # the same association order as Placement.mem_cost:
        # ((MEM_WEIGHT * mem_scale) * weight) * rank.
        dfg = netlist.dfg
        policy = placement.policy
        self._mem_base: dict[int, float] = {}
        for nid in netlist.cells:
            node = dfg.nodes[nid]
            if not node.is_memory():
                continue
            weight = policy.node_weight(
                node.criticality, nid, placement.node_weights
            )
            if weight == 0.0:
                continue
            self._mem_base[nid] = (
                MEM_WEIGHT * placement.mem_scale * weight
            )
        fabric = placement.fabric
        self._rank: dict[Coord, float] = {
            pe.coord: domain_latency_rank(
                fabric.domains[pe.domain].arbiter_hops, pe.column_rank
            )
            for pe in fabric.ls_pes()
        }
        # Per-net (src, sinks-excluding-src) in pin order: the skip of
        # self-loop pins in Placement.net_cost is placement-independent,
        # so it can be folded out of the hot recompute loop.
        self._pins: list[tuple[int, tuple[int, ...]]] = [
            (n.src, tuple(s for s in n.sinks if s != n.src))
            for n in netlist.nets
        ]
        self._staged_nets: list[tuple[int, float]] = []
        self._staged_mem: list[tuple[int, float]] = []

    # -- cached reads (the "before" side of a delta) ---------------------

    def cell_cost(self, nid: int) -> float:
        """Cached twin of :meth:`Placement.cell_cost` (bit-identical)."""
        cost = self.mem[nid]
        net = self.net
        for index in self.placement.netlist.nets_of[nid]:
            cost += net[index]
        return cost

    def pair_cost(self, a: int, b: int, nets) -> float:
        """Cached twin of :func:`_pair_cost` over an explicit net set.

        ``nets`` must be the same set object later passed to
        :meth:`fresh_pair_cost` so both sums iterate in one order.
        """
        cost = self.mem[a] + self.mem[b]
        net = self.net
        for index in nets:
            cost += net[index]
        return cost

    # -- fresh recomputes (the "after" side; staged until commit) --------

    def _fresh_net(self, index: int) -> float:
        """Inlined twin of :meth:`Placement.net_cost` (same arithmetic)."""
        src, sinks = self._pins[index]
        loc = self.placement.loc
        sx, sy = loc[src]
        cost = 0.0
        for sink in sinks:
            tx, ty = loc[sink]
            dist = abs(sx - tx) + abs(sy - ty)
            cost += dist + QUAD_WEIGHT * dist * dist
        return cost

    def _fresh_mem(self, nid: int) -> float:
        base = self._mem_base.get(nid)
        if base is None:
            return 0.0
        return base * self._rank[self.placement.loc[nid]]

    def fresh_cell_cost(self, nid: int) -> float:
        """Recompute ``cell_cost(nid)`` fresh; stages the new entries."""
        mem = self._fresh_mem(nid)
        cost = mem
        self._staged_mem = [(nid, mem)]
        staged = self._staged_nets = []
        fresh_net = self._fresh_net
        for index in self.placement.netlist.nets_of[nid]:
            value = fresh_net(index)
            staged.append((index, value))
            cost += value
        return cost

    def fresh_pair_cost(self, a: int, b: int, nets) -> float:
        """Recompute ``_pair_cost(a, b)`` fresh; stages the new entries."""
        mem_a = self._fresh_mem(a)
        mem_b = self._fresh_mem(b)
        cost = mem_a + mem_b
        self._staged_mem = [(a, mem_a), (b, mem_b)]
        staged = self._staged_nets = []
        fresh_net = self._fresh_net
        for index in nets:
            value = fresh_net(index)
            staged.append((index, value))
            cost += value
        return cost

    def commit(self) -> None:
        """Fold the staged recomputes into the cache (move accepted)."""
        net = self.net
        for index, value in self._staged_nets:
            net[index] = value
        mem = self.mem
        for nid, value in self._staged_mem:
            mem[nid] = value
        self._staged_nets = []
        self._staged_mem = []

    def discard(self) -> None:
        """Drop the staged recomputes (move reverted)."""
        self._staged_nets = []
        self._staged_mem = []

    def total(self) -> float:
        """Cached twin of :meth:`Placement.total_cost` (bit-identical)."""
        cost = sum(self.net)
        cost += sum(self.mem[nid] for nid in self.placement.netlist.cells)
        return cost


def initial_placement(
    netlist: Netlist,
    fabric: Fabric,
    policy: PlacementPolicy,
    rng: random.Random,
    mem_scale: float = 1.0,
    node_weights: dict[int, float] | None = None,
) -> Placement:
    """Deterministic seed placement: memory first, then greedy BFS.

    Memory nodes are grouped by connected *cluster* (spatially replicated
    workers are independent subgraphs) and each cluster is confined to a
    contiguous band of LS rows: within a band, the NUPEA preference order
    (fast domains and columns first, criticality classes in order) decides
    slots. Banding keeps each worker's nodes spatially compact, which is
    what lets the annealer converge to short nets on large fabrics.

    ``node_weights`` (feedback-directed placement) overrides the
    per-node memory weight: within a cluster, memory nodes claim slots
    in descending *effective* weight order instead of class order, and
    the anneal objective prices each node at its override. An empty or
    ``None`` map reproduces the class-weight path bit for bit.
    """
    dfg = netlist.dfg
    if len(netlist.cells) > fabric.size():
        raise PlacementError(
            f"{len(netlist.cells)} nodes exceed fabric capacity "
            f"{fabric.size()}"
        )
    mem_nodes = [n for n in netlist.cells if dfg.nodes[n].is_memory()]
    if len(mem_nodes) > len(fabric.ls_pes()):
        raise PlacementError(
            f"{len(mem_nodes)} memory nodes exceed {len(fabric.ls_pes())} "
            "LS PEs"
        )
    placement = Placement(
        netlist, fabric, policy, mem_scale=mem_scale,
        node_weights=node_weights,
    )

    clusters = _clusters(netlist)
    bands = _row_bands(clusters, dfg, fabric)
    if policy.domain_aware:
        all_slots = fabric.preferred_ls_slots()
    else:
        all_slots = sorted(fabric.ls_pes(), key=lambda pe: (pe.y, pe.x))
    klass_order = {"A": 0, "B": 1, "C": 2}
    for cluster, band in zip(clusters, bands):
        mems = sorted(n for n in cluster if dfg.nodes[n].is_memory())
        if placement.node_weights is not None:
            # Feedback-directed: measured weights, not class guesses,
            # decide who claims the fast domains first.
            mems.sort(
                key=lambda n: (
                    -policy.node_weight(
                        dfg.nodes[n].criticality, n, placement.node_weights
                    ),
                    n,
                )
            )
        elif policy.criticality_aware:
            mems.sort(
                key=lambda n: (klass_order[dfg.nodes[n].criticality], n)
            )
        elif policy.domain_aware:
            # Domain-aware but criticality-blind: the policy "does not
            # distinguish between the few critical loads and the many
            # others" (Sec. 7.1), so the order within a cluster is
            # arbitrary.
            rng.shuffle(mems)
        band_slots = [pe for pe in all_slots if pe.y in band]
        for nid in mems:
            slot = _first_free(placement, band_slots) or _first_free(
                placement, all_slots
            )
            if slot is None:
                raise PlacementError("ran out of LS PEs")  # pragma: no cover
            placement.assign(nid, slot.coord)

    _greedy_rest(netlist, fabric, placement)
    return placement


def _first_free(placement: Placement, slots: list[PE]) -> PE | None:
    for pe in slots:
        if pe.coord not in placement.occupant:
            return pe
    return None


def _clusters(netlist: Netlist) -> list[list[int]]:
    """Connected components, ignoring broadcast and synchronization nodes.

    The launch token and constant injections fan out to every replicated
    worker, and memory-token joins bridge parallel phases; excluding them
    recovers the per-worker subgraphs that should be placed compactly.
    """
    dfg = netlist.dfg
    skip = {
        n.nid
        for n in dfg.nodes.values()
        if n.op in ("source", "inject", "join")
    }
    parent: dict[int, int] = {n: n for n in netlist.cells}

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for node in dfg.nodes.values():
        if node.nid in skip:
            continue
        for inp in node.inputs:
            if isinstance(inp, PortRef) and inp.src not in skip:
                ra, rb = find(node.nid), find(inp.src)
                if ra != rb:
                    parent[ra] = rb
    groups: dict[int, list[int]] = {}
    for nid in netlist.cells:
        groups.setdefault(find(nid), []).append(nid)
    return sorted(groups.values(), key=min)


def _row_bands(
    clusters: list[list[int]], dfg, fabric: Fabric
) -> list[set[int]]:
    """Contiguous LS-row spans per cluster, sized by memory-node count."""
    ls_rows = fabric.ls_rows()
    weights = [
        max(1, sum(1 for n in c if dfg.nodes[n].is_memory()))
        for c in clusters
    ]
    total = sum(weights)
    d0_width = max(1, len(fabric.domains[0].columns))
    bands: list[set[int]] = []
    cursor = 0.0
    for weight in weights:
        span = weight / total * len(ls_rows)
        lo = int(cursor)
        hi = max(lo + 1, int(cursor + span + 1e-9))
        # Cap the band at what the cluster's memory nodes actually need
        # (bands anchor clusters; they need not tile the whole fabric).
        need = max(1, -(-weight // d0_width)) + 1
        hi = min(hi, lo + need)
        bands.append(set(ls_rows[lo:hi]))
        cursor += span
    return bands


def _neighbors_map(dfg: DFG) -> dict[int, list[int]]:
    """Undirected def/use adjacency."""
    adjacency: dict[int, list[int]] = {nid: [] for nid in dfg.nodes}
    for node in dfg.nodes.values():
        for inp in node.inputs:
            if isinstance(inp, PortRef):
                adjacency[node.nid].append(inp.src)
                adjacency[inp.src].append(node.nid)
    return adjacency


def _greedy_rest(
    netlist: Netlist, fabric: Fabric, placement: Placement
) -> None:
    """Place remaining cells in BFS order near their placed neighbors.

    The BFS queue is a deque (``list.pop(0)`` is O(n)) and the free-PE
    pool is an insertion-ordered dict keyed by coord (``list.remove`` is
    O(n)); scan order and the strict ``<`` first-minimum tie-break match
    the original list-based implementation, so placements are
    bit-identical (asserted on all 13 workloads by the test suite).
    """
    dfg = netlist.dfg
    adjacency = _neighbors_map(dfg)
    # Insertion order == the original (y, x)-sorted scan order; dict
    # deletion preserves the order of the remaining coords.
    free: dict[Coord, bool] = {
        pe.coord: pe.is_ls
        for pe in sorted(fabric.pes.values(), key=lambda p: (p.y, p.x))
        if pe.coord not in placement.occupant
    }
    frontier = sorted(placement.loc)
    visited = set(frontier)
    queue = deque(frontier)
    order: list[int] = []
    while queue:
        current = queue.popleft()
        for neighbor in adjacency[current]:
            if neighbor not in visited:
                visited.add(neighbor)
                order.append(neighbor)
                queue.append(neighbor)
    # Any disconnected leftovers (rare) go last.
    order += [n for n in netlist.cells if n not in visited]

    for nid in order:
        if nid in placement.loc:
            continue
        anchors = [
            placement.loc[a] for a in adjacency[nid] if a in placement.loc
        ]
        needs_ls = dfg.nodes[nid].op in ("load", "store")
        best, best_cost = None, None
        for coord, is_ls in free.items():
            if needs_ls and not is_ls:
                continue
            cx, cy = coord
            cost = 0
            for ax, ay in anchors:
                cost += abs(cx - ax) + abs(cy - ay)
            if best_cost is None or cost < best_cost:
                best, best_cost = coord, cost
        if best is None:
            raise PlacementError(
                f"no legal free PE for node {nid} "
                f"({dfg.nodes[nid].op})"
            )
        placement.assign(nid, best)
        del free[best]


def anneal(
    placement: Placement,
    rng: random.Random,
    moves: int | None = None,
    t_start: float = 8.0,
    t_end: float = 0.05,
    incremental: bool = True,
    check: bool = False,
    stats: dict | None = None,
) -> float:
    """Refine ``placement`` in place; returns the final (exact) cost.

    ``incremental=True`` (default) drives the accept/reject loop off a
    :class:`CostTable`, so each proposal costs O(fanout) instead of
    recomputing every incident net from scratch. The trajectory is
    bit-identical to the naive full-recompute path (``incremental=False``,
    kept as the A/B baseline): same rng call sequence, same operand bits
    in every delta, hence the same accept/reject decisions and the same
    final placement for a given seed.

    ``check=True`` asserts the incrementally accumulated cost matches
    ``total_cost()`` at anneal end within 1e-6 (relative). In either mode
    the returned value is reconciled to the exact recomputed total, so a
    cached ``CompiledKernel.place_cost`` is float-drift-free.

    ``stats``, if given, is filled with ``proposals`` (moves surviving
    the window/legality filters), ``accepted``, ``moves``, ``wall_s``,
    and ``moves_per_s``.
    """
    t0 = time.perf_counter()
    netlist = placement.netlist
    cells = list(netlist.cells)
    if not cells:
        if stats is not None:
            stats.update(
                proposals=0,
                accepted=0,
                moves=0,
                wall_s=0.0,
                moves_per_s=0.0,
            )
        return 0.0
    if moves is None:
        moves = min(60_000, 200 * len(cells))
    alpha = (t_end / t_start) ** (1.0 / max(1, moves))

    if incremental:
        cost, proposals, accepted = _anneal_incremental(
            placement, rng, cells, moves, alpha, t_start
        )
    else:
        cost, proposals, accepted = _anneal_naive(
            placement, rng, cells, moves, alpha, t_start
        )

    exact = placement.total_cost()
    if check and abs(cost - exact) > 1e-6 * max(1.0, abs(exact)):
        raise PlacementError(
            f"anneal cost drift: accumulated {cost!r} != exact {exact!r}"
        )
    wall = time.perf_counter() - t0
    if stats is not None:
        stats["proposals"] = proposals
        stats["accepted"] = accepted
        stats["moves"] = moves
        stats["wall_s"] = wall
        stats["moves_per_s"] = moves / wall if wall > 0 else 0.0
    return exact


def _anneal_naive(
    placement: Placement,
    rng: random.Random,
    cells: list[int],
    moves: int,
    alpha: float,
    t_start: float,
) -> tuple[float, int, int]:
    """Full-recompute anneal loop (the pre-incremental baseline)."""
    fabric = placement.fabric
    temperature = t_start
    cost = placement.total_cost()
    max_window = max(fabric.rows, fabric.cols)
    proposals = accepted = 0

    for step in range(moves):
        nid = rng.choice(cells)
        # VPR-style range limit: the candidate window shrinks as the
        # anneal cools, so late moves are local refinements.
        window = max(2, round(max_window * (1.0 - step / moves)))
        cx, cy = placement.loc[nid]
        target = (
            min(
                fabric.cols - 1,
                max(0, cx + rng.randint(-window, window)),
            ),
            min(
                fabric.rows - 1,
                max(0, cy + rng.randint(-window, window)),
            ),
        )
        if target == placement.loc[nid]:
            temperature *= alpha
            continue
        other = placement.occupant.get(target)
        if not placement.legal(nid, target):
            temperature *= alpha
            continue
        if other is not None and not placement.legal(
            other, placement.loc[nid]
        ):
            temperature *= alpha
            continue

        proposals += 1
        if other is None:
            before = placement.cell_cost(nid)
            origin = placement.loc[nid]
            placement.move(nid, target)
            delta = placement.cell_cost(nid) - before
            if delta > 0 and rng.random() >= math.exp(-delta / temperature):
                placement.move(nid, origin)
            else:
                cost += delta
                accepted += 1
        else:
            before = _pair_cost(placement, nid, other)
            placement.swap(nid, other)
            delta = _pair_cost(placement, nid, other) - before
            if delta > 0 and rng.random() >= math.exp(-delta / temperature):
                placement.swap(nid, other)
            else:
                cost += delta
                accepted += 1
        temperature *= alpha
    return cost, proposals, accepted


def _anneal_incremental(
    placement: Placement,
    rng: random.Random,
    cells: list[int],
    moves: int,
    alpha: float,
    t_start: float,
) -> tuple[float, int, int]:
    """Delta-cost anneal loop over a :class:`CostTable`.

    Mirrors :func:`_anneal_naive` decision-for-decision: the rng is
    consulted in the same order (choice, randint x2, then random() only
    when delta > 0), and every cost the naive loop would compute is
    reproduced bit-for-bit from the cache (see :class:`CostTable`). The
    rng calls are inlined to their ``_randbelow`` cores —
    ``choice(cells)`` is ``cells[_randbelow(len(cells))]`` and
    ``randint(-w, w)`` is ``-w + _randbelow(2w + 1)`` — which consume
    the identical underlying random stream without ``randrange``'s
    per-call bounds checking. The delta recomputes are likewise inlined
    from the :class:`CostTable` methods; the table's cached state
    (``net``/``mem``) is read and written directly.
    """
    fabric = placement.fabric
    netlist = placement.netlist
    table = CostTable(placement)
    temperature = t_start
    cost = table.total()
    max_window = max(fabric.rows, fabric.cols)
    proposals = accepted = 0

    loc = placement.loc
    occupant = placement.occupant
    occupant_get = occupant.get
    nets_of = netlist.nets_of
    ls_coords = {pe.coord for pe in fabric.ls_pes()}
    dfg_nodes = netlist.dfg.nodes
    needs_ls = {
        nid for nid in cells if dfg_nodes[nid].op in ("load", "store")
    }
    cols_max = fabric.cols - 1
    rows_max = fabric.rows - 1
    getrandbits = rng.getrandbits
    rand = rng.random
    exp = math.exp
    net = table.net
    mem = table.mem
    mem_base_get = table._mem_base.get
    rank = table._rank
    pins = table._pins
    ncells = len(cells)

    # Manhattan distances are small ints, so the per-sink cost term
    # ``dist + QUAD_WEIGHT * dist**2`` takes only rows+cols distinct
    # values; tabulating it (with the identical expression) turns two
    # multiplies per sink into one list index, bit-for-bit.
    dcost = [
        float(d) + QUAD_WEIGHT * d * d
        for d in range(cols_max + rows_max + 1)
    ]
    # abs(sx - px) via a wraparound lookup: axis deltas lie in
    # [-max, max], and Python's negative indexing maps ax[-d] onto the
    # mirrored tail, so ax[sx - px] == abs(sx - px) with no call.
    ax = list(range(cols_max + 1)) + list(range(cols_max, 0, -1))
    ay = list(range(rows_max + 1)) + list(range(rows_max, 0, -1))
    # Building ``set(nets_of[a]) | set(nets_of[b])`` from cached per-cell
    # sets yields the same union (same elements, same small-int hashing,
    # hence the same iteration order) without two throwaway set() builds
    # per swap proposal.
    net_sets = {cell: set(nets_of[cell]) for cell in cells}

    # The VPR window schedule depends only on the step index; tabulate
    # (window, randint span, span bit length) for the whole anneal. The
    # rng calls below are the unrolled cores of ``choice(cells)`` /
    # ``randint(-window, window)``: each is ``_randbelow(n)``, i.e.
    # draw ``n.bit_length()`` bits and reject draws >= n, which consumes
    # the identical random stream as the naive loop's method calls
    # (``rng`` must be getrandbits-based, as ``random.Random`` is).
    kcells = ncells.bit_length()
    wtab = []
    for step in range(moves):
        window = max(2, round(max_window * (1.0 - step / moves)))
        span = window + window + 1
        wtab.append((window, span, span.bit_length()))

    for window, span, kspan in wtab:
        r = getrandbits(kcells)
        while r >= ncells:
            r = getrandbits(kcells)
        nid = cells[r]
        origin = loc[nid]
        cx, cy = origin
        r = getrandbits(kspan)
        while r >= span:
            r = getrandbits(kspan)
        tx = cx - window + r
        if tx < 0:
            tx = 0
        elif tx > cols_max:
            tx = cols_max
        r = getrandbits(kspan)
        while r >= span:
            r = getrandbits(kspan)
        ty = cy - window + r
        if ty < 0:
            ty = 0
        elif ty > rows_max:
            ty = rows_max
        target = (tx, ty)
        if target == origin:
            temperature *= alpha
            continue
        other = occupant_get(target)
        if nid in needs_ls and target not in ls_coords:
            temperature *= alpha
            continue
        if (
            other is not None
            and other in needs_ls
            and origin not in ls_coords
        ):
            temperature *= alpha
            continue

        proposals += 1
        if other is None:
            # MOVE: inlined cell_cost (cached) / fresh_cell_cost.
            nid_nets = nets_of[nid]
            before = mem[nid]
            for index in nid_nets:
                before += net[index]
            del occupant[origin]
            loc[nid] = target
            occupant[target] = nid
            base = mem_base_get(nid)
            new_mem = 0.0 if base is None else base * rank[target]
            after = new_mem
            staged = []
            for index in nid_nets:
                src, sinks = pins[index]
                sx, sy = loc[src]
                value = 0.0
                for sink in sinks:
                    px, py = loc[sink]
                    value += dcost[ax[sx - px] + ay[sy - py]]
                staged.append(value)
                after += value
            delta = after - before
            if delta > 0 and rand() >= exp(-delta / temperature):
                del occupant[target]
                loc[nid] = origin
                occupant[origin] = nid
            else:
                cost += delta
                mem[nid] = new_mem
                for index, value in zip(nid_nets, staged):
                    net[index] = value
                accepted += 1
        else:
            # SWAP: inlined pair_cost (cached) / fresh_pair_cost. One
            # set object drives both sums, so they iterate in one order.
            nets = net_sets[nid] | net_sets[other]
            before = mem[nid] + mem[other]
            for index in nets:
                before += net[index]
            loc[nid], loc[other] = target, origin
            occupant[origin], occupant[target] = other, nid
            base = mem_base_get(nid)
            new_mem_a = 0.0 if base is None else base * rank[target]
            base = mem_base_get(other)
            new_mem_b = 0.0 if base is None else base * rank[origin]
            after = new_mem_a + new_mem_b
            staged = []
            for index in nets:
                src, sinks = pins[index]
                sx, sy = loc[src]
                value = 0.0
                for sink in sinks:
                    px, py = loc[sink]
                    value += dcost[ax[sx - px] + ay[sy - py]]
                staged.append((index, value))
                after += value
            delta = after - before
            if delta > 0 and rand() >= exp(-delta / temperature):
                loc[nid], loc[other] = origin, target
                occupant[origin], occupant[target] = nid, other
            else:
                cost += delta
                mem[nid] = new_mem_a
                mem[other] = new_mem_b
                for index, value in staged:
                    net[index] = value
                accepted += 1
        temperature *= alpha
    return cost, proposals, accepted


def _pair_cost(placement: Placement, a: int, b: int) -> float:
    nets = set(placement.netlist.nets_of[a]) | set(
        placement.netlist.nets_of[b]
    )
    cost = placement.mem_cost(a) + placement.mem_cost(b)
    for net_index in nets:
        cost += placement.net_cost(net_index)
    return cost
