"""Placement: NUPEA-aware simulated annealing (paper Sec. 5).

The flow mirrors effcc's: memory instructions are placed first, favoring
NUPEA domains in the preference order ``D0.c0 <= D0.c1 <= ... <= D1.c0``
weighted by criticality class; all other instructions are then placed
greedily in breadth-first order through defs and uses; finally simulated
annealing refines the placement under a cost that combines communication
locality with a throughput-reduction factor for memory latency.
"""

from __future__ import annotations

import math
import random

from repro.arch.fabric import Fabric
from repro.arch.pe import PE, manhattan

from repro.core.policy import PlacementPolicy, domain_latency_rank
from repro.dfg.graph import DFG, PortRef
from repro.errors import PlacementError
from repro.pnr.netlist import Netlist

Coord = tuple[int, int]

#: Weight of the memory-latency (throughput) term against wirelength.
MEM_WEIGHT = 6.0
#: Quadratic penalty that discourages individual long nets (a proxy for
#: the max-path-delay objective static timing later enforces).
QUAD_WEIGHT = 0.3


class Placement:
    """A complete node -> PE assignment with incremental cost tracking."""

    def __init__(
        self,
        netlist: Netlist,
        fabric: Fabric,
        policy: PlacementPolicy,
        mem_scale: float = 1.0,
    ):
        self.netlist = netlist
        self.fabric = fabric
        self.policy = policy
        #: Scales the memory-preference term; the flow lowers it when
        #: timing feedback shows the near-memory pull is congesting the
        #: data NoC (placement/routing negotiation).
        self.mem_scale = mem_scale
        self.loc: dict[int, Coord] = {}
        self.occupant: dict[Coord, int] = {}

    # -- assignment ------------------------------------------------------

    def assign(self, nid: int, coord: Coord) -> None:
        if coord in self.occupant:
            raise PlacementError(f"PE {coord} already occupied")
        self.loc[nid] = coord
        self.occupant[coord] = nid

    def move(self, nid: int, coord: Coord) -> None:
        del self.occupant[self.loc[nid]]
        self.loc[nid] = coord
        self.occupant[coord] = nid

    def swap(self, a: int, b: int) -> None:
        la, lb = self.loc[a], self.loc[b]
        self.loc[a], self.loc[b] = lb, la
        self.occupant[la], self.occupant[lb] = b, a

    def legal(self, nid: int, coord: Coord) -> bool:
        node = self.netlist.dfg.nodes[nid]
        return self.fabric.pes[coord].supports(node.op)

    # -- cost ------------------------------------------------------------

    def net_cost(self, net_index: int) -> float:
        net = self.netlist.nets[net_index]
        src = self.loc[net.src]
        cost = 0.0
        for sink in net.sinks:
            if sink == net.src:
                continue
            dist = manhattan(src, self.loc[sink])
            cost += dist + QUAD_WEIGHT * dist * dist
        return cost

    def mem_cost(self, nid: int) -> float:
        node = self.netlist.dfg.nodes[nid]
        if not node.is_memory():
            return 0.0
        weight = self.policy.weight(node.criticality)
        if weight == 0.0:
            return 0.0
        pe = self.fabric.pes[self.loc[nid]]
        rank = domain_latency_rank(
            self.fabric.domains[pe.domain].arbiter_hops, pe.column_rank
        )
        return MEM_WEIGHT * self.mem_scale * weight * rank

    def cell_cost(self, nid: int) -> float:
        cost = self.mem_cost(nid)
        for net_index in self.netlist.nets_of[nid]:
            cost += self.net_cost(net_index)
        return cost

    def total_cost(self) -> float:
        cost = sum(self.net_cost(i) for i in range(len(self.netlist.nets)))
        cost += sum(self.mem_cost(nid) for nid in self.netlist.cells)
        return cost


def initial_placement(
    netlist: Netlist,
    fabric: Fabric,
    policy: PlacementPolicy,
    rng: random.Random,
    mem_scale: float = 1.0,
) -> Placement:
    """Deterministic seed placement: memory first, then greedy BFS.

    Memory nodes are grouped by connected *cluster* (spatially replicated
    workers are independent subgraphs) and each cluster is confined to a
    contiguous band of LS rows: within a band, the NUPEA preference order
    (fast domains and columns first, criticality classes in order) decides
    slots. Banding keeps each worker's nodes spatially compact, which is
    what lets the annealer converge to short nets on large fabrics.
    """
    dfg = netlist.dfg
    if len(netlist.cells) > fabric.size():
        raise PlacementError(
            f"{len(netlist.cells)} nodes exceed fabric capacity "
            f"{fabric.size()}"
        )
    mem_nodes = [n for n in netlist.cells if dfg.nodes[n].is_memory()]
    if len(mem_nodes) > len(fabric.ls_pes()):
        raise PlacementError(
            f"{len(mem_nodes)} memory nodes exceed {len(fabric.ls_pes())} "
            "LS PEs"
        )
    placement = Placement(netlist, fabric, policy, mem_scale=mem_scale)

    clusters = _clusters(netlist)
    bands = _row_bands(clusters, dfg, fabric)
    if policy.domain_aware:
        all_slots = fabric.preferred_ls_slots()
    else:
        all_slots = sorted(fabric.ls_pes(), key=lambda pe: (pe.y, pe.x))
    klass_order = {"A": 0, "B": 1, "C": 2}
    for cluster, band in zip(clusters, bands):
        mems = sorted(n for n in cluster if dfg.nodes[n].is_memory())
        if policy.criticality_aware:
            mems.sort(
                key=lambda n: (klass_order[dfg.nodes[n].criticality], n)
            )
        elif policy.domain_aware:
            # Domain-aware but criticality-blind: the policy "does not
            # distinguish between the few critical loads and the many
            # others" (Sec. 7.1), so the order within a cluster is
            # arbitrary.
            rng.shuffle(mems)
        band_slots = [pe for pe in all_slots if pe.y in band]
        for nid in mems:
            slot = _first_free(placement, band_slots) or _first_free(
                placement, all_slots
            )
            if slot is None:
                raise PlacementError("ran out of LS PEs")  # pragma: no cover
            placement.assign(nid, slot.coord)

    _greedy_rest(netlist, fabric, placement)
    return placement


def _first_free(placement: Placement, slots: list[PE]) -> PE | None:
    for pe in slots:
        if pe.coord not in placement.occupant:
            return pe
    return None


def _clusters(netlist: Netlist) -> list[list[int]]:
    """Connected components, ignoring broadcast and synchronization nodes.

    The launch token and constant injections fan out to every replicated
    worker, and memory-token joins bridge parallel phases; excluding them
    recovers the per-worker subgraphs that should be placed compactly.
    """
    dfg = netlist.dfg
    skip = {
        n.nid
        for n in dfg.nodes.values()
        if n.op in ("source", "inject", "join")
    }
    parent: dict[int, int] = {n: n for n in netlist.cells}

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for node in dfg.nodes.values():
        if node.nid in skip:
            continue
        for inp in node.inputs:
            if isinstance(inp, PortRef) and inp.src not in skip:
                ra, rb = find(node.nid), find(inp.src)
                if ra != rb:
                    parent[ra] = rb
    groups: dict[int, list[int]] = {}
    for nid in netlist.cells:
        groups.setdefault(find(nid), []).append(nid)
    return sorted(groups.values(), key=min)


def _row_bands(
    clusters: list[list[int]], dfg, fabric: Fabric
) -> list[set[int]]:
    """Contiguous LS-row spans per cluster, sized by memory-node count."""
    ls_rows = fabric.ls_rows()
    weights = [
        max(1, sum(1 for n in c if dfg.nodes[n].is_memory()))
        for c in clusters
    ]
    total = sum(weights)
    d0_width = max(1, len(fabric.domains[0].columns))
    bands: list[set[int]] = []
    cursor = 0.0
    for weight in weights:
        span = weight / total * len(ls_rows)
        lo = int(cursor)
        hi = max(lo + 1, int(cursor + span + 1e-9))
        # Cap the band at what the cluster's memory nodes actually need
        # (bands anchor clusters; they need not tile the whole fabric).
        need = max(1, -(-weight // d0_width)) + 1
        hi = min(hi, lo + need)
        bands.append(set(ls_rows[lo:hi]))
        cursor += span
    return bands


def _neighbors_map(dfg: DFG) -> dict[int, list[int]]:
    """Undirected def/use adjacency."""
    adjacency: dict[int, list[int]] = {nid: [] for nid in dfg.nodes}
    for node in dfg.nodes.values():
        for inp in node.inputs:
            if isinstance(inp, PortRef):
                adjacency[node.nid].append(inp.src)
                adjacency[inp.src].append(node.nid)
    return adjacency


def _greedy_rest(
    netlist: Netlist, fabric: Fabric, placement: Placement
) -> None:
    """Place remaining cells in BFS order near their placed neighbors."""
    dfg = netlist.dfg
    adjacency = _neighbors_map(dfg)
    free: list[Coord] = [
        pe.coord
        for pe in sorted(fabric.pes.values(), key=lambda p: (p.y, p.x))
        if pe.coord not in placement.occupant
    ]
    frontier = sorted(placement.loc)
    visited = set(frontier)
    queue = list(frontier)
    order: list[int] = []
    while queue:
        current = queue.pop(0)
        for neighbor in adjacency[current]:
            if neighbor not in visited:
                visited.add(neighbor)
                order.append(neighbor)
                queue.append(neighbor)
    # Any disconnected leftovers (rare) go last.
    order += [n for n in netlist.cells if n not in visited]

    for nid in order:
        if nid in placement.loc:
            continue
        anchors = [
            placement.loc[a] for a in adjacency[nid] if a in placement.loc
        ]
        best, best_cost = None, None
        for coord in free:
            if not placement.legal(nid, coord):
                continue
            cost = sum(manhattan(coord, a) for a in anchors)
            if best_cost is None or cost < best_cost:
                best, best_cost = coord, cost
        if best is None:
            raise PlacementError(
                f"no legal free PE for node {nid} "
                f"({dfg.nodes[nid].op})"
            )
        placement.assign(nid, best)
        free.remove(best)


def anneal(
    placement: Placement,
    rng: random.Random,
    moves: int | None = None,
    t_start: float = 8.0,
    t_end: float = 0.05,
) -> float:
    """Refine ``placement`` in place; returns the final cost."""
    netlist = placement.netlist
    fabric = placement.fabric
    cells = list(netlist.cells)
    if not cells:
        return 0.0
    if moves is None:
        moves = min(60_000, 200 * len(cells))
    alpha = (t_end / t_start) ** (1.0 / max(1, moves))
    temperature = t_start
    cost = placement.total_cost()
    max_window = max(fabric.rows, fabric.cols)

    for step in range(moves):
        nid = rng.choice(cells)
        # VPR-style range limit: the candidate window shrinks as the
        # anneal cools, so late moves are local refinements.
        window = max(2, round(max_window * (1.0 - step / moves)))
        cx, cy = placement.loc[nid]
        target = (
            min(
                fabric.cols - 1,
                max(0, cx + rng.randint(-window, window)),
            ),
            min(
                fabric.rows - 1,
                max(0, cy + rng.randint(-window, window)),
            ),
        )
        if target == placement.loc[nid]:
            temperature *= alpha
            continue
        other = placement.occupant.get(target)
        if not placement.legal(nid, target):
            temperature *= alpha
            continue
        if other is not None and not placement.legal(
            other, placement.loc[nid]
        ):
            temperature *= alpha
            continue

        if other is None:
            before = placement.cell_cost(nid)
            origin = placement.loc[nid]
            placement.move(nid, target)
            delta = placement.cell_cost(nid) - before
            if delta > 0 and rng.random() >= math.exp(-delta / temperature):
                placement.move(nid, origin)
            else:
                cost += delta
        else:
            before = _pair_cost(placement, nid, other)
            placement.swap(nid, other)
            delta = _pair_cost(placement, nid, other) - before
            if delta > 0 and rng.random() >= math.exp(-delta / temperature):
                placement.swap(nid, other)
            else:
                cost += delta
        temperature *= alpha
    return cost


def _pair_cost(placement: Placement, a: int, b: int) -> float:
    nets = set(placement.netlist.nets_of[a]) | set(
        placement.netlist.nets_of[b]
    )
    cost = placement.mem_cost(a) + placement.mem_cost(b)
    for net_index in nets:
        cost += placement.net_cost(net_index)
    return cost
