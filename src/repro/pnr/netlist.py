"""Netlist view of a DFG for place-and-route.

PnR works on *cells* (DFG nodes, one per PE) and *nets* (one per producer,
fanning out to every consumer — a multicast on the statically routed data
NoC, so sinks of one net may share channel segments).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dfg.graph import DFG, PortRef


@dataclass(frozen=True)
class Net:
    """One producer and its sinks (consumer node ids, deduplicated)."""

    src: int
    sinks: tuple[int, ...]


@dataclass
class Netlist:
    """Cells and nets extracted from a DFG."""

    dfg: DFG
    cells: list[int] = field(default_factory=list)
    nets: list[Net] = field(default_factory=list)
    #: cell -> indices of nets it participates in (as source or sink).
    nets_of: dict[int, list[int]] = field(default_factory=dict)

    @property
    def n_memory(self) -> int:
        return sum(1 for nid in self.cells if self.dfg.nodes[nid].is_memory())


def build_netlist(dfg: DFG) -> Netlist:
    """Extract the netlist (every node is a cell; fan-out grouped by net)."""
    netlist = Netlist(dfg)
    netlist.cells = sorted(dfg.nodes)
    sinks_of: dict[int, list[int]] = {}
    for node in dfg.nodes.values():
        seen: set[int] = set()
        for inp in node.inputs:
            if isinstance(inp, PortRef) and inp.src not in seen:
                seen.add(inp.src)
                sinks_of.setdefault(inp.src, []).append(node.nid)
    netlist.nets_of = {nid: [] for nid in netlist.cells}
    for src in sorted(sinks_of):
        index = len(netlist.nets)
        sinks = tuple(sorted(set(sinks_of[src])))
        netlist.nets.append(Net(src, sinks))
        netlist.nets_of[src].append(index)
        for sink in sinks:
            if sink != src:
                netlist.nets_of[sink].append(index)
    return netlist
