"""Region splitting: fit oversized programs onto the fabric (Sec. 5).

"effcc splits programs into regions that fit on Monaco's fabric." A
*region* is a prefix of top-level statements whose lowered dataflow graph
fits the fabric; regions execute as separate bitstreams, one after the
other, with memory persisting between launches.

Scalar values that cross a region boundary are *spilled*: the producing
region appends stores into a reserved ``__spill`` array, and the host
reads those words back between launches and passes them to the next
region as launch-time parameters (Monaco's ``xdata``) — exactly how a
host CPU drives a multi-bitstream program.

Splitting happens at top-level statement boundaries only; a single
top-level loop nest that does not fit on its own cannot be split (that
would require loop fission, which effcc performs upstream of this pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.fabric import Fabric
from repro.arch.params import ArchParams
from repro.core.policy import EFFCC, PlacementPolicy
from repro.dfg.lower import lower_kernel
from repro.errors import PnRError
from repro.ir.ast import (
    ArraySpec,
    Assign,
    Const,
    If,
    Kernel,
    Load,
    Stmt,
    Store,
    Var,
    walk_stmts,
)
from repro.ir.validate import validate_kernel
from repro.pnr.flow import compile_kernel
from repro.pnr.result import CompiledKernel

SPILL_ARRAY = "__spill"

#: Words reserved for spilled scalars. Fixed so every region declares an
#: identical array list and therefore sees identical base addresses.
SPILL_WORDS = 64

#: Fraction of fabric resources a region may claim at parallelism 1
#: (headroom keeps placement and routing feasible).
FIT_MARGIN = 0.95


@dataclass
class Region:
    """One bitstream: its kernel, live-in scalars, live-out spills."""

    kernel: Kernel
    #: Scalars this region receives as extra launch parameters, in the
    #: order they were appended to ``kernel.params``.
    live_in: list[str] = field(default_factory=list)
    #: Scalars this region spills: var name -> spill slot.
    spills: dict[str, int] = field(default_factory=dict)


@dataclass
class RegionProgram:
    """A split program: regions plus the shared spill-slot assignment."""

    name: str
    regions: list[Region]
    spill_slots: dict[str, int]

    def __len__(self) -> int:
        return len(self.regions)


@dataclass
class CompiledRegionProgram:
    """Compiled bitstreams for each region."""

    program: RegionProgram
    compiled: list[CompiledKernel]

    def __len__(self) -> int:
        return len(self.compiled)


def _recursive_reads(stmt: Stmt) -> set[str]:
    """Free variable reads of ``stmt`` (loop-bound vars excluded).

    Loop variables are bound by their own loop, so reads of them inside
    the statement are not free; validated kernels never shadow an outer
    name with a loop variable, so subtracting bound names is sound.
    """
    from repro.ir.ast import For, ParFor, expr_vars, stmt_exprs

    reads: set[str] = set()
    bound: set[str] = set()
    for inner in walk_stmts([stmt]):
        for expr in stmt_exprs(inner):
            reads |= expr_vars(expr)
        if isinstance(inner, (For, ParFor)):
            bound.add(inner.var)
    return reads - bound


def _definite_writes(stmt: Stmt) -> set[str]:
    """Vars definitely assigned by ``stmt`` on every path."""
    if isinstance(stmt, (Assign, Load)):
        return {stmt.var}
    if isinstance(stmt, If):
        then_w: set[str] = set()
        for s in stmt.then_body:
            then_w |= _definite_writes(s)
        else_w: set[str] = set()
        for s in stmt.else_body:
            else_w |= _definite_writes(s)
        return then_w & else_w
    return set()  # loops may run zero iterations


def _possible_writes(stmt: Stmt) -> set[str]:
    """Vars assigned anywhere in ``stmt`` — on any path, any iteration.

    The may-write complement of :func:`_definite_writes`. Spill decisions
    must use this set: a loop body's assignment may clobber a variable at
    runtime even though the loop is not guaranteed to run, so a region
    containing it cannot let an earlier region's spill of that variable
    stand as the slot's final value.
    """
    writes: set[str] = set()
    for inner in walk_stmts([stmt]):
        if isinstance(inner, (Assign, Load)):
            writes.add(inner.var)
    return writes


def _fits(kernel: Kernel, fabric: Fabric, margin: float) -> bool:
    dfg = lower_kernel(kernel)
    if len(dfg) > margin * fabric.size():
        return False
    mem_nodes = sum(1 for n in dfg.nodes.values() if n.is_memory())
    return mem_nodes <= margin * len(fabric.ls_pes())


def split_kernel(
    kernel: Kernel, fabric: Fabric, margin: float = FIT_MARGIN
) -> RegionProgram:
    """Split ``kernel`` into fabric-sized regions with scalar spilling.

    ``margin`` bounds the fraction of fabric resources a region's lowered
    graph may claim; the compile driver retries with tighter margins when
    a region that fits by node count still fails placement or routing.
    """
    statements = list(kernel.body)
    # Per top-level statement: what it reads (anywhere), definitely
    # defines on every path, and may write on some path.
    reads = [_recursive_reads(s) for s in statements]
    defines = [_definite_writes(s) for s in statements]
    writes = [_possible_writes(s) for s in statements]

    boundaries: list[tuple[int, int]] = []  # [start, end) stmt ranges
    start = 0
    while start < len(statements):
        end = start + 1
        last_good = None
        while end <= len(statements):
            probe_live = sorted(
                _live_in(statements, reads, defines, start, end)
                - set(kernel.params)
            )
            # Account for the spill stores this region would carry: an
            # overapproximation (any var it may write that any later
            # statement reads), so the fit decision never under-counts
            # the final region kernel. Vars the region only possibly
            # defines ride along as live-in, mirroring the final split.
            probe_later: set[str] = set()
            for later in range(end, len(statements)):
                probe_later |= reads[later]
            probe_written: set[str] = set()
            probe_defined: set[str] = set()
            for i in range(start, end):
                probe_written |= writes[i]
                probe_defined |= defines[i]
            earlier_probe: set[str] = set()
            for i in range(start):
                earlier_probe |= writes[i]
            probe_spills = {
                var: 0
                for var in sorted(probe_written & probe_later)
                if var in probe_defined or var in earlier_probe
            }
            probe_live = sorted(
                set(probe_live)
                | {v for v in probe_spills if v not in probe_defined}
            )
            candidate = _region_kernel(
                kernel, statements, reads, defines, start, end,
                probe_spills, live_in=probe_live,
            )
            if _fits(candidate, fabric, margin):
                last_good = end
                end += 1
            else:
                break
        if last_good is None:
            raise PnRError(
                f"kernel {kernel.name!r}: top-level statement {start} "
                f"does not fit on {fabric.name} even alone; split the "
                "loop nest in the kernel source"
            )
        boundaries.append((start, last_good))
        start = last_good

    # Assign spill slots: vars a region may write and a later region
    # reads. May-writes (not definite writes) decide who spills — a var
    # reassigned inside a loop body must be re-spilled by the region
    # holding that loop even though the loop is not guaranteed to run,
    # or later regions would read the stale value of an earlier spill.
    spill_slots: dict[str, int] = {}
    defined_by_region: list[set[str]] = []
    written_by_region: list[set[str]] = []
    for s, e in boundaries:
        defined: set[str] = set()
        written: set[str] = set()
        for i in range(s, e):
            defined |= defines[i]
            written |= writes[i]
        defined_by_region.append(defined)
        written_by_region.append(written)
    for index, (s, e) in enumerate(boundaries):
        earlier: set[str] = set()
        for prev in range(index):
            earlier |= written_by_region[prev]
        needed = _live_in(statements, reads, defines, s, e) & earlier
        for var in sorted(needed):
            spill_slots.setdefault(var, len(spill_slots))
    if len(spill_slots) > SPILL_WORDS:
        raise PnRError(
            f"kernel {kernel.name!r}: {len(spill_slots)} spilled scalars "
            f"exceed the {SPILL_WORDS}-word spill area"
        )

    regions: list[Region] = []
    for index, (s, e) in enumerate(boundaries):
        earlier = set()
        for prev in range(index):
            earlier |= written_by_region[prev]
        live_later: set[str] = set()
        for later in range(e, len(statements)):
            live_later |= reads[later]
        # Spill everything later regions will need that this region may
        # write. The spill store at the region's end must always read a
        # defined value, so a var this region only *possibly* defines is
        # spillable only when the region can also receive it as a
        # live-in (some earlier region wrote it); the loop-skipped path
        # then simply forwards the incoming value.
        spills = {
            var: spill_slots[var]
            for var in sorted(written_by_region[index] & live_later)
            if var in spill_slots
            and (var in defined_by_region[index] or var in earlier)
        }
        forwarded = {
            var for var in spills if var not in defined_by_region[index]
        }
        live_in = sorted(
            (_live_in(statements, reads, defines, s, e) | forwarded)
            & earlier
        )
        region_kernel = _region_kernel(
            kernel, statements, reads, defines, s, e, spills,
            live_in=live_in,
        )
        validate_kernel(region_kernel)
        regions.append(Region(region_kernel, live_in, spills))
    return RegionProgram(kernel.name, regions, spill_slots)


def _live_in(statements, reads, defines, start, end) -> set[str]:
    """Vars read in [start, end) before being definitely defined there."""
    live: set[str] = set()
    defined: set[str] = set()
    for i in range(start, end):
        live |= reads[i] - defined
        defined |= defines[i]
    return live


def _region_kernel(
    kernel: Kernel,
    statements,
    reads,
    defines,
    start: int,
    end: int,
    spills: dict[str, int],
    live_in: list[str] | None = None,
) -> Kernel:
    body = list(statements[start:end])
    for var, slot in spills.items():
        body.append(Store(SPILL_ARRAY, Const(slot), Var(var)))
    params = list(kernel.params)
    if live_in:
        params += [v for v in live_in if v not in params]
    arrays = list(kernel.arrays)
    arrays.append(ArraySpec(SPILL_ARRAY, SPILL_WORDS))
    return Kernel(
        f"{kernel.name}@r{start}", params, arrays, body
    )


#: Fit margins tried when a region that fits by node count still fails
#: placement or routing (splitter/PnR negotiation).
MARGIN_SCHEDULE = (FIT_MARGIN, 0.7, 0.5, 0.35)


def compile_region_program(
    kernel: Kernel,
    fabric: Fabric,
    arch: ArchParams,
    policy: PlacementPolicy = EFFCC,
    seed: int = 0,
    parallelism: int | None = None,
) -> CompiledRegionProgram:
    """Split and compile every region (each with its own PnR).

    Node counts do not fully predict routability on small fabrics, so the
    driver retries the split with tighter fit margins when any region's
    PnR fails; a single-statement region that still fails is a genuine
    does-not-fit error.
    """
    failure: PnRError | None = None
    for margin in MARGIN_SCHEDULE:
        program = split_kernel(kernel, fabric, margin=margin)
        try:
            compiled = [
                compile_kernel(
                    region.kernel,
                    fabric,
                    arch,
                    policy=policy,
                    parallelism=parallelism,
                    seed=seed,
                )
                for region in program.regions
            ]
        except PnRError as error:
            failure = error
            continue
        return CompiledRegionProgram(program, compiled)
    raise failure if failure is not None else PnRError("unsplittable")
