"""Global routing with congestion negotiation (PathFinder-style).

Each net (one producer, many sinks) is routed as a tree over the data
NoC's channel graph; sinks of the same net share segments for free.
Channels have per-segment track capacities; the router iterates with
growing present-congestion and history penalties until no channel is over
capacity, or raises :class:`RoutingError` — the signal effcc's parallelism
search uses to back off (Sec. 5).

The router is channel-model agnostic: it consumes the
``edges_from``/``capacity`` interface of :mod:`repro.arch.noc`, so the
same negotiation loop routes the uniform mesh and the heterogeneous
cardinal/diagonal/skip track graph. Path *lengths* are wire units (a
two-cell diagonal segment costs two units but one switch), which is what
static timing consumes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import RoutingError
from repro.pnr.netlist import Netlist
from repro.pnr.place import Placement

Coord = tuple[int, int]


@dataclass
class RoutingResult:
    """Routed trees plus congestion/timing summaries."""

    #: net index -> sink nid -> wire units from the net's source.
    sink_hops: dict[int, dict[int, float]] = field(default_factory=dict)
    #: net index -> set of channel keys the net's tree occupies.
    net_channels: dict[int, set] = field(default_factory=dict)
    max_hops: float = 0
    iterations: int = 0
    total_channel_use: int = 0

    def wirelength(self) -> int:
        return sum(len(c) for c in self.net_channels.values())


def route_design(
    netlist: Netlist,
    placement: Placement,
    channels,
    max_iters: int = 10,
) -> RoutingResult:
    """Route every net within track capacity or raise RoutingError."""
    usage: dict = {}
    history: dict = {}
    routes: dict[int, set] = {}
    hops: dict[int, dict[int, float]] = {}

    routable = [
        index
        for index, net in enumerate(netlist.nets)
        if any(s != net.src for s in net.sinks)
    ]

    present_factor = 0.5
    for iteration in range(1, max_iters + 1):
        for index in routable:
            for channel in routes.get(index, ()):
                usage[channel] -= 1
            tree_channels, sink_hops = _route_net(
                netlist, placement, channels, index, usage, history,
                present_factor,
            )
            routes[index] = tree_channels
            hops[index] = sink_hops
            for channel in tree_channels:
                usage[channel] = usage.get(channel, 0) + 1
        overused = {
            c: u
            for c, u in usage.items()
            if u > channels.capacity(c)
        }
        if not overused:
            result = RoutingResult(
                sink_hops=hops,
                net_channels=routes,
                iterations=iteration,
                total_channel_use=sum(usage.values()),
            )
            result.max_hops = max(
                (h for per_net in hops.values() for h in per_net.values()),
                default=0,
            )
            return result
        for channel, use in overused.items():
            history[channel] = history.get(channel, 0.0) + (
                use - channels.capacity(channel)
            )
        present_factor *= 2.0
    raise RoutingError(
        f"unroutable: {len(overused)} channels over capacity after "
        f"{max_iters} iterations"
    )


def _route_net(
    netlist: Netlist,
    placement: Placement,
    channels,
    index: int,
    usage: dict,
    history: dict,
    present_factor: float,
) -> tuple[set, dict[int, float]]:
    net = netlist.nets[index]
    src_coord = placement.loc[net.src]
    tree_channels: set = set()
    depth: dict[Coord, float] = {src_coord: 0.0}
    sink_hops: dict[int, float] = {}

    def channel_cost(key, wire: float) -> float:
        use = usage.get(key, 0)
        over = max(0, use + 1 - channels.capacity(key))
        return wire + present_factor * over + history.get(key, 0.0)

    sinks = sorted(
        (s for s in net.sinks if s != net.src),
        key=lambda s: abs(placement.loc[s][0] - src_coord[0])
        + abs(placement.loc[s][1] - src_coord[1]),
    )
    for sink in sinks:
        target = placement.loc[sink]
        if target in depth:
            sink_hops[sink] = depth[target]
            continue
        came: dict[Coord, tuple[Coord, object, float]] = {}
        dist: dict[Coord, float] = {c: 0.0 for c in depth}
        heap = [(0.0, c) for c in depth]
        heapq.heapify(heap)
        seen: set[Coord] = set()
        while heap:
            d, coord = heapq.heappop(heap)
            if coord in seen:
                continue
            seen.add(coord)
            if coord == target:
                break
            for neighbor, key, wire in channels.edges_from(coord):
                if neighbor in seen:
                    continue
                nd = d + channel_cost(key, wire)
                if nd < dist.get(neighbor, float("inf")):
                    dist[neighbor] = nd
                    came[neighbor] = (coord, key, wire)
                    heapq.heappush(heap, (nd, neighbor))
        if target not in seen:
            raise RoutingError(
                f"net {index}: no path {src_coord} -> {target}"
            )
        # Walk back to the existing tree, claiming channels.
        path: list[tuple[Coord, object, float]] = []
        coord = target
        while coord not in depth:
            prev, key, wire = came[coord]
            path.append((coord, key, wire))
            coord = prev
        base_depth = depth[coord]
        wire_sum = 0.0
        for coord, key, wire in reversed(path):
            tree_channels.add(key)
            wire_sum += wire
            if coord not in depth:
                depth[coord] = base_depth + wire_sum
        sink_hops[sink] = depth[target]
    return tree_channels, sink_hops
