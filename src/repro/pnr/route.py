"""Global routing with congestion negotiation (PathFinder-style).

Each net (one producer, many sinks) is routed as a tree over the data
NoC's channel graph; sinks of the same net share segments for free.
Channels have per-segment track capacities; the router iterates with
growing present-congestion and history penalties until no channel is over
capacity, or raises :class:`RoutingError` — the signal effcc's parallelism
search uses to back off (Sec. 5).

The router is channel-model agnostic: it consumes the
``edges_from``/``capacity`` interface of :mod:`repro.arch.noc`, so the
same negotiation loop routes the uniform mesh and the heterogeneous
cardinal/diagonal/skip track graph. Path *lengths* are wire units (a
two-cell diagonal segment costs two units but one switch), which is what
static timing consumes.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from repro.errors import RoutingError
from repro.pnr.netlist import Netlist
from repro.pnr.place import Placement

Coord = tuple[int, int]


@dataclass
class RoutingResult:
    """Routed trees plus congestion/timing summaries."""

    #: net index -> sink nid -> wire units from the net's source.
    sink_hops: dict[int, dict[int, float]] = field(default_factory=dict)
    #: net index -> set of channel keys the net's tree occupies.
    net_channels: dict[int, set] = field(default_factory=dict)
    #: Longest source->sink path in wire units (float: diagonal/skip
    #: tracks cost fractional switch-equivalents per unit).
    max_hops: float = 0.0
    iterations: int = 0
    total_channel_use: int = 0
    #: Total _route_net invocations across all negotiation iterations
    #: (== len(routable) * iterations for a full reroute).
    nets_rerouted: int = 0
    wall_s: float = field(default=0.0, compare=False)

    def wirelength(self) -> int:
        return sum(len(c) for c in self.net_channels.values())


def route_design(
    netlist: Netlist,
    placement: Placement,
    channels,
    max_iters: int = 10,
    incremental: bool = True,
    check: bool = False,
) -> RoutingResult:
    """Route every net within track capacity or raise RoutingError.

    With ``incremental=True`` (default), negotiation iterations after the
    first skip clean nets — but only when skipping is *provably* safe,
    so the result stays bit-identical to a full reroute
    (``incremental=False``). A skipped net would reproduce its old tree
    exactly iff its cost landscape changed by benign increases only:

    * Increases on channels *off* its tree can never flip its choice
      (alternatives only got pricier; its own path cost is unchanged).
    * Increases on its own tree (another net claiming a shared channel,
      the doubled present factor or a history bump on an overused
      channel) can — so a net is dirty when its tree intersects the
      previous pass's overused or occupancy-changed channels, or a
      channel a net rerouted *earlier in the same pass* (the in-order
      scan mirrors the full reroute's sequencing).
    * Any effective cost *decrease* — ripping a channel that was priced
      for congestion (usage >= capacity) — can attract an arbitrary
      net, no matter where its tree sits. That rip raises a flag which
      forces every later net in the pass, and the entire next pass, to
      reroute. In congestion-heavy passes this degenerates to a full
      reroute (soundness over savings); the skips concentrate in the
      almost-converged tail, where only lightly-loaded channels churn.

    ``check=True`` re-derives channel usage from the routed trees after
    every pass and raises if it disagrees with the incrementally
    maintained counts.
    """
    if max_iters < 1:
        raise RoutingError(
            f"route_design needs max_iters >= 1, got {max_iters}"
        )
    t0 = time.perf_counter()
    usage: dict = {}
    history: dict = {}
    routes: dict[int, set] = {}
    hops: dict[int, dict[int, float]] = {}
    # Capacities are static per channel graph; snapshotting them once
    # spares the Dijkstra relaxation a method call per edge.
    cap = {key: channels.capacity(key) for key in channels.channels()}

    routable = [
        index
        for index, net in enumerate(netlist.nets)
        if any(s != net.src for s in net.sinks)
    ]

    present_factor = 0.5
    rerouted = 0
    dirty: set = set()
    #: True while a congestion-priced channel has been vacated since the
    #: last full pass — clean nets may be attracted, so nothing skips.
    decreased = True  # iteration 1 routes everything
    for iteration in range(1, max_iters + 1):
        full_pass = decreased or not incremental
        decreased = False
        changed: set = set()
        for index in routable:
            old = routes.get(index)
            if not full_pass and not decreased:
                if not (old & dirty or old & changed):
                    continue
            if old:
                for channel in old:
                    if usage[channel] >= cap[channel]:
                        decreased = True
                    usage[channel] -= 1
            tree_channels, sink_hops = _route_net(
                netlist, placement, channels, index, usage, history,
                present_factor, cap,
            )
            routes[index] = tree_channels
            hops[index] = sink_hops
            for channel in tree_channels:
                usage[channel] = usage.get(channel, 0) + 1
            changed.update(tree_channels.symmetric_difference(old or ()))
            rerouted += 1
        if check:
            _check_usage(usage, routes)
        overused = {c: u for c, u in usage.items() if u > cap[c]}
        if not overused:
            result = RoutingResult(
                sink_hops=hops,
                net_channels=routes,
                iterations=iteration,
                total_channel_use=sum(usage.values()),
                nets_rerouted=rerouted,
                wall_s=time.perf_counter() - t0,
            )
            result.max_hops = max(
                (h for per_net in hops.values() for h in per_net.values()),
                default=0.0,
            )
            return result
        for channel, use in overused.items():
            history[channel] = history.get(channel, 0.0) + (
                use - cap[channel]
            )
        present_factor *= 2.0
        dirty = set(overused)
        dirty.update(changed)
    raise RoutingError(
        f"unroutable: {len(overused)} channels over capacity after "
        f"{max_iters} iterations"
    )


def _check_usage(usage: dict, routes: dict[int, set]) -> None:
    """Assert incrementally maintained usage matches a fresh recount."""
    recount: dict = {}
    for tree in routes.values():
        for channel in tree:
            recount[channel] = recount.get(channel, 0) + 1
    live = {c: u for c, u in usage.items() if u}
    if live != recount:
        diff = {
            c: (usage.get(c, 0), recount.get(c, 0))
            for c in set(live) | set(recount)
            if live.get(c, 0) != recount.get(c, 0)
        }
        raise RoutingError(
            f"usage accounting drift on {len(diff)} channels: "
            f"{sorted(diff.items())[:5]}"
        )


def _route_net(
    netlist: Netlist,
    placement: Placement,
    channels,
    index: int,
    usage: dict,
    history: dict,
    present_factor: float,
    cap: dict,
) -> tuple[set, dict[int, float]]:
    net = netlist.nets[index]
    src_coord = placement.loc[net.src]
    tree_channels: set = set()
    depth: dict[Coord, float] = {src_coord: 0.0}
    sink_hops: dict[int, float] = {}

    # The congestion cost of claiming a channel, inlined below:
    # ``wire + present_factor * max(0, use + 1 - cap) + history`` —
    # adding ``present_factor * 0`` is a bitwise no-op, so the
    # uncongested fast path skips the multiply outright.
    usage_get = usage.get
    history_get = history.get
    edges_from = channels.edges_from
    heappop = heapq.heappop
    heappush = heapq.heappush
    inf = float("inf")

    sinks = sorted(
        (s for s in net.sinks if s != net.src),
        key=lambda s: abs(placement.loc[s][0] - src_coord[0])
        + abs(placement.loc[s][1] - src_coord[1]),
    )
    for sink in sinks:
        target = placement.loc[sink]
        if target in depth:
            sink_hops[sink] = depth[target]
            continue
        came: dict[Coord, tuple[Coord, object, float]] = {}
        dist: dict[Coord, float] = {c: 0.0 for c in depth}
        dist_get = dist.get
        heap = [(0.0, c) for c in depth]
        heapq.heapify(heap)
        seen: set[Coord] = set()
        seen_add = seen.add
        while heap:
            d, coord = heappop(heap)
            if coord in seen:
                continue
            seen_add(coord)
            if coord == target:
                break
            for neighbor, key, wire in edges_from(coord):
                if neighbor in seen:
                    continue
                over = usage_get(key, 0) + 1 - cap[key]
                if over > 0:
                    nd = d + (
                        wire + present_factor * over + history_get(key, 0.0)
                    )
                else:
                    nd = d + (wire + history_get(key, 0.0))
                if nd < dist_get(neighbor, inf):
                    dist[neighbor] = nd
                    came[neighbor] = (coord, key, wire)
                    heappush(heap, (nd, neighbor))
        if target not in seen:
            raise RoutingError(
                f"net {index}: no path {src_coord} -> {target}"
            )
        # Walk back to the existing tree, claiming channels.
        path: list[tuple[Coord, object, float]] = []
        coord = target
        while coord not in depth:
            prev, key, wire = came[coord]
            path.append((coord, key, wire))
            coord = prev
        base_depth = depth[coord]
        wire_sum = 0.0
        for coord, key, wire in reversed(path):
            tree_channels.add(key)
            wire_sum += wire
            if coord not in depth:
                depth[coord] = base_depth + wire_sum
        sink_hops[sink] = depth[target]
    return tree_channels, sink_hops
