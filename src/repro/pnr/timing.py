"""Static timing analysis: longest routed path -> fabric clock divider.

The data NoC is bufferless, so the fabric clock must cover the longest
routed source-to-sink path of the bitstream (Sec. 4.2). PnR reports the
maximum path delay (Fig. 17) and the resulting divider, which scales every
fabric-side latency in the timed simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.clocks import divider_for_max_hops, path_delay_units
from repro.arch.params import TimingParams
from repro.pnr.route import RoutingResult


@dataclass(frozen=True)
class TimingReport:
    """Result of static timing on a routed design."""

    #: Float wire units, not a switch count: diagonal/skip tracks make
    #: path lengths fractional, and truncating here would corrupt the
    #: Fig. 17 path-delay figures.
    max_hops: float
    max_path_delay_units: float
    clock_divider: int


def analyze_timing(
    routing: RoutingResult, timing: TimingParams
) -> TimingReport:
    max_hops = routing.max_hops
    return TimingReport(
        max_hops=max_hops,
        max_path_delay_units=path_delay_units(max_hops, timing),
        clock_divider=divider_for_max_hops(max_hops, timing),
    )
