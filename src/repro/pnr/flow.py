"""The full compilation flow, including the parallelism search.

Mirrors effcc end to end: parallelize -> lower -> criticality analysis ->
NUPEA-aware placement -> routing -> static timing. The parallelism degree
is "iteratively increased until PnR fails" (Sec. 5): the flow doubles the
degree until the design stops fitting or routing, keeping the last
success.

The mem-scale negotiation is a *portfolio*: each ``MEM_SCALE_SCHEDULE``
entry (optionally times several placement-restart seeds) is an
independent PnR candidate. ``portfolio_jobs > 1`` evaluates the
candidates concurrently in a process pool; the selection loop then walks
the outcomes in schedule order applying the exact serial tie-break
(``(clock_divider, place_cost)`` lexicographic, early exit at
``clock_divider <= 2``), so the chosen candidate — and thus the compiled
artifact — is identical to the serial path's.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ProcessPoolExecutor

from repro.arch.fabric import Fabric
from repro.arch.noc import build_channel_graph
from repro.arch.params import ArchParams
from repro.core.criticality import analyze_criticality
from repro.core.policy import EFFCC, PlacementPolicy
from repro.dfg.lower import lower_kernel
from repro.errors import PlacementError, PnRError, RoutingError
from repro.ir.ast import Kernel
from repro.ir.transform import parallelize
from repro.pnr.netlist import build_netlist
from repro.pnr.place import anneal, initial_placement
from repro.pnr.result import CompiledKernel, PnRStats
from repro.pnr.route import route_design
from repro.pnr.timing import analyze_timing


#: Memory-preference scales tried when routing/timing feedback shows the
#: near-memory pull is congesting the data NoC. The first scale whose
#: routed divider is already minimal wins; otherwise the best candidate.
MEM_SCALE_SCHEDULE = (1.0, 0.4, 0.1)

#: Seed stride between portfolio placement restarts (prime, far from the
#: sweep harness's PNR_SEED_STRIDE so restart seeds never collide with
#: per-point seeds).
PORTFOLIO_SEED_STRIDE = 104729

#: Exception types a portfolio worker may ship back by name.
_EXC_TYPES = {
    "PnRError": PnRError,
    "PlacementError": PlacementError,
    "RoutingError": RoutingError,
}

_POOL: ProcessPoolExecutor | None = None
_POOL_SIZE = 0


def _portfolio_pool(jobs: int) -> ProcessPoolExecutor:
    """Shared process pool for portfolio evaluation (lazily created)."""
    global _POOL, _POOL_SIZE
    if _POOL is not None and _POOL_SIZE < jobs:
        _POOL.shutdown(wait=True)
        _POOL = None
    if _POOL is None:
        _POOL = ProcessPoolExecutor(max_workers=jobs)
        _POOL_SIZE = jobs
    return _POOL


def shutdown_portfolio_pool() -> None:
    """Tear down the shared portfolio pool (tests, process exit)."""
    global _POOL, _POOL_SIZE
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_SIZE = 0


def _evaluate_mem_scale(
    netlist,
    fabric: Fabric,
    policy: PlacementPolicy,
    channels,
    timing_params,
    mem_scale: float,
    seed: int,
    anneal_moves: int | None,
    incremental: bool,
    check: bool,
    node_weights: dict[int, float] | None = None,
):
    """Evaluate one (mem_scale, seed) portfolio candidate.

    Picklable module-level worker so it runs under ProcessPoolExecutor.
    Returns one of::

        ("ok", (divider, cost, loc, routing, timing), stats)
        ("error", (exc_type_name, message), {})   # routing failed
        ("fatal", (exc_type_name, message), {})   # placement failed

    Routing failures participate in the schedule's continue-on-failure
    negotiation; placement failures abort the whole compile (matching the
    historical behavior where ``initial_placement`` raised through).
    """
    stats: dict = {}
    try:
        rng = random.Random(seed)
        placement = initial_placement(
            netlist, fabric, policy, rng, mem_scale=mem_scale,
            node_weights=node_weights,
        )
    except PnRError as error:
        return ("fatal", (type(error).__name__, str(error)), {})
    cost = anneal(
        placement,
        rng,
        moves=anneal_moves,
        incremental=incremental,
        check=check,
        stats=stats,
    )
    try:
        routing = route_design(
            netlist,
            placement,
            channels,
            incremental=incremental,
            check=check,
        )
    except PnRError as error:
        return ("error", (type(error).__name__, str(error)), {})
    timing = analyze_timing(routing, timing_params)
    stats["route_wall_s"] = routing.wall_s
    stats["route_iterations"] = routing.iterations
    stats["nets_rerouted"] = routing.nets_rerouted
    payload = (
        timing.clock_divider,
        cost,
        dict(placement.loc),
        routing,
        timing,
    )
    return ("ok", payload, stats)


def _rebuild_error(name: str, message: str) -> PnRError:
    return _EXC_TYPES.get(name, PnRError)(message)


def compile_once(
    kernel: Kernel,
    fabric: Fabric,
    arch: ArchParams,
    policy: PlacementPolicy = EFFCC,
    parallelism: int = 1,
    mem_mode: str = "raw",
    seed: int = 0,
    anneal_moves: int | None = None,
    incremental: bool = True,
    portfolio_jobs: int = 1,
    portfolio_restarts: int = 1,
    profile: tuple[dict | None, dict | None] | None = None,
    node_weights: dict[int, float] | None = None,
) -> CompiledKernel:
    """Compile at a fixed parallelism degree; raises PnRError on failure.

    Placement and routing negotiate: if the routed design's clock divider
    is poor (long paths from memory-preference congestion), placement is
    retried with a weaker near-memory pull and the best-timed routable
    candidate wins. ``portfolio_jobs > 1`` evaluates the candidates
    concurrently (same result, see module docstring);
    ``portfolio_restarts > 1`` adds extra placement seeds per mem scale.
    ``incremental=False`` selects the naive full-recompute anneal and
    full-reroute PathFinder (the A/B baseline).

    ``profile`` — a ``(params, arrays)`` pair of profiling inputs —
    enables profile-guided criticality: the lowered DFG is executed once
    through the untimed interpreter and class-B/C memory nodes are
    reclassified by measured firing frequency
    (:func:`repro.core.profile.analyze_with_profile`) before placement.
    The refinement outcome is recorded in ``CompiledKernel.meta
    ["profile"]``.

    ``node_weights`` (nid -> weight) overrides the per-node placement
    weight outright — the feedback-directed path
    (:mod:`repro.exp.fdo`). An empty/None map is bit-identical to the
    class-weight path. The map used is recorded in ``CompiledKernel.meta
    ["node_weights"]``.
    """
    t0 = time.perf_counter()
    program = parallelize(kernel, parallelism) if parallelism > 1 else kernel
    dfg = lower_kernel(program, mem_mode=mem_mode)
    meta: dict = {}
    if profile is not None:
        from repro.core.profile import analyze_with_profile

        profile_params, profile_arrays = profile
        # The flow owns this freshly lowered DFG, so refining it in
        # place is safe — no cache entry was ever keyed on it.
        profiled = analyze_with_profile(
            dfg, profile_params, profile_arrays, in_place=True
        )
        report = profiled.report
        meta["profile"] = profiled.to_dict()
    else:
        report = analyze_criticality(dfg)
    node_weights = dict(node_weights) if node_weights else None
    if node_weights is not None:
        meta["node_weights"] = {
            int(nid): float(w) for nid, w in sorted(node_weights.items())
        }
    netlist = build_netlist(dfg)
    channels = build_channel_graph(fabric, arch.noc_tracks, arch.noc_model)
    check = arch.sim.check

    restarts = max(1, portfolio_restarts)
    plan = [
        (mem_scale, seed + r * PORTFOLIO_SEED_STRIDE)
        for mem_scale in MEM_SCALE_SCHEDULE
        for r in range(restarts)
    ]

    jobs = max(1, min(portfolio_jobs, len(plan)))
    if jobs > 1:
        pool = _portfolio_pool(jobs)
        futures = [
            pool.submit(
                _evaluate_mem_scale,
                netlist,
                fabric,
                policy,
                channels,
                arch.timing,
                mem_scale,
                cand_seed,
                anneal_moves,
                incremental,
                check,
                node_weights,
            )
            for mem_scale, cand_seed in plan
        ]
        outcomes = (future.result() for future in futures)
    else:
        outcomes = (
            _evaluate_mem_scale(
                netlist,
                fabric,
                policy,
                channels,
                arch.timing,
                mem_scale,
                cand_seed,
                anneal_moves,
                incremental,
                check,
                node_weights,
            )
            for mem_scale, cand_seed in plan
        )

    # Selection: identical for serial and parallel — walk outcomes in
    # schedule order, keep the lexicographic (divider, cost) best, stop
    # once a candidate's divider is already minimal. The serial generator
    # is lazy, so the historical early exit still skips later anneals.
    best = None
    best_stats: dict = {}
    failure: PnRError | None = None
    considered = 0
    for outcome in outcomes:
        kind, payload, stats = outcome
        considered += 1
        if kind == "fatal":
            raise _rebuild_error(*payload)
        if kind == "error":
            failure = _rebuild_error(*payload)
            continue
        if best is None or payload[:2] < best[:2]:
            best = payload
            best_stats = stats
        if payload[0] <= 2:
            break
    if best is None:
        raise failure if failure is not None else PnRError("unroutable")
    _, cost, loc, routing, timing = best
    pnr = PnRStats(
        place_wall_s=best_stats.get("wall_s", 0.0),
        route_wall_s=best_stats.get("route_wall_s", 0.0),
        total_wall_s=time.perf_counter() - t0,
        anneal_moves=best_stats.get("moves", 0),
        anneal_proposals=best_stats.get("proposals", 0),
        anneal_accepted=best_stats.get("accepted", 0),
        moves_per_s=best_stats.get("moves_per_s", 0.0),
        route_iterations=best_stats.get("route_iterations", 0),
        nets_rerouted=best_stats.get("nets_rerouted", 0),
        candidates=considered,
        portfolio_jobs=jobs,
        incremental=incremental,
    )
    return CompiledKernel(
        dfg=dfg,
        fabric=fabric,
        policy=policy,
        criticality=report,
        placement=loc,
        routing=routing,
        timing=timing,
        parallelism=parallelism,
        place_cost=cost,
        meta=meta,
        pnr=pnr,
    )


def compile_kernel(
    kernel: Kernel,
    fabric: Fabric,
    arch: ArchParams,
    policy: PlacementPolicy = EFFCC,
    parallelism: int | None = None,
    max_parallelism: int = 32,
    mem_mode: str = "raw",
    seed: int = 0,
    anneal_moves: int | None = None,
    incremental: bool = True,
    portfolio_jobs: int = 1,
    portfolio_restarts: int = 1,
    profile: tuple[dict | None, dict | None] | None = None,
    node_weights: dict[int, float] | None = None,
) -> CompiledKernel:
    """Compile ``kernel``, searching the parallelism degree if unspecified.

    With ``parallelism=None`` the flow raises the degree until PnR fails
    (effcc's automatic parallelization) and keeps the degree with the best
    *estimated throughput* — parallelism divided by the PnR-chosen clock
    divider — matching the paper's "chose the one that achieved optimal
    performance". A congested high-degree design that forces a slow fabric
    clock loses to a leaner one that keeps the clock fast.
    """
    if parallelism is not None:
        return compile_once(
            kernel, fabric, arch, policy, parallelism, mem_mode, seed,
            anneal_moves, incremental, portfolio_jobs, portfolio_restarts,
            profile, node_weights,
        )
    t0 = time.perf_counter()
    best: CompiledKernel | None = None
    best_score = 0.0
    tried = 0
    for degree in _search_degrees(max_parallelism):
        try:
            candidate = compile_once(
                kernel, fabric, arch, policy, degree, mem_mode, seed,
                anneal_moves, incremental, portfolio_jobs,
                portfolio_restarts, profile, node_weights,
            )
        except PnRError:
            break
        finally:
            tried += 1
        score = degree / candidate.timing.clock_divider
        if score > best_score:
            best, best_score = candidate, score
    if best is None:
        raise PnRError(
            f"kernel {kernel.name!r} does not fit on {fabric.name} even "
            "at parallelism 1"
        )
    if best.pnr is not None:
        best.pnr.search_wall_s = time.perf_counter() - t0
        best.pnr.degrees_tried = tried
    return best


def _search_degrees(max_parallelism: int) -> list[int]:
    """The degrees the automatic search tries, in increasing order.

    Finer than doubling (3, 6, 12, ... included) so the search packs the
    fabric as tightly as effcc's iterative parallelization does.
    """
    degrees = sorted(
        {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64} | {max_parallelism}
    )
    return [d for d in degrees if d <= max_parallelism]
