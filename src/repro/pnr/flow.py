"""The full compilation flow, including the parallelism search.

Mirrors effcc end to end: parallelize -> lower -> criticality analysis ->
NUPEA-aware placement -> routing -> static timing. The parallelism degree
is "iteratively increased until PnR fails" (Sec. 5): the flow doubles the
degree until the design stops fitting or routing, keeping the last
success.
"""

from __future__ import annotations

import random

from repro.arch.fabric import Fabric
from repro.arch.noc import build_channel_graph
from repro.arch.params import ArchParams
from repro.core.criticality import analyze_criticality
from repro.core.policy import EFFCC, PlacementPolicy
from repro.dfg.lower import lower_kernel
from repro.errors import PnRError
from repro.ir.ast import Kernel
from repro.ir.transform import parallelize
from repro.pnr.netlist import build_netlist
from repro.pnr.place import anneal, initial_placement
from repro.pnr.result import CompiledKernel
from repro.pnr.route import route_design
from repro.pnr.timing import analyze_timing


#: Memory-preference scales tried when routing/timing feedback shows the
#: near-memory pull is congesting the data NoC. The first scale whose
#: routed divider is already minimal wins; otherwise the best candidate.
MEM_SCALE_SCHEDULE = (1.0, 0.4, 0.1)


def compile_once(
    kernel: Kernel,
    fabric: Fabric,
    arch: ArchParams,
    policy: PlacementPolicy = EFFCC,
    parallelism: int = 1,
    mem_mode: str = "raw",
    seed: int = 0,
    anneal_moves: int | None = None,
) -> CompiledKernel:
    """Compile at a fixed parallelism degree; raises PnRError on failure.

    Placement and routing negotiate: if the routed design's clock divider
    is poor (long paths from memory-preference congestion), placement is
    retried with a weaker near-memory pull and the best-timed routable
    candidate wins.
    """
    program = parallelize(kernel, parallelism) if parallelism > 1 else kernel
    dfg = lower_kernel(program, mem_mode=mem_mode)
    report = analyze_criticality(dfg)
    netlist = build_netlist(dfg)
    channels = build_channel_graph(fabric, arch.noc_tracks, arch.noc_model)

    best = None
    failure: PnRError | None = None
    for mem_scale in MEM_SCALE_SCHEDULE:
        rng = random.Random(seed)
        placement = initial_placement(
            netlist, fabric, policy, rng, mem_scale=mem_scale
        )
        cost = anneal(placement, rng, moves=anneal_moves)
        try:
            routing = route_design(netlist, placement, channels)
        except PnRError as error:
            failure = error
            continue
        timing = analyze_timing(routing, arch.timing)
        candidate = (timing.clock_divider, cost, placement, routing, timing)
        if best is None or candidate[:2] < best[:2]:
            best = candidate
        if timing.clock_divider <= 2:
            break
    if best is None:
        raise failure if failure is not None else PnRError("unroutable")
    _, cost, placement, routing, timing = best
    return CompiledKernel(
        dfg=dfg,
        fabric=fabric,
        policy=policy,
        criticality=report,
        placement=dict(placement.loc),
        routing=routing,
        timing=timing,
        parallelism=parallelism,
        place_cost=cost,
    )


def compile_kernel(
    kernel: Kernel,
    fabric: Fabric,
    arch: ArchParams,
    policy: PlacementPolicy = EFFCC,
    parallelism: int | None = None,
    max_parallelism: int = 32,
    mem_mode: str = "raw",
    seed: int = 0,
    anneal_moves: int | None = None,
) -> CompiledKernel:
    """Compile ``kernel``, searching the parallelism degree if unspecified.

    With ``parallelism=None`` the flow raises the degree until PnR fails
    (effcc's automatic parallelization) and keeps the degree with the best
    *estimated throughput* — parallelism divided by the PnR-chosen clock
    divider — matching the paper's "chose the one that achieved optimal
    performance". A congested high-degree design that forces a slow fabric
    clock loses to a leaner one that keeps the clock fast.
    """
    if parallelism is not None:
        return compile_once(
            kernel, fabric, arch, policy, parallelism, mem_mode, seed,
            anneal_moves,
        )
    best: CompiledKernel | None = None
    best_score = 0.0
    for degree in _search_degrees(max_parallelism):
        try:
            candidate = compile_once(
                kernel, fabric, arch, policy, degree, mem_mode, seed,
                anneal_moves,
            )
        except PnRError:
            break
        score = degree / candidate.timing.clock_divider
        if score > best_score:
            best, best_score = candidate, score
    if best is None:
        raise PnRError(
            f"kernel {kernel.name!r} does not fit on {fabric.name} even "
            "at parallelism 1"
        )
    return best


def _search_degrees(max_parallelism: int) -> list[int]:
    """The degrees the automatic search tries, in increasing order.

    Finer than doubling (3, 6, 12, ... included) so the search packs the
    fabric as tightly as effcc's iterative parallelization does.
    """
    degrees = sorted(
        {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64} | {max_parallelism}
    )
    return [d for d in degrees if d <= max_parallelism]
