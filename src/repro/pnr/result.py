"""Compiled-kernel container: everything downstream of PnR needs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.fabric import Fabric
from repro.core.criticality import CriticalityReport
from repro.core.policy import PlacementPolicy
from repro.dfg.graph import DFG
from repro.pnr.route import RoutingResult
from repro.pnr.timing import TimingReport

Coord = tuple[int, int]


@dataclass
class PnRStats:
    """Compile-time telemetry for one PnR run (wall times are volatile)."""

    place_wall_s: float = 0.0
    route_wall_s: float = 0.0
    total_wall_s: float = 0.0
    anneal_moves: int = 0
    anneal_proposals: int = 0
    anneal_accepted: int = 0
    moves_per_s: float = 0.0
    route_iterations: int = 0
    nets_rerouted: int = 0
    #: Mem-scale candidates actually evaluated for the winning compile.
    candidates: int = 0
    portfolio_jobs: int = 1
    incremental: bool = True
    #: Parallelism-search overhead (compile_kernel only).
    search_wall_s: float = 0.0
    degrees_tried: int = 0

    def to_dict(self) -> dict:
        return {
            "place_wall_s": self.place_wall_s,
            "route_wall_s": self.route_wall_s,
            "total_wall_s": self.total_wall_s,
            "anneal_moves": self.anneal_moves,
            "anneal_proposals": self.anneal_proposals,
            "anneal_accepted": self.anneal_accepted,
            "moves_per_s": self.moves_per_s,
            "route_iterations": self.route_iterations,
            "nets_rerouted": self.nets_rerouted,
            "candidates": self.candidates,
            "portfolio_jobs": self.portfolio_jobs,
            "incremental": self.incremental,
            "search_wall_s": self.search_wall_s,
            "degrees_tried": self.degrees_tried,
        }


@dataclass
class CompiledKernel:
    """A kernel after lowering, analysis, placement, routing and timing."""

    dfg: DFG
    fabric: Fabric
    policy: PlacementPolicy
    criticality: CriticalityReport
    placement: dict[int, Coord]
    routing: RoutingResult
    timing: TimingReport
    parallelism: int = 1
    place_cost: float = 0.0
    meta: dict = field(default_factory=dict)
    pnr: PnRStats | None = None

    @property
    def clock_divider(self) -> int:
        return self.timing.clock_divider

    def domain_of(self, nid: int) -> int | None:
        """NUPEA domain of the PE hosting node ``nid``."""
        pe = self.fabric.pes[self.placement[nid]]
        return pe.domain

    def domain_histogram(self) -> dict[str, dict[int, int]]:
        """Per criticality class, how many memory nodes sit in each domain."""
        hist: dict[str, dict[int, int]] = {"A": {}, "B": {}, "C": {}}
        for node in self.dfg.memory_nodes():
            domain = self.domain_of(node.nid)
            per = hist[node.criticality]
            per[domain] = per.get(domain, 0) + 1
        return hist

    def summary(self) -> str:
        counts = self.criticality.counts()
        return (
            f"{self.dfg.name}: {len(self.dfg)} nodes on "
            f"{self.fabric.name} (policy={self.policy.name}, "
            f"parallelism={self.parallelism}); criticality "
            f"A/B/C = {counts['A']}/{counts['B']}/{counts['C']}; "
            f"max path hops = {self.timing.max_hops}, "
            f"divider = {self.timing.clock_divider}"
        )
