"""Compiled-kernel container: everything downstream of PnR needs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.fabric import Fabric
from repro.core.criticality import CriticalityReport
from repro.core.policy import PlacementPolicy
from repro.dfg.graph import DFG
from repro.pnr.route import RoutingResult
from repro.pnr.timing import TimingReport

Coord = tuple[int, int]


@dataclass
class CompiledKernel:
    """A kernel after lowering, analysis, placement, routing and timing."""

    dfg: DFG
    fabric: Fabric
    policy: PlacementPolicy
    criticality: CriticalityReport
    placement: dict[int, Coord]
    routing: RoutingResult
    timing: TimingReport
    parallelism: int = 1
    place_cost: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def clock_divider(self) -> int:
        return self.timing.clock_divider

    def domain_of(self, nid: int) -> int | None:
        """NUPEA domain of the PE hosting node ``nid``."""
        pe = self.fabric.pes[self.placement[nid]]
        return pe.domain

    def domain_histogram(self) -> dict[str, dict[int, int]]:
        """Per criticality class, how many memory nodes sit in each domain."""
        hist: dict[str, dict[int, int]] = {"A": {}, "B": {}, "C": {}}
        for node in self.dfg.memory_nodes():
            domain = self.domain_of(node.nid)
            per = hist[node.criticality]
            per[domain] = per.get(domain, 0) + 1
        return hist

    def summary(self) -> str:
        counts = self.criticality.counts()
        return (
            f"{self.dfg.name}: {len(self.dfg)} nodes on "
            f"{self.fabric.name} (policy={self.policy.name}, "
            f"parallelism={self.parallelism}); criticality "
            f"A/B/C = {counts['A']}/{counts['B']}/{counts['C']}; "
            f"max path hops = {self.timing.max_hops}, "
            f"divider = {self.timing.clock_divider}"
        )
