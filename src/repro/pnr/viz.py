"""ASCII visualization of fabrics and placements.

``fabric_map`` draws the PE grid with NUPEA domains; ``placement_map``
overlays a compiled kernel, marking where its memory instructions landed
(criticality class letter) and which PEs host other nodes. The examples
and the CLI use these to make the "critical loads hug memory" effect
visible at a glance.
"""

from __future__ import annotations

from repro.arch.fabric import Fabric
from repro.pnr.result import CompiledKernel


def fabric_map(fabric: Fabric) -> str:
    """Grid of PE kinds: ``.`` arithmetic, digits = LS PE's domain."""
    lines = [fabric.describe(), "    (memory is to the right)"]
    header = "     " + "".join(f"{x % 10}" for x in range(fabric.cols))
    lines.append(header)
    for y in range(fabric.rows):
        row = []
        for x in range(fabric.cols):
            pe = fabric.pe_at(x, y)
            row.append(str(pe.domain) if pe.is_ls else ".")
        lines.append(f"  {y:2d} " + "".join(row) + " |mem")
    return "\n".join(lines)


def placement_map(compiled: CompiledKernel) -> str:
    """Grid showing the compiled kernel's node placement.

    ``A``/``B``/``C`` mark memory instructions by criticality class,
    ``*`` other occupied PEs, ``.``/space free arithmetic/LS PEs.
    """
    fabric = compiled.fabric
    occupied: dict[tuple[int, int], str] = {}
    for nid, coord in compiled.placement.items():
        node = compiled.dfg.nodes[nid]
        occupied[coord] = node.criticality if node.is_memory() else "*"
    lines = [
        f"placement of {compiled.dfg.name!r} on {fabric.name} "
        f"(policy={compiled.policy.name})",
        "  A/B/C = memory op by criticality, * = other node, "
        "digits = free LS PE's domain",
    ]
    for y in range(fabric.rows):
        row = []
        for x in range(fabric.cols):
            mark = occupied.get((x, y))
            if mark is None:
                pe = fabric.pe_at(x, y)
                mark = str(pe.domain) if pe.is_ls else "."
            row.append(mark)
        lines.append(f"  {y:2d} " + "".join(row) + " |mem")
    hist = compiled.domain_histogram()
    lines.append(f"  memory nodes per domain: {hist}")
    return "\n".join(lines)
