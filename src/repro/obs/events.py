"""Event taxonomy and the publish/subscribe bus.

Publishers (the engine, :class:`~repro.sim.memsys.MemorySystem`, the
Monaco/UPEA/NUMA frontends) call the ``EventBus`` methods below; sinks
subscribe by implementing the matching ``on_*`` hooks. Handler lists are
resolved once at :meth:`EventBus.attach` time so a publish is a plain
loop over bound methods — no ``hasattr`` in the hot path.

Stall taxonomy (per DFG node, per executed fabric tick):

``fire``
    the node committed a firing (including a load emitting its response).
``operand-wait``
    the firing rule is unsatisfied — an input FIFO the node needs is
    empty (also covers drained sources with nothing left to do).
``output-backpressure``
    the node is ready but a downstream consumer FIFO is full.
``fifo-full``
    a *memory response* is back at the PE but cannot be emitted because
    the consumer FIFO is full.
``memory-outstanding``
    the node is waiting on its own in-flight memory request(s): either
    the response has not completed the round-trip yet (the paper's
    critical-load stall) or the ``max_outstanding`` issue queue is full.
``divider-gap``
    executed system cycles between fabric ticks (global, applies to all
    nodes equally — the fabric clock simply is not edging).
``skipped``
    system cycles the event-driven scheduler jumped over as provably
    quiescent; synthesized coarsely as one span event per jump.
"""

from __future__ import annotations

#: Classification of a node firing (not a stall, but the seventh bucket
#: every attributed fabric tick falls into).
FIRE = "fire"

#: The stall taxonomy, in reporting order.
STALL_KINDS = (
    "operand-wait",
    "output-backpressure",
    "fifo-full",
    "memory-outstanding",
    "divider-gap",
    "skipped",
)

#: Buckets a single executed fabric tick can put one node into.
TICK_KINDS = (FIRE,) + STALL_KINDS[:4]

#: publisher method name -> sink hook name.
_HOOKS = {
    "gap": "on_gap",
    "skip": "on_skip",
    "tick": "on_tick",
    "fire": "on_fire",
    "fire_pops": "on_fire_pops",
    "mem": "on_mem",
    "mem_service": "on_mem_service",
    "token": "on_token",
    "push": "on_push",
    "fmnoc": "on_fmnoc",
    "counter": "on_counter",
    "finish": "on_finish",
}


class EventBus:
    """Fan-out from simulator publish sites to attached sinks."""

    def __init__(self) -> None:
        self.sinks: list = []
        self._handlers: dict[str, list] = {name: [] for name in _HOOKS}

    def attach(self, sink) -> None:
        """Subscribe ``sink``; its ``on_*`` hooks are resolved now."""
        self.sinks.append(sink)
        for publish, hook in _HOOKS.items():
            method = getattr(sink, hook, None)
            if method is not None:
                self._handlers[publish].append(method)

    # -- publisher API ----------------------------------------------------
    # One method per event kind; each is a plain loop over bound hooks.

    def gap(self, now: int) -> None:
        """One executed system cycle between fabric ticks."""
        for handler in self._handlers["gap"]:
            handler(now)

    def skip(self, now: int, target: int) -> None:
        """The scheduler jumped from ``now`` to ``target`` (quiescent)."""
        for handler in self._handlers["skip"]:
            handler(now, target)

    def tick(self, now: int, classification: dict[int, str]) -> None:
        """One executed fabric tick: every node's bucket (TICK_KINDS)."""
        for handler in self._handlers["tick"]:
            handler(now, classification)

    def fire(self, now: int, node, pe: tuple[int, int]) -> None:
        """Node ``node`` (a DFG Node) committed a firing at ``now``."""
        for handler in self._handlers["fire"]:
            handler(now, node, pe)

    def fire_pops(
        self, now: int, nid: int, pops, mem: bool, emits: bool
    ) -> None:
        """Structural detail of a committed firing: which input port
        indices were popped, whether a memory request was issued, and
        whether an output token is pushed this tick (used by the
        critical-path recorder's last-arrival bookkeeping)."""
        for handler in self._handlers["fire_pops"]:
            handler(now, nid, pops, mem, emits)

    def mem(self, now: int, record, node, domain) -> None:
        """A memory response reached its PE (full lifecycle known)."""
        for handler in self._handlers["mem"]:
            handler(now, record, node, domain)

    def mem_service(self, now: int, record) -> None:
        """A bank served ``record`` (hit/miss and latency decided)."""
        for handler in self._handlers["mem_service"]:
            handler(now, record)

    def token(self, now: int, src: int, dst: int) -> None:
        """A token crossed the data NoC from node ``src`` to ``dst``."""
        for handler in self._handlers["token"]:
            handler(now, src, dst)

    def push(
        self, now: int, src: int, dst: int, index: int, slot: int
    ) -> None:
        """A token commit onto consumer FIFO ``(dst, index)``; ``slot``
        names which of ``src``'s push events this tick produced it (an
        emission and a firing can both push in one tick)."""
        for handler in self._handlers["push"]:
            handler(now, src, dst, index, slot)

    def fmnoc(self, now: int, stage: tuple) -> None:
        """A request advanced through FM-NoC ``stage``:
        ``("arb", row, domain)`` or ``("port", port_id)``."""
        for handler in self._handlers["fmnoc"]:
            handler(now, stage)

    def counter(self, name: str, amount: int = 1) -> None:
        """Frontend-specific named counter (e.g. NUMA local/remote)."""
        for handler in self._handlers["counter"]:
            handler(name, amount)

    def finish(self, stats) -> None:
        """The run reached quiescence; ``stats`` is the final SimStats."""
        for handler in self._handlers["finish"]:
            handler(stats)
