"""Standard sinks for the observability bus.

Each sink subscribes to the subset of events it needs (see
:mod:`repro.obs.events`); all of them are plain-data accumulators that
render to text, so they survive pickling across the parallel harness's
worker processes and two identical runs produce identical sinks.
"""

from __future__ import annotations

import json
from collections import Counter

from repro.obs.events import FIRE, STALL_KINDS, TICK_KINDS, EventBus

Coord = tuple[int, int]


def _node_label(node) -> str:
    label = node.op
    if node.tag:
        label += f" {node.tag!r}"
    return label


class CycleAttribution:
    """Per-node / per-PE cycle accounting over the stall taxonomy.

    Every executed fabric tick attributes exactly one system cycle per
    node to one of :data:`~repro.obs.events.TICK_KINDS`; executed cycles
    between fabric ticks land in the global ``divider_gap`` bucket and
    scheduler jumps in ``skipped``. For every node::

        sum(per_node[nid].values()) + divider_gap + skipped
            == executed_cycles + skipped_cycles == system_cycles + 1

    (the +1 is the final quiescence-check cycle, which is executed but
    does not advance the clock).
    """

    def __init__(self, node_info: dict[int, tuple]):
        #: nid -> (label, criticality, pe coord[, op]). The op entry was
        #: appended for the class rollup; absent in older pickles.
        self.node_info = node_info
        self.per_node: dict[int, Counter] = {
            nid: Counter() for nid in node_info
        }
        self.divider_gap = 0
        self.skipped = 0
        self.ticks = 0
        self.counters: Counter = Counter()

    # -- hooks ------------------------------------------------------------

    def on_gap(self, now: int) -> None:
        self.divider_gap += 1

    def on_skip(self, now: int, target: int) -> None:
        self.skipped += target - now

    def on_tick(self, now: int, classification: dict[int, str]) -> None:
        self.ticks += 1
        for nid, kind in classification.items():
            self.per_node[nid][kind] += 1

    def on_counter(self, name: str, amount: int) -> None:
        self.counters[name] += amount

    # -- queries ----------------------------------------------------------

    def node_total(self, nid: int) -> int:
        """Cycles attributed to ``nid`` (identical for every node)."""
        return (
            sum(self.per_node[nid].values()) + self.divider_gap + self.skipped
        )

    def aggregate(self) -> Counter:
        """Machine-wide node-cycles per bucket (gap/skip once per node)."""
        total: Counter = Counter()
        for counts in self.per_node.values():
            total.update(counts)
        n = len(self.per_node)
        total["divider-gap"] = self.divider_gap * n
        total["skipped"] = self.skipped * n
        return total

    def fractions(self) -> dict[str, float]:
        """Aggregate bucket shares in [0, 1] (empty run -> all zeros)."""
        agg = self.aggregate()
        denom = sum(agg.values())
        kinds = (FIRE,) + STALL_KINDS
        if not denom:
            return {kind: 0.0 for kind in kinds}
        return {kind: agg.get(kind, 0) / denom for kind in kinds}

    def per_pe(self) -> dict[Coord, Counter]:
        """Tick-bucket counts aggregated over the nodes each PE hosts."""
        out: dict[Coord, Counter] = {}
        for nid, counts in self.per_node.items():
            coord = self.node_info[nid][2]
            out.setdefault(coord, Counter()).update(counts)
        return out

    def per_class(self) -> dict[str, tuple[int, Counter]]:
        """Per-node buckets rolled up to criticality classes.

        Memory nodes land in their :mod:`repro.core.criticality` class
        (``A``/``B``/``C``); everything else is one ``non-mem`` row.
        Returns ``{row: (node count, bucket Counter)}``.
        """
        out: dict[str, tuple[int, Counter]] = {}
        for nid, counts in self.per_node.items():
            info = self.node_info[nid]
            op = info[3] if len(info) > 3 else ""
            key = info[1] if op in ("load", "store") else "non-mem"
            nodes, total = out.setdefault(key, (0, Counter()))
            total.update(counts)
            out[key] = (nodes + 1, total)
        return out

    def render_by_class(self) -> str:
        """The stall taxonomy folded to class A/B/C (+ non-mem) totals."""
        lines = ["cycle attribution by criticality class (node-cycles):"]
        rolled = self.per_class()
        if not rolled or not self.ticks:
            lines.append("  (no events recorded)")
            return "\n".join(lines)
        width = 11
        lines.append(
            "  "
            + "class".ljust(16)
            + "nodes".rjust(6)
            + "".join(self.SHORT[kind].rjust(width) for kind in TICK_KINDS)
        )
        order = [k for k in ("A", "B", "C", "non-mem") if k in rolled]
        order += sorted(set(rolled) - set(order))
        for key in order:
            nodes, counts = rolled[key]
            cells = "".join(
                str(counts[kind]).rjust(width) for kind in TICK_KINDS
            )
            lines.append("  " + key.ljust(16) + str(nodes).rjust(6) + cells)
        return "\n".join(lines)

    # -- rendering --------------------------------------------------------

    #: Short column headers for :meth:`render`.
    SHORT = {
        FIRE: "fire",
        "operand-wait": "op-wait",
        "output-backpressure": "out-bp",
        "fifo-full": "fifo-full",
        "memory-outstanding": "mem-outst",
    }

    def render(self, top: int = 20) -> str:
        """The per-node stall-taxonomy table (worst stallers first).

        Ranking favors *actionable* stalls — backpressure, full response
        FIFOs, memory waits — over generic operand starvation (every
        idle node racks that up symmetrically).
        """
        width = 11
        lines = ["per-node cycle attribution (system cycles):"]
        if not self.ticks and not self.divider_gap and not self.skipped:
            lines.append("  (no events recorded)")
            return "\n".join(lines)
        lines.append(
            "  "
            + "node".ljust(30)
            + "".join(self.SHORT[kind].rjust(width) for kind in TICK_KINDS)
        )

        def rank_key(nid: int):
            counts = self.per_node[nid]
            hard = sum(
                counts[k]
                for k in TICK_KINDS
                if k not in (FIRE, "operand-wait")
            )
            return (-hard, -counts["operand-wait"], nid)

        ranked = sorted(self.per_node, key=rank_key)
        for nid in ranked[:top]:
            label, crit = self.node_info[nid][0], self.node_info[nid][1]
            name = f"{nid:4d} [{crit}] {label}"[:30]
            cells = "".join(
                str(self.per_node[nid][kind]).rjust(width)
                for kind in TICK_KINDS
            )
            lines.append("  " + name.ljust(30) + cells)
        if len(ranked) > top:
            lines.append(f"  ... {len(ranked) - top} more node(s)")
        lines.append(
            f"  global: divider-gap={self.divider_gap} "
            f"skipped={self.skipped} fabric-ticks={self.ticks}"
        )
        if self.per_node:
            nid = next(iter(self.per_node))
            lines.append(
                f"  attributed per node: {self.node_total(nid)} cycles "
                "(= executed + skipped = system_cycles + 1)"
            )
        for name in sorted(self.counters):
            lines.append(f"  counter {name} = {self.counters[name]}")
        return "\n".join(lines)


class NocHeatmap:
    """Token traffic per routed data-NoC channel, keyed by placement.

    A token from producer to consumer is charged to every channel of the
    producing net's routed tree (the tree is shared across sinks, so this
    is a per-net upper bound — exact per-sink splits would need flit-level
    routing the engine does not model).
    """

    def __init__(self, edge_channels: dict[tuple[int, int], tuple]):
        self.edge_channels = edge_channels
        self.channel_tokens: Counter = Counter()
        self.edge_tokens: Counter = Counter()

    def on_token(self, now: int, src: int, dst: int) -> None:
        self.edge_tokens[(src, dst)] += 1
        for key in self.edge_channels.get((src, dst), ()):
            self.channel_tokens[key] += 1

    def cell_load(self) -> dict[Coord, int]:
        """Traffic per fabric cell: channels charged to their source."""
        cells: Counter = Counter()
        for (src, _dst, _kind), count in self.channel_tokens.items():
            cells[src] += count
        return dict(cells)

    def render(self, rows: int, cols: int) -> str:
        """ASCII heatmap, log-bucketed ``.123456789`` per cell."""
        cells = self.cell_load()
        peak = max(cells.values(), default=0)
        lines = [
            f"data-NoC channel traffic heatmap (peak cell = {peak} "
            "channel-tokens; scale . then 1-9 log-bucketed)"
        ]
        if not peak:
            lines.append("  (no token traffic recorded)")
            return "\n".join(lines)
        for y in range(rows):
            row = []
            for x in range(cols):
                load = cells.get((x, y), 0)
                if load == 0:
                    row.append(".")
                else:
                    # 1..9 by log scale relative to the peak.
                    frac = load / peak
                    bucket = max(1, min(9, int(frac * 9 + 0.999)))
                    row.append(str(bucket))
            lines.append(f"  {y:2d} " + "".join(row) + " |mem")
        return "\n".join(lines)


class FmnocHeatmap:
    """Requests observed per fabric-memory NoC stage (arbiter or port)."""

    def __init__(self) -> None:
        self.stage_traffic: Counter = Counter()

    def on_fmnoc(self, now: int, stage: tuple) -> None:
        self.stage_traffic[stage] += 1

    def render(self, top: int = 16) -> str:
        lines = ["FM-NoC stage traffic (requests per stage):"]
        if not self.stage_traffic:
            lines.append("  (no arbitrated traffic — UPEA/NUMA frontend?)")
            return "\n".join(lines)
        ranked = sorted(
            self.stage_traffic.items(), key=lambda kv: (-kv[1], kv[0])
        )
        for stage, count in ranked[:top]:
            if stage[0] == "arb":
                label = f"arbiter row={stage[1]} D{stage[2]}"
            else:
                label = f"memory port {stage[1]}"
            lines.append(f"  {label:24s} {count:8d}")
        if len(ranked) > top:
            lines.append(f"  ... {len(ranked) - top} more stage(s)")
        return "\n".join(lines)


class ChromeTraceSink:
    """Chrome ``trace_event`` JSON (load it in Perfetto).

    Tracks: pid 0 = fabric (one thread per DFG node, firings as complete
    events + a per-tick stall counter), pid 1 = memory (per-node request
    lifecycles, per-bank service slices), pid 2 = scheduler (cycle-skip
    spans). Timestamps are system cycles.
    """

    def __init__(
        self,
        divider: int,
        node_info: dict[int, tuple[str, str, Coord]],
        bank_of=None,
        counter_every: int = 1,
    ):
        self.divider = divider
        self.node_info = node_info
        self.bank_of = bank_of  # address -> bank index, or None
        self.counter_every = max(1, counter_every)
        self.events: list[dict] = []
        self._tick_index = 0

    # -- hooks ------------------------------------------------------------

    def on_fire(self, now: int, node, pe: Coord) -> None:
        self.events.append(
            {
                "name": _node_label(node),
                "cat": node.op,
                "ph": "X",
                "ts": now,
                "dur": self.divider,
                "pid": 0,
                "tid": node.nid,
                "args": {"pe": f"{pe[0]},{pe[1]}"},
            }
        )

    def on_mem(self, now: int, record, node, domain) -> None:
        request = record.request
        self.events.append(
            {
                "name": f"{request.kind} {request.array}[{request.index}]",
                "cat": "mem",
                "ph": "X",
                "ts": record.issue_cycle,
                "dur": max(1, now - record.issue_cycle),
                "pid": 1,
                "tid": record.nid,
                "args": {
                    "hit": bool(record.hit),
                    "criticality": node.criticality,
                    "domain": domain,
                    "response_hops": record.response_hops,
                    "bank_wait": max(
                        0, record.serve_cycle - record.enqueue_cycle
                    ),
                },
            }
        )

    def on_mem_service(self, now: int, record) -> None:
        if self.bank_of is None:
            return
        self.events.append(
            {
                "name": "hit" if record.hit else "miss",
                "cat": "bank",
                "ph": "X",
                "ts": record.serve_cycle,
                "dur": max(1, record.complete_cycle - record.serve_cycle),
                "pid": 1,
                "tid": 10_000 + self.bank_of(record.address),
                "args": {"address": record.address},
            }
        )

    def on_tick(self, now: int, classification: dict[int, str]) -> None:
        self._tick_index += 1
        if self._tick_index % self.counter_every:
            return
        counts = Counter(classification.values())
        self.events.append(
            {
                "name": "stalls",
                "ph": "C",
                "ts": now,
                "pid": 0,
                "tid": 0,
                "args": {kind: counts.get(kind, 0) for kind in TICK_KINDS},
            }
        )

    def on_skip(self, now: int, target: int) -> None:
        self.events.append(
            {
                "name": "cycle-skip",
                "cat": "scheduler",
                "ph": "X",
                "ts": now,
                "dur": target - now,
                "pid": 2,
                "tid": 0,
                "args": {},
            }
        )

    # -- output -----------------------------------------------------------

    def _metadata(self) -> list[dict]:
        meta = [
            _meta("process_name", 0, 0, {"name": "fabric"}),
            _meta("process_name", 1, 0, {"name": "memory"}),
            _meta("process_name", 2, 0, {"name": "scheduler"}),
        ]
        for nid, info in sorted(self.node_info.items()):
            label, crit, coord = info[0], info[1], info[2]
            name = f"n{nid} [{crit}] {label} @{coord[0]},{coord[1]}"
            meta.append(_meta("thread_name", 0, nid, {"name": name}))
            meta.append(
                _meta("thread_name", 1, nid, {"name": f"mem {name}"})
            )
        return meta

    def to_json(self) -> dict:
        return {
            "traceEvents": self._metadata() + self.events,
            "displayTimeUnit": "ns",
            "otherData": {
                "clock": "system cycles",
                "clock_divider": self.divider,
            },
        }

    def write(self, path) -> int:
        """Serialize to ``path``; returns the number of trace events."""
        payload = self.to_json()
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=None, separators=(",", ":"))
        return len(payload["traceEvents"])


def _meta(name: str, pid: int, tid: int, args: dict) -> dict:
    return {"name": name, "ph": "M", "pid": pid, "tid": tid, "args": args}


class Observation(EventBus):
    """The standard bus: attribution + heatmaps (+ optional Chrome trace).

    Built by :func:`make_observation`; the simulator publishes into it and
    callers read the sinks back off the returned object (also exposed as
    ``SimResult.obs``).
    """

    def __init__(self) -> None:
        super().__init__()
        self.attribution: CycleAttribution | None = None
        self.noc_heatmap: NocHeatmap | None = None
        self.fmnoc_heatmap: FmnocHeatmap | None = None
        self.chrome: ChromeTraceSink | None = None
        #: Dynamic critical-path recorder (see :mod:`repro.obs.critpath`),
        #: attached when ``ArchParams.sim.critpath`` is on.
        self.critpath = None


def _edge_channel_map(compiled) -> dict[tuple[int, int], tuple]:
    """(producer, consumer) -> routed channel keys of the producing net."""
    from repro.pnr.netlist import build_netlist

    netlist = build_netlist(compiled.dfg)
    out: dict[tuple[int, int], tuple] = {}
    for index, net in enumerate(netlist.nets):
        channels = tuple(
            sorted(compiled.routing.net_channels.get(index, ()))
        )
        for sink in net.sinks:
            out.setdefault((net.src, sink), channels)
    return out


def node_info_of(compiled) -> dict[int, tuple[str, str, Coord, str]]:
    """nid -> (label, criticality, placed PE coord, op) for sinks."""
    return {
        nid: (
            _node_label(node),
            node.criticality,
            compiled.placement[nid],
            node.op,
        )
        for nid, node in compiled.dfg.nodes.items()
    }


def make_observation(
    compiled,
    divider: int,
    address_map=None,
    chrome: bool = False,
    counter_every: int = 1,
    critpath: bool = False,
    fifo_capacity: int = 2,
    max_outstanding: int = 2,
) -> Observation:
    """Assemble the standard sink set for one run of ``compiled``."""
    obs = Observation()
    info = node_info_of(compiled)
    obs.attribution = CycleAttribution(info)
    obs.attach(obs.attribution)
    obs.noc_heatmap = NocHeatmap(_edge_channel_map(compiled))
    obs.attach(obs.noc_heatmap)
    obs.fmnoc_heatmap = FmnocHeatmap()
    obs.attach(obs.fmnoc_heatmap)
    if chrome:
        bank_of = address_map.bank if address_map is not None else None
        obs.chrome = ChromeTraceSink(
            divider, info, bank_of=bank_of, counter_every=counter_every
        )
        obs.attach(obs.chrome)
    if critpath:
        from repro.obs.critpath import CriticalPathRecorder

        obs.critpath = CriticalPathRecorder(
            compiled,
            divider,
            fifo_capacity=fifo_capacity,
            max_outstanding=max_outstanding,
        )
        obs.attach(obs.critpath)
    return obs
