"""Dynamic critical-path profiler: cycle-exact blame for the makespan.

The stall taxonomy (:mod:`repro.obs.sinks`) says *where* cycles went;
this module says *why the makespan is what it is*. A
:class:`CriticalPathRecorder` subscribes to the engine's event bus and,
for every committed node firing and every memory-response emission,
records the **last-arrival predecessor** — the one event whose completion
released this one:

* the final operand token's push (data dependence),
* the pop that freed a previously-full consumer FIFO (backpressure
  release),
* the emission that freed a slot in the node's ``max_outstanding``
  issue queue, or the previous in-order response emission (memory
  ordering),
* the issuing firing of a memory round-trip, carrying the request's
  full milestone ledger (FM-NoC traversal, bank queue, service,
  response network),
* the node's own previous firing (the one-firing-per-fabric-tick
  initiation-interval constraint),
* nothing — a root event (e.g. a source's first firing at tick 0).

After the run, walking backwards from the terminal event reconstructs
the exact critical path. Each edge's span decomposes into categories
(:data:`CATEGORIES`) whose costs **sum exactly to** ``system_cycles`` —
a structural identity, not an approximation: predecessor cycles
telescope along the walk, every edge decomposition is exhaustive, and
the root/drain residues are charged to ``other``. The recorder asserts
the identity at finish and the report carries it.

On top of the path the recorder derives

* **dynamic criticality** per memory node — the fraction of the
  critical path spent inside that node's round-trips (the measured
  ground truth behind the paper's Sec. 5 class-A/B heuristics),
* **slack histograms** per load — how much later each response could
  have arrived without delaying its consumer,
* a **zero-latency what-if** bound per load — the makespan could drop
  by at most the cycles the path spends in that load's round-trips.

Design constraints, matching the rest of :mod:`repro.obs`: the recorder
is plain data (picklable across the parallel harness's workers), costs
nothing when not attached (the engine's publish sites are gated on
``obs is None``), and is insensitive to event-driven cycle skipping
(skipped spans contain no events by construction).
"""

from __future__ import annotations

from collections import Counter, deque

from repro.dfg.graph import MEMORY_OPS, PortRef
from repro.errors import SimulationError

#: Fine-grained attribution categories, in reporting order. Costs over
#: the critical path sum exactly to ``system_cycles``.
CATEGORIES = (
    "compute",
    "divider-stretch",
    "fifo-backpressure",
    "fmnoc-request",
    "mem-bank",
    "mem-service",
    "noc-response",
    "mem-order",
    "other",
)

#: Category -> coarse bucket for the ``critblame`` figure (the issue's
#: six-way split; ``memory`` folds bank queueing, service and ordering).
ROLLUP = {
    "compute": "compute",
    "divider-stretch": "clock-divider",
    "fifo-backpressure": "fifo-backpressure",
    "fmnoc-request": "fmnoc-arbitration",
    "mem-bank": "memory",
    "mem-service": "memory",
    "mem-order": "memory",
    "noc-response": "noc-response",
    "other": "other",
}

#: Coarse buckets in reporting order.
ROLLUP_ORDER = (
    "compute",
    "clock-divider",
    "fifo-backpressure",
    "fmnoc-arbitration",
    "memory",
    "noc-response",
    "other",
)

# Release-edge kinds. Numeric order breaks (cycle, eid) ties in favor of
# the more informative edge (data dependence over space release, the
# milestone-bearing chain over everything).
ROOT = 0  # no recorded constraint (e.g. a source's first firing)
ORDER = 1  # memory ordering: outstanding-slot free / previous emission
SPACE = 2  # a pop freed a previously-full consumer FIFO
SELF = 3  # the node's own previous firing (initiation interval)
OPERAND = 4  # final operand token's push
CHAIN = 5  # the memory round-trip back to the issuing firing

_EDGE_NAMES = {
    ROOT: "root",
    ORDER: "order",
    SPACE: "space",
    SELF: "self",
    OPERAND: "operand",
    CHAIN: "chain",
}

_KIND_FIRE = 0
_KIND_EMIT = 1


def blame_shares(report: dict) -> dict[int, dict]:
    """Per-memory-node blame from an attribution report — the stable
    export API the feedback-directed loop (:mod:`repro.exp.fdo`) and any
    offline consumer of a ``--json`` report build on.

    Takes either a live :attr:`CriticalPathRecorder.report` or the same
    dict round-tripped through JSON, and returns

    ``{nid: {"cycles", "share", "class", "op", "label"}}``

    for **every** memory node of the compiled DFG (zero-blame nodes
    included, so consumers see the full universe, not just the path).
    ``share`` is the node's fraction of the makespan spent inside its
    memory round-trips — the measured ground truth behind the static
    class-A/B heuristics. Keys are ints even after a JSON round-trip.
    """
    system_cycles = report.get("system_cycles", 0)
    denom = max(1, system_cycles)
    out: dict[int, dict] = {}
    for nid, entry in report.get("memory_nodes", {}).items():
        cycles = entry["cycles"]
        out[int(nid)] = {
            "cycles": cycles,
            "share": cycles / denom,
            "class": entry["class"],
            "op": entry["op"],
            "label": entry["label"],
        }
    return out


class CriticalPathRecorder:
    """Last-arrival edge recorder + backward-walk blame attribution.

    Subscribes to ``fire_pops`` (committed firings with their popped
    ports), ``push`` (token commits, to mirror the engine's FIFOs),
    ``mem`` (response emissions with the full
    :class:`~repro.sim.memsys.RequestRecord` milestone ledger) and
    ``finish`` (runs the walk and publishes the report into
    ``stats.critpath``).
    """

    def __init__(
        self,
        compiled,
        divider: int,
        fifo_capacity: int = 2,
        max_outstanding: int = 2,
    ):
        dfg = compiled.dfg
        self.divider = divider
        self.capacity = fifo_capacity
        self.max_outstanding = max_outstanding

        #: nid -> (label, criticality class, op).
        self.node_meta: dict[int, tuple[str, str, str]] = {}
        for nid, node in dfg.nodes.items():
            label = node.op + (f" {node.tag!r}" if node.tag else "")
            self.node_meta[nid] = (label, node.criticality, node.op)

        # Shadow token FIFOs holding *event ids* of the pushes, mirrored
        # via on_push/on_fire_pops (pushes commit at end-of-tick while
        # pops see only earlier ticks, so mirror order is exact).
        self._fifo: dict[tuple[int, int], deque] = {}
        for node in dfg.nodes.values():
            for index, inp in enumerate(node.inputs):
                if isinstance(inp, PortRef):
                    self._fifo[(node.nid, index)] = deque()
        #: producer nid -> its consumer FIFO keys (for release edges).
        self._consumer_keys: dict[int, tuple] = {
            nid: tuple(sinks) for nid, sinks in dfg.consumers().items()
        }

        # Release bookkeeping.
        self._unblock: dict[tuple[int, int], tuple[int, int]] = {}
        self._out_count: dict[int, int] = {}
        self._out_unblock: dict[int, tuple[int, int]] = {}
        self._issue: dict[int, deque] = {
            n.nid: deque() for n in dfg.memory_nodes()
        }
        self._last_emit: dict[int, int] = {}
        self._last_fire: dict[int, int] = {}

        # Per-tick push-source events (emission first, then firing; the
        # engine's ``slot`` indexes into this list).
        self._tick = -1
        self._tick_src: dict[int, list[int]] = {}

        # The event log: parallel lists (compact, pickle-fast).
        self.ev_cycle: list[int] = []
        self.ev_kind: list[int] = []
        self.ev_nid: list[int] = []
        self.ev_pred: list[int] = []
        self.ev_edge: list[int] = []
        #: eid -> (issue, enqueue, serve, complete, arrived) milestones
        #: of emission events.
        self.ev_ms: dict[int, tuple[int, int, int, int, int]] = {}

        #: load nid -> Counter of observed operand slacks (cycles the
        #: response could have been later without delaying the consumer).
        self.slack: dict[int, Counter] = {}
        self._loads = {
            n.nid for n in dfg.memory_nodes() if n.op == "load"
        }
        self._memory = {n.nid for n in dfg.memory_nodes()}

        #: Full report dict, built at finish (see :meth:`on_finish`).
        self.report: dict = {}

    # -- event construction ----------------------------------------------

    def _append(
        self, now: int, kind: int, nid: int, pred: int, edge: int
    ) -> int:
        eid = len(self.ev_cycle)
        self.ev_cycle.append(now)
        self.ev_kind.append(kind)
        self.ev_nid.append(nid)
        self.ev_pred.append(pred)
        self.ev_edge.append(edge)
        return eid

    def _roll_tick(self, now: int) -> None:
        if now != self._tick:
            self._tick = now
            self._tick_src.clear()

    # -- hooks -------------------------------------------------------------

    def on_fire_pops(
        self, now: int, nid: int, pops, mem: bool, emits: bool
    ) -> None:
        """A committed firing: ``pops`` port indices were consumed;
        ``mem`` issued a memory request; ``emits`` pushes a token."""
        self._roll_tick(now)
        cands: list[tuple[int, int, int]] = []
        freed: list[tuple[int, int]] = []
        for index in pops:
            queue = self._fifo[(nid, index)]
            if len(queue) >= self.capacity:
                freed.append((nid, index))
            src_ev = queue.popleft()
            cands.append((self.ev_cycle[src_ev], src_ev, OPERAND))
        prev = self._last_fire.get(nid)
        if prev is not None:
            cands.append((self.ev_cycle[prev], prev, SELF))
        if emits:
            for key in self._consumer_keys.get(nid, ()):
                unblock = self._unblock.get(key)
                if unblock is not None:
                    cands.append((unblock[0], unblock[1], SPACE))
        if mem:
            unblock = self._out_unblock.get(nid)
            if unblock is not None:
                cands.append((unblock[0], unblock[1], ORDER))
        if cands:
            bind_cycle, pred_ev, edge = max(cands)
            eid = self._append(now, _KIND_FIRE, nid, pred_ev, edge)
            # Slack of every load-fed operand against the binding arrival.
            for cycle, src_ev, kind in cands:
                if kind != OPERAND or self.ev_kind[src_ev] != _KIND_EMIT:
                    continue
                src_nid = self.ev_nid[src_ev]
                if src_nid in self._loads:
                    self.slack.setdefault(src_nid, Counter())[
                        bind_cycle - cycle
                    ] += 1
        else:
            eid = self._append(now, _KIND_FIRE, nid, -1, ROOT)
        for key in freed:
            self._unblock[key] = (now, eid)
        if mem:
            self._issue[nid].append(eid)
            self._out_count[nid] = self._out_count.get(nid, 0) + 1
        if emits:
            self._tick_src.setdefault(nid, []).append(eid)
        self._last_fire[nid] = eid

    def on_mem(self, now: int, record, node, domain) -> None:
        """A memory response was emitted at its PE: chain back to the
        issuing firing, unless ordering or backpressure bound later."""
        self._roll_tick(now)
        nid = record.nid
        issue_ev = self._issue[nid].popleft()
        cands = [(record.arrived_cycle, issue_ev, CHAIN)]
        prev = self._last_emit.get(nid)
        if prev is not None:
            cands.append((self.ev_cycle[prev], prev, ORDER))
        for key in self._consumer_keys.get(nid, ()):
            unblock = self._unblock.get(key)
            if unblock is not None:
                cands.append((unblock[0], unblock[1], SPACE))
        _cycle, pred_ev, edge = max(cands)
        eid = self._append(now, _KIND_EMIT, nid, pred_ev, edge)
        self.ev_ms[eid] = (
            record.issue_cycle,
            record.enqueue_cycle,
            record.serve_cycle,
            record.complete_cycle,
            record.arrived_cycle,
        )
        was = self._out_count.get(nid, 0)
        self._out_count[nid] = was - 1
        if was >= self.max_outstanding:
            self._out_unblock[nid] = (now, eid)
        self._last_emit[nid] = eid
        self._tick_src.setdefault(nid, []).append(eid)

    def on_push(
        self, now: int, src: int, dst: int, index: int, slot: int
    ) -> None:
        """A token commit: mirror it into the shadow FIFO, tagged with
        the event (emission or firing) that produced it this tick."""
        if now != self._tick:
            raise SimulationError(
                f"critpath: push at cycle {now} without a source event "
                f"(last tick {self._tick})"
            )
        self._fifo[(dst, index)].append(self._tick_src[src][slot])

    def on_finish(self, stats) -> None:
        """Walk the path, check the sum invariant, publish the report."""
        self.report = self._build_report(stats.system_cycles)
        stats.critpath = self._compact(self.report)

    # -- the backward walk -------------------------------------------------

    def _walk(self, system_cycles: int):
        categories = {cat: 0 for cat in CATEGORIES}
        per_mem: dict[int, int] = {}
        path_events: Counter = Counter()
        edge_counts: Counter = Counter()
        n = len(self.ev_cycle)
        if n == 0:
            # Zero-event run (nothing ever fired): the whole makespan is
            # unattributable residue, but the invariant still holds.
            categories["other"] = system_cycles
            return categories, per_mem, path_events, edge_counts
        cur = n - 1  # events are appended in cycle order; last = terminal
        categories["other"] += system_cycles - self.ev_cycle[cur]  # drain
        divider = self.divider
        while cur != -1:
            nid = self.ev_nid[cur]
            path_events[nid] += 1
            pred = self.ev_pred[cur]
            edge = self.ev_edge[cur]
            edge_counts[_EDGE_NAMES[edge]] += 1
            start = self.ev_cycle[pred] if pred != -1 else 0
            span = self.ev_cycle[cur] - start
            if edge == ROOT:
                categories["other"] += span
            elif edge == SPACE:
                categories["fifo-backpressure"] += span
            elif edge == ORDER:
                categories["mem-order"] += span
                per_mem[nid] = per_mem.get(nid, 0) + span
            elif edge in (OPERAND, SELF):
                if span > 0:
                    stretch = min(divider - 1, span - 1)
                    categories["compute"] += 1
                    categories["divider-stretch"] += stretch
                    categories["other"] += span - 1 - stretch
            else:  # CHAIN: the milestone ledger partitions the span.
                issue, enqueue, serve, complete, arrived = self.ev_ms[cur]
                categories["fmnoc-request"] += enqueue - issue
                categories["mem-bank"] += serve - enqueue
                categories["mem-service"] += complete - serve
                categories["noc-response"] += arrived - complete
                tail = self.ev_cycle[cur] - arrived
                stretch = min(divider - 1, tail)
                categories["divider-stretch"] += stretch
                categories["other"] += tail - stretch
                per_mem[nid] = per_mem.get(nid, 0) + span
            cur = pred
        return categories, per_mem, path_events, edge_counts

    def _build_report(self, system_cycles: int) -> dict:
        categories, per_mem, path_events, edge_counts = self._walk(
            system_cycles
        )
        attributed = sum(categories.values())
        if attributed != system_cycles:
            raise SimulationError(
                f"critical-path invariant violated: attributed "
                f"{attributed} cycles != {system_cycles} system cycles "
                f"(categories {categories})"
            )
        rollup = {bucket: 0 for bucket in ROLLUP_ORDER}
        for cat, cycles in categories.items():
            rollup[ROLLUP[cat]] += cycles
        denom = max(1, system_cycles)
        mem_nodes = {}
        for nid in sorted(self._memory):
            label, klass, op = self.node_meta[nid]
            cycles = per_mem.get(nid, 0)
            entry = {
                "label": label,
                "class": klass,
                "op": op,
                "cycles": cycles,
                "criticality": round(cycles / denom, 6),
                "path_events": path_events.get(nid, 0),
                "whatif_savings_bound": cycles,
                "whatif_min_cycles": system_cycles - cycles,
            }
            hist = self.slack.get(nid)
            if hist:
                uses = sum(hist.values())
                entry["slack"] = {
                    "uses": uses,
                    "zero": hist.get(0, 0),
                    "min": min(hist),
                    "max": max(hist),
                    "mean": round(
                        sum(s * c for s, c in hist.items()) / uses, 3
                    ),
                    "histogram": {
                        str(s): hist[s] for s in sorted(hist)
                    },
                }
            mem_nodes[str(nid)] = entry
        critical_loads = sorted(
            (
                entry
                | {"nid": int(nid)}
                for nid, entry in mem_nodes.items()
                if entry["op"] == "load" and entry["cycles"] > 0
            ),
            key=lambda e: (-e["cycles"], e["nid"]),
        )
        top_loads = [
            {
                k: e[k]
                for k in ("nid", "label", "class", "cycles", "criticality")
            }
            for e in critical_loads[:5]
        ]
        return {
            "system_cycles": system_cycles,
            "events": len(self.ev_cycle),
            "path_events": sum(path_events.values()),
            "edge_counts": {k: edge_counts[k] for k in sorted(edge_counts)},
            "categories": categories,
            "rollup": rollup,
            "memory_nodes": mem_nodes,
            "top_loads": top_loads,
        }

    @staticmethod
    def _compact(report: dict) -> dict:
        """The manifest/SimStats view: everything except per-node detail."""
        return {
            "system_cycles": report["system_cycles"],
            "events": report["events"],
            "path_events": report["path_events"],
            "categories": dict(report["categories"]),
            "rollup": dict(report["rollup"]),
            "top_loads": [dict(e) for e in report["top_loads"]],
        }

    # -- derived views -----------------------------------------------------

    def dynamic_criticality(self) -> dict[int, float]:
        """Memory nid -> measured fraction of the critical path."""
        return {
            int(nid): entry["criticality"]
            for nid, entry in self.report.get("memory_nodes", {}).items()
        }

    def per_node_blame(self) -> dict[int, dict]:
        """Stable per-memory-node blame export (see :func:`blame_shares`)."""
        return blame_shares(self.report)

    def render(self, top: int = 10) -> str:
        """Human-readable critical-path report."""
        report = self.report
        if not report:
            return "critical path: (no report; run not finished)"
        sc = report["system_cycles"]
        lines = [
            f"critical path over {sc} system cycles "
            f"({report['events']} events recorded, "
            f"{report['path_events']} on the path):"
        ]
        if report["events"] == 0:
            lines.append("  (no events recorded)")
        denom = max(1, sc)
        for cat in CATEGORIES:
            cycles = report["categories"][cat]
            if not cycles:
                continue
            lines.append(
                f"  {cat:18s} {cycles:10d}  {cycles / denom:7.1%}"
            )
        lines.append(
            f"  {'total':18s} {sum(report['categories'].values()):10d}  "
            "(== system_cycles; hard invariant)"
        )
        ranked = [
            entry | {"nid": int(nid)}
            for nid, entry in report["memory_nodes"].items()
            if entry["cycles"] > 0
        ]
        ranked.sort(key=lambda e: (-e["cycles"], e["nid"]))
        if ranked:
            lines.append("  critical memory nodes (dynamic criticality):")
            for entry in ranked[:top]:
                slack = entry.get("slack")
                tail = (
                    f"  slack zero {slack['zero']}/{slack['uses']} "
                    f"mean {slack['mean']}"
                    if slack
                    else ""
                )
                lines.append(
                    f"    n{entry['nid']:<4d} [{entry['class']}] "
                    f"{entry['label']:24s} {entry['criticality']:7.1%} "
                    f"({entry['cycles']} cycles; zero-latency makespan "
                    f">= {entry['whatif_min_cycles']}){tail}"
                )
            if len(ranked) > top:
                lines.append(f"    ... {len(ranked) - top} more")
        else:
            lines.append(
                "  (no memory round-trips on the critical path)"
            )
        return "\n".join(lines)
