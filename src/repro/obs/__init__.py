"""Observability: cycle attribution, tracing, heatmaps, run manifests.

The subsystem is **zero-overhead when off**: with ``ArchParams.sim.trace``
false (the default) the engine holds ``obs = None`` and every publish
site is a single attribute check — simulated results are bit-identical
and the measured slowdown is within noise. With tracing on, the engine,
memory system and fabric-memory frontends publish structured events to an
:class:`~repro.obs.events.EventBus`; sinks turn the stream into

* a per-node / per-PE **cycle-attribution table** over the stall taxonomy
  (:data:`~repro.obs.events.STALL_KINDS`),
* **NoC-link and FM-NoC-stage traffic heatmaps** keyed by the compiled
  placement,
* a Chrome ``trace_event`` JSON viewable in Perfetto / ``chrome://tracing``.

:func:`make_observation` assembles the standard sink set for one run;
:mod:`repro.obs.manifest` emits structured JSONL run manifests.
"""

from __future__ import annotations

from repro.obs.critpath import (
    CATEGORIES,
    ROLLUP,
    ROLLUP_ORDER,
    CriticalPathRecorder,
    blame_shares,
)
from repro.obs.events import (
    FIRE,
    STALL_KINDS,
    EventBus,
)
from repro.obs.sinks import (
    ChromeTraceSink,
    CycleAttribution,
    FmnocHeatmap,
    NocHeatmap,
    Observation,
    make_observation,
)

__all__ = [
    "CATEGORIES",
    "ROLLUP",
    "ROLLUP_ORDER",
    "FIRE",
    "STALL_KINDS",
    "CriticalPathRecorder",
    "blame_shares",
    "EventBus",
    "ChromeTraceSink",
    "CycleAttribution",
    "FmnocHeatmap",
    "NocHeatmap",
    "Observation",
    "make_observation",
]
