"""Structured JSONL run manifests.

Every harness run can append one JSON object per (workload, config, seed)
point to a manifest file: what ran (config digest), where (git revision,
fabric), how long (wall time) and what it measured (the full
``SimStats.to_dict()``). Scripts consume the JSONL instead of scraping
``summary()`` text, and two manifests of the same sweep — serial or
parallel, any ``--jobs`` — differ only in ``wall_time_s`` and
``timestamp``.
"""

from __future__ import annotations

import functools
import hashlib
import json
import subprocess
import time

#: Manifest schema version; bump on incompatible layout changes.
MANIFEST_SCHEMA = 1

#: Keys that legitimately differ between two runs of the same point.
VOLATILE_KEYS = ("wall_time_s", "timestamp", "git_rev")


@functools.lru_cache(maxsize=1)
def git_rev() -> str:
    """Current git revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def config_digest(fields: dict) -> str:
    """Stable short digest of the run configuration."""
    payload = json.dumps(
        {"schema": MANIFEST_SCHEMA, **fields}, sort_keys=True
    ).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def build_manifest(
    run,
    *,
    scale: str,
    seed: int,
    divider: int,
    fabric_spec=None,
    policy: str | None = None,
    extra: dict | None = None,
) -> dict:
    """One manifest record for a :class:`~repro.exp.runner.RunResult`."""
    config_fields = {
        "workload": run.workload,
        "config": run.config,
        "scale": scale,
        "seed": seed,
        "divider": divider,
        "fabric": list(fabric_spec) if fabric_spec else None,
        "policy": policy,
        "parallelism": run.parallelism,
    }
    record = {
        "schema": MANIFEST_SCHEMA,
        "digest": config_digest(config_fields),
        **config_fields,
        "git_rev": git_rev(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "wall_time_s": round(getattr(run, "wall_time", 0.0), 6),
        "cycles": run.cycles,
        "stats": run.stats.to_dict(),
    }
    if extra:
        record.update(extra)
    return record


def append_manifest(path, record: dict) -> None:
    """Append one record as a single JSONL line (creates the file)."""
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def read_manifest(path) -> list[dict]:
    """Parse a JSONL manifest back into records."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def stable_view(record: dict) -> dict:
    """The record minus volatile keys — equal across repeat runs."""
    return {k: v for k, v in record.items() if k not in VOLATILE_KEYS}
