"""Structured JSONL run manifests — and the sweep's resume journal.

Every harness run can append one JSON object per (workload, config, seed)
point to a manifest file: what ran (config digest), where (git revision,
fabric), how long (wall time) and what it measured (the full
``SimStats.to_dict()``). Scripts consume the JSONL instead of scraping
``summary()`` text, and two manifests of the same sweep — serial or
parallel, any ``--jobs`` — differ only in ``wall_time_s`` and
``timestamp``.

The manifest doubles as the resilient sweep's checkpoint journal
(see :mod:`repro.exp.resilient`): every record carries a ``status``
(``"ok"`` / ``"failed"``) and a ``point_digest`` — a stable digest of the
*pre-run* point configuration (workload, config, scale, seed, divider,
fabric, policy, fault signature; everything except run outputs). On
``sweep --resume`` a point is skipped only when the journal holds an
``ok`` record whose stored digest both matches the digest recomputed
from the record's own fields (integrity: a hand-edited or truncated
journal entry is ignored) and equals the digest of the point about to
run (staleness: a journal written under any other sweep configuration —
different scale, policy, fabric, fault model — can never poison a run).
"""

from __future__ import annotations

import functools
import hashlib
import json
import subprocess
import time

#: Manifest schema version; bump on incompatible layout changes.
#: v2: ``status``, ``point_digest`` and ``faults`` fields (resume journal).
MANIFEST_SCHEMA = 2

#: Keys that legitimately differ between two runs of the same point.
#: ``pnr`` is compile-time telemetry (moves/s, per-phase wall times) —
#: informative in the record, but never part of the stable view.
#: ``resume`` records how a preempted point was continued from its
#: snapshot (see :mod:`repro.sim.snapshot`); the resumed run's results
#: are bit-identical to an uninterrupted one, so the stable views of a
#: clean and a resumed manifest must compare equal.
VOLATILE_KEYS = ("wall_time_s", "timestamp", "git_rev", "pnr", "resume")


@functools.lru_cache(maxsize=1)
def git_rev() -> str:
    """Current git revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def config_digest(fields: dict) -> str:
    """Stable short digest of the run configuration."""
    payload = json.dumps(
        {"schema": MANIFEST_SCHEMA, **fields}, sort_keys=True
    ).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def point_fields(
    *,
    workload: str,
    config: str,
    scale: str,
    seed: int,
    divider: int,
    fabric=None,
    policy: str | None = None,
    faults: str | None = None,
    profile: str | None = None,
) -> dict:
    """The *pre-run* identity of one sweep point.

    Everything here is known before the point executes (unlike e.g. the
    PnR-chosen parallelism), so the resume journal can match records
    against points it has not run yet.

    ``profile`` marks profile-guided compilation (``"guided"``); the
    profiling inputs themselves are the point's own workload/scale/seed,
    already in the identity. The key is included only when set, so every
    digest of a non-profiled point — including all pre-existing resume
    journals — is unchanged.
    """
    fields = {
        "workload": workload,
        "config": config,
        "scale": scale,
        "seed": seed,
        "divider": divider,
        "fabric": list(fabric) if fabric else None,
        "policy": policy,
        "faults": faults,
    }
    if profile is not None:
        fields["profile"] = profile
    return fields


def point_digest(**fields) -> str:
    """Stable digest of one sweep point's pre-run identity."""
    return config_digest(point_fields(**fields))


def _energy_block(stats) -> dict:
    """Deterministic energy breakdown for one record.

    Priced purely from stable counters (firings, hops, accesses), so the
    block belongs in the *stable* view: serial and parallel sweeps of
    the same point must produce byte-identical energy blocks.
    """
    from repro.sim.energy import estimate_energy

    return estimate_energy(stats).to_dict()


def build_manifest(
    run,
    *,
    scale: str,
    seed: int,
    divider: int,
    fabric_spec=None,
    policy: str | None = None,
    faults: str | None = None,
    profile: str | None = None,
    extra: dict | None = None,
) -> dict:
    """One manifest record for a :class:`~repro.exp.runner.RunResult`."""
    identity = point_fields(
        workload=run.workload,
        config=run.config,
        scale=scale,
        seed=seed,
        divider=divider,
        fabric=fabric_spec,
        policy=policy,
        faults=faults,
        profile=profile,
    )
    config_fields = {**identity, "parallelism": run.parallelism}
    pnr_seed = getattr(run, "pnr_seed", None)
    record = {
        "schema": MANIFEST_SCHEMA,
        "status": "ok",
        "digest": config_digest(config_fields),
        "point_digest": config_digest(identity),
        **config_fields,
        "git_rev": git_rev(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "wall_time_s": round(getattr(run, "wall_time", 0.0), 6),
        "cycles": run.cycles,
        "stats": run.stats.to_dict(),
        "energy": _energy_block(run.stats),
    }
    if pnr_seed is not None and pnr_seed != seed:
        # The supervisor retried PnR under a perturbed placement seed;
        # journal it so the result stays reproducible from the record.
        record["pnr_seed"] = pnr_seed
    pnr = getattr(run, "pnr", None)
    if pnr is not None:
        record["pnr"] = pnr.to_dict()
    profile_report = getattr(run, "profile", None)
    if profile_report is not None:
        # Outcome of the profile-guided refinement pass — deterministic
        # (promoted/demoted node ids, degeneracy note), so it lives in
        # the *stable* view; the pre-run identity above carries only the
        # ``profile`` marker.
        record["profile_report"] = dict(profile_report)
    resume_info = getattr(run, "resume_info", None)
    if resume_info is not None:
        # The point was continued from a mid-simulation snapshot; the
        # stats above are still bit-identical to an uninterrupted run
        # (``resume`` is volatile, see VOLATILE_KEYS).
        record["resume"] = dict(resume_info)
    if extra:
        record.update(extra)
    return record


def completed_points(path) -> set[str]:
    """Point digests the journal proves completed successfully.

    Only ``status == "ok"`` records of the current schema count, and
    only when the stored ``point_digest`` matches the digest recomputed
    from the record's own fields — a tampered, truncated or
    stale-schema entry is silently ignored rather than trusted.
    """
    try:
        records = read_manifest(path, strict=False)
    except OSError:
        return set()
    done: set[str] = set()
    for record in records:
        if record.get("schema") != MANIFEST_SCHEMA:
            continue
        if record.get("status", "ok") != "ok":
            continue
        stored = record.get("point_digest")
        if not stored:
            continue
        try:
            recomputed = point_digest(
                workload=record["workload"],
                config=record["config"],
                scale=record["scale"],
                seed=record["seed"],
                divider=record["divider"],
                fabric=record.get("fabric"),
                policy=record.get("policy"),
                faults=record.get("faults"),
                profile=record.get("profile"),
            )
        except KeyError:
            continue
        if stored == recomputed:
            done.add(stored)
    return done


def append_manifest(path, record: dict) -> None:
    """Append one record as a single JSONL line (creates the file)."""
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def read_manifest(path, strict: bool = True) -> list[dict]:
    """Parse a JSONL manifest back into records.

    ``strict=False`` skips unparsable lines instead of raising — a sweep
    killed mid-append leaves a torn final line, and the resume journal
    must survive that (losing at most the record being written).
    """
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if strict:
                    raise
    return records


def stable_view(record: dict) -> dict:
    """The record minus volatile keys — equal across repeat runs."""
    return {k: v for k, v in record.items() if k not in VOLATILE_KEYS}
