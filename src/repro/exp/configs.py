"""Machine configurations compared in the evaluation (paper Sec. 6).

* ``MONACO`` — the NUPEA design: hierarchical per-row arbitration, direct
  D0 ports, non-uniform latency.
* ``ideal()`` / ``upea(n)`` — uniform PE access with an N-fabric-cycle
  delay on every request and no port arbitration (N=0 is **Ideal**).
* ``numa(n)`` — UPEA plus NUMA memory: random LS-PE-to-domain assignment,
  line-interleaved address space, local accesses skip the delay.

All configurations share the fabric topology, PE mix, memory ports and
memory system; only the fabric-memory interconnect model differs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.fmnoc_sim import MonacoFrontend
from repro.sim.upea import NumaFrontend, UniformFrontend


@dataclass(frozen=True)
class MachineConfig:
    """A named fabric-memory interconnect model."""

    name: str
    kind: str  # "monaco" | "upea" | "numa"
    #: Uniform PE-access delay in *fabric* cycles (upea/numa kinds).
    upea_fabric_cycles: int = 0
    numa_domains: int = 4
    numa_seed: int = 0

    def frontend_factory(self, divider: int):
        """A (fabric, address_map) -> frontend factory for the simulator."""
        delay = self.upea_fabric_cycles * divider
        if self.kind == "monaco":
            return lambda fabric, amap: MonacoFrontend(fabric)
        if self.kind == "upea":
            return lambda fabric, amap: UniformFrontend(delay)
        if self.kind == "numa":
            return lambda fabric, amap: NumaFrontend(
                delay,
                fabric,
                amap,
                n_domains=self.numa_domains,
                seed=self.numa_seed,
            )
        raise ValueError(f"unknown config kind {self.kind!r}")


MONACO = MachineConfig("monaco", "monaco")


def ideal() -> MachineConfig:
    """UPEA with 0-cycle uniform access: the paper's Ideal baseline."""
    return MachineConfig("ideal", "upea", 0)


def upea(n: int) -> MachineConfig:
    return MachineConfig(f"upea{n}", "upea", n)


def numa(n: int, seed: int = 0) -> MachineConfig:
    return MachineConfig(f"numa-upea{n}", "numa", n, numa_seed=seed)


#: Fig. 11's comparison set: Ideal, realistic UPEA, NUMA-UPEA, Monaco.
def primary_configs() -> list[MachineConfig]:
    return [ideal(), upea(2), numa(2), MONACO]
