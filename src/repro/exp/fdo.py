"""Feedback-directed placement optimization: the critpath -> PnR loop.

The dynamic critical-path profiler (:mod:`repro.obs.critpath`) measures,
cycle-exactly, which memory nodes the makespan actually waited on. The
EFFCC placement policy spends the scarce D0 ports on *statically
predicted* critical loads (class A/B). When the static prediction misses
— a class-C load that dominates the measured path, a class-B load that
never mattered — the placement leaves speedup on the table. This module
closes the loop:

1. **Round 0** compiles with the plain static policy (a cache hit when
   the kernel was compiled before — the static path is untouched) and
   runs a timed simulation with the profiler attached.
2. The per-node blame shares (:func:`repro.obs.critpath.blame_shares`)
   are mapped to a deterministic per-node placement weight
   (:func:`blame_to_weights`): the most-blamed node gets the class-A
   weight, zero-blame nodes the class-C weight, linear in between.
3. **Round k>0** re-runs PnR with those weights as per-node overrides
   (``PlacementPolicy.node_weight``) at the parallelism degree round 0
   chose — pinning parallelism keeps the lowered DFG, and therefore the
   node ids the weights refer to, identical across rounds.
4. Iterate until the weight map reaches a fixed point or the makespan
   repeats (oscillation), bounded by ``rounds``.

Every round is journaled (:class:`FdoRound`) with no volatile fields —
two FDO runs of the same point, serial or portfolio-parallel compiles,
produce byte-identical journals. The best round is whichever round's
timed run had the fewest system cycles (ties to the earliest, i.e. the
static baseline wins ties).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.arch.fabric import build_fabric
from repro.arch.params import ArchParams
from repro.core.policy import EFFCC, PlacementPolicy
from repro.exp.configs import MONACO, MachineConfig
from repro.exp.runner import (
    DEFAULT_FABRIC_SPEC,
    PAPER_DIVIDER,
    FabricSpec,
    compile_cached,
    run_config,
    weight_map_digest,
)
from repro.obs.manifest import append_manifest
from repro.workloads.registry import make_workload

#: FDO round-journal schema; bump on incompatible layout changes.
FDO_SCHEMA = 1

#: Default bound on feedback rounds (not counting the static round 0).
DEFAULT_ROUNDS = 3


def blame_to_weights(
    blame: dict[int, dict], policy: PlacementPolicy
) -> dict[int, float]:
    """Map per-node blame shares to per-node placement weights.

    Linear interpolation between the policy's class-C and class-A
    weights: the most-blamed memory node gets exactly ``weight("A")``,
    a zero-blame node exactly ``weight("C")``. Rounded to 6 decimals so
    the map is a stable fixed-point candidate (and JSON round-trips
    without drift). Returns ``{}`` when no memory node carried any blame
    (e.g. a compute-bound path) — the empty map is, by construction, the
    plain class-weight placement.
    """
    shares = {int(nid): entry["share"] for nid, entry in blame.items()}
    share_max = max(shares.values(), default=0.0)
    if share_max <= 0.0:
        return {}
    w_a = policy.weight("A")
    w_c = policy.weight("C")
    return {
        nid: round(w_c + (w_a - w_c) * (share / share_max), 6)
        for nid, share in sorted(shares.items())
    }


@dataclass
class FdoRound:
    """One journaled round of the feedback loop."""

    round: int
    #: Per-node weight overrides this round *compiled with* ({} = static).
    weights: dict[int, float]
    parallelism: int
    divider: int
    cycles: int
    #: Weight map the round's measured blame proposes for the next round.
    next_weights: dict[int, float] = field(default_factory=dict)
    #: True when the profiled run blamed no memory node at all.
    degenerate: bool = False

    def to_record(self, **identity) -> dict:
        """Deterministic journal record (no timestamps, no wall times)."""
        return {
            "schema": FDO_SCHEMA,
            "kind": "fdo-round",
            **identity,
            "round": self.round,
            "parallelism": self.parallelism,
            "divider": self.divider,
            "cycles": self.cycles,
            "weights": {str(n): w for n, w in sorted(self.weights.items())},
            "weights_digest": (
                weight_map_digest(self.weights) if self.weights else None
            ),
            "next_weights_digest": (
                weight_map_digest(self.next_weights)
                if self.next_weights
                else None
            ),
            "degenerate": self.degenerate,
        }


@dataclass
class FdoResult:
    """Outcome of one feedback-directed optimization run."""

    workload: str
    config: str
    scale: str
    seed: int
    policy: str
    rounds: list[FdoRound]
    #: Why the loop stopped: ``"weights-fixed-point"``,
    #: ``"makespan-repeat"``, ``"degenerate-profile"`` or
    #: ``"round-bound"``.
    stopped: str

    @property
    def baseline_cycles(self) -> int:
        return self.rounds[0].cycles

    @property
    def best(self) -> FdoRound:
        return min(self.rounds, key=lambda r: (r.cycles, r.round))

    @property
    def best_cycles(self) -> int:
        return self.best.cycles

    @property
    def converged(self) -> bool:
        return self.stopped != "round-bound"

    @property
    def speedup(self) -> float:
        """Best-round speedup over the static round 0 (>= 1.0 means FDO
        found a placement at least as good as static EFFCC)."""
        return self.baseline_cycles / max(1, self.best_cycles)

    def to_dict(self) -> dict:
        identity = self._identity()
        return {
            **identity,
            "rounds": [r.to_record(**identity) for r in self.rounds],
            "stopped": self.stopped,
            "converged": self.converged,
            "baseline_cycles": self.baseline_cycles,
            "best_round": self.best.round,
            "best_cycles": self.best_cycles,
            "speedup": round(self.speedup, 6),
        }

    def _identity(self) -> dict:
        return {
            "workload": self.workload,
            "config": self.config,
            "scale": self.scale,
            "seed": self.seed,
            "policy": self.policy,
        }

    def summary(self) -> str:
        lines = [
            f"fdo {self.workload} on {self.config} "
            f"({self.scale}/seed{self.seed}, policy {self.policy}):"
        ]
        for rnd in self.rounds:
            marker = " <- best" if rnd is self.best else ""
            kind = "static" if rnd.round == 0 else (
                f"{len(rnd.weights)} node weights"
            )
            lines.append(
                f"  round {rnd.round}: {rnd.cycles} cycles "
                f"({kind}, parallelism {rnd.parallelism}, "
                f"divider {rnd.divider}){marker}"
            )
        lines.append(
            f"  stopped: {self.stopped}; best round {self.best.round} "
            f"is {self.speedup:.3f}x the static baseline"
        )
        return "\n".join(lines)


def run_fdo(
    workload: str,
    rounds: int = DEFAULT_ROUNDS,
    scale: str = "small",
    seed: int = 0,
    config: MachineConfig | None = None,
    arch: ArchParams | None = None,
    fabric_spec: FabricSpec = DEFAULT_FABRIC_SPEC,
    policy: PlacementPolicy = EFFCC,
    portfolio_jobs: int = 1,
    manifest_path=None,
) -> FdoResult:
    """Run the feedback-directed placement loop on one workload.

    ``rounds`` bounds the *feedback* rounds; the static round 0 always
    runs, so at most ``rounds + 1`` compile+simulate iterations execute.
    ``portfolio_jobs`` parallelizes each round's PnR portfolio — the
    compiled artifacts (and therefore the journal) are bit-identical to
    the serial run. ``manifest_path`` appends one deterministic JSONL
    record per round (see :meth:`FdoRound.to_record`).

    The timed runs have the critical-path profiler attached; profiling
    is zero-perturbation (the simulated cycle counts are bit-identical
    with it on or off), so round cycles are directly comparable to
    unprofiled runs of the same artifact.
    """
    config = config or MONACO
    arch = arch or ArchParams()
    arch = replace(arch, sim=replace(arch.sim, critpath=True))
    fabric = build_fabric(*fabric_spec)
    instance = make_workload(workload, scale=scale, seed=seed)

    identity = {
        "workload": workload,
        "config": config.name,
        "scale": scale,
        "seed": seed,
        "policy": policy.name,
    }
    journal: list[FdoRound] = []
    weights: dict[int, float] = {}
    parallelism: int | None = None
    seen_cycles: set[int] = set()
    stopped = "round-bound"

    for rnd in range(rounds + 1):
        compiled = compile_cached(
            instance,
            fabric,
            arch,
            policy=policy,
            parallelism=parallelism,
            seed=seed,
            portfolio_jobs=portfolio_jobs,
            node_weights=weights if rnd else None,
        )
        if parallelism is None:
            # Pin the degree round 0's search chose: later rounds must
            # lower the *same* DFG so the node ids the weight map names
            # keep meaning the same loads.
            parallelism = compiled.parallelism
        divider = max(PAPER_DIVIDER, compiled.timing.clock_divider)
        run = run_config(instance, compiled, config, arch, divider=divider)
        blame = run.obs.critpath.per_node_blame()
        next_weights = blame_to_weights(blame, policy)
        record = FdoRound(
            round=rnd,
            weights=dict(weights),
            parallelism=compiled.parallelism,
            divider=divider,
            cycles=run.cycles,
            next_weights=next_weights,
            degenerate=not next_weights,
        )
        journal.append(record)
        if manifest_path is not None:
            append_manifest(manifest_path, record.to_record(**identity))
        if not next_weights and not weights:
            # No memory node on the measured path and no overrides in
            # play: there is nothing for feedback to act on.
            stopped = "degenerate-profile"
            break
        if next_weights == weights:
            stopped = "weights-fixed-point"
            break
        if run.cycles in seen_cycles:
            # The loop revisited a makespan it already measured — it is
            # oscillating between placements, not improving.
            stopped = "makespan-repeat"
            break
        seen_cycles.add(run.cycles)
        weights = next_weights

    return FdoResult(
        workload=workload,
        config=config.name,
        scale=scale,
        seed=seed,
        policy=policy.name,
        rounds=journal,
        stopped=stopped,
    )
