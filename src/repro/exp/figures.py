"""Regeneration of every figure in the paper's evaluation (Sec. 7).

Each ``figNN`` function returns a :class:`FigureResult` whose rows mirror
the corresponding plot's series; ``repro.exp.report.format_figure`` renders
the same rows as a text table. Absolute cycle counts differ from the paper
(scaled inputs, Python-simulated substrate); the claims under test are the
*shapes* — who wins, by roughly what factor, where the crossovers fall.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.arch.fabric import build_fabric, monaco
from repro.arch.params import ArchParams
from repro.core.policy import DOMAIN_AWARE, DOMAIN_UNAWARE, EFFCC
from repro.errors import PnRError
from repro.exp.configs import MONACO, ideal, numa, primary_configs, upea
from repro.exp.runner import (
    PAPER_DIVIDER,
    compile_cached,
    run_config,
)
from repro.workloads.registry import ALL_WORKLOADS, make_workload


@dataclass
class FigureResult:
    """Rows of one regenerated figure."""

    figure: str
    title: str
    columns: list[str]
    #: row label -> column -> value (exec time normalized unless noted).
    rows: dict[str, dict[str, float]] = field(default_factory=dict)
    #: row label -> column -> raw system-cycle count (when applicable).
    raw: dict[str, dict[str, float]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def geomean(self, column: str) -> float:
        """Geometric mean over the column's finite positive values.

        ``None`` cells (points a resilient sweep failed to produce — see
        :mod:`repro.exp.resilient`) and non-finite values are skipped, so
        a partial figure still reports the geomean of what it has.
        """
        values = [
            row[column]
            for row in self.rows.values()
            if column in row
            and row[column] is not None
            and math.isfinite(row[column])
            and row[column] > 0
        ]
        if not values:
            return 0.0
        return math.exp(sum(math.log(v) for v in values) / len(values))


def _workload_list(workloads):
    return list(workloads) if workloads else list(ALL_WORKLOADS)


def fig_stalls(
    scale: str = "small",
    seed: int = 0,
    workloads=None,
    arch=None,
    config=None,
) -> FigureResult:
    """Supplementary: where cycles go, per workload (stall taxonomy).

    Runs each workload on Monaco (or ``config``) with cycle-attribution
    tracing on and reports the machine-wide share of node-cycles in each
    bucket of :data:`repro.obs.events.STALL_KINDS` (+ ``fire``). This is
    the attribution behind the paper's Sec. 5 argument: on Monaco the
    critical recurrences wait on memory round-trips
    (``memory-outstanding``), not on fabric compute.
    """
    from dataclasses import replace

    from repro.obs.events import FIRE, STALL_KINDS

    arch = arch or ArchParams()
    arch = ArchParams(
        memory=arch.memory,
        sim=replace(arch.sim, trace=True),
        timing=arch.timing,
        noc_tracks=arch.noc_tracks,
        noc_model=arch.noc_model,
    )
    config = config or MONACO
    fabric = monaco(12, 12)
    kinds = [FIRE] + list(STALL_KINDS)
    result = FigureResult(
        "fig_stalls",
        f"Cycle attribution on {config.name} "
        "(share of node-cycles per stall bucket)",
        kinds,
    )
    for name in _workload_list(workloads):
        instance = make_workload(name, scale=scale, seed=seed)
        compiled = compile_cached(
            instance, fabric, arch, policy=EFFCC, seed=seed
        )
        run = run_config(instance, compiled, config, arch)
        fractions = run.obs.attribution.fractions()
        result.rows[name] = {kind: fractions[kind] for kind in kinds}
        result.raw[name] = {"cycles": float(run.cycles)}
    result.notes.append(
        "rows sum to 1.0; divider-gap/skipped are global machine states, "
        "the rest attribute executed fabric ticks per node "
        "(repro profile <workload> breaks these down per node/PE)"
    )
    return result


def fig_critblame(
    scale: str = "small",
    seed: int = 0,
    workloads=None,
    arch=None,
) -> FigureResult:
    """Supplementary: critical-path blame, NUPEA vs UPEA (stacked bars).

    Runs each workload under Monaco and UPEA2 with the dynamic
    critical-path profiler (:mod:`repro.obs.critpath`) and reports each
    coarse category's share of the makespan. The per-row shares sum to
    1.0 by the profiler's hard invariant (segment costs sum exactly to
    ``system_cycles``). This figure explains the NUPEA-vs-UPEA speedups
    *causally*: under UPEA the extra cycles land in
    ``fmnoc-arbitration`` (the uniform access delay) on the critical
    recurrences, which is precisely what NUPEA's D0 placement removes.
    """
    from dataclasses import replace

    from repro.obs.critpath import ROLLUP_ORDER

    arch = arch or ArchParams()
    arch = ArchParams(
        memory=arch.memory,
        sim=replace(arch.sim, critpath=True),
        timing=arch.timing,
        noc_tracks=arch.noc_tracks,
        noc_model=arch.noc_model,
    )
    fabric = monaco(12, 12)
    configs = [MONACO, upea(2)]
    result = FigureResult(
        "fig_critblame",
        "Critical-path blame attribution, NUPEA vs UPEA "
        "(share of system cycles per category)",
        list(ROLLUP_ORDER),
    )
    for name in _workload_list(workloads):
        instance = make_workload(name, scale=scale, seed=seed)
        compiled = compile_cached(
            instance, fabric, arch, policy=EFFCC, seed=seed
        )
        for config in configs:
            run = run_config(instance, compiled, config, arch)
            rollup = run.stats.critpath["rollup"]
            denom = max(1, run.cycles)
            result.rows[f"{name}/{config.name}"] = {
                bucket: rollup[bucket] / denom for bucket in ROLLUP_ORDER
            }
            result.raw[f"{name}/{config.name}"] = {
                "cycles": float(run.cycles)
            }
    result.notes.append(
        "rows sum to 1.0 (profiler invariant: blamed cycles == "
        "system_cycles); repro critpath <workload> breaks these down "
        "per load with slack histograms"
    )
    return result


def fig_fdo(
    scale: str = "small",
    seed: int = 0,
    workloads=None,
    arch=None,
    rounds: int = 3,
) -> FigureResult:
    """Supplementary: static EFFCC vs profile-guided vs FDO placement.

    For each workload, three Monaco compiles — plain static EFFCC,
    profile-guided criticality refinement
    (:func:`repro.core.profile.analyze_with_profile`), and the
    feedback-directed loop's best round (:func:`repro.exp.fdo.run_fdo`)
    — are each reported as speedup over the *same* UPEA2 baseline run.
    All compiles are pinned to the static compile's parallelism degree,
    so the columns isolate what the placement knows about criticality,
    not the lowering. Where the static class-A/B prediction matches the
    measured critical path, the three columns tie; the interesting rows
    are the recall misses, where measured blame finds critical loads the
    static heuristic did not.
    """
    from repro.exp.fdo import run_fdo

    arch = arch or ArchParams()
    fabric = monaco(12, 12)
    baseline = upea(2)
    result = FigureResult(
        "fig_fdo",
        "Speedup over UPEA2 by placement-criticality source "
        "(taller is better)",
        ["static", "profile-guided", "fdo"],
    )
    for name in _workload_list(workloads):
        instance = make_workload(name, scale=scale, seed=seed)
        static_c = compile_cached(
            instance, fabric, arch, policy=EFFCC, seed=seed
        )
        divider = max(PAPER_DIVIDER, static_c.timing.clock_divider)
        upea_cycles = run_config(
            instance, static_c, baseline, arch, divider=divider
        ).cycles
        static_cycles = run_config(
            instance, static_c, MONACO, arch, divider=divider
        ).cycles
        guided_c = compile_cached(
            instance,
            fabric,
            arch,
            policy=EFFCC,
            parallelism=static_c.parallelism,
            seed=seed,
            profile_guided=True,
        )
        guided_cycles = run_config(
            instance,
            guided_c,
            MONACO,
            arch,
            divider=max(PAPER_DIVIDER, guided_c.timing.clock_divider),
        ).cycles
        fdo_res = run_fdo(
            name, rounds=rounds, scale=scale, seed=seed, arch=arch
        )
        cycles = {
            "static": static_cycles,
            "profile-guided": guided_cycles,
            "fdo": fdo_res.best_cycles,
        }
        result.raw[name] = {**cycles, "upea2": float(upea_cycles)}
        result.rows[name] = {k: upea_cycles / v for k, v in cycles.items()}
    for column in result.columns:
        result.notes.append(
            f"geomean {column} speedup over upea2 = "
            f"{result.geomean(column):.3f}"
        )
    result.notes.append(
        "fdo column is each workload's best feedback round "
        f"(bounded at {rounds} rounds; repro fdo <workload> shows the "
        "per-round trajectory)"
    )
    return result


def fig6c(scale: str = "small", seed: int = 0, arch=None) -> FigureResult:
    """spmspv: NUPEA vs idealized UPEA0 and practical UPEA2 (Fig. 6c)."""
    arch = arch or ArchParams()
    fabric = monaco(12, 12)
    instance = make_workload("spmspv", scale=scale, seed=seed)
    compiled = compile_cached(instance, fabric, arch, policy=EFFCC, seed=seed)
    configs = [ideal(), upea(2), MONACO]
    result = FigureResult(
        "fig6c",
        "spmspv execution time (normalized to NUPEA/Monaco)",
        ["upea0", "upea2", "nupea"],
    )
    cycles = {}
    for config in configs:
        run = run_config(instance, compiled, config, arch)
        cycles[config.name] = run.cycles
    base = cycles["monaco"]
    result.rows["spmspv"] = {
        "upea0": cycles["ideal"] / base,
        "upea2": cycles["upea2"] / base,
        "nupea": 1.0,
    }
    result.raw["spmspv"] = {
        "upea0": cycles["ideal"],
        "upea2": cycles["upea2"],
        "nupea": base,
    }
    slowdown = cycles["upea2"] / cycles["ideal"] - 1.0
    result.notes.append(
        f"UPEA2 is {slowdown:.0%} slower than the 0-cycle ideal "
        "(paper: 24-32% on spmspv)"
    )
    return result


def fig11(
    scale: str = "small",
    seed: int = 0,
    workloads=None,
    arch=None,
    jobs: int = 1,
    sweep_policy=None,
) -> FigureResult:
    """Monaco vs Ideal / UPEA2 / NUMA-UPEA2 across workloads (Fig. 11).

    ``jobs > 1`` fans the (workload x config) sweep out over worker
    processes via :func:`repro.exp.runner.run_parallel`; rows are
    bit-identical to the serial sweep (the simulator is deterministic).

    ``sweep_policy`` (a :class:`repro.exp.resilient.SweepPolicy` with
    ``on_failure != "abort"``) renders whatever the sweep salvaged:
    failed points become ``None`` cells (shown as ``-`` by
    ``format_figure``), each gap is called out in ``notes``, and the
    geomeans cover the surviving rows only.
    """
    arch = arch or ArchParams()
    fabric = monaco(12, 12)
    configs = primary_configs()
    result = FigureResult(
        "fig11",
        "Execution time normalized to Monaco (shorter is faster)",
        [c.name for c in configs],
    )
    names = _workload_list(workloads)
    if jobs > 1 or sweep_policy is not None:
        from repro.exp.cache import GLOBAL_CACHE
        from repro.exp.resilient import run_resilient

        outcome = run_resilient(
            names,
            configs,
            scale=scale,
            seeds=(seed,),
            arch=arch,
            max_workers=jobs,
            cache_dir=GLOBAL_CACHE.disk_dir,
            sweep_policy=sweep_policy,
        )
        per_workload = {
            name: {
                c.name: (
                    outcome.results[(name, c.name, seed)].cycles
                    if (name, c.name, seed) in outcome.results
                    else None
                )
                for c in configs
            }
            for name in names
        }
        for failure in outcome.failures:
            result.notes.append(f"gap: {failure.describe()}")
    else:
        per_workload = {}
        for name in names:
            instance = make_workload(name, scale=scale, seed=seed)
            compiled = compile_cached(
                instance, fabric, arch, policy=EFFCC, seed=seed
            )
            per_workload[name] = {
                c.name: run_config(instance, compiled, c, arch).cycles
                for c in configs
            }
    for name in names:
        cycles = per_workload[name]
        base = cycles.get("monaco")
        result.raw[name] = dict(cycles)
        if base:
            result.rows[name] = {
                k: (v / base if v is not None else None)
                for k, v in cycles.items()
            }
        else:
            # The Monaco baseline itself failed: nothing to normalize
            # against, so the whole row renders as gaps.
            result.rows[name] = {k: None for k in cycles}
            result.notes.append(
                f"gap: {name} has no monaco baseline; row unnormalized"
            )
    for column, paper in (
        ("upea2", "+28% (paper)"),
        ("numa-upea2", "+20% (paper)"),
        ("ideal", "-21%-of-ideal (paper)"),
    ):
        gm = result.geomean(column)
        result.notes.append(
            f"geomean {column}/monaco = {gm:.3f}  [{paper}]"
        )
    return result


def fig12(
    scale: str = "small",
    seed: int = 0,
    workloads=None,
    arch=None,
) -> FigureResult:
    """Speedup from NUPEA-aware PnR heuristics on Monaco (Fig. 12).

    All three policies compile at the parallelism degree effcc's search
    chose, isolating the placement heuristic itself.
    """
    arch = arch or ArchParams()
    fabric = monaco(12, 12)
    policies = [DOMAIN_UNAWARE, DOMAIN_AWARE, EFFCC]
    result = FigureResult(
        "fig12",
        "Speedup over Domain-Unaware PnR on Monaco (taller is better)",
        [p.name for p in policies],
    )
    for name in _workload_list(workloads):
        instance = make_workload(name, scale=scale, seed=seed)
        reference = compile_cached(
            instance, fabric, arch, policy=EFFCC, seed=seed
        )
        cycles = {}
        for policy in policies:
            compiled = compile_cached(
                instance,
                fabric,
                arch,
                policy=policy,
                parallelism=reference.parallelism,
                seed=seed,
            )
            cycles[policy.name] = run_config(
                instance, compiled, MONACO, arch
            ).cycles
        base = cycles[DOMAIN_UNAWARE.name]
        result.raw[name] = dict(cycles)
        result.rows[name] = {k: base / v for k, v in cycles.items()}
    result.notes.append(
        f"geomean speedup: only-domain-aware "
        f"{result.geomean(DOMAIN_AWARE.name):.3f} [paper avg 1.16], "
        f"effcc {result.geomean(EFFCC.name):.3f} [paper avg 1.25]"
    )
    return result


def _latency_sweep(
    figure: str,
    title: str,
    config_for,
    max_delay: int,
    scale: str,
    seed: int,
    workloads,
    arch,
) -> FigureResult:
    arch = arch or ArchParams()
    fabric = monaco(12, 12)
    sweep = [config_for(n) for n in range(max_delay + 1)] + [MONACO]
    result = FigureResult(figure, title, [c.name for c in sweep])
    for name in _workload_list(workloads):
        instance = make_workload(name, scale=scale, seed=seed)
        compiled = compile_cached(
            instance, fabric, arch, policy=EFFCC, seed=seed
        )
        cycles = {
            c.name: run_config(instance, compiled, c, arch).cycles
            for c in sweep
        }
        base = cycles["monaco"]
        result.raw[name] = dict(cycles)
        result.rows[name] = {k: v / base for k, v in cycles.items()}
    for config in sweep[:-1]:
        result.notes.append(
            f"geomean {config.name}/monaco = "
            f"{result.geomean(config.name):.3f}"
        )
    return result


def fig14(
    scale: str = "small", seed: int = 0, workloads=None, arch=None,
    max_delay: int = 4,
) -> FigureResult:
    """UPEA access-latency sweep, 0-4 fabric cycles, vs Monaco (Fig. 14)."""
    return _latency_sweep(
        "fig14",
        "Execution time normalized to Monaco under a UPEA latency sweep",
        upea,
        max_delay,
        scale,
        seed,
        workloads,
        arch,
    )


def fig15(
    scale: str = "small", seed: int = 0, workloads=None, arch=None,
    max_delay: int = 4,
) -> FigureResult:
    """NUMA-UPEA remote-latency sweep vs Monaco (Fig. 15)."""
    return _latency_sweep(
        "fig15",
        "Execution time normalized to Monaco under a NUMA-UPEA sweep",
        numa,
        max_delay,
        scale,
        seed,
        workloads,
        arch,
    )


def fig_jitter(
    scale: str = "small",
    seed: int = 0,
    workloads=None,
    arch=None,
    probs=(0.01, 0.05),
    delay_cycles: int = 8,
    fault_seed: int = 0,
) -> FigureResult:
    """Supplementary: NUPEA vs UPEA2 under injected memory jitter.

    Uses the deterministic fault layer (:mod:`repro.sim.faults`) to add
    ``delay_cycles`` system cycles to each memory response with
    probability ``p``, then reports each configuration's slowdown
    relative to its own clean run. The question this answers: does
    NUPEA's advantage survive a memory system with realistic latency
    noise, or is it an artifact of perfectly predictable service times?
    Every faulted run still validates its output — jitter moves
    responses in time, never corrupts them.
    """
    from dataclasses import replace

    from repro.arch.params import FaultParams

    arch = arch or ArchParams()
    fabric = monaco(12, 12)
    configs = [MONACO, upea(2)]
    columns = [f"{c.name}@p{p}" for c in configs for p in probs]
    result = FigureResult(
        "fig_jitter",
        f"Slowdown under memory-response jitter (+{delay_cycles} system "
        "cycles w.p. p), each config normalized to its own clean run",
        columns,
    )
    for name in _workload_list(workloads):
        instance = make_workload(name, scale=scale, seed=seed)
        compiled = compile_cached(
            instance, fabric, arch, policy=EFFCC, seed=seed
        )
        row, raw = {}, {}
        for config in configs:
            clean = run_config(instance, compiled, config, arch).cycles
            raw[f"{config.name}@clean"] = float(clean)
            for p in probs:
                faulted = replace(
                    arch,
                    sim=replace(
                        arch.sim,
                        faults=FaultParams(
                            seed=fault_seed,
                            mem_delay_prob=p,
                            mem_delay_cycles=delay_cycles,
                        ),
                    ),
                )
                cycles = run_config(
                    instance, compiled, config, faulted
                ).cycles
                row[f"{config.name}@p{p}"] = cycles / clean
                raw[f"{config.name}@p{p}"] = float(cycles)
        result.rows[name] = row
        result.raw[name] = raw
    for p in probs:
        nupea = result.geomean(f"monaco@p{p}")
        upea2 = result.geomean(f"upea2@p{p}")
        result.notes.append(
            f"p={p}: geomean slowdown monaco {nupea:.3f} vs "
            f"upea2 {upea2:.3f} "
            f"({'NUPEA more jitter-tolerant' if nupea <= upea2 else 'UPEA more jitter-tolerant'})"
        )
    result.notes.append(
        "faulted runs reuse the clean compile and still validate their "
        "outputs; fault draws are per-event, so results are independent "
        "of the cycle-skip setting"
    )
    return result


#: Fabric sizes and NoC track counts evaluated in Fig. 16/17.
SCALABILITY_SIZES = (8, 16, 24)
SCALABILITY_TRACKS = (2, 7)
SCALABILITY_TOPOLOGIES = (
    "monaco",
    "clustered-single",
    "clustered-double",
)


def _scalability_compiles(scale, seed, arch_tracks, sizes, topologies):
    """Compile spmspv for each (topology, size, tracks) point."""
    compiles = {}
    for tracks in arch_tracks:
        arch = ArchParams(noc_tracks=tracks)
        for size in sizes:
            for topology in topologies:
                fabric = build_fabric(topology, size, size)
                instance = make_workload("spmspv", scale=scale, seed=seed)
                try:
                    compiled = compile_cached(
                        instance, fabric, arch, policy=EFFCC, seed=seed
                    )
                except PnRError:
                    compiled = None
                compiles[(topology, size, tracks)] = (
                    instance,
                    compiled,
                    arch,
                )
    return compiles


def fig16(
    scale: str = "small",
    seed: int = 0,
    sizes=SCALABILITY_SIZES,
    tracks=SCALABILITY_TRACKS,
    topologies=SCALABILITY_TOPOLOGIES,
) -> FigureResult:
    """spmspv execution time across topologies/sizes/tracks (Fig. 16).

    Runs use each design's PnR-chosen clock divider — the mechanism by
    which congested clustered topologies lose fabric frequency.
    """
    result = FigureResult(
        "fig16",
        "spmspv execution time (system cycles) by topology and fabric size",
        [f"{s}x{s}/{t}trk" for t in tracks for s in sizes],
    )
    compiles = _scalability_compiles(scale, seed, tracks, sizes, topologies)
    for topology in topologies:
        row, raw = {}, {}
        for t in tracks:
            for size in sizes:
                instance, compiled, arch = compiles[(topology, size, t)]
                label = f"{size}x{size}/{t}trk"
                if compiled is None:
                    row[label] = float("inf")
                    raw[label] = float("inf")
                    continue
                divider = max(
                    PAPER_DIVIDER, compiled.timing.clock_divider
                )
                run = run_config(
                    instance, compiled, MONACO, arch, divider=divider
                )
                row[label] = float(run.cycles)
                raw[label] = float(run.cycles)
        result.rows[topology] = row
        result.raw[topology] = raw
    result.notes.append(
        "values are raw system cycles; paper claim: Monaco wins at 2 "
        "tracks on large fabrics, all topologies competitive at 7 tracks"
    )
    return result


def fig17(
    scale: str = "small",
    seed: int = 0,
    sizes=SCALABILITY_SIZES,
    tracks=SCALABILITY_TRACKS,
    topologies=SCALABILITY_TOPOLOGIES,
) -> FigureResult:
    """Max routed path delay from PnR, same sweep as Fig. 16 (Fig. 17)."""
    result = FigureResult(
        "fig17",
        "Maximum routed path delay (delay units) by topology and size",
        [f"{s}x{s}/{t}trk" for t in tracks for s in sizes],
    )
    compiles = _scalability_compiles(scale, seed, tracks, sizes, topologies)
    for topology in topologies:
        row = {}
        parallel = {}
        for t in tracks:
            for size in sizes:
                _, compiled, _ = compiles[(topology, size, t)]
                label = f"{size}x{size}/{t}trk"
                if compiled is None:
                    row[label] = float("inf")
                    continue
                row[label] = compiled.timing.max_path_delay_units
                parallel[label] = compiled.parallelism
        result.rows[topology] = row
        result.raw[topology] = {
            k: float(v) for k, v in parallel.items()
        }
    result.notes.append(
        "raw table holds the PnR-chosen parallelism degree per point"
    )
    return result
