"""Plain-text rendering of figure/table results."""

from __future__ import annotations

from repro.exp.figures import FigureResult


def format_figure(result: FigureResult, precision: int = 3) -> str:
    """Render a FigureResult as an aligned text table."""
    label_width = max(
        [len(r) for r in result.rows] + [len(result.figure), 8]
    )
    col_width = max([len(c) for c in result.columns] + [9]) + 2
    lines = [f"{result.figure}: {result.title}"]
    header = " " * label_width + "".join(
        c.rjust(col_width) for c in result.columns
    )
    lines.append(header)
    for name, row in result.rows.items():
        cells = []
        for column in result.columns:
            value = row.get(column)
            if value is None:
                cells.append("-".rjust(col_width))
            elif value == float("inf"):
                cells.append("unroutable".rjust(col_width))
            else:
                cells.append(f"{value:.{precision}f}".rjust(col_width))
        lines.append(name.ljust(label_width) + "".join(cells))
    geo = [
        result.geomean(c) for c in result.columns
    ]
    if len(result.rows) > 1 and any(geo):
        lines.append(
            "geomean".ljust(label_width)
            + "".join(f"{g:.{precision}f}".rjust(col_width) for g in geo)
        )
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
