"""Compile cache: PnR is deterministic, so share results across figures.

Two layers:

* an in-process dict (always on) — one compile per key per process;
* an optional on-disk pickle store — compiled kernels survive across
  benchmark invocations and are shared between the parallel harness's
  worker processes, so a (workload, fabric, policy, parallelism, seed)
  point is placed-and-routed once per machine, not once per process.

Disk entries are keyed by a digest of ``(CACHE_SCHEMA_VERSION, key)``;
bump :data:`CACHE_SCHEMA_VERSION` whenever the pickled layout of
:class:`~repro.pnr.result.CompiledKernel` (or anything it references)
changes, and stale entries are simply never looked up again. Writes are
atomic (temp file + ``os.replace``) so concurrent workers racing on the
same key at worst compile twice — never read a torn pickle.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path

from repro.pnr.result import CompiledKernel

#: Bump when the pickled CompiledKernel layout changes; old on-disk
#: entries become unreachable (different digest) instead of unpicklable.
#: v2: CompiledKernel.pnr (PnRStats), RoutingResult.nets_rerouted/wall_s.
CACHE_SCHEMA_VERSION = 2


def default_cache_dir() -> Path:
    """Where the on-disk layer lives unless told otherwise.

    ``REPRO_COMPILE_CACHE`` overrides; the fallback is a per-user cache
    directory so repeated CLI/benchmark invocations share PnR work.
    """
    env = os.environ.get("REPRO_COMPILE_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME", os.path.expanduser("~/.cache"))
    return Path(xdg) / "repro-nupea" / "compiled"


class CompileCache:
    """Memoizes compiled kernels by an explicit configuration key."""

    def __init__(self, disk_dir: str | os.PathLike | None = None):
        self._store: dict[tuple, CompiledKernel] = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_dir: Path | None = Path(disk_dir) if disk_dir else None

    # -- disk layer --------------------------------------------------------

    def enable_disk(self, path: str | os.PathLike | None = None) -> Path:
        """Turn on the persistent layer (idempotent); returns its dir."""
        self.disk_dir = Path(path) if path else default_cache_dir()
        return self.disk_dir

    def disable_disk(self) -> None:
        self.disk_dir = None

    def _path_for(self, key: tuple) -> Path:
        payload = repr((CACHE_SCHEMA_VERSION, key)).encode()
        digest = hashlib.sha256(payload).hexdigest()
        return self.disk_dir / f"{digest}.pkl"

    def _disk_load(self, key: tuple) -> CompiledKernel | None:
        path = self._path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            compiled = pickle.loads(blob)
        except Exception:
            # Torn/stale entry: drop it and recompile.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            os.utime(path)  # refresh LRU timestamp for prune()
        except OSError:
            pass
        return compiled

    def _disk_store(self, key: tuple, compiled: CompiledKernel) -> None:
        self.disk_dir.mkdir(parents=True, exist_ok=True)
        path = self._path_for(key)
        fd, tmp = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(compiled, handle, pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- lookup ------------------------------------------------------------

    def get_or_compile(self, key: tuple, thunk) -> CompiledKernel:
        if key in self._store:
            self.hits += 1
            return self._store[key]
        if self.disk_dir is not None:
            compiled = self._disk_load(key)
            if compiled is not None:
                self.disk_hits += 1
                self._store[key] = compiled
                return compiled
        self.misses += 1
        compiled = thunk()
        self._store[key] = compiled
        if self.disk_dir is not None:
            self._disk_store(key, compiled)
        return compiled

    def clear(self) -> None:
        """Drop the in-memory layer and counters (disk entries remain)."""
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    # -- maintenance (``repro cache`` CLI) ---------------------------------

    def _disk_entries(self) -> list[Path]:
        """The ``.pkl`` entries currently on disk (empty when disk off)."""
        if self.disk_dir is None or not self.disk_dir.is_dir():
            return []
        return sorted(self.disk_dir.glob("*.pkl"))

    def info(self) -> dict:
        """Inventory of both layers, JSON-friendly."""
        entries = self._disk_entries()
        sizes = []
        for path in entries:
            try:
                sizes.append(path.stat().st_size)
            except OSError:
                continue
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "memory_entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "disk_dir": str(self.disk_dir) if self.disk_dir else None,
            "disk_entries": len(sizes),
            "disk_bytes": sum(sizes),
        }

    def clear_disk(self) -> int:
        """Delete every on-disk entry (and stray temp files); returns count
        of entries removed. The in-memory layer is cleared too, so a
        cleared cache cannot resurrect entries by writing them back."""
        removed = 0
        for path in self._disk_entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.sweep_stale_tmp(max_age_s=0.0)
        self.clear()
        return removed

    def prune(self, max_bytes: int) -> int:
        """Evict least-recently-used disk entries until the store fits in
        ``max_bytes``. LRU order comes from ``st_mtime`` — ``os.replace``
        sets it on write, and :meth:`_disk_load` refreshes it on hit via
        ``os.utime``, so untouched entries age out first. Returns the
        number of entries evicted."""
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        stamped = []
        total = 0
        for path in self._disk_entries():
            try:
                st = path.stat()
            except OSError:
                continue
            stamped.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        stamped.sort()  # oldest first
        evicted = 0
        for _, size, path in stamped:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        return evicted

    def sweep_stale_tmp(self, max_age_s: float = 3600.0) -> int:
        """Remove ``.tmp`` droppings older than ``max_age_s``.

        A worker killed mid-:meth:`_disk_store` (OOM, SIGKILL, power
        loss) leaks its ``mkstemp`` file: the ``os.replace`` never runs
        and the exception handler never fires. Entries are written in one
        go, so any ``.tmp`` older than the grace period is garbage — a
        *live* write's temp file is at most seconds old. Returns the
        number of files removed."""
        if self.disk_dir is None or not self.disk_dir.is_dir():
            return 0
        cutoff = time.time() - max_age_s
        removed = 0
        for path in self.disk_dir.glob("*.tmp"):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                continue
        return removed


#: Process-wide cache used by the experiment harness and benchmarks.
GLOBAL_CACHE = CompileCache()
