"""Compile cache: PnR is deterministic, so share results across figures."""

from __future__ import annotations

from repro.pnr.result import CompiledKernel


class CompileCache:
    """Memoizes compiled kernels by an explicit configuration key."""

    def __init__(self):
        self._store: dict[tuple, CompiledKernel] = {}
        self.hits = 0
        self.misses = 0

    def get_or_compile(self, key: tuple, thunk) -> CompiledKernel:
        if key in self._store:
            self.hits += 1
            return self._store[key]
        self.misses += 1
        compiled = thunk()
        self._store[key] = compiled
        return compiled

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0


#: Process-wide cache used by the experiment harness and benchmarks.
GLOBAL_CACHE = CompileCache()
