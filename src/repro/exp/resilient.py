"""Resilient sweep supervision: retry, timeout, skip, resume.

The paper's evaluation (Sec. 6) is a large (workload x config x seed)
sweep. Before this module, one raising job — a
:class:`~repro.errors.DeadlockError`, a routing failure on a tight
fabric, a reference-check mismatch, a killed worker — aborted the whole
sweep at ``future.result()`` and left a truncated manifest. The
supervisor here gives the harness the fault model of a real job
scheduler:

* every job runs under a :class:`SweepPolicy` — per-job wall-clock
  timeout (delivered *inside* the job via ``SIGALRM``, so it measures
  execution, not queueing), bounded retries with exponential backoff,
  and an ``on_failure`` disposition (``abort`` preserves the historical
  fail-fast behavior and stays the default);
* failures are caught per job — including worker-process death, which
  surfaces as ``BrokenProcessPool`` — classified against the repro
  exception hierarchy (:func:`classify_failure`), and surfaced as typed
  :class:`FailureRecord` s; the sweep returns every healthy point plus
  the failure records instead of crashing;
* place-and-route failures retry under a *perturbed placement seed*
  (``seed + PNR_SEED_STRIDE * attempt`` — deterministic, journaled into
  the manifest as ``pnr_seed``, so a retried result stays exactly
  reproducible) while the workload's *input* seed never changes;
* completed points are journaled to the JSONL manifest
  (:mod:`repro.obs.manifest`) and :func:`run_resilient` with
  ``resume=True`` skips any point whose validated journal entry already
  succeeded — a crash halfway through an overnight sweep costs only the
  unfinished points.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.arch.params import ArchParams
from repro.core.policy import EFFCC, PlacementPolicy
from repro.errors import (
    DeadlockError,
    ExperimentError,
    JobTimeout,
    PlacementError,
    PnRError,
    ReproError,
    RoutingError,
    SimulationError,
    SimulationPreempted,
    ValidationError,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    append_manifest,
    build_manifest,
    completed_points,
    config_digest,
    git_rev,
    point_fields,
)

#: Stride between perturbed placement seeds on PnR retry. A large prime
#: keeps retried seeds far from every input seed a sweep plausibly uses,
#: so a perturbed compile can never collide with a sibling point's cache
#: key.
PNR_SEED_STRIDE = 7919

#: Failure kinds whose retry may consult a perturbed placement seed.
PNR_KINDS = ("routing", "placement", "pnr")

#: Kinds that are deterministic properties of the point itself — the
#: same inputs will fail the same way, so retrying burns time for
#: nothing. (Deadlock and wrong answers are *bugs*, not bad luck.)
DETERMINISTIC_KINDS = ("validation", "deadlock", "simulation")


def classify_failure(exc: BaseException) -> str:
    """Map an exception to the supervisor's failure taxonomy."""
    if isinstance(exc, SimulationPreempted):
        # Deliberately NOT a SimulationError: a preempted job is
        # retryable (it left a snapshot), never a deterministic bug.
        return exc.kind
    if isinstance(exc, JobTimeout):
        return "timeout"
    if isinstance(exc, ValidationError):
        return "validation"
    if isinstance(exc, DeadlockError):
        return "deadlock"
    if isinstance(exc, RoutingError):
        return "routing"
    if isinstance(exc, PlacementError):
        return "placement"
    if isinstance(exc, PnRError):
        return "pnr"
    if isinstance(exc, SimulationError):
        return "simulation"
    if isinstance(exc, BrokenProcessPool):
        return "worker-death"
    if isinstance(exc, ReproError):
        return "repro"
    return "infrastructure"


def call_with_timeout(timeout_s, thunk, label: str = "", watchdog=None,
                      grace_s: float = 5.0):
    """Run ``thunk`` under a wall-clock budget; raise :class:`JobTimeout`.

    Uses ``SIGALRM``/``setitimer``, so it interrupts pure-Python
    simulation loops mid-flight and measures actual execution (it runs
    in the worker's main thread, after the job was dequeued). On
    platforms without ``SIGALRM`` — or off the main thread — the budget
    is silently not enforced.

    ``watchdog`` (a :class:`repro.sim.snapshot.Watchdog`) switches
    expiry to a two-stage graceful kill: the first alarm only *requests*
    cooperative preemption — the simulator snapshots its state and
    raises :class:`~repro.errors.SimulationPreempted` at the next cycle
    boundary — and the timer is re-armed for ``grace_s``; only if the
    job is still running when the grace period expires (hung outside
    the engine loop) does the hard :class:`JobTimeout` fire.
    """
    if not timeout_s:
        return thunk()
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return thunk()

    graced = False

    def _alarm(signum, frame):
        nonlocal graced
        if watchdog is not None and not graced:
            graced = True
            watchdog.request(
                f"job {label or '<anonymous>'} exceeded {timeout_s}s",
                kind="timeout",
            )
            signal.setitimer(signal.ITIMER_REAL, max(grace_s, 0.001))
            return
        raise JobTimeout(f"job {label or '<anonymous>'} exceeded {timeout_s}s")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return thunk()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@dataclass(frozen=True)
class SweepPolicy:
    """How the supervisor treats one job's lifecycle.

    ``on_failure``:

    * ``"abort"`` — re-raise the first failure (historical behavior;
      the default, so unsupervised callers see no change);
    * ``"skip"`` — record a :class:`FailureRecord` and move on;
    * ``"retry"`` — retry kinds in ``retryable_kinds`` up to
      ``max_retries`` times (PnR kinds under a perturbed placement
      seed), then degrade to skip.
    """

    #: Per-job wall-clock budget in seconds (None = unlimited).
    job_timeout_s: float | None = None
    max_retries: int = 2
    #: Base backoff; attempt ``n`` sleeps ``backoff_s * 2**(n-1)``.
    backoff_s: float = 0.0
    on_failure: str = "abort"
    retryable_kinds: tuple[str, ...] = (
        "routing",
        "placement",
        "pnr",
        "timeout",
        "worker-death",
        "preempted",
    )
    #: Periodic snapshot cadence in system cycles, per job (0 = only on
    #: preemption). Effective only when the sweep runs with a
    #: ``snapshot_dir``.
    checkpoint_every: int = 0
    #: Cycles each *attempt* may execute before snapshotting and yielding
    #: (None = unlimited). Counts per process, so a resumed attempt
    #: always advances past its predecessor.
    job_cycle_budget: int | None = None
    #: Seconds a timed-out job gets to snapshot cooperatively before the
    #: hard :class:`~repro.errors.JobTimeout` fires.
    grace_s: float = 5.0

    def __post_init__(self):
        if self.on_failure not in ("abort", "skip", "retry"):
            raise ExperimentError(
                f"on_failure must be abort|skip|retry, got {self.on_failure!r}"
            )
        if self.max_retries < 0:
            raise ExperimentError("max_retries must be >= 0")
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise ExperimentError("job_timeout_s must be positive")
        if self.checkpoint_every < 0:
            raise ExperimentError("checkpoint_every must be >= 0")
        if self.job_cycle_budget is not None and self.job_cycle_budget < 0:
            raise ExperimentError("job_cycle_budget must be >= 0")
        if self.grace_s <= 0:
            raise ExperimentError("grace_s must be positive")

    def wants_retry(self, kind: str, attempts: int) -> bool:
        return (
            self.on_failure == "retry"
            and kind in self.retryable_kinds
            and attempts <= self.max_retries
        )


#: Fail-fast policy: exactly the pre-supervisor sweep semantics.
ABORT = SweepPolicy(on_failure="abort")


@dataclass
class FailureRecord:
    """One sweep point that did not produce a result."""

    workload: str
    config: str
    seed: int
    #: Taxonomy bucket from :func:`classify_failure`.
    kind: str
    message: str
    #: Total attempts made (1 = failed first try, no retries granted).
    attempts: int = 1
    #: Perturbed placement seeds tried on PnR retries (reproducibility).
    pnr_seeds: tuple[int, ...] = ()
    #: Pre-run identity digest (matches the resume journal).
    point_digest: str = ""

    def describe(self) -> str:
        extra = (
            f" after {self.attempts} attempts" if self.attempts > 1 else ""
        )
        return (
            f"{self.workload}/{self.config}/seed{self.seed}: "
            f"[{self.kind}]{extra} {self.message.splitlines()[0]}"
        )

    def to_manifest(
        self,
        *,
        scale: str,
        divider: int,
        fabric_spec=None,
        policy: str | None = None,
        faults: str | None = None,
        profile: str | None = None,
    ) -> dict:
        """A ``status: failed`` journal record for this failure."""
        identity = point_fields(
            workload=self.workload,
            config=self.config,
            scale=scale,
            seed=self.seed,
            divider=divider,
            fabric=fabric_spec,
            policy=policy,
            faults=faults,
            profile=profile,
        )
        return {
            "schema": MANIFEST_SCHEMA,
            "status": "failed",
            "point_digest": config_digest(identity),
            **identity,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
            "pnr_seeds": list(self.pnr_seeds),
            "git_rev": git_rev(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        }


@dataclass
class SweepOutcome:
    """What a supervised sweep produced.

    ``results`` holds every healthy point, ``failures`` a typed record
    per point that exhausted its policy, ``skipped`` the keys resumed
    from the journal (already complete, not rerun).
    """

    results: dict = field(default_factory=dict)
    failures: list[FailureRecord] = field(default_factory=list)
    skipped: list[tuple[str, str, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        parts = [f"{len(self.results)} ok"]
        if self.skipped:
            parts.append(f"{len(self.skipped)} resumed")
        if self.failures:
            parts.append(f"{len(self.failures)} failed")
        return ", ".join(parts)


@dataclass
class _Job:
    """Mutable supervision state for one sweep point."""

    name: str
    config: object  # MachineConfig
    seed: int
    attempts: int = 0
    pnr_seed: int | None = None
    pnr_seeds: list[int] = field(default_factory=list)

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.name, self.config.name, self.seed)


def run_resilient(
    workloads: list[str],
    configs: list,
    scale: str = "small",
    seeds: tuple[int, ...] = (0,),
    arch: ArchParams | None = None,
    policy: PlacementPolicy = EFFCC,
    divider: int | None = None,
    fabric_spec=None,
    max_workers: int | None = None,
    cache_dir=None,
    manifest_path=None,
    sweep_policy: SweepPolicy | None = None,
    resume: bool = False,
    snapshot_dir=None,
    job_fn=None,
    profile_guided: bool = False,
) -> SweepOutcome:
    """Supervised (workload x config x seed) sweep.

    Mirrors :func:`repro.exp.runner.run_parallel` (which delegates here)
    but returns a :class:`SweepOutcome` of ``(results, failures,
    skipped)`` instead of raising on the first bad point. With the
    default :data:`ABORT` policy the behavior — results, manifest
    records, raised exception — is bit-identical to the historical
    fail-fast sweep.

    ``resume=True`` requires ``manifest_path`` and skips every point the
    journal proves complete (see
    :func:`repro.obs.manifest.completed_points` for the digest
    validation that keeps a stale journal from poisoning the run).

    ``snapshot_dir`` arms mid-simulation checkpointing
    (:mod:`repro.sim.snapshot`): each job periodically snapshots to
    ``<snapshot_dir>/<point_digest>.snap`` per the policy's
    ``checkpoint_every``/``job_cycle_budget``, a timed-out or SIGTERMed
    job snapshots during its grace period instead of dying cold, and a
    retried (or ``resume=True``-rerun) point *continues from its last
    valid snapshot* rather than from cycle 0. Torn or configuration-
    mismatched snapshots are detected, discarded and the point restarts
    fresh — never wedging the retry loop.

    ``job_fn`` is a test seam: a picklable callable with
    :func:`repro.exp.runner._run_sweep_job`'s signature.

    ``profile_guided`` compiles every point with profile-refined
    criticality (the profiling input is each point's own instance); the
    journal identity gains a ``profile: "guided"`` marker, so profiled
    and static sweeps can never resume from each other's journals.
    """
    from repro.exp.runner import (
        DEFAULT_FABRIC_SPEC,
        PAPER_DIVIDER,
        _fault_signature,
        _run_sweep_job,
    )

    arch = arch or ArchParams()
    divider = divider if divider is not None else PAPER_DIVIDER
    fabric_spec = fabric_spec or DEFAULT_FABRIC_SPEC
    sweep_policy = sweep_policy or ABORT
    job_fn = job_fn or _run_sweep_job
    cache_str = str(cache_dir) if cache_dir is not None else None
    faults_sig = _fault_signature(arch)
    profile_sig = "guided" if profile_guided else None
    snapshot_str = str(snapshot_dir) if snapshot_dir is not None else None
    if snapshot_str is not None:
        os.makedirs(snapshot_str, exist_ok=True)

    jobs = [
        _Job(name, config, seed)
        for name in workloads
        for config in configs
        for seed in seeds
    ]

    def digest_of(job: _Job) -> str:
        return config_digest(
            point_fields(
                workload=job.name,
                config=job.config.name,
                scale=scale,
                seed=job.seed,
                divider=divider,
                fabric=fabric_spec,
                policy=policy.name,
                faults=faults_sig,
                profile=profile_sig,
            )
        )

    outcome = SweepOutcome()
    if resume:
        if manifest_path is None:
            raise ExperimentError("resume requires a manifest path")
        done = completed_points(manifest_path)
        remaining = []
        for job in jobs:
            if digest_of(job) in done:
                outcome.skipped.append(job.key)
            else:
                remaining.append(job)
        jobs = remaining

    def job_args(job: _Job) -> tuple:
        args = [
            job.name,
            job.config,
            scale,
            job.seed,
            arch,
            divider,
            policy.name,
            fabric_spec,
            cache_str,
            job.pnr_seed,
            sweep_policy.job_timeout_s,
        ]
        if snapshot_str is not None:
            # Appended only when snapshotting is armed, so job_fn doubles
            # with the historical 11-argument signature keep working.
            args.append(
                {
                    "dir": snapshot_str,
                    "every": sweep_policy.checkpoint_every,
                    "cycle_budget": sweep_policy.job_cycle_budget,
                    "grace_s": sweep_policy.grace_s,
                    "journal": (
                        str(manifest_path)
                        if manifest_path is not None
                        else None
                    ),
                }
            )
        elif profile_guided:
            # Placeholder so profile_guided lands in its own slot; like
            # the snapshot dict, trailing args appear only when the
            # feature is on, keeping historical job_fn doubles working.
            args.append(None)
        if profile_guided:
            args.append(True)
        return tuple(args)

    def emit_success(job: _Job, run) -> None:
        outcome.results[job.key] = run
        if manifest_path is not None:
            append_manifest(
                manifest_path,
                build_manifest(
                    run,
                    scale=scale,
                    seed=job.seed,
                    divider=divider,
                    fabric_spec=fabric_spec,
                    policy=policy.name,
                    faults=faults_sig,
                    profile=profile_sig,
                ),
            )

    def handle_failure(job: _Job, exc: BaseException, pending) -> None:
        kind = classify_failure(exc)
        job.attempts += 1
        if sweep_policy.on_failure == "abort":
            raise exc
        if sweep_policy.wants_retry(kind, job.attempts):
            if kind in PNR_KINDS:
                job.pnr_seed = job.seed + PNR_SEED_STRIDE * job.attempts
                job.pnr_seeds.append(job.pnr_seed)
            if sweep_policy.backoff_s:
                time.sleep(
                    sweep_policy.backoff_s * (2 ** (job.attempts - 1))
                )
            pending.append(job)
            return
        failure = FailureRecord(
            workload=job.name,
            config=job.config.name,
            seed=job.seed,
            kind=kind,
            message=str(exc),
            attempts=job.attempts,
            pnr_seeds=tuple(job.pnr_seeds),
            point_digest=digest_of(job),
        )
        outcome.failures.append(failure)
        if manifest_path is not None:
            append_manifest(
                manifest_path,
                failure.to_manifest(
                    scale=scale,
                    divider=divider,
                    fabric_spec=fabric_spec,
                    policy=policy.name,
                    faults=faults_sig,
                    profile=profile_sig,
                ),
            )

    pending: deque[_Job] = deque(jobs)
    if max_workers is not None and max_workers <= 1:
        # In-process twin of the pool path — same supervision, no fork.
        while pending:
            job = pending.popleft()
            try:
                run = job_fn(*job_args(job))
            except Exception as exc:
                handle_failure(job, exc, pending)
            else:
                emit_success(job, run)
        return outcome

    while pending:
        batch = list(pending)
        pending.clear()
        # One pool per retry round: a BrokenProcessPool poisons every
        # outstanding future, so the round collects what it can, the
        # survivors are requeued, and the next round gets fresh workers.
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            submitted: list[tuple[_Job, object]] = []
            for job in batch:
                try:
                    submitted.append((job, pool.submit(job_fn, *job_args(job))))
                except BrokenProcessPool as exc:
                    handle_failure(job, exc, pending)
            # Collect in submission order so manifests stay in job order
            # (the serial/parallel manifest-equivalence contract).
            for job, future in submitted:
                try:
                    run = future.result()
                except Exception as exc:
                    handle_failure(job, exc, pending)
                else:
                    emit_success(job, run)
    return outcome
