"""Run (workload, machine config) pairs and collect cycle counts.

Every simulated run is validated against the workload's reference output
— a performance number from a run that computed the wrong answer would be
meaningless.

:func:`run_parallel` fans a (workload x config x seed) sweep out over a
``ProcessPoolExecutor``; simulation and PnR are deterministic, so the
parallel sweep is bit-identical to the serial one, and an on-disk compile
cache (see :mod:`repro.exp.cache`) shares PnR results between workers.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.arch.fabric import Fabric, build_fabric, monaco
from repro.arch.params import ArchParams
from repro.core.policy import EFFCC, PlacementPolicy, get_policy
from repro.exp.cache import GLOBAL_CACHE
from repro.exp.configs import MachineConfig
from repro.obs.manifest import append_manifest, build_manifest
from repro.pnr.flow import compile_kernel
from repro.pnr.result import CompiledKernel
from repro.sim.engine import simulate
from repro.sim.stats import SimStats
from repro.workloads.base import WorkloadInstance
from repro.workloads.registry import make_workload

#: The paper's evaluated fabric clock divider (Sec. 6).
PAPER_DIVIDER = 2

#: (topology, rows, cols) triple — picklable stand-in for a Fabric when
#: shipping jobs to worker processes.
FabricSpec = tuple[str, int, int]

DEFAULT_FABRIC_SPEC: FabricSpec = ("monaco", 12, 12)


@dataclass
class RunResult:
    workload: str
    config: str
    cycles: int
    stats: SimStats
    parallelism: int
    #: Wall-clock seconds the timed simulation took (excluded from
    #: equality — two bit-identical runs never take identical time).
    wall_time: float = field(default=0.0, compare=False)
    #: Observability bus of the run (tracing on only), for profiling.
    obs: object = field(default=None, compare=False, repr=False)


def compile_cached(
    instance: WorkloadInstance,
    fabric: Fabric,
    arch: ArchParams,
    policy: PlacementPolicy = EFFCC,
    parallelism: int | None = None,
    seed: int = 0,
) -> CompiledKernel:
    """Compile with the shared cache (PnR is deterministic given the key)."""
    key = (
        instance.name,
        instance.meta.get("table1"),
        fabric.name,
        arch.noc_tracks,
        policy.name,
        parallelism,
        seed,
    )
    return GLOBAL_CACHE.get_or_compile(
        key,
        lambda: compile_kernel(
            instance.kernel,
            fabric,
            arch,
            policy=policy,
            parallelism=parallelism,
            seed=seed,
        ),
    )


def run_config(
    instance: WorkloadInstance,
    compiled: CompiledKernel,
    config: MachineConfig,
    arch: ArchParams,
    divider: int = PAPER_DIVIDER,
    obs=None,
) -> RunResult:
    """Simulate one (compiled workload, machine config) pair and validate."""
    start = time.perf_counter()
    result = simulate(
        compiled,
        instance.params,
        instance.arrays,
        arch,
        frontend_factory=config.frontend_factory(divider),
        divider=divider,
        obs=obs,
    )
    wall = time.perf_counter() - start
    instance.check(result.memory)
    return RunResult(
        workload=instance.name,
        config=config.name,
        cycles=result.stats.system_cycles,
        stats=result.stats,
        parallelism=compiled.parallelism,
        wall_time=wall,
        obs=result.obs,
    )


def run_workload_on_configs(
    name: str,
    configs: list[MachineConfig],
    scale: str = "small",
    seed: int = 0,
    arch: ArchParams | None = None,
    fabric: Fabric | None = None,
    policy: PlacementPolicy = EFFCC,
    divider: int = PAPER_DIVIDER,
    manifest_path: str | os.PathLike | None = None,
) -> dict[str, RunResult]:
    """Compile once, then simulate under each interconnect config.

    ``manifest_path`` appends one JSONL record per config (the serial
    twin of :func:`run_parallel`'s manifest emission).
    """
    arch = arch or ArchParams()
    fabric = fabric or monaco(12, 12)
    instance = make_workload(name, scale=scale, seed=seed)
    compiled = compile_cached(instance, fabric, arch, policy=policy, seed=seed)
    results: dict[str, RunResult] = {}
    for config in configs:
        run = run_config(instance, compiled, config, arch, divider)
        results[config.name] = run
        if manifest_path is not None:
            append_manifest(
                manifest_path,
                build_manifest(
                    run,
                    scale=scale,
                    seed=seed,
                    divider=divider,
                    fabric_spec=(fabric.name, fabric.rows, fabric.cols),
                    policy=policy.name,
                ),
            )
    return results


# -- parallel sweep ---------------------------------------------------------


def _run_sweep_job(
    name: str,
    config: MachineConfig,
    scale: str,
    seed: int,
    arch: ArchParams,
    divider: int,
    policy_name: str,
    fabric_spec: FabricSpec,
    cache_dir: str | None,
) -> RunResult:
    """One (workload, config, seed) point; runs inside a worker process."""
    if cache_dir is not None and GLOBAL_CACHE.disk_dir is None:
        GLOBAL_CACHE.enable_disk(cache_dir)
    policy = get_policy(policy_name)
    fabric = build_fabric(*fabric_spec)
    instance = make_workload(name, scale=scale, seed=seed)
    compiled = compile_cached(instance, fabric, arch, policy=policy, seed=seed)
    return run_config(instance, compiled, config, arch, divider)


def run_parallel(
    workloads: list[str],
    configs: list[MachineConfig],
    scale: str = "small",
    seeds: tuple[int, ...] = (0,),
    arch: ArchParams | None = None,
    policy: PlacementPolicy = EFFCC,
    divider: int = PAPER_DIVIDER,
    fabric_spec: FabricSpec = DEFAULT_FABRIC_SPEC,
    max_workers: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    manifest_path: str | os.PathLike | None = None,
) -> dict[tuple[str, str, int], RunResult]:
    """Fan (workload x config x seed) out over worker processes.

    Returns ``{(workload, config_name, seed): RunResult}``. Results are
    bit-identical to running each point serially: compilation and
    simulation are deterministic, and every job recompiles (or loads from
    the shared on-disk cache) its own kernel, so no cross-job state leaks.

    ``max_workers <= 1`` runs in-process — same code path minus the pool,
    which keeps the serial-vs-parallel equivalence testable without fork
    overhead. ``cache_dir`` points workers at a shared persistent compile
    cache so each distinct PnR key is placed-and-routed once per machine.

    ``manifest_path`` appends one JSONL record per run (see
    :mod:`repro.obs.manifest`). Records are written by the parent in job
    order, so serial and parallel sweeps produce identical manifests up
    to the volatile ``wall_time_s``/``timestamp`` fields.
    """
    arch = arch or ArchParams()
    cache_str = str(cache_dir) if cache_dir is not None else None
    jobs = [
        (name, config, seed)
        for name in workloads
        for config in configs
        for seed in seeds
    ]

    def emit(run: RunResult, seed: int) -> None:
        if manifest_path is None:
            return
        append_manifest(
            manifest_path,
            build_manifest(
                run,
                scale=scale,
                seed=seed,
                divider=divider,
                fabric_spec=fabric_spec,
                policy=policy.name,
            ),
        )

    results: dict[tuple[str, str, int], RunResult] = {}
    if max_workers is not None and max_workers <= 1:
        for name, config, seed in jobs:
            run = _run_sweep_job(
                name, config, scale, seed, arch, divider,
                policy.name, fabric_spec, cache_str,
            )
            results[(name, config.name, seed)] = run
            emit(run, seed)
        return results
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = {
            (name, config.name, seed): pool.submit(
                _run_sweep_job,
                name, config, scale, seed, arch, divider,
                policy.name, fabric_spec, cache_str,
            )
            for name, config, seed in jobs
        }
        for key, future in futures.items():
            results[key] = future.result()
            emit(results[key], key[2])
    return results
