"""Run (workload, machine config) pairs and collect cycle counts.

Every simulated run is validated against the workload's reference output
— a performance number from a run that computed the wrong answer would be
meaningless.

:func:`run_parallel` fans a (workload x config x seed) sweep out over a
``ProcessPoolExecutor``; simulation and PnR are deterministic, so the
parallel sweep is bit-identical to the serial one, and an on-disk compile
cache (see :mod:`repro.exp.cache`) shares PnR results between workers.

Both :func:`run_parallel` and :func:`run_workload_on_configs` run their
jobs under the resilient sweep supervisor (:mod:`repro.exp.resilient`):
pass a :class:`~repro.exp.resilient.SweepPolicy` to get per-job
timeouts, retries with deterministic placement-seed perturbation, and
typed failure records instead of a crashed sweep. The default policy is
fail-fast ``abort`` — exactly the historical behavior.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.arch.fabric import Fabric, build_fabric, monaco
from repro.arch.params import ArchParams
from repro.core.policy import EFFCC, PlacementPolicy, get_policy
from repro.exp.cache import GLOBAL_CACHE
from repro.exp.configs import MachineConfig
from repro.obs.manifest import append_manifest, build_manifest
from repro.pnr.flow import compile_kernel
from repro.pnr.result import CompiledKernel
from repro.sim.engine import simulate
from repro.sim.stats import SimStats
from repro.workloads.base import WorkloadInstance
from repro.workloads.registry import make_workload

#: The paper's evaluated fabric clock divider (Sec. 6).
PAPER_DIVIDER = 2

#: (topology, rows, cols) triple — picklable stand-in for a Fabric when
#: shipping jobs to worker processes.
FabricSpec = tuple[str, int, int]

DEFAULT_FABRIC_SPEC: FabricSpec = ("monaco", 12, 12)


def _fault_signature(arch: ArchParams) -> str | None:
    """Stable fault-model signature for manifest/journal records."""
    faults = arch.sim.faults
    if faults is None or not faults.active():
        return None
    return faults.signature()


@dataclass
class RunResult:
    workload: str
    config: str
    cycles: int
    stats: SimStats
    parallelism: int
    #: Wall-clock seconds the timed simulation took (excluded from
    #: equality — two bit-identical runs never take identical time).
    wall_time: float = field(default=0.0, compare=False)
    #: Observability bus of the run (tracing on only), for profiling.
    obs: object = field(default=None, compare=False, repr=False)
    #: Placement seed the supervisor actually compiled with when a PnR
    #: retry perturbed it (None = the point's own seed). Journaled so
    #: retried results stay reproducible; excluded from equality so a
    #: retried run still compares equal to a direct run of that seed.
    pnr_seed: int | None = field(default=None, compare=False)
    #: Compile-time telemetry (:class:`repro.pnr.result.PnRStats`) of the
    #: kernel this run simulated. Wall-clock data, so excluded from
    #: equality like ``wall_time``; None when the compile predates the
    #: stats (old cache entries).
    pnr: object = field(default=None, compare=False, repr=False)
    #: ``{"from_cycle", "executed_before", "snapshot", "restore_wall_s"}``
    #: when this run continued from a mid-simulation snapshot (see
    #: :mod:`repro.sim.snapshot`); None for fresh runs. Excluded from
    #: equality — a resumed run is bit-identical to an uninterrupted one.
    resume_info: dict | None = field(default=None, compare=False)
    #: Checkpointer write telemetry, or None when checkpointing was off.
    #: Wall-clock data, excluded from equality like ``wall_time``.
    snapshot_stats: dict | None = field(
        default=None, compare=False, repr=False
    )
    #: :meth:`repro.core.profile.ProfileReport.to_dict` of the compile's
    #: profile-guided refinement pass, or None for static compiles.
    #: Deterministic, but excluded from equality so a profiled run still
    #: compares against hand-built expectations on cycles/stats.
    profile: dict | None = field(default=None, compare=False, repr=False)


def weight_map_digest(node_weights: dict[int, float]) -> str:
    """Stable 16-hex digest of a per-node weight override map."""
    import hashlib
    import json

    payload = json.dumps(
        {str(int(n)): float(w) for n, w in node_weights.items()},
        sort_keys=True,
    ).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def compile_cached(
    instance: WorkloadInstance,
    fabric: Fabric,
    arch: ArchParams,
    policy: PlacementPolicy = EFFCC,
    parallelism: int | None = None,
    seed: int = 0,
    incremental: bool = True,
    portfolio_jobs: int = 1,
    profile_guided: bool = False,
    node_weights: dict[int, float] | None = None,
) -> CompiledKernel:
    """Compile with the shared cache (PnR is deterministic given the key).

    ``incremental`` and ``portfolio_jobs`` only change *how fast* the
    same artifact is produced (bit-identical outputs, see
    :mod:`repro.pnr.flow`), so they are deliberately not part of the
    cache key.

    ``profile_guided`` refines class-B/C criticality by a profiling run
    on the instance's own inputs; ``node_weights`` overrides per-node
    placement weights outright (:mod:`repro.exp.fdo`). Both change the
    compiled artifact, so both extend the cache key — a profile-guided
    or weight-overridden compile can never alias the static entry (and
    vice versa: the base key is unchanged when neither is set, so every
    pre-existing cache entry and pinned digest stays reachable).
    """
    key = (
        instance.name,
        instance.meta.get("table1"),
        fabric.name,
        arch.noc_tracks,
        policy.name,
        parallelism,
        seed,
    )
    if profile_guided:
        # The profiling inputs ARE the instance (name/table1/seed are
        # already in the key); the marker separates refined artifacts
        # from static ones.
        key = key + ("profile-guided",)
    if node_weights:
        key = key + ("node-weights", weight_map_digest(node_weights))
    profile = (instance.params, instance.arrays) if profile_guided else None
    return GLOBAL_CACHE.get_or_compile(
        key,
        lambda: compile_kernel(
            instance.kernel,
            fabric,
            arch,
            policy=policy,
            parallelism=parallelism,
            seed=seed,
            incremental=incremental,
            portfolio_jobs=portfolio_jobs,
            profile=profile,
            node_weights=node_weights,
        ),
    )


def run_config(
    instance: WorkloadInstance,
    compiled: CompiledKernel,
    config: MachineConfig,
    arch: ArchParams,
    divider: int = PAPER_DIVIDER,
    obs=None,
    checkpoint=None,
    resume_from=None,
    resume_policy: str = "strict",
) -> RunResult:
    """Simulate one (compiled workload, machine config) pair and validate.

    ``checkpoint``/``resume_from``/``resume_policy`` pass through to
    :func:`repro.sim.engine.simulate` (see :mod:`repro.sim.snapshot`).
    """
    start = time.perf_counter()
    result = simulate(
        compiled,
        instance.params,
        instance.arrays,
        arch,
        frontend_factory=config.frontend_factory(divider),
        divider=divider,
        obs=obs,
        checkpoint=checkpoint,
        resume_from=resume_from,
        resume_policy=resume_policy,
    )
    wall = time.perf_counter() - start
    instance.check(result.memory)
    return RunResult(
        workload=instance.name,
        config=config.name,
        cycles=result.stats.system_cycles,
        stats=result.stats,
        parallelism=compiled.parallelism,
        wall_time=wall,
        obs=result.obs,
        pnr=compiled.pnr,
        resume_info=result.resume_info,
        snapshot_stats=result.snapshot_stats,
    )


def run_workload_on_configs(
    name: str,
    configs: list[MachineConfig],
    scale: str = "small",
    seed: int = 0,
    arch: ArchParams | None = None,
    fabric: Fabric | None = None,
    policy: PlacementPolicy = EFFCC,
    divider: int = PAPER_DIVIDER,
    manifest_path: str | os.PathLike | None = None,
    sweep_policy=None,
    failures: list | None = None,
    profile_guided: bool = False,
) -> dict[str, RunResult]:
    """Compile once, then simulate under each interconnect config.

    ``manifest_path`` appends one JSONL record per config (the serial
    twin of :func:`run_parallel`'s manifest emission).

    ``sweep_policy`` (a :class:`repro.exp.resilient.SweepPolicy`) puts
    each config's run under supervision: with ``on_failure`` other than
    ``"abort"``, failing configs are recorded as
    :class:`~repro.exp.resilient.FailureRecord` s (appended to the
    ``failures`` list when given, and journaled to the manifest) while
    the healthy configs still return.

    ``profile_guided`` refines criticality classes by a profiling run on
    the instance's own inputs before placement (see
    :mod:`repro.core.profile`); the manifest identity gains a
    ``profile: "guided"`` marker and each record carries the
    refinement's ``profile_report``.
    """
    from repro.exp.resilient import (
        ABORT,
        PNR_KINDS,
        PNR_SEED_STRIDE,
        FailureRecord,
        call_with_timeout,
        classify_failure,
    )

    arch = arch or ArchParams()
    fabric = fabric or monaco(12, 12)
    sweep_policy = sweep_policy or ABORT
    faults_sig = _fault_signature(arch)
    profile_sig = "guided" if profile_guided else None
    fabric_spec = (fabric.name, fabric.rows, fabric.cols)
    instance = make_workload(name, scale=scale, seed=seed)
    results: dict[str, RunResult] = {}

    def emit(run: RunResult) -> None:
        if manifest_path is not None:
            append_manifest(
                manifest_path,
                build_manifest(
                    run,
                    scale=scale,
                    seed=seed,
                    divider=divider,
                    fabric_spec=fabric_spec,
                    policy=policy.name,
                    faults=faults_sig,
                    profile=profile_sig,
                ),
            )

    def one_config(config: MachineConfig, pnr_seed: int | None) -> RunResult:
        compiled = compile_cached(
            instance,
            fabric,
            arch,
            policy=policy,
            seed=seed if pnr_seed is None else pnr_seed,
            profile_guided=profile_guided,
        )
        run = run_config(instance, compiled, config, arch, divider)
        run.pnr_seed = pnr_seed
        run.profile = compiled.meta.get("profile")
        return run

    for config in configs:
        attempts = 0
        pnr_seed: int | None = None
        pnr_seeds: list[int] = []
        while True:
            try:
                run = call_with_timeout(
                    sweep_policy.job_timeout_s,
                    lambda: one_config(config, pnr_seed),
                    label=f"{name}/{config.name}/seed{seed}",
                )
            except Exception as exc:
                kind = classify_failure(exc)
                attempts += 1
                if sweep_policy.on_failure == "abort":
                    raise
                if sweep_policy.wants_retry(kind, attempts):
                    if kind in PNR_KINDS:
                        pnr_seed = seed + PNR_SEED_STRIDE * attempts
                        pnr_seeds.append(pnr_seed)
                    if sweep_policy.backoff_s:
                        time.sleep(
                            sweep_policy.backoff_s * (2 ** (attempts - 1))
                        )
                    continue
                failure = FailureRecord(
                    workload=name,
                    config=config.name,
                    seed=seed,
                    kind=kind,
                    message=str(exc),
                    attempts=attempts,
                    pnr_seeds=tuple(pnr_seeds),
                )
                if failures is not None:
                    failures.append(failure)
                if manifest_path is not None:
                    append_manifest(
                        manifest_path,
                        failure.to_manifest(
                            scale=scale,
                            divider=divider,
                            fabric_spec=fabric_spec,
                            policy=policy.name,
                            faults=faults_sig,
                            profile=profile_sig,
                        ),
                    )
                break
            else:
                results[config.name] = run
                emit(run)
                break
    return results


# -- parallel sweep ---------------------------------------------------------


def _run_sweep_job(
    name: str,
    config: MachineConfig,
    scale: str,
    seed: int,
    arch: ArchParams,
    divider: int,
    policy_name: str,
    fabric_spec: FabricSpec,
    cache_dir: str | None,
    pnr_seed: int | None = None,
    timeout_s: float | None = None,
    snapshot: dict | None = None,
    profile_guided: bool = False,
) -> RunResult:
    """One (workload, config, seed) point; runs inside a worker process.

    ``pnr_seed`` overrides the *placement* seed only (the supervisor's
    deterministic perturbation on PnR retry); the workload's input seed
    is always ``seed``. ``timeout_s`` arms a ``SIGALRM`` wall-clock
    budget around compile+simulate (see
    :func:`repro.exp.resilient.call_with_timeout`).

    ``profile_guided`` compiles with profile-refined criticality classes
    (the profiling input is the point's own workload instance).

    ``snapshot`` (``{"dir", "every", "cycle_budget", "grace_s",
    "journal"}``, supplied by the supervisor when a ``snapshot_dir`` is
    set) arms mid-simulation checkpointing: the snapshot path is derived
    from the point's identity digest, any valid snapshot already there
    is resumed (invalid ones are discarded), SIGTERM/SIGINT and timeout
    expiry snapshot-then-raise instead of killing the attempt cold, and
    snapshot writes are journaled to the sweep manifest.
    """
    from repro.exp.resilient import call_with_timeout

    if cache_dir is not None and (
        GLOBAL_CACHE.disk_dir is None
        or str(GLOBAL_CACHE.disk_dir) != cache_dir
    ):
        # Always point at the *requested* dir: warm in-process reuse
        # (max_workers <= 1) must not silently keep a previous sweep's
        # cache directory.
        GLOBAL_CACHE.enable_disk(cache_dir)

    watchdog = None
    grace_s = 5.0
    if snapshot is not None:
        from repro.sim.snapshot import Watchdog

        watchdog = Watchdog()
        grace_s = snapshot.get("grace_s", 5.0)

    def job() -> RunResult:
        policy = get_policy(policy_name)
        fabric = build_fabric(*fabric_spec)
        instance = make_workload(name, scale=scale, seed=seed)
        compiled = compile_cached(
            instance,
            fabric,
            arch,
            policy=policy,
            seed=seed if pnr_seed is None else pnr_seed,
            profile_guided=profile_guided,
        )
        checkpoint = resume_from = None
        resume_policy = "strict"
        if snapshot is not None:
            from repro.obs.manifest import config_digest, point_fields
            from repro.sim.snapshot import CheckpointConfig

            identity = point_fields(
                workload=name,
                config=config.name,
                scale=scale,
                seed=seed,
                divider=divider,
                fabric=fabric_spec,
                policy=policy_name,
                faults=_fault_signature(arch),
                profile="guided" if profile_guided else None,
            )
            digest = config_digest(identity)
            path = os.path.join(snapshot["dir"], f"{digest}.snap")
            checkpoint = CheckpointConfig(
                path=path,
                every_cycles=snapshot.get("every", 0) or 0,
                cycle_budget=snapshot.get("cycle_budget"),
                install_signals=True,
                watchdog=watchdog,
                journal_path=snapshot.get("journal"),
                journal_fields={"point_digest": digest, **identity},
            )
            # A retried attempt continues from its predecessor's
            # snapshot; torn/stale files are discarded, never fatal.
            resume_from = path
            resume_policy = "discard"
        run = run_config(
            instance,
            compiled,
            config,
            arch,
            divider,
            checkpoint=checkpoint,
            resume_from=resume_from,
            resume_policy=resume_policy,
        )
        run.pnr_seed = pnr_seed
        run.profile = compiled.meta.get("profile")
        return run

    return call_with_timeout(
        timeout_s,
        job,
        label=f"{name}/{config.name}/seed{seed}",
        watchdog=watchdog,
        grace_s=grace_s,
    )


def run_parallel(
    workloads: list[str],
    configs: list[MachineConfig],
    scale: str = "small",
    seeds: tuple[int, ...] = (0,),
    arch: ArchParams | None = None,
    policy: PlacementPolicy = EFFCC,
    divider: int = PAPER_DIVIDER,
    fabric_spec: FabricSpec = DEFAULT_FABRIC_SPEC,
    max_workers: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    manifest_path: str | os.PathLike | None = None,
    sweep_policy=None,
    resume: bool = False,
    snapshot_dir: str | os.PathLike | None = None,
    profile_guided: bool = False,
) -> dict[tuple[str, str, int], RunResult]:
    """Fan (workload x config x seed) out over worker processes.

    Returns ``{(workload, config_name, seed): RunResult}``. Results are
    bit-identical to running each point serially: compilation and
    simulation are deterministic, and every job recompiles (or loads from
    the shared on-disk cache) its own kernel, so no cross-job state leaks.

    ``max_workers <= 1`` runs in-process — same code path minus the pool,
    which keeps the serial-vs-parallel equivalence testable without fork
    overhead. ``cache_dir`` points workers at a shared persistent compile
    cache so each distinct PnR key is placed-and-routed once per machine.

    ``manifest_path`` appends one JSONL record per run (see
    :mod:`repro.obs.manifest`). Records are written by the parent in job
    order, so serial and parallel sweeps produce identical manifests up
    to the volatile ``wall_time_s``/``timestamp`` fields.

    This is the results-only facade over
    :func:`repro.exp.resilient.run_resilient`: with the default
    fail-fast policy the first failure raises, exactly as before the
    supervisor existed. Pass ``sweep_policy`` / ``resume`` for graceful
    degradation — but use :func:`~repro.exp.resilient.run_resilient`
    directly when you need the typed
    :class:`~repro.exp.resilient.FailureRecord` s and the skipped-point
    list, since this facade returns the healthy results alone.
    """
    from repro.exp.resilient import run_resilient

    outcome = run_resilient(
        workloads,
        configs,
        scale=scale,
        seeds=seeds,
        arch=arch,
        policy=policy,
        divider=divider,
        fabric_spec=fabric_spec,
        max_workers=max_workers,
        cache_dir=cache_dir,
        manifest_path=manifest_path,
        sweep_policy=sweep_policy,
        resume=resume,
        snapshot_dir=snapshot_dir,
        profile_guided=profile_guided,
    )
    return outcome.results
