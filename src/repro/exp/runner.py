"""Run (workload, machine config) pairs and collect cycle counts.

Every simulated run is validated against the workload's reference output
— a performance number from a run that computed the wrong answer would be
meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.fabric import Fabric, monaco
from repro.arch.params import ArchParams
from repro.core.policy import EFFCC, PlacementPolicy
from repro.exp.cache import GLOBAL_CACHE
from repro.exp.configs import MachineConfig
from repro.pnr.flow import compile_kernel
from repro.pnr.result import CompiledKernel
from repro.sim.engine import simulate
from repro.sim.stats import SimStats
from repro.workloads.base import WorkloadInstance
from repro.workloads.registry import make_workload

#: The paper's evaluated fabric clock divider (Sec. 6).
PAPER_DIVIDER = 2


@dataclass
class RunResult:
    workload: str
    config: str
    cycles: int
    stats: SimStats
    parallelism: int


def compile_cached(
    instance: WorkloadInstance,
    fabric: Fabric,
    arch: ArchParams,
    policy: PlacementPolicy = EFFCC,
    parallelism: int | None = None,
    seed: int = 0,
) -> CompiledKernel:
    """Compile with the shared cache (PnR is deterministic given the key)."""
    key = (
        instance.name,
        instance.meta.get("table1"),
        fabric.name,
        arch.noc_tracks,
        policy.name,
        parallelism,
        seed,
    )
    return GLOBAL_CACHE.get_or_compile(
        key,
        lambda: compile_kernel(
            instance.kernel,
            fabric,
            arch,
            policy=policy,
            parallelism=parallelism,
            seed=seed,
        ),
    )


def run_config(
    instance: WorkloadInstance,
    compiled: CompiledKernel,
    config: MachineConfig,
    arch: ArchParams,
    divider: int = PAPER_DIVIDER,
) -> RunResult:
    """Simulate one (compiled workload, machine config) pair and validate."""
    result = simulate(
        compiled,
        instance.params,
        instance.arrays,
        arch,
        frontend_factory=config.frontend_factory(divider),
        divider=divider,
    )
    instance.check(result.memory)
    return RunResult(
        workload=instance.name,
        config=config.name,
        cycles=result.stats.system_cycles,
        stats=result.stats,
        parallelism=compiled.parallelism,
    )


def run_workload_on_configs(
    name: str,
    configs: list[MachineConfig],
    scale: str = "small",
    seed: int = 0,
    arch: ArchParams | None = None,
    fabric: Fabric | None = None,
    policy: PlacementPolicy = EFFCC,
    divider: int = PAPER_DIVIDER,
) -> dict[str, RunResult]:
    """Compile once, then simulate under each interconnect config."""
    arch = arch or ArchParams()
    fabric = fabric or monaco(12, 12)
    instance = make_workload(name, scale=scale, seed=seed)
    compiled = compile_cached(instance, fabric, arch, policy=policy, seed=seed)
    return {
        config.name: run_config(instance, compiled, config, arch, divider)
        for config in configs
    }
