"""Table 1: the workload inventory."""

from __future__ import annotations

from repro.workloads.registry import ALL_WORKLOADS, make_workload

#: The paper's Table 1 rows (application, paper inputs).
PAPER_TABLE1 = {
    "dmv": "Size: 1,024x1,024",
    "jacobi2d": "Size: 200x200, 100 steps",
    "heat3d": "Size: 40x40, 80 steps",
    "spmv": "Size: 4,096x4,096, Sparsity: 90%",
    "spmspm": "Size: 512x512, Sparsity: 90%",
    "spmspv": "Size: 4,096x4,096, Sparsity: 90%",
    "spadd": "Size: 1,024x1,024, Sparsity: 50%",
    "tc": "Nodes: 4096, Sparsity: 5%",
    "mergesort": "List size: 2^20",
    "fft": "Points: 4096, Input size: 2^20",
    "ad": "Size: 5x128",
    "ic": "Size: 32x32",
    "vww": "Size: 96x96",
}


def table1(scale: str = "small", seed: int = 0) -> list[dict]:
    """Instantiate every workload and report paper vs reproduced inputs."""
    rows = []
    for name in ALL_WORKLOADS:
        instance = make_workload(name, scale=scale, seed=seed)
        rows.append(
            {
                "application": name,
                "category": instance.meta.get("category", ""),
                "paper_input": PAPER_TABLE1[name],
                "repro_input": instance.meta.get("table1", ""),
                "arrays": len(instance.arrays),
                "words": sum(
                    len(v) for v in instance.arrays.values()
                ),
            }
        )
    return rows


def format_table1(rows: list[dict]) -> str:
    header = (
        f"{'application':12s} {'category':24s} "
        f"{'paper input':36s} {'repro input':32s} {'words':>8s}"
    )
    lines = ["Table 1: applications", header]
    for row in rows:
        lines.append(
            f"{row['application']:12s} {row['category']:24s} "
            f"{row['paper_input']:36s} {row['repro_input']:32s} "
            f"{row['words']:8d}"
        )
    return "\n".join(lines)
