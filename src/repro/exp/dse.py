"""Design-space exploration of load-store PE placement (contribution 4).

The paper performs "a design space exploration of NUPEA in SDAs to
optimize the placement of load-store PEs within Monaco's fabric"; Monaco's
shipping configuration (three-column domains on alternating LS rows) is
the outcome. This module sweeps the two placement axes on Monaco-style
fabrics — how many columns each NUPEA domain spans (= direct D0 ports per
row) and how densely LS rows are interleaved — and measures end-to-end
execution time per point.
"""

from __future__ import annotations

from repro.arch.fabric import monaco_variant
from repro.arch.params import ArchParams
from repro.core.policy import EFFCC
from repro.errors import PnRError
from repro.exp.figures import FigureResult
from repro.exp.runner import PAPER_DIVIDER, compile_cached, run_config
from repro.exp.configs import MONACO
from repro.workloads.registry import make_workload

#: Domain widths swept (columns per NUPEA domain = D0 ports per LS row).
DSE_WIDTHS = (1, 2, 3, 4)
#: LS-row strides swept (2 = Monaco's alternating rows).
DSE_STRIDES = (2, 3)


def ls_placement_dse(
    workloads=("spmspv", "dmv"),
    scale: str = "small",
    seed: int = 0,
    rows: int = 12,
    cols: int = 12,
    widths=DSE_WIDTHS,
    strides=DSE_STRIDES,
) -> FigureResult:
    """Sweep (domain width, LS-row stride); values are system cycles."""
    result = FigureResult(
        "dse-ls",
        "LS-PE placement DSE: execution time (system cycles) per variant",
        [f"w{w}/s{s}" for s in strides for w in widths],
    )
    arch = ArchParams()
    for name in workloads:
        instance = make_workload(name, scale=scale, seed=seed)
        row: dict[str, float] = {}
        meta: dict[str, float] = {}
        for stride in strides:
            for width in widths:
                label = f"w{width}/s{stride}"
                try:
                    fabric = monaco_variant(
                        rows, cols, domain_width=width,
                        ls_row_stride=stride,
                    )
                    compiled = compile_cached(
                        instance, fabric, arch, policy=EFFCC, seed=seed
                    )
                    run = run_config(
                        instance, compiled, MONACO, arch,
                        divider=max(
                            PAPER_DIVIDER, compiled.timing.clock_divider
                        ),
                    )
                    row[label] = float(run.cycles)
                    meta[label] = float(compiled.parallelism)
                except PnRError:
                    row[label] = float("inf")
        result.rows[name] = row
        result.raw[name] = meta
    result.notes.append(
        "w = columns per NUPEA domain (= direct D0 ports per LS row); "
        "s = LS row stride (2 = Monaco's alternating rows). Monaco ships "
        "w3/s2. Raw table holds the PnR-chosen parallelism."
    )
    return result
