"""Experiment harness: regenerate every table and figure of the paper."""

from repro.exp.cache import GLOBAL_CACHE, CompileCache
from repro.exp.configs import (
    MONACO,
    MachineConfig,
    ideal,
    numa,
    primary_configs,
    upea,
)
from repro.exp.dse import ls_placement_dse
from repro.exp.fdo import (
    FdoResult,
    FdoRound,
    blame_to_weights,
    run_fdo,
)
from repro.exp.figures import (
    FigureResult,
    fig6c,
    fig11,
    fig12,
    fig14,
    fig15,
    fig16,
    fig17,
)
from repro.exp.report import format_figure
from repro.exp.runner import (
    PAPER_DIVIDER,
    RunResult,
    compile_cached,
    run_config,
    run_workload_on_configs,
)
from repro.exp.tables import format_table1, table1

__all__ = [
    "CompileCache",
    "FdoResult",
    "FdoRound",
    "FigureResult",
    "GLOBAL_CACHE",
    "blame_to_weights",
    "run_fdo",
    "MONACO",
    "MachineConfig",
    "PAPER_DIVIDER",
    "RunResult",
    "compile_cached",
    "fig6c",
    "fig11",
    "fig12",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "format_figure",
    "format_table1",
    "ideal",
    "ls_placement_dse",
    "numa",
    "primary_configs",
    "run_config",
    "run_workload_on_configs",
    "table1",
    "upea",
]
