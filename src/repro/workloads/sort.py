"""Sorting: bottom-up mergesort (Table 1).

Iterative mergesort over a single double-width buffer: pass ``p`` merges
runs of width ``2^p`` from one half into the other, the halves alternating
by pass parity (ping-pong via base offsets rather than two arrays — this
keeps the DFG to one merge body). The element count is a power of 4, so
the pass count is even and the sorted result lands back in the first half.

The two-pointer merge loop carries a load-dependent recurrence (the next
iteration's loads depend on the comparison of the current loads), so its
loads are class-A critical.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.ir.builder import KernelBuilder
from repro.workloads.base import WorkloadInstance, require_scale
from repro.workloads.data import random_ints

#: Element count (power of 4); paper sorts 2^20 elements.
SORT_SIZES = {"tiny": 16, "small": 64, "paper": 1 << 20}


def build_mergesort(scale: str = "small", seed: int = 0) -> WorkloadInstance:
    require_scale(scale)
    n = SORT_SIZES[scale]
    passes = n.bit_length() - 1
    if n & (n - 1) or passes % 2:
        raise ReproError("mergesort size must be a power of 4")
    b = KernelBuilder("mergesort", params=["n", "passes"])
    buf = b.array("buf", 2 * n)
    with b.for_("p", 0, b.p.passes) as p:
        src = b.let("src", p % 2 * b.p.n)
        dst = b.let("dst", b.p.n - src)
        width = b.let("w", 1 << p)
        with b.parfor("ru", 0, b.p.n // (width * 2)) as ru:
            lo = b.let("lo", ru * width * 2)
            mid = b.let("mid", lo + width)
            hi = b.let("hi", lo + width * 2)
            i = b.let("i", lo)
            j = b.let("j", mid)
            k = b.let("k", lo)
            with b.while_((i < mid) & (j < hi)):
                a = buf.load(src + i, "a")  # class A
                c = buf.load(src + j, "c")  # class A
                buf.store(dst + k, a.min(c))
                b.set(i, i + (a <= c))
                b.set(j, j + (c < a))
                b.set(k, k + 1)
            with b.while_(i < mid):
                buf.store(dst + k, buf.load(src + i))
                b.set(i, i + 1)
                b.set(k, k + 1)
            with b.while_(j < hi):
                buf.store(dst + k, buf.load(src + j))
                b.set(j, j + 1)
                b.set(k, k + 1)
    kernel = b.build()

    data = random_ints(n, seed, 0, 999)
    reference = _mergesort_reference(data, n, passes)
    assert reference[:n] == sorted(data)
    return WorkloadInstance(
        name="mergesort",
        kernel=kernel,
        params={"n": n, "passes": passes},
        arrays={"buf": data + [0] * n},
        outputs=["buf"],
        reference={"buf": reference},
        meta={
            "category": "sorting",
            "table1": f"List size: {n}",
        },
    )


def _mergesort_reference(data: list[int], n: int, passes: int) -> list[int]:
    """Replay the buffer-level algorithm to get the exact final state."""
    buf = list(data) + [0] * n
    for p in range(passes):
        src = (p % 2) * n
        dst = n - src
        width = 1 << p
        for ru in range(n // (width * 2)):
            lo = ru * width * 2
            mid, hi = lo + width, lo + width * 2
            i, j, k = lo, mid, lo
            while i < mid and j < hi:
                a, c = buf[src + i], buf[src + j]
                buf[dst + k] = min(a, c)
                i += a <= c
                j += c < a
                k += 1
            while i < mid:
                buf[dst + k] = buf[src + i]
                i += 1
                k += 1
            while j < hi:
                buf[dst + k] = buf[src + j]
                j += 1
                k += 1
    return buf
