"""Deterministic input generators for the Table 1 workloads.

All generators are seeded and produce plain Python lists (the simulator's
memory is word-granular). Sparse structures use the formats the paper's
kernels consume: CSR (``pos``/``crd``/``val``) with sorted coordinates,
and sorted-coordinate sparse vectors.
"""

from __future__ import annotations

import math
import random

from repro.errors import ReproError


def random_ints(count: int, seed: int, lo: int = -8, hi: int = 8) -> list[int]:
    rng = random.Random(seed)
    return [rng.randint(lo, hi) for _ in range(count)]


def random_floats(
    count: int, seed: int, lo: float = -1.0, hi: float = 1.0
) -> list[float]:
    rng = random.Random(seed)
    return [rng.uniform(lo, hi) for _ in range(count)]


def random_csr(
    nrows: int,
    ncols: int,
    density: float,
    seed: int,
    lo: int = 1,
    hi: int = 8,
) -> tuple[list[int], list[int], list[int]]:
    """A random CSR matrix with sorted column coordinates per row."""
    if not 0.0 <= density <= 1.0:
        raise ReproError(f"bad density {density}")
    rng = random.Random(seed)
    pos = [0]
    crd: list[int] = []
    val: list[int] = []
    per_row = max(0, round(density * ncols))
    for _ in range(nrows):
        count = min(ncols, max(0, per_row + rng.randint(-1, 1)))
        cols = sorted(rng.sample(range(ncols), count)) if count else []
        crd.extend(cols)
        val.extend(rng.randint(lo, hi) for _ in cols)
        pos.append(len(crd))
    return pos, crd, val


def random_sparse_vector(
    length: int, density: float, seed: int, lo: int = 1, hi: int = 8
) -> tuple[list[int], list[int]]:
    """Sorted coordinates and values of a random sparse vector."""
    rng = random.Random(seed)
    count = min(length, max(1, round(density * length)))
    coords = sorted(rng.sample(range(length), count))
    values = [rng.randint(lo, hi) for _ in coords]
    return coords, values


def random_graph_csr(
    nodes: int, density: float, seed: int
) -> tuple[list[int], list[int]]:
    """A random undirected graph as CSR adjacency (sorted, no self loops)."""
    rng = random.Random(seed)
    adjacency: list[set[int]] = [set() for _ in range(nodes)]
    for u in range(nodes):
        for v in range(u + 1, nodes):
            if rng.random() < density:
                adjacency[u].add(v)
                adjacency[v].add(u)
    pos = [0]
    crd: list[int] = []
    for u in range(nodes):
        neighbors = sorted(adjacency[u])
        crd.extend(neighbors)
        pos.append(len(crd))
    return pos, crd


def csr_to_dense(
    pos: list[int], crd: list[int], val: list[int], nrows: int, ncols: int
) -> list[list[int]]:
    dense = [[0] * ncols for _ in range(nrows)]
    for r in range(nrows):
        for k in range(pos[r], pos[r + 1]):
            dense[r][crd[k]] = val[k]
    return dense


def transpose_csr(
    pos: list[int], crd: list[int], val: list[int], nrows: int, ncols: int
) -> tuple[list[int], list[int], list[int]]:
    """CSR -> CSR of the transpose (i.e. CSC of the original)."""
    counts = [0] * ncols
    for c in crd:
        counts[c] += 1
    tpos = [0]
    for c in range(ncols):
        tpos.append(tpos[-1] + counts[c])
    tcrd = [0] * len(crd)
    tval = [0] * len(val)
    cursor = list(tpos[:-1])
    for r in range(nrows):
        for k in range(pos[r], pos[r + 1]):
            c = crd[k]
            tcrd[cursor[c]] = r
            tval[cursor[c]] = val[k]
            cursor[c] += 1
    return tpos, tcrd, tval


def bit_reverse_permutation(n: int) -> list[int]:
    """Index permutation for an n-point radix-2 FFT (n a power of two)."""
    if n & (n - 1):
        raise ReproError(f"FFT size {n} is not a power of two")
    bits = n.bit_length() - 1
    out = []
    for i in range(n):
        r = 0
        for b in range(bits):
            if i & (1 << b):
                r |= 1 << (bits - 1 - b)
        out.append(r)
    return out


def twiddle_factors(n: int) -> tuple[list[float], list[float]]:
    """(real, imag) of W_n^k = exp(-2*pi*i*k/n) for k in [0, n/2)."""
    real, imag = [], []
    for k in range(n // 2):
        angle = -2.0 * math.pi * k / n
        real.append(math.cos(angle))
        imag.append(math.sin(angle))
    return real, imag
