"""Sparse tensor algebra: spmv, spmspv, spmspm, spadd (TACO-style).

spmspv is the paper's running example: its intersection (stream-join) has
loads on a loop-governing recurrence — the compiler classifies them as
class-A critical loads, and NUPEA places them in domain D0. spmspm and
spadd share that co-iteration structure; spmv's inner loop is a counted
loop, so its loads are inner-loop (class B) only.
"""

from __future__ import annotations

from repro.ir.builder import KernelBuilder
from repro.workloads.base import WorkloadInstance, require_scale
from repro.workloads.data import (
    csr_to_dense,
    random_csr,
    random_ints,
    random_sparse_vector,
    transpose_csr,
)

#: (rows=cols, density); paper: 4096x4096 at 90% sparsity.
SPMV_SIZES = {"tiny": (12, 0.25), "small": (48, 0.1), "paper": (4096, 0.1)}
SPMSPV_SIZES = {
    "tiny": (16, 0.25, 0.25),
    "small": (96, 0.12, 0.15),
    "paper": (4096, 0.1, 0.1),
}
#: (n, density); paper: 512x512 at 90% sparsity.
SPMSPM_SIZES = {"tiny": (6, 0.3), "small": (12, 0.25), "paper": (512, 0.1)}
#: (n, density); paper: 1024x1024 at 50% sparsity.
SPADD_SIZES = {"tiny": (8, 0.3), "small": (24, 0.5), "paper": (1024, 0.5)}


def build_spmv(scale: str = "small", seed: int = 0) -> WorkloadInstance:
    """y = A @ x with A in CSR and x dense."""
    require_scale(scale)
    n, density = SPMV_SIZES[scale]
    pos, crd, val = random_csr(n, n, density, seed)
    nnz = len(crd)
    b = KernelBuilder("spmv", params=["n"])
    pos_a = b.array("pos", n + 1)
    crd_a = b.array("crd", max(1, nnz))
    val_a = b.array("val", max(1, nnz))
    x_vec = b.array("x", n)
    y_vec = b.array("y", n)
    with b.parfor("r", 0, b.p.n) as r:
        beg = pos_a.load(r, "beg")
        end = pos_a.load(r + 1, "end")
        acc = b.let("acc", 0)
        with b.for_("k", beg, end) as k:
            col = crd_a.load(k, "col")
            b.set(acc, acc + val_a.load(k) * x_vec.load(col))
        y_vec.store(r, acc)
    kernel = b.build()

    x_data = random_ints(n, seed + 1, -4, 4)
    dense = csr_to_dense(pos, crd, val, n, n)
    reference = [
        sum(dense[r][c] * x_data[c] for c in range(n)) for r in range(n)
    ]
    return WorkloadInstance(
        name="spmv",
        kernel=kernel,
        params={"n": n},
        arrays={
            "pos": pos,
            "crd": crd or [0],
            "val": val or [0],
            "x": x_data,
        },
        outputs=["y"],
        reference={"y": reference},
        meta={
            "category": "sparse linear algebra",
            "table1": f"Size: {n}x{n}, Sparsity: {1 - density:.0%}",
        },
    )


def build_spmspv(scale: str = "small", seed: int = 0) -> WorkloadInstance:
    """D = A @ v with A in CSR and v a sorted sparse vector (Fig. 3/5)."""
    require_scale(scale)
    n, density, vdensity = SPMSPV_SIZES[scale]
    pos, crd, val = random_csr(n, n, density, seed)
    vcrd, vval = random_sparse_vector(n, vdensity, seed + 1)
    nnz, nv = len(crd), len(vcrd)
    b = KernelBuilder("spmspv", params=["n", "nv"])
    pos_a = b.array("pos", n + 1)
    crd_a = b.array("crd", max(1, nnz))
    val_a = b.array("val", max(1, nnz))
    vcrd_a = b.array("vcrd", nv)
    vval_a = b.array("vval", nv)
    d_vec = b.array("D", n)
    with b.parfor("r", 0, b.p.n) as r:
        ia = b.let("ia", pos_a.load(r, "beg"))
        aend = pos_a.load(r + 1, "aend")
        iv = b.let("iv", 0)
        acc = b.let("acc", 0)
        with b.while_((ia < aend) & (iv < b.p.nv)):
            a_idx = crd_a.load(ia, "Ai")  # critical load (class A)
            v_idx = vcrd_a.load(iv, "Vi")  # critical load (class A)
            with b.if_(a_idx.eq(v_idx)):
                b.set(acc, acc + val_a.load(ia) * vval_a.load(iv))
            b.set(ia, ia + (a_idx <= v_idx))
            b.set(iv, iv + (v_idx <= a_idx))
        d_vec.store(r, acc)
    kernel = b.build()

    dense = csr_to_dense(pos, crd, val, n, n)
    vec = [0] * n
    for c, v in zip(vcrd, vval):
        vec[c] = v
    reference = [
        sum(dense[r][c] * vec[c] for c in range(n)) for r in range(n)
    ]
    return WorkloadInstance(
        name="spmspv",
        kernel=kernel,
        params={"n": n, "nv": nv},
        arrays={
            "pos": pos,
            "crd": crd or [0],
            "val": val or [0],
            "vcrd": vcrd,
            "vval": vval,
        },
        outputs=["D"],
        reference={"D": reference},
        meta={
            "category": "sparse linear algebra",
            "table1": f"Size: {n}x{n}, Sparsity: {1 - density:.0%}",
        },
    )


def build_spmspm(scale: str = "small", seed: int = 0) -> WorkloadInstance:
    """C = A @ B, both sparse; inner-product co-iteration per (r, c)."""
    require_scale(scale)
    n, density = SPMSPM_SIZES[scale]
    apos, acrd, aval = random_csr(n, n, density, seed)
    bpos, bcrd, bval = random_csr(n, n, density, seed + 1)
    tpos, tcrd, tval = transpose_csr(bpos, bcrd, bval, n, n)
    b = KernelBuilder("spmspm", params=["n"])
    apos_a = b.array("apos", n + 1)
    acrd_a = b.array("acrd", max(1, len(acrd)))
    aval_a = b.array("aval", max(1, len(aval)))
    tpos_a = b.array("tpos", n + 1)
    tcrd_a = b.array("tcrd", max(1, len(tcrd)))
    tval_a = b.array("tval", max(1, len(tval)))
    c_mat = b.array("C", n * n)
    with b.parfor("r", 0, b.p.n) as r:
        abeg = apos_a.load(r, "abeg")
        aend = apos_a.load(r + 1, "aend")
        with b.for_("c", 0, b.p.n) as c:
            ia = b.let("ia", abeg)
            ib = b.let("ib", tpos_a.load(c, "bbeg"))
            bend = tpos_a.load(c + 1, "bend")
            acc = b.let("acc", 0)
            with b.while_((ia < aend) & (ib < bend)):
                a_idx = acrd_a.load(ia, "Ai")  # class A
                b_idx = tcrd_a.load(ib, "Bi")  # class A
                with b.if_(a_idx.eq(b_idx)):
                    b.set(acc, acc + aval_a.load(ia) * tval_a.load(ib))
                b.set(ia, ia + (a_idx <= b_idx))
                b.set(ib, ib + (b_idx <= a_idx))
            c_mat.store(r * b.p.n + c, acc)
    kernel = b.build()

    da = csr_to_dense(apos, acrd, aval, n, n)
    db = csr_to_dense(bpos, bcrd, bval, n, n)
    reference = [
        sum(da[r][k] * db[k][c] for k in range(n))
        for r in range(n)
        for c in range(n)
    ]
    return WorkloadInstance(
        name="spmspm",
        kernel=kernel,
        params={"n": n},
        arrays={
            "apos": apos,
            "acrd": acrd or [0],
            "aval": aval or [0],
            "tpos": tpos,
            "tcrd": tcrd or [0],
            "tval": tval or [0],
        },
        outputs=["C"],
        reference={"C": reference},
        meta={
            "category": "sparse linear algebra",
            "table1": f"Size: {n}x{n}, Sparsity: {1 - density:.0%}",
        },
    )


def build_spadd(scale: str = "small", seed: int = 0) -> WorkloadInstance:
    """C = A + B (sparse + sparse, union co-iteration, dense output)."""
    require_scale(scale)
    n, density = SPADD_SIZES[scale]
    apos, acrd, aval = random_csr(n, n, density, seed)
    bpos, bcrd, bval = random_csr(n, n, density, seed + 1)
    b = KernelBuilder("spadd", params=["n"])
    apos_a = b.array("apos", n + 1)
    acrd_a = b.array("acrd", max(1, len(acrd)))
    aval_a = b.array("aval", max(1, len(aval)))
    bpos_a = b.array("bpos", n + 1)
    bcrd_a = b.array("bcrd", max(1, len(bcrd)))
    bval_a = b.array("bval", max(1, len(bval)))
    c_mat = b.array("C", n * n)
    with b.parfor("r", 0, b.p.n) as r:
        ia = b.let("ia", apos_a.load(r, "abeg"))
        aend = apos_a.load(r + 1, "aend")
        ib = b.let("ib", bpos_a.load(r, "bbeg"))
        bend = bpos_a.load(r + 1, "bend")
        row = b.let("row", r * b.p.n)
        with b.while_((ia < aend) & (ib < bend)):
            a_idx = acrd_a.load(ia, "Ai")  # class A
            b_idx = bcrd_a.load(ib, "Bi")  # class A
            with b.if_(a_idx.eq(b_idx)):
                c_mat.store(row + a_idx, aval_a.load(ia) + bval_a.load(ib))
            with b.else_():
                with b.if_(a_idx < b_idx):
                    c_mat.store(row + a_idx, aval_a.load(ia))
                with b.else_():
                    c_mat.store(row + b_idx, bval_a.load(ib))
            b.set(ia, ia + (a_idx <= b_idx))
            b.set(ib, ib + (b_idx <= a_idx))
        with b.while_(ia < aend):
            c_mat.store(row + acrd_a.load(ia, "Ad"), aval_a.load(ia))
            b.set(ia, ia + 1)
        with b.while_(ib < bend):
            c_mat.store(row + bcrd_a.load(ib, "Bd"), bval_a.load(ib))
            b.set(ib, ib + 1)
    kernel = b.build()

    da = csr_to_dense(apos, acrd, aval, n, n)
    db = csr_to_dense(bpos, bcrd, bval, n, n)
    reference = [
        da[r][c] + db[r][c] if (da[r][c] or db[r][c]) else 0
        for r in range(n)
        for c in range(n)
    ]
    return WorkloadInstance(
        name="spadd",
        kernel=kernel,
        params={"n": n},
        arrays={
            "apos": apos,
            "acrd": acrd or [0],
            "aval": aval or [0],
            "bpos": bpos,
            "bcrd": bcrd or [0],
            "bval": bval or [0],
        },
        outputs=["C"],
        reference={"C": reference},
        meta={
            "category": "sparse linear algebra",
            "table1": f"Size: {n}x{n}, Sparsity: {1 - density:.0%}",
        },
    )
