"""Common workload container and scale definitions."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError, ValidationError
from repro.ir.ast import Kernel

#: Input scales. ``tiny`` keeps unit tests fast; ``small`` drives the
#: benchmark harness; ``paper`` records the Table 1 sizes (instantiable,
#: but impractical to simulate cycle-by-cycle in Python — see
#: EXPERIMENTS.md for the scaling rationale).
SCALES = ("tiny", "small", "paper")


@dataclass
class WorkloadInstance:
    """A kernel plus concrete inputs and its reference output."""

    name: str
    kernel: Kernel
    params: dict[str, int | float]
    arrays: dict[str, list]
    #: Names of output arrays to validate.
    outputs: list[str]
    #: Expected final contents of each output array.
    reference: dict[str, list]
    #: Absolute tolerance for float outputs (0 = exact integer match).
    tolerance: float = 0.0
    #: Free-form metadata (Table 1 description, category, sizes).
    meta: dict = field(default_factory=dict)

    def check(self, memory: dict[str, list]) -> None:
        """Raise :class:`ValidationError` if ``memory`` disagrees with the
        reference outputs.

        The error carries (workload, array, index, got, want) so the sweep
        supervisor (:mod:`repro.exp.resilient`) can classify wrong-answer
        runs separately from infrastructure failures.
        """
        for name in self.outputs:
            got = memory[name]
            want = self.reference[name]
            if len(got) != len(want):
                raise ValidationError(
                    f"{self.name}: output {name!r} length {len(got)} != "
                    f"{len(want)}",
                    workload=self.name,
                    array=name,
                    got=len(got),
                    want=len(want),
                )
            for i, (g, w) in enumerate(zip(got, want)):
                if self.tolerance:
                    if abs(g - w) > self.tolerance:
                        raise ValidationError(
                            f"{self.name}: {name}[{i}] = {g} != {w} "
                            f"(tol {self.tolerance})",
                            workload=self.name,
                            array=name,
                            index=i,
                            got=g,
                            want=w,
                        )
                elif g != w:
                    raise ValidationError(
                        f"{self.name}: {name}[{i}] = {g} != {w}",
                        workload=self.name,
                        array=name,
                        index=i,
                        got=g,
                        want=w,
                    )


def require_scale(scale: str) -> None:
    if scale not in SCALES:
        raise ReproError(
            f"unknown scale {scale!r}; expected one of {SCALES}"
        )
