"""DSP: radix-2 iterative FFT (CMSIS-DSP ``arm_rfft_q31``-derived).

A decimation-in-time complex FFT: bit-reversal gather, then log2(n)
butterfly stages over in-place work buffers. Because the work buffers are
loaded and stored on every stage, read-after-write ordering links stages
— the memory-ordering behaviour the paper highlights for fft. Floats
stand in for CMSIS's q31 fixed point (documented substitution; same loop
and dependence structure).
"""

from __future__ import annotations



from repro.ir.builder import KernelBuilder
from repro.workloads.base import WorkloadInstance, require_scale
from repro.workloads.data import (
    bit_reverse_permutation,
    random_floats,
    twiddle_factors,
)

#: FFT points; paper: 4096 points over a 2^20-sample input.
FFT_SIZES = {"tiny": 16, "small": 64, "paper": 4096}


def build_fft(scale: str = "small", seed: int = 0) -> WorkloadInstance:
    require_scale(scale)
    n = FFT_SIZES[scale]
    stages = n.bit_length() - 1
    b = KernelBuilder("fft", params=["n", "stages"])
    xre = b.array("xre", n, "f")
    xim = b.array("xim", n, "f")
    rev = b.array("rev", n)
    wre = b.array("wre", n // 2, "f")
    wim = b.array("wim", n // 2, "f")
    re = b.array("re", n, "f")
    im = b.array("im", n, "f")

    with b.parfor("g", 0, b.p.n) as g:
        src = rev.load(g, "rv")
        re.store(g, xre.load(src))
        im.store(g, xim.load(src))
    with b.for_("s", 0, b.p.stages) as s:
        half = b.let("half", 1 << s)
        stride = b.let("stride", b.p.n // (half * 2))
        with b.parfor("bf", 0, b.p.n // 2) as bf:
            group = b.let("group", bf // half)
            pos = b.let("pos", bf % half)
            i = b.let("i", group * half * 2 + pos)
            j = b.let("j", i + half)
            tw = b.let("tw", pos * stride)
            wr = wre.load(tw, "wr")
            wi = wim.load(tw, "wi")
            ar = re.load(i, "ar")
            ai = im.load(i, "ai")
            br = re.load(j, "br")
            bi = im.load(j, "bi")
            tr = b.let("tr", br * wr - bi * wi)
            ti = b.let("ti", br * wi + bi * wr)
            re.store(i, ar + tr)
            im.store(i, ai + ti)
            re.store(j, ar - tr)
            im.store(j, ai - ti)
    kernel = b.build()

    sig_re = random_floats(n, seed)
    sig_im = random_floats(n, seed + 1)
    ref_re, ref_im = _fft_reference(sig_re, sig_im, n)
    wre_v, wim_v = twiddle_factors(n)
    return WorkloadInstance(
        name="fft",
        kernel=kernel,
        params={"n": n, "stages": stages},
        arrays={
            "xre": sig_re,
            "xim": sig_im,
            "rev": bit_reverse_permutation(n),
            "wre": wre_v,
            "wim": wim_v,
        },
        outputs=["re", "im"],
        reference={"re": ref_re, "im": ref_im},
        tolerance=1e-9,
        meta={
            "category": "DSP",
            "table1": f"Points: {n}",
        },
    )


def _fft_reference(
    sig_re: list[float], sig_im: list[float], n: int
) -> tuple[list[float], list[float]]:
    """The same radix-2 algorithm in plain Python, for bit-exact output."""
    rev = bit_reverse_permutation(n)
    wre, wim = twiddle_factors(n)
    re = [sig_re[rev[i]] for i in range(n)]
    im = [sig_im[rev[i]] for i in range(n)]
    half = 1
    while half < n:
        stride = n // (half * 2)
        for bf in range(n // 2):
            group, pos = divmod(bf, half)
            i = group * half * 2 + pos
            j = i + half
            wr, wi = wre[pos * stride], wim[pos * stride]
            tr = re[j] * wr - im[j] * wi
            ti = re[j] * wi + im[j] * wr
            re[i], re[j] = re[i] + tr, re[i] - tr
            im[i], im[j] = im[i] + ti, im[i] - ti
        half *= 2
    return re, im


def fft_matches_numpy(instance: WorkloadInstance, atol: float = 1e-6) -> bool:
    """Cross-check the reference against numpy's FFT (used in tests)."""
    import numpy as np

    signal = np.array(instance.arrays["xre"]) + 1j * np.array(
        instance.arrays["xim"]
    )
    expected = np.fft.fft(signal)
    got = np.array(instance.reference["re"]) + 1j * np.array(
        instance.reference["im"]
    )
    return bool(np.allclose(got, expected, atol=atol))
