"""Neural networks: ad, ic, vww (MLPerfTiny-derived, Table 1).

Representative layer stacks with the same kernel structure as the
MLPerfTiny networks the paper runs (documented substitution — full
networks are impractical at cycle granularity in Python):

* **ad** (anomaly detection, deep autoencoder): two fully connected
  layers, encode with ReLU then decode.
* **ic** (image classification, CNN): 3x3 convolution + ReLU + 2x2 max
  pool + fully connected classifier.
* **vww** (visual wake words, MobileNet): 3x3 depthwise convolution +
  1x1 pointwise convolution + ReLU + fully connected classifier.

All dense inner loops, no data-dependent recurrences: their memory ops are
class B, so these workloads gain from domain awareness but not from
criticality information — the Fig. 12 contrast.
"""

from __future__ import annotations

from repro.ir.builder import KernelBuilder
from repro.workloads.base import WorkloadInstance, require_scale
from repro.workloads.data import random_ints

#: (input dim, hidden dim); paper input 5x128 autoencoder.
AD_SIZES = {"tiny": (8, 4), "small": (24, 12), "paper": (640, 128)}
#: (image h=w, cin, cout, classes); paper 32x32 CIFAR-style CNN.
IC_SIZES = {
    "tiny": (6, 1, 2, 2),
    "small": (10, 2, 4, 4),
    "paper": (32, 3, 16, 10),
}
#: (image h=w, channels, pointwise cout, classes); paper 96x96 MobileNet.
VWW_SIZES = {
    "tiny": (6, 1, 2, 2),
    "small": (10, 2, 4, 2),
    "paper": (96, 8, 16, 2),
}


def _relu(value):
    return value.max(0)


def build_ad(scale: str = "small", seed: int = 0) -> WorkloadInstance:
    require_scale(scale)
    nin, nh = AD_SIZES[scale]
    b = KernelBuilder("ad", params=["nin", "nh"])
    x = b.array("x", nin)
    w1 = b.array("W1", nh * nin)
    b1 = b.array("b1", nh)
    hid = b.array("h", nh)
    w2 = b.array("W2", nin * nh)
    b2 = b.array("b2", nin)
    y = b.array("y", nin)
    with b.parfor("o", 0, b.p.nh) as o:
        acc = b.let("acc", b1.load(o))
        with b.for_("j", 0, b.p.nin) as j:
            b.set(acc, acc + w1.load(o * b.p.nin + j) * x.load(j))
        hid.store(o, _relu(acc))
    with b.parfor("q", 0, b.p.nin) as q:
        acc2 = b.let("acc2", b2.load(q))
        with b.for_("j2", 0, b.p.nh) as j2:
            b.set(acc2, acc2 + w2.load(q * b.p.nh + j2) * hid.load(j2))
        y.store(q, acc2)
    kernel = b.build()

    xv = random_ints(nin, seed, -3, 3)
    w1v = random_ints(nh * nin, seed + 1, -2, 2)
    b1v = random_ints(nh, seed + 2, -2, 2)
    w2v = random_ints(nin * nh, seed + 3, -2, 2)
    b2v = random_ints(nin, seed + 4, -2, 2)
    href = [
        max(
            0,
            b1v[o] + sum(w1v[o * nin + j] * xv[j] for j in range(nin)),
        )
        for o in range(nh)
    ]
    yref = [
        b2v[q] + sum(w2v[q * nh + j] * href[j] for j in range(nh))
        for q in range(nin)
    ]
    return WorkloadInstance(
        name="ad",
        kernel=kernel,
        params={"nin": nin, "nh": nh},
        arrays={"x": xv, "W1": w1v, "b1": b1v, "W2": w2v, "b2": b2v},
        outputs=["y"],
        reference={"y": yref},
        meta={"category": "ML", "table1": f"Size: {nin}->{nh}->{nin}"},
    )


def build_ic(scale: str = "small", seed: int = 0) -> WorkloadInstance:
    require_scale(scale)
    hw, cin, cout, classes = IC_SIZES[scale]
    oh = hw - 2
    ph = oh // 2
    b = KernelBuilder("ic", params=["hw", "cin", "cout", "classes"])
    x = b.array("X", cin * hw * hw)
    w = b.array("W", cout * cin * 9)
    bias = b.array("bias", cout)
    conv = b.array("conv", cout * oh * oh)
    fcw = b.array("FCW", classes * cout * ph * ph)
    out = b.array("out", classes)
    oh_e = b.p.hw - 2
    with b.parfor("oc", 0, b.p.cout) as oc:
        with b.for_("p", 0, oh_e * oh_e) as p:
            oy = b.let("oy", p // oh_e)
            ox = b.let("ox", p % oh_e)
            acc = b.let("acc", bias.load(oc))
            with b.for_("q", 0, b.p.cin * 9) as q:
                ci = b.let("ci", q // 9)
                ky = b.let("ky", q % 9 // 3)
                kx = b.let("kx", q % 3)
                px = x.load((ci * b.p.hw + oy + ky) * b.p.hw + ox + kx)
                b.set(acc, acc + px * w.load(oc * b.p.cin * 9 + q))
            conv.store((oc * oh_e + oy) * oh_e + ox, _relu(acc))
    # The 2x2 max pool is fused into the classifier: each FC feature is
    # the max of its pooling window, computed on the fly.
    ph_e = oh_e // 2
    feat = b.p.cout * ph_e * ph_e
    with b.parfor("cl", 0, b.p.classes) as cl:
        acc3 = b.let("acc3", 0)
        with b.for_("f", 0, feat) as f:
            pc = b.let("pc", f // (ph_e * ph_e))
            rem = b.let("rem", f % (ph_e * ph_e))
            py = b.let("py", rem // ph_e)
            px2 = b.let("px2", rem % ph_e)
            base = b.let("base", (pc * oh_e + py * 2) * oh_e + px2 * 2)
            v0 = conv.load(base)
            v1 = conv.load(base + 1)
            v2 = conv.load(base + oh_e)
            v3 = conv.load(base + oh_e + 1)
            pooled_v = v0.max(v1).max(v2.max(v3))
            b.set(acc3, acc3 + fcw.load(cl * feat + f) * pooled_v)
        out.store(cl, acc3)
    kernel = b.build()

    xv = random_ints(cin * hw * hw, seed, 0, 4)
    wv = random_ints(cout * cin * 9, seed + 1, -2, 2)
    bv = random_ints(cout, seed + 2, -2, 2)
    fcv = random_ints(classes * cout * ph * ph, seed + 3, -2, 2)
    conv_ref, pooled_ref, out_ref = _ic_reference(
        xv, wv, bv, fcv, hw, cin, cout, classes
    )
    return WorkloadInstance(
        name="ic",
        kernel=kernel,
        params={"hw": hw, "cin": cin, "cout": cout, "classes": classes},
        arrays={"X": xv, "W": wv, "bias": bv, "FCW": fcv},
        outputs=["out", "conv"],
        reference={"out": out_ref, "conv": conv_ref},
        meta={"category": "ML", "table1": f"Size: {hw}x{hw}"},
    )


def _ic_reference(xv, wv, bv, fcv, hw, cin, cout, classes):
    oh = hw - 2
    ph = oh // 2
    conv = [0] * (cout * oh * oh)
    for oc in range(cout):
        for oy in range(oh):
            for ox in range(oh):
                acc = bv[oc]
                for ci in range(cin):
                    for ky in range(3):
                        for kx in range(3):
                            acc += (
                                xv[(ci * hw + oy + ky) * hw + ox + kx]
                                * wv[oc * cin * 9 + ci * 9 + ky * 3 + kx]
                            )
                conv[(oc * oh + oy) * oh + ox] = max(0, acc)
    pooled = [0] * (cout * ph * ph)
    for oc in range(cout):
        for py in range(ph):
            for px in range(ph):
                base = (oc * oh + py * 2) * oh + px * 2
                pooled[(oc * ph + py) * ph + px] = max(
                    conv[base],
                    conv[base + 1],
                    conv[base + oh],
                    conv[base + oh + 1],
                )
    feat = cout * ph * ph
    out = [
        sum(fcv[cl * feat + f] * pooled[f] for f in range(feat))
        for cl in range(classes)
    ]
    return conv, pooled, out


def build_vww(scale: str = "small", seed: int = 0) -> WorkloadInstance:
    require_scale(scale)
    hw, chans, cout, classes = VWW_SIZES[scale]
    oh = hw - 2
    b = KernelBuilder("vww", params=["hw", "ch", "cout", "classes"])
    x = b.array("X", chans * hw * hw)
    dw = b.array("DW", chans * 9)
    pw = b.array("PW", cout * chans)
    dwo = b.array("dwo", chans * oh * oh)
    fcw = b.array("FCW", classes * cout * oh * oh)
    out = b.array("out", classes)
    oh_e = b.p.hw - 2
    with b.parfor("c", 0, b.p.ch) as c:
        with b.for_("p", 0, oh_e * oh_e) as p:
            oy = b.let("oy", p // oh_e)
            ox = b.let("ox", p % oh_e)
            acc = b.let("acc", 0)
            with b.for_("q", 0, 9) as q:
                ky = b.let("ky", q // 3)
                kx = b.let("kx", q % 3)
                b.set(
                    acc,
                    acc
                    + x.load((c * b.p.hw + oy + ky) * b.p.hw + ox + kx)
                    * dw.load(c * 9 + q),
                )
            dwo.store((c * oh_e + oy) * oh_e + ox, _relu(acc))
    # The 1x1 pointwise convolution (+ReLU) is fused into the classifier:
    # each FC feature is recomputed on the fly from the depthwise output.
    area = oh_e * oh_e
    feat = b.p.cout * area
    with b.parfor("cl", 0, b.p.classes) as cl:
        acc3 = b.let("acc3", 0)
        with b.for_("f", 0, feat) as f:
            oc = b.let("oc", f // area)
            p2 = b.let("p2", f % area)
            acc2 = b.let("acc2", 0)
            with b.for_("c2", 0, b.p.ch) as c2:
                b.set(
                    acc2,
                    acc2
                    + dwo.load(c2 * area + p2) * pw.load(oc * b.p.ch + c2),
                )
            b.set(acc3, acc3 + fcw.load(cl * feat + f) * _relu(acc2))
        out.store(cl, acc3)
    kernel = b.build()

    xv = random_ints(chans * hw * hw, seed, 0, 4)
    dwv = random_ints(chans * 9, seed + 1, -2, 2)
    pwv = random_ints(cout * chans, seed + 2, -2, 2)
    fcv = random_ints(classes * cout * oh * oh, seed + 3, -2, 2)
    out_ref = _vww_reference(xv, dwv, pwv, fcv, hw, chans, cout, classes)
    return WorkloadInstance(
        name="vww",
        kernel=kernel,
        params={"hw": hw, "ch": chans, "cout": cout, "classes": classes},
        arrays={"X": xv, "DW": dwv, "PW": pwv, "FCW": fcv},
        outputs=["out"],
        reference={"out": out_ref},
        meta={"category": "ML", "table1": f"Size: {hw}x{hw}"},
    )


def _vww_reference(xv, dwv, pwv, fcv, hw, chans, cout, classes):
    oh = hw - 2
    area = oh * oh
    dwo = [0] * (chans * area)
    for c in range(chans):
        for oy in range(oh):
            for ox in range(oh):
                acc = 0
                for ky in range(3):
                    for kx in range(3):
                        acc += (
                            xv[(c * hw + oy + ky) * hw + ox + kx]
                            * dwv[c * 9 + ky * 3 + kx]
                        )
                dwo[(c * oh + oy) * oh + ox] = max(0, acc)
    pwo = [0] * (cout * area)
    for oc in range(cout):
        for p in range(area):
            acc = sum(
                dwo[c * area + p] * pwv[oc * chans + c]
                for c in range(chans)
            )
            pwo[oc * area + p] = max(0, acc)
    feat = cout * area
    return [
        sum(fcv[cl * feat + f] * pwo[f] for f in range(feat))
        for cl in range(classes)
    ]
