"""Workload registry: the 13 applications of Table 1."""

from __future__ import annotations

from repro.errors import ReproError
from repro.workloads.base import SCALES, WorkloadInstance
from repro.workloads.dense import build_dmv
from repro.workloads.dsp import build_fft
from repro.workloads.graph import build_tc
from repro.workloads.nn import build_ad, build_ic, build_vww
from repro.workloads.sort import build_mergesort
from repro.workloads.sparse import (
    build_spadd,
    build_spmspm,
    build_spmspv,
    build_spmv,
)
from repro.workloads.stencil import build_heat3d, build_jacobi2d

#: Table 1 order.
BUILDERS = {
    "dmv": build_dmv,
    "jacobi2d": build_jacobi2d,
    "heat3d": build_heat3d,
    "spmv": build_spmv,
    "spmspm": build_spmspm,
    "spmspv": build_spmspv,
    "spadd": build_spadd,
    "tc": build_tc,
    "mergesort": build_mergesort,
    "fft": build_fft,
    "ad": build_ad,
    "ic": build_ic,
    "vww": build_vww,
}

ALL_WORKLOADS = tuple(BUILDERS)


def make_workload(
    name: str, scale: str = "small", seed: int = 0
) -> WorkloadInstance:
    """Instantiate a Table 1 workload at the given scale."""
    try:
        builder = BUILDERS[name]
    except KeyError:
        raise ReproError(
            f"unknown workload {name!r}; available: {sorted(BUILDERS)}"
        ) from None
    return builder(scale=scale, seed=seed)


def all_workloads(scale: str = "small", seed: int = 0):
    """Yield every Table 1 workload instance."""
    for name in ALL_WORKLOADS:
        yield make_workload(name, scale=scale, seed=seed)


__all__ = ["ALL_WORKLOADS", "BUILDERS", "SCALES", "all_workloads", "make_workload"]
