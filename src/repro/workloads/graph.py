"""Graph processing: triangle counting (tc, GAPBS-derived, Table 1).

For every edge (u, v) with u < v, intersect the sorted adjacency lists of
u and v counting common neighbors w > v, so each triangle u < v < w is
counted exactly once. The neighbor intersection is the same stream-join
recurrence as spmspv — its adjacency loads are class-A critical.
"""

from __future__ import annotations

from repro.ir.builder import KernelBuilder
from repro.workloads.base import WorkloadInstance, require_scale
from repro.workloads.data import random_graph_csr

#: (nodes, density); paper: 4096 nodes at 5% density.
TC_SIZES = {"tiny": (10, 0.3), "small": (28, 0.18), "paper": (4096, 0.05)}


def build_tc(scale: str = "small", seed: int = 0) -> WorkloadInstance:
    require_scale(scale)
    nodes, density = TC_SIZES[scale]
    pos, crd = random_graph_csr(nodes, density, seed)
    b = KernelBuilder("tc", params=["n"])
    pos_a = b.array("pos", nodes + 1)
    crd_a = b.array("crd", max(1, len(crd)))
    counts = b.array("counts", nodes)
    with b.parfor("u", 0, b.p.n) as u:
        ubeg = pos_a.load(u, "ubeg")
        uend = pos_a.load(u + 1, "uend")
        cnt = b.let("cnt", 0)
        with b.for_("k", ubeg, uend) as k:
            v = crd_a.load(k, "v")
            with b.if_(u < v):
                iu = b.let("iu", ubeg)
                iv = b.let("iv", pos_a.load(v, "vbeg"))
                vend = pos_a.load(v + 1, "vend")
                with b.while_((iu < uend) & (iv < vend)):
                    wu = crd_a.load(iu, "wu")  # class A
                    wv = crd_a.load(iv, "wv")  # class A
                    with b.if_(wu.eq(wv) & (wu > v)):
                        b.set(cnt, cnt + 1)
                    b.set(iu, iu + (wu <= wv))
                    b.set(iv, iv + (wv <= wu))
        counts.store(u, cnt)
    kernel = b.build()

    reference = _count_triangles(pos, crd, nodes)
    return WorkloadInstance(
        name="tc",
        kernel=kernel,
        params={"n": nodes},
        arrays={"pos": pos, "crd": crd or [0]},
        outputs=["counts"],
        reference={"counts": reference},
        meta={
            "category": "graph processing",
            "table1": f"Nodes: {nodes}, Density: {density:.0%}",
            "total_triangles": sum(reference),
        },
    )


def _count_triangles(pos: list, crd: list, nodes: int) -> list[int]:
    neighbor_sets = [
        set(crd[pos[u]:pos[u + 1]]) for u in range(nodes)
    ]
    counts = [0] * nodes
    for u in range(nodes):
        for v in crd[pos[u]:pos[u + 1]]:
            if u < v:
                counts[u] += sum(
                    1
                    for w in neighbor_sets[u] & neighbor_sets[v]
                    if w > v
                )
    return counts
