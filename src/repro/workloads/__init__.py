"""The paper's 13 evaluation workloads (Table 1), as kernel-IR programs."""

from repro.workloads.base import SCALES, WorkloadInstance
from repro.workloads.registry import (
    ALL_WORKLOADS,
    BUILDERS,
    all_workloads,
    make_workload,
)

__all__ = [
    "ALL_WORKLOADS",
    "BUILDERS",
    "SCALES",
    "WorkloadInstance",
    "all_workloads",
    "make_workload",
]
