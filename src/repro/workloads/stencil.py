"""Stencils: jacobi2d and heat3d (Polybench-derived, Table 1).

Both use two ping-pong buffers with two row-parallel sweeps per step, so
consecutive sweeps are linked by read-after-write memory ordering — these
are the workloads the paper calls out as "particularly latency sensitive
because their DFGs feature memory ordering".
"""

from __future__ import annotations

from repro.ir.builder import KernelBuilder
from repro.workloads.base import WorkloadInstance, require_scale
from repro.workloads.data import random_ints

#: (grid n, ping-pong step pairs); paper: 200x200 / 100 steps.
JACOBI_SIZES = {"tiny": (6, 1), "small": (14, 2), "paper": (200, 50)}
#: (grid n, step pairs); paper: 40x40x40 / 80 steps (we cube a smaller n).
HEAT_SIZES = {"tiny": (4, 1), "small": (6, 2), "paper": (40, 40)}


def _jacobi_sweep(b, src, dst, n_param, prefix: str) -> None:
    """One 5-point interior sweep dst <- avg(src).

    The interior is traversed as a single collapsed loop (the row/column
    are decoded from the flat index) so the whole sweep fits one small
    loop spine — the kind of restructuring an SDA programmer does to fit
    more spatial parallelism on the fabric.
    """
    inner = n_param - 2
    with b.parfor(f"p{prefix}", 0, inner * inner) as p:
        i = b.let(f"i{prefix}", p // inner + 1)
        j = b.let(f"j{prefix}", p % inner + 1)
        center = src.load(i * n_param + j)
        total = (
            center
            + src.load((i - 1) * n_param + j)
            + src.load((i + 1) * n_param + j)
            + src.load(i * n_param + j - 1)
            + src.load(i * n_param + j + 1)
        )
        dst.store(i * n_param + j, total // 5)


def build_jacobi2d(scale: str = "small", seed: int = 0) -> WorkloadInstance:
    require_scale(scale)
    n, pairs = JACOBI_SIZES[scale]
    b = KernelBuilder("jacobi2d", params=["n", "pairs"])
    a_grid = b.array("A", n * n)
    b_grid = b.array("B", n * n)
    with b.for_("t", 0, b.p.pairs):
        _jacobi_sweep(b, a_grid, b_grid, b.p.n, "a")
        _jacobi_sweep(b, b_grid, a_grid, b.p.n, "b")
    kernel = b.build()

    a_data = random_ints(n * n, seed, 0, 64)
    reference_a = list(a_data)
    reference_b = [0] * (n * n)
    for _ in range(pairs):
        _jacobi_ref(reference_a, reference_b, n)
        _jacobi_ref(reference_b, reference_a, n)
    return WorkloadInstance(
        name="jacobi2d",
        kernel=kernel,
        params={"n": n, "pairs": pairs},
        arrays={"A": a_data},
        outputs=["A", "B"],
        reference={"A": reference_a, "B": reference_b},
        meta={
            "category": "stencil",
            "table1": f"Size: {n}x{n}, {2 * pairs} steps",
        },
    )


def _jacobi_ref(src: list, dst: list, n: int) -> None:
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            total = (
                src[i * n + j]
                + src[(i - 1) * n + j]
                + src[(i + 1) * n + j]
                + src[i * n + j - 1]
                + src[i * n + j + 1]
            )
            dst[i * n + j] = total // 5


def _heat_sweep(b, src, dst, n_param, prefix: str) -> None:
    """One 7-point interior sweep on an n^3 grid (collapsed interior).

    Neighbor addresses are strength-reduced to ``base +- {1, n, n^2}``;
    the +-n and +-n^2 offsets are launch-time constants, so each neighbor
    costs a single add.
    """
    inner = n_param - 2
    stride_j = n_param
    stride_i = n_param * n_param
    with b.parfor(f"p{prefix}", 0, inner * inner * inner) as p:
        i = b.let(f"i{prefix}", p // (inner * inner) + 1)
        rem = b.let(f"rem{prefix}", p % (inner * inner))
        j = b.let(f"j{prefix}", rem // inner + 1)
        k = b.let(f"k{prefix}", rem % inner + 1)
        base = b.let(f"base{prefix}", (i * n_param + j) * n_param + k)
        center = src.load(base)
        total = (
            center * 2
            + src.load(base - stride_i)
            + src.load(base + stride_i)
            + src.load(base - stride_j)
            + src.load(base + stride_j)
            + src.load(base - 1)
            + src.load(base + 1)
        )
        dst.store(base, total // 8)


def build_heat3d(scale: str = "small", seed: int = 0) -> WorkloadInstance:
    require_scale(scale)
    n, pairs = HEAT_SIZES[scale]
    b = KernelBuilder("heat3d", params=["n", "pairs"])
    a_grid = b.array("A", n * n * n)
    b_grid = b.array("B", n * n * n)
    with b.for_("t", 0, b.p.pairs):
        _heat_sweep(b, a_grid, b_grid, b.p.n, "a")
        _heat_sweep(b, b_grid, a_grid, b.p.n, "b")
    kernel = b.build()

    a_data = random_ints(n * n * n, seed, 0, 64)
    ref_a = list(a_data)
    ref_b = [0] * (n * n * n)
    for _ in range(pairs):
        _heat_ref(ref_a, ref_b, n)
        _heat_ref(ref_b, ref_a, n)
    return WorkloadInstance(
        name="heat3d",
        kernel=kernel,
        params={"n": n, "pairs": pairs},
        arrays={"A": a_data},
        outputs=["A", "B"],
        reference={"A": ref_a, "B": ref_b},
        meta={
            "category": "stencil",
            "table1": f"Size: {n}x{n}x{n}, {2 * pairs} steps",
        },
    )


def _heat_ref(src: list, dst: list, n: int) -> None:
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            for k in range(1, n - 1):
                base = (i * n + j) * n + k
                total = (
                    src[base] * 2
                    + src[((i - 1) * n + j) * n + k]
                    + src[((i + 1) * n + j) * n + k]
                    + src[(i * n + j - 1) * n + k]
                    + src[(i * n + j + 1) * n + k]
                    + src[base - 1]
                    + src[base + 1]
                )
                dst[base] = total // 8
