"""Dense linear algebra: dmv (dense matrix-vector product, Table 1)."""

from __future__ import annotations

from repro.ir.builder import KernelBuilder
from repro.workloads.base import WorkloadInstance, require_scale
from repro.workloads.data import random_ints

#: (rows, cols) per scale; the paper uses 1024x1024.
DMV_SIZES = {"tiny": (8, 8), "small": (32, 32), "paper": (1024, 1024)}


def build_dmv(scale: str = "small", seed: int = 0) -> WorkloadInstance:
    """y = A @ x over integers, row-parallel."""
    require_scale(scale)
    n, m = DMV_SIZES[scale]
    b = KernelBuilder("dmv", params=["n", "m"])
    a_mat = b.array("A", n * m)
    x_vec = b.array("x", m)
    y_vec = b.array("y", n)
    with b.parfor("r", 0, b.p.n) as r:
        acc = b.let("acc", 0)
        with b.for_("j", 0, b.p.m) as j:
            b.set(acc, acc + a_mat.load(r * b.p.m + j) * x_vec.load(j))
        y_vec.store(r, acc)
    kernel = b.build()

    a_data = random_ints(n * m, seed, -4, 4)
    x_data = random_ints(m, seed + 1, -4, 4)
    reference = [
        sum(a_data[r * m + j] * x_data[j] for j in range(m))
        for r in range(n)
    ]
    return WorkloadInstance(
        name="dmv",
        kernel=kernel,
        params={"n": n, "m": m},
        arrays={"A": a_data, "x": x_data},
        outputs=["y"],
        reference={"y": reference},
        meta={
            "category": "dense linear algebra",
            "table1": f"Size: {n}x{m}",
        },
    )
