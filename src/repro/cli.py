"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``workloads`` — list the Table 1 applications;
* ``fabric`` — draw a fabric topology with its NUPEA domains;
* ``run`` — compile and simulate one workload on one configuration;
* ``profile`` — run with cycle-attribution tracing and print the stall
  taxonomy tables, latency percentiles, and traffic heatmaps;
* ``critpath`` — run with the dynamic critical-path profiler and print
  cycle-exact blame attribution (segment costs sum to ``system_cycles``),
  dynamic criticality and slack per load; ``--validate`` scores the
  static class-A/B heuristic against measured criticality on every
  Table 1 workload;
* ``trace`` — run with tracing and export a Chrome ``trace_event`` JSON
  (load it in Perfetto / ``chrome://tracing``);
* ``fdo`` — feedback-directed placement: iterate compile -> profiled
  run -> per-node blame -> reweighted PnR until the weight map or the
  makespan converges (see :mod:`repro.exp.fdo`);
* ``figure`` — regenerate one of the paper's evaluation figures;
* ``sweep`` — run a (workload x config x seed) sweep, optionally across
  worker processes sharing a persistent compile cache; supervised by
  the resilient sweep layer (``--timeout/--retries/--on-failure``),
  checkpointed to the manifest journal (``--resume``), and able to
  inject deterministic faults (``--fault-*``);
* ``cache`` — inspect, clear, or LRU-prune the persistent compile cache;
* ``table1`` — regenerate the workload-inventory table;
* ``dse`` — run the LS-PE placement design-space exploration;
* ``check`` — cross-layer conformance: run the three-way differential
  oracle (IR interpreter vs. DFG token interpreter vs. cycle-level
  simulator, with the static lint pass and runtime invariant checkers
  armed) over Table 1 workloads, and/or fuzz random kernels
  (``--fuzz N --seed S``), shrinking any divergence to a minimal JSON
  reproducer in the corpus directory.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.arch.fabric import TOPOLOGIES, build_fabric
from repro.arch.params import ArchParams
from repro.core.criticality import format_report
from repro.core.policy import POLICIES, get_policy
from repro.exp import figures as figures_mod
from repro.exp.configs import MONACO, ideal, numa, upea
from repro.exp.report import format_figure
from repro.exp.runner import PAPER_DIVIDER, compile_cached, run_config
from repro.exp.tables import format_table1, table1
from repro.pnr.viz import fabric_map, placement_map
from repro.sim.energy import estimate_energy
from repro.workloads.registry import ALL_WORKLOADS, make_workload

FIGURES = {
    "fig6c": figures_mod.fig6c,
    "fig11": figures_mod.fig11,
    "fig12": figures_mod.fig12,
    "fig14": figures_mod.fig14,
    "fig15": figures_mod.fig15,
    "fig16": figures_mod.fig16,
    "fig17": figures_mod.fig17,
    "stalls": figures_mod.fig_stalls,
    "jitter": figures_mod.fig_jitter,
    "critblame": figures_mod.fig_critblame,
    "fdo": figures_mod.fig_fdo,
}


def _config_for(name: str):
    if name == "monaco":
        return MONACO
    if name == "ideal":
        return ideal()
    if name.startswith("upea"):
        return upea(int(name[4:] or 2))
    if name.startswith("numa"):
        return numa(int(name.rsplit("a", 1)[-1] or 2))
    raise SystemExit(
        f"unknown config {name!r}; use monaco | ideal | upeaN | numaN"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NUPEA reproduction (ISCA 2025) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the Table 1 applications")

    p_fabric = sub.add_parser("fabric", help="draw a fabric topology")
    p_fabric.add_argument(
        "topology", choices=sorted(TOPOLOGIES), nargs="?", default="monaco"
    )
    p_fabric.add_argument("--rows", type=int, default=12)
    p_fabric.add_argument("--cols", type=int, default=12)

    p_run = sub.add_parser(
        "run", help="compile + simulate one workload"
    )
    p_run.add_argument("workload", choices=sorted(ALL_WORKLOADS))
    p_run.add_argument("--scale", default="small")
    p_run.add_argument(
        "--config", default="monaco",
        help="monaco | ideal | upeaN | numaN (default: monaco)",
    )
    p_run.add_argument(
        "--policy", choices=sorted(POLICIES), default="effcc"
    )
    p_run.add_argument("--rows", type=int, default=12)
    p_run.add_argument("--cols", type=int, default=12)
    p_run.add_argument("--topology", default="monaco")
    p_run.add_argument("--tracks", type=int, default=3)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--map", action="store_true", help="print the placement map"
    )
    p_run.add_argument(
        "--criticality", action="store_true",
        help="print the critical-load report",
    )
    p_run.add_argument(
        "--energy", action="store_true", help="print the energy estimate"
    )
    p_run.add_argument(
        "--no-cycle-skip", action="store_true",
        help="disable the event-driven cycle-skipping scheduler "
        "(results are bit-identical either way; this is the A/B knob)",
    )
    p_run.add_argument(
        "--stats-json", default=None, metavar="PATH",
        help="also write the run's SimStats as machine-readable JSON",
    )
    p_run.add_argument(
        "--portfolio-jobs", type=int, default=1, metavar="N",
        help="evaluate the mem-scale PnR portfolio on N processes "
        "(bit-identical result, just faster compiles)",
    )
    p_run.add_argument(
        "--naive-pnr", action="store_true",
        help="use the full-recompute anneal and full-reroute PathFinder "
        "(results are bit-identical either way; this is the A/B knob)",
    )
    p_run.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="CYCLES",
        help="snapshot the simulation every N system cycles (and on "
        "SIGTERM/SIGINT); resumable with --resume-from "
        "(see repro.sim.snapshot)",
    )
    p_run.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="snapshot file path (default: <workload>.snap when "
        "--checkpoint-every is set)",
    )
    p_run.add_argument(
        "--resume-from", default=None, metavar="PATH",
        help="continue a preempted simulation from this snapshot "
        "(bit-identical to an uninterrupted run); an invalid or "
        "mismatched snapshot is refused",
    )
    p_run.add_argument(
        "--profile-guided", action="store_true",
        help="refine class-B/C criticality by a profiling run on this "
        "instance's own inputs before placement "
        "(see repro.core.profile)",
    )

    def add_sim_args(p):
        p.add_argument("workload", choices=sorted(ALL_WORKLOADS))
        p.add_argument("--scale", default="small")
        p.add_argument(
            "--config", default="monaco",
            help="monaco | ideal | upeaN | numaN (default: monaco)",
        )
        p.add_argument(
            "--policy", choices=sorted(POLICIES), default="effcc"
        )
        p.add_argument("--rows", type=int, default=12)
        p.add_argument("--cols", type=int, default=12)
        p.add_argument("--topology", default="monaco")
        p.add_argument("--tracks", type=int, default=3)
        p.add_argument("--seed", type=int, default=0)

    p_profile = sub.add_parser(
        "profile",
        help="simulate with cycle-attribution tracing and print the "
        "stall-taxonomy tables and traffic heatmaps",
    )
    add_sim_args(p_profile)
    p_profile.add_argument(
        "--top", type=int, default=20,
        help="rows of the per-node attribution table (default 20)",
    )
    p_profile.add_argument(
        "--by-class", action="store_true",
        help="also fold the per-node stall buckets into criticality-"
        "class totals (A / B / C / non-mem)",
    )
    p_profile.add_argument(
        "--stats-json", default=None, metavar="PATH",
        help="also write the run's SimStats as machine-readable JSON",
    )

    p_crit = sub.add_parser(
        "critpath",
        help="simulate with the dynamic critical-path profiler and "
        "print cycle-exact blame attribution (costs sum to "
        "system_cycles); --validate scores the static class-A/B "
        "heuristic against measured criticality on every workload",
    )
    p_crit.add_argument(
        "workload", choices=sorted(ALL_WORKLOADS), nargs="?", default=None,
    )
    p_crit.add_argument("--scale", default="small")
    p_crit.add_argument(
        "--config", default="monaco",
        help="monaco | ideal | upeaN | numaN (default: monaco)",
    )
    p_crit.add_argument(
        "--policy", choices=sorted(POLICIES), default="effcc"
    )
    p_crit.add_argument("--rows", type=int, default=12)
    p_crit.add_argument("--cols", type=int, default=12)
    p_crit.add_argument("--topology", default="monaco")
    p_crit.add_argument("--tracks", type=int, default=3)
    p_crit.add_argument("--seed", type=int, default=0)
    p_crit.add_argument(
        "--top", type=int, default=10,
        help="rows of the critical-memory-node table (default 10)",
    )
    p_crit.add_argument(
        "--validate", action="store_true",
        help="run every Table 1 workload and print the static-vs-"
        "dynamic precision/recall table",
    )
    p_crit.add_argument(
        "--threshold", type=float, default=0.01,
        help="dynamic-criticality threshold for --validate and the "
        "per-workload confusion line (default 0.01)",
    )
    p_crit.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the full attribution report as JSON",
    )

    p_trace = sub.add_parser(
        "trace",
        help="simulate with tracing and export a Chrome trace_event "
        "JSON (Perfetto / chrome://tracing)",
    )
    add_sim_args(p_trace)
    p_trace.add_argument(
        "--out", default="trace.json", metavar="PATH",
        help="where to write the trace (default: trace.json)",
    )

    p_fdo = sub.add_parser(
        "fdo",
        help="feedback-directed placement: compile -> profiled run -> "
        "per-node blame -> reweighted PnR, iterated to convergence",
    )
    add_sim_args(p_fdo)
    p_fdo.add_argument(
        "--rounds", type=int, default=3, metavar="N",
        help="bound on feedback rounds after the static round 0 "
        "(default 3)",
    )
    p_fdo.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="append one deterministic JSONL record per round",
    )
    p_fdo.add_argument(
        "--portfolio-jobs", type=int, default=1, metavar="N",
        help="evaluate each round's PnR portfolio on N processes "
        "(bit-identical result and journal, just faster compiles)",
    )
    p_fdo.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the full round journal and outcome as JSON",
    )

    p_fig = sub.add_parser(
        "figure", help="regenerate one evaluation figure"
    )
    p_fig.add_argument("name", choices=sorted(FIGURES))
    p_fig.add_argument("--scale", default="small")
    p_fig.add_argument(
        "--workloads", nargs="*", default=None,
        help="subset of workloads (fig11/12/14/15, stalls, jitter)",
    )
    p_fig.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for the simulation sweep (fig11 only)",
    )

    p_sweep = sub.add_parser(
        "sweep",
        help="run a (workload x config x seed) sweep, optionally parallel",
    )
    p_sweep.add_argument(
        "--workloads", nargs="*", default=["spmspv", "dmv"],
        help="workloads to sweep (default: spmspv dmv)",
    )
    p_sweep.add_argument(
        "--configs", nargs="*", default=["ideal", "upea2", "numa2", "monaco"],
        help="configs: monaco | ideal | upeaN | numaN",
    )
    p_sweep.add_argument("--scale", default="small")
    p_sweep.add_argument(
        "--seeds", nargs="*", type=int, default=[0],
        help="input seeds (one run per workload x config x seed)",
    )
    p_sweep.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes (<=1 runs in-process)",
    )
    p_sweep.add_argument(
        "--cache-dir", default=None,
        help="persistent compile-cache directory shared across workers "
        "(default: the user cache dir; see repro.exp.cache)",
    )
    p_sweep.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="append one JSONL manifest record per run "
        "(see repro.obs.manifest)",
    )
    p_sweep.add_argument(
        "--stats-json", default=None, metavar="PATH",
        help="write every run's SimStats as one machine-readable JSON map",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="skip points the manifest journal proves already completed "
        "(requires --manifest; see repro.exp.resilient)",
    )
    p_sweep.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget (SIGALRM in the worker)",
    )
    p_sweep.add_argument(
        "--retries", type=int, default=2,
        help="retry budget per point for transient failures (default 2)",
    )
    p_sweep.add_argument(
        "--on-failure", choices=["abort", "skip", "retry"], default="abort",
        help="abort: fail fast (default); skip: record and move on; "
        "retry: perturb the placement seed for PnR failures, then skip",
    )
    p_sweep.add_argument(
        "--backoff", type=float, default=0.0, metavar="SECONDS",
        help="base for exponential backoff between retries (default 0)",
    )
    p_sweep.add_argument(
        "--snapshot-dir", default=None, metavar="DIR",
        help="arm mid-simulation checkpointing: jobs snapshot to "
        "DIR/<point_digest>.snap, a SIGTERMed or timed-out job "
        "snapshots during its grace period, and a retried or --resume'd "
        "point continues from its snapshot instead of cycle 0",
    )
    p_sweep.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="CYCLES",
        help="periodic snapshot cadence per job in system cycles "
        "(default 0 = snapshot only on preemption; implies a default "
        "--snapshot-dir of 'snapshots' when none is given)",
    )
    p_sweep.add_argument(
        "--grace", type=float, default=5.0, metavar="SECONDS",
        help="seconds a timed-out job may spend writing its snapshot "
        "before the hard kill (default 5)",
    )
    p_sweep.add_argument(
        "--profile-guided", action="store_true",
        help="compile every point with profile-refined criticality "
        "(each point profiles its own instance; the manifest identity "
        "gains a profile marker, so static and profiled journals never "
        "mix on --resume)",
    )
    fault_group = p_sweep.add_argument_group(
        "fault injection",
        "deterministic fault injection (repro.sim.faults); all default "
        "to off, and an all-off run is bit-identical to a build without "
        "the fault layer",
    )
    fault_group.add_argument("--fault-seed", type=int, default=0)
    fault_group.add_argument(
        "--fault-mem-delay-prob", type=float, default=0.0,
        help="probability a memory response is delayed",
    )
    fault_group.add_argument(
        "--fault-mem-delay-cycles", type=int, default=8,
        help="delay added to a jittered response (system cycles)",
    )
    fault_group.add_argument(
        "--fault-mem-drop-prob", type=float, default=0.0,
        help="probability a memory response is dropped (never delivered)",
    )
    fault_group.add_argument(
        "--fault-pe-stall-prob", type=float, default=0.0,
        help="probability a ready node firing is suppressed for a tick",
    )
    fault_group.add_argument(
        "--fault-grant-skip-prob", type=float, default=0.0,
        help="probability an FM-NoC arbitration grant is skipped",
    )

    p_cache = sub.add_parser(
        "cache", help="inspect or maintain the persistent compile cache"
    )
    p_cache.add_argument(
        "action", choices=["info", "clear", "prune"],
        help="info: show both layers; clear: delete all disk entries; "
        "prune: evict LRU entries down to --max-size",
    )
    p_cache.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default: the user cache dir)",
    )
    p_cache.add_argument(
        "--max-size", default="256M", metavar="BYTES",
        help="prune target; accepts suffixes K/M/G (default 256M)",
    )

    p_table = sub.add_parser("table1", help="regenerate Table 1")
    p_table.add_argument("--scale", default="small")

    p_dse = sub.add_parser(
        "dse", help="LS-PE placement design-space exploration"
    )
    p_dse.add_argument(
        "--workloads", nargs="*", default=["spmspv", "dmv"]
    )
    p_dse.add_argument("--scale", default="small")

    p_regions = sub.add_parser(
        "regions",
        help="split an oversized workload into bitstream regions and run",
    )
    p_regions.add_argument("workload", choices=sorted(ALL_WORKLOADS))
    p_regions.add_argument("--scale", default="tiny")
    p_regions.add_argument("--rows", type=int, default=10)
    p_regions.add_argument("--cols", type=int, default=10)
    p_regions.add_argument("--seed", type=int, default=0)

    p_check = sub.add_parser(
        "check",
        help="cross-layer conformance: differential oracle + random fuzzing",
    )
    p_check.add_argument(
        "workloads", nargs="*", metavar="workload",
        help="workloads to check (default with --all: every Table 1 app)",
    )
    p_check.add_argument(
        "--all", action="store_true",
        help="run the three-way oracle on all Table 1 workloads",
    )
    p_check.add_argument("--scale", default="tiny")
    p_check.add_argument("--seed", type=int, default=0)
    p_check.add_argument(
        "--fuzz", type=int, default=None, metavar="N",
        help="generate and oracle-check N random kernels",
    )
    p_check.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="directory for shrunken fuzz reproducers "
        "(default: checks/corpus when fuzzing)",
    )
    p_check.add_argument(
        "--no-shrink", action="store_true",
        help="keep failing fuzz kernels at full size (faster triage off)",
    )
    p_check.add_argument(
        "--json", action="store_true",
        help="print machine-readable reports instead of the summary table",
    )

    return parser


def cmd_workloads(_args) -> int:
    for row in table1(scale="tiny"):
        print(
            f"{row['application']:12s} {row['category']:24s} "
            f"paper: {row['paper_input']}"
        )
    return 0


def cmd_fabric(args) -> int:
    print(fabric_map(build_fabric(args.topology, args.rows, args.cols)))
    return 0


def cmd_run(args) -> int:
    from repro.arch.params import SimParams

    instance = make_workload(args.workload, scale=args.scale, seed=args.seed)
    checkpoint_path = args.checkpoint
    if checkpoint_path is None and args.checkpoint_every:
        checkpoint_path = f"{args.workload}.snap"
    arch = ArchParams(
        noc_tracks=args.tracks,
        sim=SimParams(
            cycle_skip=not args.no_cycle_skip,
            checkpoint_path=checkpoint_path,
            checkpoint_every=args.checkpoint_every,
        ),
    )
    fabric = build_fabric(args.topology, args.rows, args.cols)
    policy = get_policy(args.policy)
    compiled = compile_cached(
        instance,
        fabric,
        arch,
        policy=policy,
        seed=args.seed,
        incremental=not args.naive_pnr,
        portfolio_jobs=args.portfolio_jobs,
        profile_guided=args.profile_guided,
    )
    print(compiled.summary())
    profile_report = compiled.meta.get("profile")
    if profile_report is not None:
        promoted = profile_report.get("promoted", [])
        demoted = profile_report.get("demoted", [])
        print(
            f"profile-guided: promoted {len(promoted)} node(s) C->B "
            f"{promoted}, demoted {len(demoted)} node(s) B->C {demoted}"
        )
        if profile_report.get("note"):
            print(f"profile-guided: {profile_report['note']}")
    if compiled.pnr is not None:
        pnr = compiled.pnr
        print(
            f"pnr: {pnr.total_wall_s:.2f}s compile "
            f"({pnr.moves_per_s:,.0f} moves/s, "
            f"{pnr.route_iterations} route iters, "
            f"{pnr.nets_rerouted} reroutes, "
            f"{pnr.candidates} candidates x {pnr.portfolio_jobs} jobs)"
        )
    if args.criticality:
        print(format_report(compiled.dfg, compiled.criticality))
    if args.map:
        print(placement_map(compiled))
    config = _config_for(args.config)
    divider = max(PAPER_DIVIDER, compiled.timing.clock_divider)
    from repro.errors import SimulationPreempted

    try:
        run = run_config(
            instance, compiled, config, arch, divider=divider,
            resume_from=args.resume_from,
        )
    except SimulationPreempted as exc:
        # Exit 75 (EX_TEMPFAIL): the run was preempted but left a
        # resumable snapshot — rerun with --resume-from to continue.
        print(f"preempted at cycle {exc.cycle}: snapshot written to "
              f"{exc.snapshot_path}")
        print(f"resume with: repro run {args.workload} --scale {args.scale} "
              f"--config {args.config} --resume-from {exc.snapshot_path}")
        return 75
    if run.resume_info is not None:
        print(
            f"resumed from {run.resume_info['snapshot']} at cycle "
            f"{run.resume_info['from_cycle']}"
        )
    print(
        f"{args.workload} on {config.name}: {run.cycles} system cycles "
        f"(output verified)"
    )
    print("stats:", run.stats.summary())
    if args.energy:
        print("energy:", estimate_energy(run.stats).summary())
    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as fh:
            json.dump(_stats_payload(run.stats), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"stats JSON written to {args.stats_json}")
    return 0


def _stats_payload(stats) -> dict:
    """``--stats-json`` payload: the full stats dict plus the energy
    breakdown (deterministic from stable counters, so machine consumers
    get the Sec. 1 headline metric without re-pricing the run)."""
    return {**stats.to_dict(), "energy": estimate_energy(stats).to_dict()}


def _traced_run(args, trace_path=None):
    """Shared setup for ``profile`` and ``trace``: one traced simulation."""
    from repro.arch.params import SimParams

    instance = make_workload(args.workload, scale=args.scale, seed=args.seed)
    arch = ArchParams(
        noc_tracks=args.tracks,
        sim=SimParams(trace=True, trace_path=trace_path),
    )
    fabric = build_fabric(args.topology, args.rows, args.cols)
    policy = get_policy(args.policy)
    compiled = compile_cached(
        instance, fabric, arch, policy=policy, seed=args.seed
    )
    config = _config_for(args.config)
    divider = max(PAPER_DIVIDER, compiled.timing.clock_divider)
    run = run_config(instance, compiled, config, arch, divider=divider)
    return fabric, compiled, config, run


def _critpath_run(args, workload: str):
    """One profiled run: compile ``workload`` and simulate with the
    critical-path recorder attached."""
    from repro.arch.params import SimParams

    instance = make_workload(workload, scale=args.scale, seed=args.seed)
    arch = ArchParams(
        noc_tracks=args.tracks, sim=SimParams(critpath=True)
    )
    fabric = build_fabric(args.topology, args.rows, args.cols)
    policy = get_policy(args.policy)
    compiled = compile_cached(
        instance, fabric, arch, policy=policy, seed=args.seed
    )
    config = _config_for(args.config)
    divider = max(PAPER_DIVIDER, compiled.timing.clock_divider)
    run = run_config(instance, compiled, config, arch, divider=divider)
    return compiled, config, run


def cmd_critpath(args) -> int:
    from repro.core.criticality import (
        format_validation_table,
        validate_against_dynamic,
    )

    if args.validate:
        rows = []
        reports = {}
        for name in sorted(ALL_WORKLOADS):
            compiled, config, run = _critpath_run(args, name)
            recorder = run.obs.critpath
            rows.extend(
                validate_against_dynamic(
                    name,
                    compiled.criticality,
                    recorder.dynamic_criticality(),
                    threshold=args.threshold,
                )
            )
            reports[name] = recorder.report
            print(
                f"{name:12s} {run.cycles:>10d} cycles on {config.name} "
                "(output verified)"
            )
        print()
        print(format_validation_table(rows, args.threshold))
        if args.json:
            payload = {
                "threshold": args.threshold,
                "rows": [
                    {
                        "workload": r.workload,
                        "classes": r.classes,
                        "predicted": r.predicted,
                        "actual": r.actual,
                        "true_positive": r.true_positive,
                        "precision": r.precision,
                        "recall": r.recall,
                    }
                    for r in rows
                ],
                "reports": reports,
            }
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"validation JSON written to {args.json}")
        return 0
    if args.workload is None:
        raise SystemExit("pass a workload, or --validate for all of them")
    compiled, config, run = _critpath_run(args, args.workload)
    recorder = run.obs.critpath
    print(compiled.summary())
    print(
        f"{args.workload} on {config.name}: {run.cycles} system cycles "
        f"(output verified)"
    )
    print("stats:", run.stats.summary())
    print()
    print(recorder.render(top=args.top))
    print()
    rows = validate_against_dynamic(
        args.workload,
        compiled.criticality,
        recorder.dynamic_criticality(),
        threshold=args.threshold,
    )
    print(format_validation_table(rows, args.threshold))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(recorder.report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"attribution JSON written to {args.json}")
    return 0


def cmd_profile(args) -> int:
    fabric, compiled, config, run = _traced_run(args)
    print(compiled.summary())
    print(
        f"{args.workload} on {config.name}: {run.cycles} system cycles "
        f"(output verified)"
    )
    print("stats:", run.stats.summary())
    obs = run.obs
    print()
    print(obs.attribution.render(top=args.top))
    if args.by_class:
        print()
        print(obs.attribution.render_by_class())
    agg = obs.attribution.aggregate()
    attributed = sum(agg.values())
    n_nodes = max(1, len(obs.attribution.per_node))
    print(
        f"attributed {attributed // n_nodes} cycles/node over "
        f"{n_nodes} nodes vs {run.cycles} system cycles"
    )
    print()
    print(obs.noc_heatmap.render(fabric.rows, fabric.cols))
    print()
    print(obs.fmnoc_heatmap.render())
    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as fh:
            json.dump(_stats_payload(run.stats), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"stats JSON written to {args.stats_json}")
    return 0


def cmd_trace(args) -> int:
    _fabric, _compiled, config, run = _traced_run(args, trace_path=args.out)
    print(
        f"{args.workload} on {config.name}: {run.cycles} system cycles "
        f"(output verified)"
    )
    n_events = len(run.obs.chrome.events)
    print(
        f"{n_events} timeline events (+ metadata) written to {args.out} "
        "(load in Perfetto or chrome://tracing)"
    )
    return 0


def cmd_fdo(args) -> int:
    from repro.exp.fdo import run_fdo

    result = run_fdo(
        args.workload,
        rounds=args.rounds,
        scale=args.scale,
        seed=args.seed,
        config=_config_for(args.config),
        arch=ArchParams(noc_tracks=args.tracks),
        fabric_spec=(args.topology, args.rows, args.cols),
        policy=get_policy(args.policy),
        portfolio_jobs=args.portfolio_jobs,
        manifest_path=args.manifest,
    )
    print(result.summary())
    if args.manifest:
        print(f"round journal appended to {args.manifest}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"fdo JSON written to {args.json}")
    return 0


def cmd_figure(args) -> int:
    fig = FIGURES[args.name]
    kwargs = {"scale": args.scale}
    if args.workloads and args.name in (
        "fig11", "fig12", "fig14", "fig15", "stalls", "jitter",
        "critblame", "fdo",
    ):
        kwargs["workloads"] = args.workloads
    if args.jobs > 1 and args.name == "fig11":
        kwargs["jobs"] = args.jobs
    print(format_figure(fig(**kwargs)))
    return 0


def _fault_params(args):
    """``FaultParams`` from the sweep's fault flags, or None when all off."""
    from repro.arch.params import FaultParams

    params = FaultParams(
        seed=args.fault_seed,
        mem_delay_prob=args.fault_mem_delay_prob,
        mem_delay_cycles=args.fault_mem_delay_cycles,
        mem_drop_prob=args.fault_mem_drop_prob,
        pe_stall_prob=args.fault_pe_stall_prob,
        grant_skip_prob=args.fault_grant_skip_prob,
    )
    return params if params.active() else None


def cmd_sweep(args) -> int:
    from dataclasses import replace

    from repro.exp.cache import default_cache_dir
    from repro.exp.resilient import SweepPolicy, run_resilient

    configs = [_config_for(name) for name in args.configs]
    cache_dir = args.cache_dir or default_cache_dir()
    arch = ArchParams()
    faults = _fault_params(args)
    if faults is not None:
        arch = replace(arch, sim=replace(arch.sim, faults=faults))
        print(f"fault injection on: {faults.signature()}")
    snapshot_dir = args.snapshot_dir
    if snapshot_dir is None and args.checkpoint_every:
        snapshot_dir = "snapshots"
    sweep_policy = SweepPolicy(
        job_timeout_s=args.timeout,
        max_retries=args.retries,
        backoff_s=args.backoff,
        on_failure=args.on_failure,
        checkpoint_every=args.checkpoint_every,
        grace_s=args.grace,
    )
    outcome = run_resilient(
        args.workloads,
        configs,
        scale=args.scale,
        seeds=tuple(args.seeds),
        arch=arch,
        max_workers=args.jobs,
        cache_dir=cache_dir,
        manifest_path=args.manifest,
        sweep_policy=sweep_policy,
        resume=args.resume,
        snapshot_dir=snapshot_dir,
        profile_guided=args.profile_guided,
    )
    results = outcome.results
    width = max(len(w) for w in args.workloads)
    for (workload, config, seed), run in sorted(results.items()):
        resumed = (
            f" [resumed from cycle {run.resume_info['from_cycle']}]"
            if run.resume_info
            else ""
        )
        print(
            f"{workload:{width}s} {config:12s} seed={seed} "
            f"{run.cycles:>10d} cycles (output verified){resumed}"
        )
    if outcome.skipped:
        print(
            f"{len(outcome.skipped)} point(s) already journaled; skipped "
            "(--resume)"
        )
    for failure in outcome.failures:
        print(f"FAILED {failure.describe()}")
    if outcome.failures:
        print(
            f"{len(outcome.failures)} point(s) failed; "
            f"{len(results)} healthy result(s) above"
        )
    if args.manifest:
        print(f"manifest appended to {args.manifest}")
    if args.stats_json:
        payload = {
            f"{workload}/{config}/seed{seed}": _stats_payload(run.stats)
            for (workload, config, seed), run in sorted(results.items())
        }
        with open(args.stats_json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"stats JSON written to {args.stats_json}")
    return 1 if outcome.failures else 0


def _parse_size(text: str) -> int:
    """``"256M"`` -> bytes; bare numbers and K/M/G suffixes accepted."""
    text = text.strip().upper()
    factor = 1
    for suffix, mult in (("K", 1 << 10), ("M", 1 << 20), ("G", 1 << 30)):
        if text.endswith(suffix):
            text = text[: -len(suffix)]
            factor = mult
            break
    try:
        return int(float(text) * factor)
    except ValueError:
        raise SystemExit(f"unparsable size {text!r}; use e.g. 512K, 64M, 2G")


def cmd_cache(args) -> int:
    from repro.exp.cache import GLOBAL_CACHE, default_cache_dir

    GLOBAL_CACHE.enable_disk(args.cache_dir or default_cache_dir())
    swept = GLOBAL_CACHE.sweep_stale_tmp()
    if swept:
        print(f"swept {swept} stale .tmp file(s)")
    if args.action == "info":
        info = GLOBAL_CACHE.info()
        print(f"disk dir:     {info['disk_dir']}")
        print(f"disk entries: {info['disk_entries']}")
        print(f"disk bytes:   {info['disk_bytes']}")
        print(f"schema:       v{info['schema']}")
    elif args.action == "clear":
        removed = GLOBAL_CACHE.clear_disk()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}")
    elif args.action == "prune":
        max_bytes = _parse_size(args.max_size)
        evicted = GLOBAL_CACHE.prune(max_bytes)
        info = GLOBAL_CACHE.info()
        print(
            f"evicted {evicted} entr{'y' if evicted == 1 else 'ies'}; "
            f"{info['disk_entries']} remain ({info['disk_bytes']} bytes "
            f"<= {max_bytes})"
        )
    return 0


def cmd_table1(args) -> int:
    print(format_table1(table1(scale=args.scale)))
    return 0


def cmd_dse(args) -> int:
    from repro.exp.dse import ls_placement_dse

    result = ls_placement_dse(
        workloads=tuple(args.workloads), scale=args.scale
    )
    print(format_figure(result, precision=0))
    return 0


def cmd_regions(args) -> int:
    from repro.arch.fabric import monaco as monaco_fabric
    from repro.pnr.regions import compile_region_program
    from repro.sim.regions import simulate_regions

    instance = make_workload(args.workload, scale=args.scale, seed=args.seed)
    arch = ArchParams()
    fabric = monaco_fabric(args.rows, args.cols)
    compiled = compile_region_program(
        instance.kernel, fabric, arch, seed=args.seed
    )
    print(
        f"{args.workload} split into {len(compiled)} region(s) on "
        f"{fabric.name}:"
    )
    for region, ck in zip(compiled.program.regions, compiled.compiled):
        print(
            f"  {ck.dfg.name:16s} {len(ck.dfg):4d} nodes, "
            f"par={ck.parallelism}, live-in={region.live_in}, "
            f"spills={sorted(region.spills)}"
        )
    result = simulate_regions(compiled, instance.params, instance.arrays, arch)
    instance.check(result.memory)
    print(
        f"total {result.total_cycles} system cycles "
        f"({result.regions} launches, per-region {result.region_cycles}); "
        "output verified"
    )
    return 0


def cmd_check(args) -> int:
    from repro.check.fuzz import fuzz as run_fuzz
    from repro.check.oracle import run_conformance

    status = 0
    names = list(args.workloads)
    for name in names:
        if name not in ALL_WORKLOADS:
            raise SystemExit(
                f"unknown workload {name!r}; choose from "
                f"{', '.join(sorted(ALL_WORKLOADS))}"
            )
    if args.all or names:
        reports = run_conformance(
            names or None, scale=args.scale, seed=args.seed
        )
        if args.json:
            print(json.dumps([r.to_dict() for r in reports], indent=2))
        else:
            for report in reports:
                print(report.describe())
        bad = [r for r in reports if not r.ok]
        print(
            f"conformance: {len(reports) - len(bad)}/{len(reports)} "
            f"workload(s) ok"
        )
        if bad:
            status = 1
    if args.fuzz is not None:
        corpus = args.corpus or "checks/corpus"

        def progress(index, state, detail):
            if state != "ok":
                print(f"  kernel {index:4d}: {state} {detail}")

        result = run_fuzz(
            args.fuzz,
            seed=args.seed,
            corpus_dir=corpus,
            shrink=not args.no_shrink,
            progress=progress,
        )
        print(
            f"fuzz: ran {result.ran} skipped {result.skipped} "
            f"failure(s) {len(result.failures)} in {result.wall_time:.1f}s"
        )
        for failure in result.failures:
            where = failure.path or "<unwritten>"
            print(f"  seed {failure.seed} kernel {failure.index}: {where}")
        if not result.ok:
            status = 1
    if not (args.all or names or args.fuzz is not None):
        raise SystemExit("nothing to do: pass workload names, --all, or --fuzz N")
    return status


COMMANDS = {
    "workloads": cmd_workloads,
    "fabric": cmd_fabric,
    "run": cmd_run,
    "profile": cmd_profile,
    "critpath": cmd_critpath,
    "trace": cmd_trace,
    "fdo": cmd_fdo,
    "figure": cmd_figure,
    "sweep": cmd_sweep,
    "cache": cmd_cache,
    "table1": cmd_table1,
    "dse": cmd_dse,
    "regions": cmd_regions,
    "check": cmd_check,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
