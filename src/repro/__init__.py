"""repro: a full-stack reproduction of NUPEA (ISCA 2025).

Non-Uniform Processing-Element Access: exposing non-uniform fabric-memory
latency in a spatial dataflow architecture and teaching the compiler to
place critical loads near memory. This package implements the complete
stack the paper evaluates:

* ``repro.ir`` — structured kernel IR and builder (the C/MLIR frontend's
  role),
* ``repro.dfg`` — dataflow graph, steering-control lowering, memory
  ordering, functional interpreter,
* ``repro.core`` — NUPEA domains, critical-load analysis, placement
  policies (the paper's contribution),
* ``repro.arch`` — the Monaco microarchitecture and clustered baselines,
* ``repro.pnr`` — NUPEA-aware simulated-annealing place-and-route,
* ``repro.sim`` — cycle-level simulator (fabric, fabric-memory NoC,
  banked memory + shared cache) with UPEA/NUMA baseline interconnects,
* ``repro.workloads`` — the 13 Table 1 applications,
* ``repro.exp`` — harness regenerating every evaluation figure.

Quickstart::

    from repro import (
        KernelBuilder, monaco, ArchParams, compile_kernel, simulate,
    )
    b = KernelBuilder("dot", params=["n"])
    x, y = b.array("x", 64), b.array("y", 64)
    out = b.array("out", 1)
    acc = b.let("acc", 0)
    with b.for_("i", 0, b.p.n) as i:
        b.set(acc, acc + x.load(i) * y.load(i))
    out.store(0, acc)
    compiled = compile_kernel(b.build(), monaco(12, 12), ArchParams())
    result = simulate(compiled, {"n": 64}, {"x": [1] * 64, "y": [2] * 64})
    print(result.memory["out"], result.stats.summary())
"""

from repro.arch import ArchParams, Fabric, build_fabric, monaco
from repro.core import (
    DOMAIN_AWARE,
    DOMAIN_UNAWARE,
    EFFCC,
    analyze_criticality,
    format_report,
)
from repro.dfg import lower_kernel, run_dfg
from repro.errors import ReproError
from repro.ir import KernelBuilder, parallelize, run_kernel
from repro.pnr import CompiledKernel, compile_kernel
from repro.sim import SimResult, simulate
from repro.workloads import ALL_WORKLOADS, all_workloads, make_workload

__version__ = "1.0.0"

__all__ = [
    "ALL_WORKLOADS",
    "ArchParams",
    "CompiledKernel",
    "DOMAIN_AWARE",
    "DOMAIN_UNAWARE",
    "EFFCC",
    "Fabric",
    "KernelBuilder",
    "ReproError",
    "SimResult",
    "all_workloads",
    "analyze_criticality",
    "build_fabric",
    "compile_kernel",
    "format_report",
    "lower_kernel",
    "make_workload",
    "monaco",
    "parallelize",
    "run_dfg",
    "run_kernel",
    "simulate",
    "__version__",
]
