"""Clock-divider rules (paper Sec. 4.2, "Clock divider").

Monaco's data NoC is bufferless: a token must cross its entire statically
routed path within one fabric clock. PnR's static timing therefore sets
the fabric clock divider from the longest routed path; the rest of the
system (memory, fabric-memory NoC) always runs at the system clock.
"""

from __future__ import annotations

import math

from repro.arch.params import TimingParams


def path_delay_units(hops: int, timing: TimingParams) -> float:
    """Delay units of a routed net with ``hops`` channel hops."""
    return timing.pe_logic_units + timing.hop_units * hops


def divider_for_max_hops(max_hops: int, timing: TimingParams) -> int:
    """Smallest clock divider covering the longest routed path."""
    units = path_delay_units(max_hops, timing)
    return max(1, math.ceil(units / timing.system_period_units))
