"""Fabric-memory NoC structure (paper Fig. 9).

The fabric-memory NoC is disaggregated across LS rows: each row owns a
slice with one arbiter per NUPEA domain except D0. Arbiters form an
imbalanced tree with fanout 4: the arbiter of domain ``d`` collects the
row's domain-``d`` LS PEs plus the output of the domain ``d+1`` arbiter,
and feeds the domain ``d-1`` arbiter — or, for D1, the row's shared memory
port (combinationally arbitrated against one D0 LS PE). D0 LS PEs bypass
arbitration entirely through their direct ports.

Each arbitration stage is flopped, adding one *system* cycle per hop; the
request and response networks have identical topology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.fabric import Fabric
from repro.arch.pe import PE
from repro.errors import ArchError


@dataclass(frozen=True)
class ArbiterId:
    """Identifies one arbiter: the LS row it serves and its domain."""

    row: int
    domain: int

    def __repr__(self):
        return f"Arb(row={self.row}, D{self.domain})"


class FMNoC:
    """Structural view of the fabric-memory network for one fabric."""

    def __init__(self, fabric: Fabric):
        self.fabric = fabric
        self.max_domain = len(fabric.domains) - 1
        self._arbiters: list[ArbiterId] = []
        self._inputs: dict[ArbiterId, list] = {}
        if self.max_domain >= 1:
            for row in fabric.ls_rows():
                if row not in fabric.row_shared_port:
                    raise ArchError(
                        f"LS row {row} has arbitrated domains but no "
                        "shared port"
                    )
                for domain in range(1, self.max_domain + 1):
                    arb = ArbiterId(row, domain)
                    self._arbiters.append(arb)
                    members = [
                        pe
                        for pe in fabric.ls_pes()
                        if pe.y == row and pe.domain == domain
                    ]
                    inputs: list = sorted(members, key=lambda p: p.column_rank)
                    if domain < self.max_domain:
                        inputs.append(ArbiterId(row, domain + 1))
                    self._inputs[arb] = inputs

    def arbiters(self) -> list[ArbiterId]:
        return list(self._arbiters)

    def arbiter_inputs(self, arb: ArbiterId) -> list:
        """Upstream sources (PEs and/or the next-farther arbiter)."""
        return list(self._inputs[arb])

    def entry(self, pe: PE) -> ArbiterId | int:
        """Where a request from ``pe`` enters: an arbiter or a port id."""
        if not pe.is_ls:
            raise ArchError(f"PE at {pe.coord} has no memory FU")
        if pe.domain == 0:
            return pe.direct_port
        return ArbiterId(pe.y, pe.domain)

    def path(self, pe: PE) -> tuple[list[ArbiterId], int]:
        """(arbiter chain, memory port) a request from ``pe`` traverses."""
        if pe.domain == 0:
            return [], pe.direct_port
        chain = [ArbiterId(pe.y, d) for d in range(pe.domain, 0, -1)]
        return chain, self.fabric.row_shared_port[pe.y]

    def request_hops(self, pe: PE) -> int:
        """Arbitration stages (one system cycle each) for ``pe``."""
        return pe.domain or 0

    def downstream(self, arb: ArbiterId) -> ArbiterId | int:
        """Where an arbiter forwards: the next arbiter or the shared port."""
        if arb.domain > 1:
            return ArbiterId(arb.row, arb.domain - 1)
        return self.fabric.row_shared_port[arb.row]

    def port_contenders(self, port: int) -> int:
        """How many sources combinationally share a memory port."""
        shared = set(self.fabric.row_shared_port.values())
        return 2 if port in shared else 1
