"""Processing elements.

Monaco's fabric is heterogeneous: half its PEs are load-store (LS) PEs with
a memory FU (plus simple integer FUs), the other half are arithmetic-only
(Sec. 4.2). Any DFG node can run on an arithmetic PE except loads and
stores, which require an LS PE; LS PEs can also host arithmetic and control
nodes when memory work does not claim them.
"""

from __future__ import annotations

from dataclasses import dataclass

ARITH = "arith"
LS = "ls"


@dataclass(frozen=True)
class PE:
    """One processing element at fabric coordinates (x, y).

    ``x`` is the column (column ``cols - 1`` is adjacent to memory),
    ``y`` the row. LS PEs additionally carry their NUPEA-domain index,
    their column rank within the domain (0 = closest to memory), and —
    for domain-0 PEs — the id of the memory port they connect to
    directly.
    """

    x: int
    y: int
    kind: str
    domain: int | None = None
    column_rank: int | None = None
    direct_port: int | None = None

    @property
    def is_ls(self) -> bool:
        return self.kind == LS

    @property
    def coord(self) -> tuple[int, int]:
        return (self.x, self.y)

    def supports(self, op: str) -> bool:
        """Whether this PE can execute a DFG node of operation ``op``."""
        if op in ("load", "store"):
            return self.is_ls
        return True

    def label(self) -> str:
        if self.is_ls:
            return f"LS({self.x},{self.y})D{self.domain}"
        return f"A({self.x},{self.y})"


def manhattan(a: PE | tuple[int, int], b: PE | tuple[int, int]) -> int:
    """Manhattan distance between two PEs or coordinates."""
    ax, ay = (a.x, a.y) if isinstance(a, PE) else a
    bx, by = (b.x, b.y) if isinstance(b, PE) else b
    return abs(ax - bx) + abs(ay - by)
