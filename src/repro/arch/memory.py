"""Address mapping: kernel arrays -> the banked flat address space.

Arrays are laid out contiguously at launch, each aligned to a cache-line
boundary. Banks interleave at line granularity — consecutive lines map to
consecutive banks — which is also the granularity the NUMA-UPEA baseline
interleaves its domains at (Sec. 6, "interleave the address space across
the NUMA domains").
"""

from __future__ import annotations

from repro.arch.params import MemoryParams
from repro.errors import ArchError


class AddressMap:
    """Word-granular base addresses for a set of arrays."""

    def __init__(self, arrays: dict[str, int], memory: MemoryParams):
        self.memory = memory
        self.bases: dict[str, int] = {}
        self.sizes: dict[str, int] = dict(arrays)
        cursor = 0
        line = memory.line_words
        for name in arrays:
            self.bases[name] = cursor
            size = arrays[name]
            cursor += ((size + line - 1) // line) * line
        if cursor > memory.total_words:
            raise ArchError(
                f"arrays need {cursor} words; memory holds "
                f"{memory.total_words}"
            )
        self.used_words = cursor

    def address(self, array: str, index: int) -> int:
        try:
            base = self.bases[array]
        except KeyError:
            raise ArchError(f"unmapped array {array!r}") from None
        if not 0 <= index < self.sizes[array]:
            raise ArchError(
                f"index {index} out of bounds for array {array!r} of size "
                f"{self.sizes[array]}"
            )
        return base + index

    def line(self, address: int) -> int:
        return address // self.memory.line_words

    def bank(self, address: int) -> int:
        return self.line(address) % self.memory.n_banks
