"""Architecture and simulation parameters (paper Sec. 6 defaults).

Monaco's evaluated configuration: 8MB total memory including a 256KB
memory-side data cache, both banked 32x; main-memory latency 4 system
cycles, cache hits 2; one system cycle per arbitration hop in the
fabric-memory NoC; D0 accesses see no fabric-memory NoC delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ArchError

#: Bytes per data word (Monaco's data NoC tracks are 32-bit).
WORD_BYTES = 4


@dataclass(frozen=True)
class MemoryParams:
    """Memory-system configuration."""

    n_banks: int = 32
    line_words: int = 16  # 64B cache lines
    #: Cache capacity in lines: 256KB / 64B = 4096.
    cache_lines: int = 4096
    #: Total memory in words: 8MB / 4B.
    total_words: int = 2 * 1024 * 1024
    #: System cycles for a cache hit.
    hit_cycles: int = 2
    #: Additional system cycles to reach main memory on a miss.
    memory_cycles: int = 4
    #: Requests a bank accepts per system cycle.
    bank_throughput: int = 1

    def __post_init__(self):
        if self.n_banks <= 0 or self.line_words <= 0:
            raise ArchError("banks and line size must be positive")
        if self.cache_lines < 0 or self.total_words <= 0:
            raise ArchError("bad cache or memory capacity")

    def miss_latency(self) -> int:
        return self.hit_cycles + self.memory_cycles


@dataclass(frozen=True)
class FaultParams:
    """Deterministic fault-injection knobs (see :mod:`repro.sim.faults`).

    All probabilities default to 0.0 and the whole block defaults to
    ``None`` on :class:`SimParams`, so the off-path is untouched (and
    verified bit-identical in ``tests/test_faults.py``). Draws are made
    *per event* (per memory service, per firing, per FM-NoC grant) from
    per-category deterministic streams, never per cycle — so the same
    fault schedule unfolds whether the engine ticks every cycle or
    event-skips, and enabling one fault category does not perturb the
    stream of another.
    """

    #: Seed for every per-category fault stream.
    seed: int = 0
    #: Probability a served memory access's response is delayed.
    mem_delay_prob: float = 0.0
    #: Extra system cycles added to a delayed response.
    mem_delay_cycles: int = 8
    #: Probability a served memory access's response never returns to the
    #: PE (adversarial: exercises the deadlock detector).
    mem_drop_prob: float = 0.0
    #: Probability a would-fire PE is stalled for one fabric tick.
    pe_stall_prob: float = 0.0
    #: Probability an FM-NoC port/arbiter grant is withheld for a cycle.
    grant_skip_prob: float = 0.0

    def __post_init__(self):
        for name in (
            "mem_delay_prob", "mem_drop_prob", "pe_stall_prob",
            "grant_skip_prob",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ArchError(f"{name} must be in [0, 1], got {p!r}")
        if self.mem_delay_cycles < 0:
            raise ArchError("mem_delay_cycles must be non-negative")

    def active(self) -> bool:
        """True when any injector can ever fire."""
        return any(
            (
                self.mem_delay_prob,
                self.mem_drop_prob,
                self.pe_stall_prob,
                self.grant_skip_prob,
            )
        )

    def signature(self) -> str:
        """Compact stable string naming this fault model.

        Journaled into sweep manifests so a resume never mistakes a
        faulted run for a clean one (different signature, different
        point digest).
        """
        parts = [f"seed={self.seed}"]
        if self.mem_delay_prob:
            parts.append(
                f"mem-delay={self.mem_delay_prob}:{self.mem_delay_cycles}"
            )
        if self.mem_drop_prob:
            parts.append(f"mem-drop={self.mem_drop_prob}")
        if self.pe_stall_prob:
            parts.append(f"pe-stall={self.pe_stall_prob}")
        if self.grant_skip_prob:
            parts.append(f"grant-skip={self.grant_skip_prob}")
        return ",".join(parts)


@dataclass(frozen=True)
class SimParams:
    """Timed-simulation knobs."""

    #: Token-FIFO capacity per input port. Monaco buffers tokens at PE
    #: inputs for pipelining (Sec. 4.1); its PEs are small, so the
    #: per-operand buffers are shallow.
    fifo_capacity: int = 2
    #: Outstanding memory requests a single LS PE may have in flight.
    max_outstanding: int = 2
    #: Fabric-clock divider (fabric period = divider system cycles). The
    #: paper's evaluation runs Monaco at divider 2; PnR may raise it when
    #: static timing requires.
    clock_divider: int = 2
    #: Give up if no progress for this many system cycles.
    deadlock_cycles: int = 50_000
    #: Absolute cycle budget (safety net).
    max_cycles: int = 200_000_000
    #: Event-driven cycle skipping: when the whole machine is quiescent
    #: (no bank traffic, frontend idle, no ready fabric node), jump the
    #: system clock straight to the next interesting cycle instead of
    #: ticking through idle memory-latency and clock-divider gaps.
    #: Results are bit-identical either way; this knob exists so the
    #: equivalence can be asserted (and the per-cycle loop A/B-tested).
    cycle_skip: bool = True
    #: Cycle-attribution tracing (see :mod:`repro.obs`). Off by default:
    #: with ``trace=False`` the engine publishes nothing and stats are
    #: bit-identical to a build without the observability layer.
    trace: bool = False
    #: When tracing, also collect a Chrome ``trace_event`` timeline and —
    #: if a path is given — write it at the end of the run.
    trace_path: str | None = None
    #: Dynamic critical-path profiling (see :mod:`repro.obs.critpath`).
    #: Off by default and wired like ``trace``: with ``critpath=False``
    #: the engine publishes nothing and results are bit-identical to a
    #: build without the profiler; with it on, the recorder only
    #: *listens*, so simulated results are still bit-identical — the
    #: attribution lands in ``SimStats.critpath`` (a compare-excluded
    #: field) and the full report on ``Observation.critpath``.
    critpath: bool = False
    #: Deterministic fault injection (see :class:`FaultParams` and
    #: :mod:`repro.sim.faults`). ``None`` = off; the off-path publishes
    #: nothing and is verified bit-identical to a build without the
    #: fault layer.
    faults: FaultParams | None = None
    #: Runtime invariant checking (see :mod:`repro.check.invariants`).
    #: Off by default and wired like ``trace``/``faults``: with
    #: ``check=False`` the engine consults nothing and results are
    #: bit-identical to a build without the conformance layer; with it
    #: on, the checker only *reads* simulator state, so results are
    #: still bit-identical — a violation raises instead.
    check: bool = False
    #: Mid-simulation checkpointing (see :mod:`repro.sim.snapshot`).
    #: With ``checkpoint_path`` set, the engine writes a crash-safe
    #: snapshot of the complete machine state there every
    #: ``checkpoint_every`` system cycles (0 = only on preemption) and
    #: installs SIGTERM/SIGINT handlers that snapshot-then-exit.
    #: ``None`` = off: the engine carries no checkpointer and the run is
    #: bit-identical to a build without the snapshot layer. Checkpoint
    #: knobs are excluded from the snapshot config digest, so a resume
    #: may change cadence or path freely.
    checkpoint_path: str | None = None
    checkpoint_every: int = 0

    def __post_init__(self):
        if self.fifo_capacity < 2:
            raise ArchError("fifo capacity must be >= 2 (carry loops)")
        if self.max_outstanding < 1:
            raise ArchError("max outstanding must be >= 1")
        if self.clock_divider < 1:
            raise ArchError("clock divider must be >= 1")
        if self.checkpoint_every < 0:
            raise ArchError("checkpoint_every must be >= 0")


@dataclass(frozen=True)
class TimingParams:
    """Static-timing constants for the clock-divider computation.

    Unit delays stand in for the paper's sign-off timing numbers: what
    matters for the reproduction is that longer routed paths force a larger
    divider (slower fabric clock), reproducing the Fig. 16/17 trends.
    """

    #: Delay units consumed by PE logic per fabric cycle.
    pe_logic_units: float = 2.0
    #: Delay units per routed hop on the data NoC.
    hop_units: float = 1.0
    #: Delay units available in one system-clock period.
    system_period_units: float = 4.0


@dataclass(frozen=True)
class ArchParams:
    """Complete architecture parameterization."""

    memory: MemoryParams = field(default_factory=MemoryParams)
    sim: SimParams = field(default_factory=SimParams)
    timing: TimingParams = field(default_factory=TimingParams)
    #: Data NoC tracks per channel (Fig. 16/17 sweep 2 vs 7; Monaco has 3).
    noc_tracks: int = 3
    #: Channel-graph model: "simple" (uniform mesh) or "monaco-tracks"
    #: (cardinal + diagonal + skip segments, Sec. 4.1).
    noc_model: str = "simple"

    def __post_init__(self):
        if self.noc_tracks < 1:
            raise ArchError("need at least one NoC track")
        if self.noc_model not in ("simple", "monaco-tracks"):
            raise ArchError(f"unknown NoC model {self.noc_model!r}")
