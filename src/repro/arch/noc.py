"""Data NoC models: channel graphs the router operates over.

Monaco's data NoC gives each tile three 32-bit tracks through
Wilton-topology routers: one *cardinal* track, one *diagonal* track, and
one *skip* track — diagonal and skip tracks only go through a router every
other hop (Sec. 4.1).

Two models are provided:

* :class:`ChannelGraph` ("simple") — a uniform mesh of unit channels with
  a per-channel track capacity. This is the default model and the one the
  Fig. 16/17 track sweep (2 vs 7 tracks) parameterizes.
* :class:`MonacoTrackGraph` ("monaco-tracks") — heterogeneous segments:
  unit cardinal channels plus two-cell diagonal and skip segments that
  bypass the intermediate router. Segments carry per-type capacities and
  wire lengths (a two-cell segment costs two delay units but only one
  switch traversal), so diagonal/skip tracks shorten routed *delay* for
  long nets exactly as they do in the silicon.

Both expose the same interface to the router: ``edges_from(coord)`` yields
``(dst, channel_key, wire_units)`` and ``capacity(channel_key)`` bounds
concurrent nets per segment.
"""

from __future__ import annotations

from repro.arch.fabric import Fabric
from repro.errors import ArchError

Coord = tuple[int, int]
#: (src, dst, kind) — kind distinguishes track types sharing endpoints.
ChannelKey = tuple[Coord, Coord, str]

_CARDINAL_STEPS = ((1, 0), (-1, 0), (0, 1), (0, -1))
_DIAGONAL_STEPS = ((2, 2), (2, -2), (-2, 2), (-2, -2))
_SKIP_STEPS = ((2, 0), (-2, 0), (0, 2), (0, -2))


class ChannelGraph:
    """Uniform mesh: unit channels, one capacity for all of them."""

    name = "simple"

    def __init__(self, fabric: Fabric, tracks: int):
        if tracks < 1:
            raise ArchError("need at least one track")
        self.fabric = fabric
        self.tracks = tracks
        self._edges: dict[Coord, list[tuple[Coord, ChannelKey, float]]] = {}
        for y in range(fabric.rows):
            for x in range(fabric.cols):
                here = (x, y)
                edges = []
                for dx, dy in _CARDINAL_STEPS:
                    nx_, ny_ = x + dx, y + dy
                    if 0 <= nx_ < fabric.cols and 0 <= ny_ < fabric.rows:
                        dst = (nx_, ny_)
                        edges.append((dst, (here, dst, "cardinal"), 1.0))
                self._edges[here] = edges

    def edges_from(self, coord: Coord):
        return self._edges[coord]

    def neighbors(self, coord: Coord) -> list[Coord]:
        return [dst for dst, _, _ in self._edges[coord]]

    def channels(self) -> list[ChannelKey]:
        return [
            key for edges in self._edges.values() for _, key, _ in edges
        ]

    def capacity(self, key: ChannelKey) -> int:
        src, dst, _ = key
        if dst not in self.neighbors(src):
            raise ArchError(f"no channel {src} -> {dst}")
        return self.tracks


class MonacoTrackGraph:
    """Heterogeneous tracks: cardinal + diagonal + skip segments."""

    name = "monaco-tracks"

    def __init__(
        self,
        fabric: Fabric,
        cardinal: int = 1,
        diagonal: int = 1,
        skip: int = 1,
    ):
        if min(cardinal, diagonal, skip) < 0 or cardinal < 1:
            raise ArchError("need at least one cardinal track")
        self.fabric = fabric
        self.capacities = {
            "cardinal": cardinal,
            "diagonal": diagonal,
            "skip": skip,
        }
        self._edges: dict[Coord, list[tuple[Coord, ChannelKey, float]]] = {}
        for y in range(fabric.rows):
            for x in range(fabric.cols):
                here = (x, y)
                edges = []
                for kind, steps, wire, cap in (
                    ("cardinal", _CARDINAL_STEPS, 1.0, cardinal),
                    ("diagonal", _DIAGONAL_STEPS, 2.0, diagonal),
                    ("skip", _SKIP_STEPS, 2.0, skip),
                ):
                    if cap == 0:
                        continue
                    for dx, dy in steps:
                        nx_, ny_ = x + dx, y + dy
                        if 0 <= nx_ < fabric.cols and 0 <= ny_ < fabric.rows:
                            dst = (nx_, ny_)
                            edges.append((dst, (here, dst, kind), wire))
                self._edges[here] = edges

    def edges_from(self, coord: Coord):
        return self._edges[coord]

    def neighbors(self, coord: Coord) -> list[Coord]:
        return [dst for dst, _, _ in self._edges[coord]]

    def channels(self) -> list[ChannelKey]:
        return [
            key for edges in self._edges.values() for _, key, _ in edges
        ]

    def capacity(self, key: ChannelKey) -> int:
        return self.capacities[key[2]]


def build_channel_graph(fabric: Fabric, tracks: int, model: str):
    """Construct the channel graph for an ``ArchParams.noc_model``."""
    if model == "simple":
        return ChannelGraph(fabric, tracks)
    if model == "monaco-tracks":
        per_type = max(1, round(tracks / 3))
        return MonacoTrackGraph(
            fabric, cardinal=per_type, diagonal=per_type, skip=per_type
        )
    raise ArchError(f"unknown NoC model {model!r}")
