"""Fabric topologies: Monaco and the clustered alternatives of Fig. 13.

Coordinates: ``x`` is the column and grows toward memory (column
``cols - 1`` is adjacent to the memory ports on the right of Fig. 8);
``y`` is the row.

* :func:`monaco` — alternating rows of fully-arithmetic and fully-LS PEs;
  NUPEA domains partition the *columns* of LS PEs in groups of three,
  closest-to-memory first. Every LS row owns a slice of the fabric-memory
  NoC with three memory ports: each D0 LS PE connects directly to a port,
  and the third port of each row is shared with the row's D1 arbiter
  (Sec. 4.2). A 12x12 Monaco has 72 LS PEs and 18 memory ports.
* :func:`clustered_single` (CS) — every row places its LS PEs in the
  columns closest to memory; D0 is a single column with one direct port
  per row (12 ports at 12x12).
* :func:`clustered_double` (CD) — like CS but D0 spans two columns with
  two direct ports per row (24 ports at 12x12).
"""

from __future__ import annotations

from repro.arch.pe import ARITH, LS, PE
from repro.core.domains import NUPEADomain, validate_domain_order
from repro.errors import ArchError


class Fabric:
    """A fabric: a grid of PEs plus NUPEA-domain and port structure."""

    def __init__(
        self,
        name: str,
        rows: int,
        cols: int,
        pes: dict[tuple[int, int], PE],
        domains: list[NUPEADomain],
        n_ports: int,
        row_shared_port: dict[int, int],
    ):
        self.name = name
        self.rows = rows
        self.cols = cols
        self.pes = pes
        self.domains = domains
        self.n_ports = n_ports
        #: For each LS row, the memory port shared between a D0 PE and the
        #: row's D1 arbiter (absent when the row has no arbitrated domains).
        self.row_shared_port = row_shared_port
        validate_domain_order(domains)
        self._check()

    def _check(self) -> None:
        if len(self.pes) != self.rows * self.cols:
            raise ArchError("fabric grid is incomplete")
        ports = [
            pe.direct_port for pe in self.pes.values()
            if pe.direct_port is not None
        ]
        if sorted(ports) != list(range(self.n_ports)):
            raise ArchError(
                f"direct ports must cover 0..{self.n_ports - 1}; "
                f"got {sorted(ports)}"
            )

    # -- queries ----------------------------------------------------------

    def pe_at(self, x: int, y: int) -> PE:
        try:
            return self.pes[(x, y)]
        except KeyError:
            raise ArchError(f"no PE at ({x}, {y})") from None

    def ls_pes(self) -> list[PE]:
        return [pe for pe in self.pes.values() if pe.is_ls]

    def arith_pes(self) -> list[PE]:
        return [pe for pe in self.pes.values() if not pe.is_ls]

    def ls_rows(self) -> list[int]:
        return sorted({pe.y for pe in self.ls_pes()})

    def domain(self, index: int) -> NUPEADomain:
        return self.domains[index]

    def size(self) -> int:
        return self.rows * self.cols

    def preferred_ls_slots(self) -> list[PE]:
        """LS PEs ordered by the paper's NUPEA placement preference.

        ``D0.c0 <= D0.c1 <= ... <= D1.c0 <= ...``; ties broken by row so
        consecutive picks land on different rows (each row has its own
        fabric-memory NoC slice, spreading arbitration load).
        """
        def key(pe: PE) -> tuple:
            return (pe.domain, pe.column_rank, pe.y, pe.x)

        return sorted(self.ls_pes(), key=key)

    def describe(self) -> str:
        ls = len(self.ls_pes())
        doms = ", ".join(
            f"{d.name}(hops={d.arbiter_hops}, cols={len(d.columns)})"
            for d in self.domains
        )
        return (
            f"{self.name}: {self.rows}x{self.cols}, {ls} LS PEs, "
            f"{self.n_ports} memory ports, domains: {doms}"
        )


def _domains_from_groups(groups: list[list[int]]) -> list[NUPEADomain]:
    return [
        NUPEADomain(index=i, arbiter_hops=i, columns=tuple(cols))
        for i, cols in enumerate(groups)
    ]


def _group_columns(columns: list[int], first: int, rest: int) -> list[list[int]]:
    """Split ``columns`` (closest-to-memory first) into domain groups."""
    groups: list[list[int]] = []
    if first >= len(columns):
        return [list(columns)]
    groups.append(list(columns[:first]))
    index = first
    while index < len(columns):
        groups.append(list(columns[index:index + rest]))
        index += rest
    return groups


def monaco_variant(
    rows: int,
    cols: int,
    domain_width: int = 3,
    ls_row_stride: int = 2,
    name: str | None = None,
) -> Fabric:
    """A Monaco-style fabric with configurable LS-PE placement.

    This is the axis of the paper's design-space exploration of load-store
    PE placement (contribution 4): ``domain_width`` sets how many columns
    each NUPEA domain spans (and therefore how many direct D0 ports each
    LS row gets), and ``ls_row_stride`` sets LS-row density (2 = Monaco's
    alternating rows; 3 = one LS row in three; 1 = every row LS).
    """
    if rows % ls_row_stride != 0:
        raise ArchError("rows must be a multiple of the LS row stride")
    if rows < ls_row_stride or cols < 1:
        raise ArchError("fabric too small")
    if domain_width < 1:
        raise ArchError("domain width must be >= 1")
    columns_near_first = list(range(cols - 1, -1, -1))
    groups = _group_columns(
        columns_near_first, first=domain_width, rest=domain_width
    )
    domains = _domains_from_groups(groups)
    d0_cols = groups[0]

    pes: dict[tuple[int, int], PE] = {}
    row_shared_port: dict[int, int] = {}
    port = 0
    ls_rows = [
        y for y in range(rows) if y % ls_row_stride == ls_row_stride - 1
    ]
    col_domain = {
        c: (d.index, d.column_rank(c)) for d in domains for c in d.columns
    }
    for y in range(rows):
        if y not in ls_rows:
            for x in range(cols):
                pes[(x, y)] = PE(x, y, ARITH)
            continue
        row_ports: list[int] = []
        for rank in range(len(d0_cols)):
            row_ports.append(port)
            port += 1
        if len(domains) > 1 and row_ports:
            row_shared_port[y] = row_ports[-1]
        for x in range(cols):
            domain, rank = col_domain[x]
            direct = row_ports[rank] if domain == 0 else None
            pes[(x, y)] = PE(x, y, LS, domain, rank, direct)
    label = name or (
        f"monaco-{rows}x{cols}-w{domain_width}-s{ls_row_stride}"
    )
    return Fabric(
        label, rows, cols, pes, domains, port, row_shared_port
    )


def monaco(rows: int = 12, cols: int = 12) -> Fabric:
    """The Monaco topology (paper Fig. 8), at any even size."""
    return monaco_variant(
        rows, cols, domain_width=3, ls_row_stride=2,
        name=f"monaco-{rows}x{cols}",
    )


def _clustered(rows: int, cols: int, d0_width: int, name: str) -> Fabric:
    if cols < 2:
        raise ArchError("fabric too small")
    ls_width = cols // 2
    if ls_width < d0_width:
        raise ArchError(f"{name} needs at least {2 * d0_width} columns")
    ls_columns = list(range(cols - 1, cols - 1 - ls_width, -1))
    groups = _group_columns(ls_columns, first=d0_width, rest=3)
    domains = _domains_from_groups(groups)
    col_domain = {
        c: (d.index, d.column_rank(c)) for d in domains for c in d.columns
    }
    ls_set = set(ls_columns)

    pes: dict[tuple[int, int], PE] = {}
    row_shared_port: dict[int, int] = {}
    port = 0
    for y in range(rows):
        row_ports = []
        for rank in range(d0_width):
            row_ports.append(port)
            port += 1
        if len(domains) > 1 and row_ports:
            row_shared_port[y] = row_ports[-1]
        for x in range(cols):
            if x in ls_set:
                domain, rank = col_domain[x]
                direct = row_ports[rank] if domain == 0 else None
                pes[(x, y)] = PE(x, y, LS, domain, rank, direct)
            else:
                pes[(x, y)] = PE(x, y, ARITH)
    return Fabric(
        f"{name}-{rows}x{cols}", rows, cols, pes, domains, port,
        row_shared_port,
    )


def clustered_single(rows: int = 12, cols: int = 12) -> Fabric:
    """Clustered-Single (CS): all LS PEs hug memory; one port per row."""
    return _clustered(rows, cols, d0_width=1, name="clustered-single")


def clustered_double(rows: int = 12, cols: int = 12) -> Fabric:
    """Clustered-Double (CD): like CS with a double-width direct domain."""
    return _clustered(rows, cols, d0_width=2, name="clustered-double")


TOPOLOGIES = {
    "monaco": monaco,
    "clustered-single": clustered_single,
    "clustered-double": clustered_double,
}


def build_fabric(topology: str, rows: int, cols: int) -> Fabric:
    try:
        builder = TOPOLOGIES[topology]
    except KeyError:
        raise ArchError(
            f"unknown topology {topology!r}; available: {sorted(TOPOLOGIES)}"
        ) from None
    return builder(rows, cols)
