"""Monaco microarchitecture description: PEs, fabrics, NoCs, memory."""

from repro.arch.clocks import divider_for_max_hops, path_delay_units
from repro.arch.fabric import (
    Fabric,
    TOPOLOGIES,
    build_fabric,
    clustered_double,
    clustered_single,
    monaco,
    monaco_variant,
)
from repro.arch.fmnoc import ArbiterId, FMNoC
from repro.arch.memory import AddressMap
from repro.arch.noc import ChannelGraph, MonacoTrackGraph, build_channel_graph
from repro.arch.params import (
    ArchParams,
    MemoryParams,
    SimParams,
    TimingParams,
    WORD_BYTES,
)
from repro.arch.pe import ARITH, LS, PE, manhattan

__all__ = [
    "ARITH",
    "AddressMap",
    "ArbiterId",
    "ArchParams",
    "ChannelGraph",
    "MonacoTrackGraph",
    "build_channel_graph",
    "FMNoC",
    "Fabric",
    "LS",
    "MemoryParams",
    "PE",
    "SimParams",
    "TOPOLOGIES",
    "TimingParams",
    "WORD_BYTES",
    "build_fabric",
    "clustered_double",
    "clustered_single",
    "divider_for_max_hops",
    "manhattan",
    "monaco",
    "monaco_variant",
    "path_delay_units",
]
