"""Scalar operation semantics shared by every execution level.

The IR interpreter, the untimed DFG interpreter, and the timed simulator all
evaluate arithmetic through this module, so "what does ``//`` mean" has
exactly one answer across the stack (one of the three-level-equivalence
contracts in DESIGN.md).

Integer division and modulo follow C semantics (truncation toward zero),
matching what effcc-compiled C kernels would compute.
"""

from __future__ import annotations

import math

from repro.errors import ReproError

Number = int | float


def _c_div(a: Number, b: Number) -> Number:
    if b == 0:
        raise ReproError("integer division by zero in kernel")
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


def _c_mod(a: Number, b: Number) -> Number:
    if b == 0:
        raise ReproError("integer modulo by zero in kernel")
    return a - _c_div(a, b) * b


BINARY_IMPLS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": _c_div,
    "/": lambda a, b: a / b,
    "%": _c_mod,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "min": min,
    "max": max,
}

UNARY_IMPLS = {
    "-": lambda a: -a,
    "not": lambda a: int(not a),
    "abs": abs,
}

#: Operators producing a boolean (0/1) result; these may drive steering.
COMPARISON_OPS = frozenset(("<", "<=", ">", ">=", "==", "!=", "not"))


def apply_binop(op: str, lhs: Number, rhs: Number) -> Number:
    """Evaluate a binary operator with the library-wide semantics."""
    try:
        impl = BINARY_IMPLS[op]
    except KeyError:
        raise ReproError(f"unknown binary operator {op!r}") from None
    result = impl(lhs, rhs)
    if isinstance(result, float) and math.isnan(result):
        return result
    return result


def apply_unop(op: str, operand: Number) -> Number:
    """Evaluate a unary operator with the library-wide semantics."""
    try:
        impl = UNARY_IMPLS[op]
    except KeyError:
        raise ReproError(f"unknown unary operator {op!r}") from None
    return impl(operand)


def truthy(value: Number) -> bool:
    """Steering-control truth test: nonzero means taken."""
    return value != 0
