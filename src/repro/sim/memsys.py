"""Banked memory with a shared memory-side cache (paper Sec. 4/6).

Monaco's memory is banked 32x behind a shared data cache: a cache hit
takes 2 system cycles, main memory 4 more. Banks interleave at line
granularity and each accepts one request per system cycle; queueing at a
bank is the bank-conflict effect. The cache is a shared, memory-side LRU
of whole lines (loads and stores both allocate). Data values are read and
written at bank-service time, which is consistent with the DFG's
memory-ordering tokens (a dependent access cannot even be *issued* before
its predecessor's response).

Fault injection and accounting
------------------------------
Response faults (:mod:`repro.sim.faults`) act strictly *after* bank
service: a dropped or delayed response has already touched the cache,
read or written its data word, and been counted in
:class:`MemStats` (``loads``/``stores``/``hits``/``misses``/
``bank_wait_cycles``). This is intended — the access *was* served; only
the reply vanished in the response network — and it keeps the ledger
identity ``hits + misses == loads + stores`` exact under any fault mix.
Consequently a faulted run and its clean twin agree on ``loads + stores``
for the same prefix of serviced requests (asserted in
``tests/test_check_satellites.py``). Only :attr:`MemStats.latency_total`
and :attr:`MemStats.responses` are arrival-side: they accumulate when a
load's response reaches its PE, so dropped responses never contribute.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque
from dataclasses import dataclass

from repro.arch.memory import AddressMap
from repro.arch.params import MemoryParams
from repro.dfg.ops import MemRequest
from repro.errors import SimulationError


@dataclass
class RequestRecord:
    """One in-flight memory access."""

    nid: int
    seq: int
    request: MemRequest
    address: int
    pe_coord: tuple[int, int]
    issue_cycle: int
    #: System cycles of response-network delay back to the PE.
    response_hops: int = 0
    #: System cycle the request joined its bank queue (-1 while in the
    #: fabric-memory network). A plain field — not side-table bookkeeping
    #: keyed by ``id(record)`` — so records survive pickling and object
    #: reuse across worker processes.
    enqueue_cycle: int = -1
    serve_cycle: int = -1
    complete_cycle: int = -1
    #: System cycle the response reached the PE (None while in flight).
    arrived_cycle: int | None = None
    value: int | float | None = None
    hit: bool | None = None
    #: True when fault injection swallowed the response (the access was
    #: served — data read/written — but the reply never returns; see
    #: :mod:`repro.sim.faults`). Diagnostic only.
    dropped: bool = False


@dataclass
class MemStats:
    loads: int = 0
    stores: int = 0
    hits: int = 0
    misses: int = 0
    bank_wait_cycles: int = 0
    #: Total load round-trip latency (issue -> response arrival at the
    #: PE), accumulated by the engine when the response lands; with
    #: :attr:`responses` this yields the exact average memory latency.
    latency_total: int = 0
    #: Load responses that actually arrived back at a PE (excludes
    #: fault-dropped replies, which never arrive).
    responses: int = 0

    @property
    def avg_latency(self) -> float:
        """Exact mean load round-trip latency in system cycles."""
        return self.latency_total / self.responses if self.responses else 0.0

    def record_service(self, record: RequestRecord) -> None:
        if record.enqueue_cycle < 0:
            raise SimulationError(
                f"node {record.nid}: request seq {record.seq} served at "
                f"cycle {record.serve_cycle} was never enqueued "
                f"(enqueue_cycle={record.enqueue_cycle}); bank-wait "
                "accounting would silently corrupt"
            )
        if record.request.kind == "load":
            self.loads += 1
        else:
            self.stores += 1
        if record.hit:
            self.hits += 1
        else:
            self.misses += 1
        self.bank_wait_cycles += record.serve_cycle - record.enqueue_cycle

    def record_arrival(self, record: RequestRecord, now: int) -> None:
        """A load's response reached its PE at cycle ``now``."""
        self.latency_total += now - record.issue_cycle
        self.responses += 1

    def state_dict(self) -> dict:
        return {
            "loads": self.loads,
            "stores": self.stores,
            "hits": self.hits,
            "misses": self.misses,
            "bank_wait_cycles": self.bank_wait_cycles,
            "latency_total": self.latency_total,
            "responses": self.responses,
        }

    def load_state_dict(self, state: dict) -> None:
        self.loads = state["loads"]
        self.stores = state["stores"]
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.bank_wait_cycles = state["bank_wait_cycles"]
        self.latency_total = state["latency_total"]
        self.responses = state["responses"]


class SharedCache:
    """Shared memory-side LRU cache of whole lines."""

    def __init__(self, capacity_lines: int):
        self.capacity = capacity_lines
        self.lines: OrderedDict[int, None] = OrderedDict()

    def access(self, line: int) -> bool:
        """Touch ``line``; returns True on hit (allocates on miss)."""
        if self.capacity <= 0:
            return False
        if line in self.lines:
            self.lines.move_to_end(line)
            return True
        self.lines[line] = None
        if len(self.lines) > self.capacity:
            self.lines.popitem(last=False)
        return False


class MemorySystem:
    """Banks + shared cache + backing data for one simulation."""

    def __init__(
        self,
        params: MemoryParams,
        address_map: AddressMap,
        data: dict[str, list],
    ):
        self.params = params
        self.address_map = address_map
        self.data = data
        self.cache = SharedCache(params.cache_lines)
        self.bank_queues: list[deque] = [
            deque() for _ in range(params.n_banks)
        ]
        #: Busy-bank calendar: a heap of the indices of non-empty bank
        #: queues (each exactly once), plus a total queued-request
        #: counter. ``tick``/``busy``/``next_event`` consult these
        #: instead of scanning all ``n_banks`` queues — on quiet cycles
        #: that is O(1), and a tick serves only the banks that actually
        #: hold work, in the same ascending-index order as the scan.
        self._busy_banks: list[int] = []
        self._queued = 0
        self._completions: list[tuple[int, int, RequestRecord]] = []
        self._order = 0
        self.stats = MemStats()
        #: Observability bus (see :mod:`repro.obs`); None = tracing off.
        self.obs = None
        #: Fault injector (see :mod:`repro.sim.faults`); None = off.
        self.faults = None

    def enqueue(self, record: RequestRecord, now: int) -> None:
        """A request arrives at its bank's queue."""
        bank = self.address_map.bank(record.address)
        queue = self.bank_queues[bank]
        if not queue:
            heapq.heappush(self._busy_banks, bank)
        queue.append(record)
        self._queued += 1
        record.enqueue_cycle = now

    def tick(self, now: int) -> None:
        """Serve up to ``bank_throughput`` requests per bank this cycle.

        Drains the busy-bank heap in ascending index order — identical
        service order to the full-scan loop it replaces (the engine only
        enqueues *after* this tick ran, so no bank turns busy mid-drain).
        Banks still holding requests re-enter the calendar; the drain
        order keeps that remainder sorted, so it is a valid heap as-is.
        """
        busy = self._busy_banks
        if not busy:
            return
        queues = self.bank_queues
        throughput = self.params.bank_throughput
        still_busy: list[int] = []
        while busy:
            bank = heapq.heappop(busy)
            queue = queues[bank]
            for _ in range(throughput):
                if not queue:
                    break
                record = queue.popleft()
                self._queued -= 1
                self._serve(record, now)
            if queue:
                still_busy.append(bank)
        busy.extend(still_busy)

    def _serve(self, record: RequestRecord, now: int) -> None:
        request = record.request
        line = self.address_map.line(record.address)
        record.hit = self.cache.access(line)
        latency = (
            self.params.hit_cycles
            if record.hit
            else self.params.miss_latency()
        )
        record.serve_cycle = now
        array = self.data[request.array]
        if not 0 <= request.index < len(array):
            raise SimulationError(
                f"node {record.nid}: index {request.index} out of bounds "
                f"for array {request.array!r}"
            )
        if request.kind == "load":
            record.value = array[request.index]
        else:
            array[request.index] = request.value
            record.value = 0
        record.complete_cycle = now + latency
        self.stats.record_service(record)
        if self.obs is not None:
            self.obs.mem_service(now, record)
        if self.faults is not None:
            # Draw both streams per service event (even when the drop
            # wins) so enabling one category never shifts the other's
            # schedule.
            dropped = self.faults.drop_response()
            record.complete_cycle += self.faults.delay_response()
            if dropped:
                # The access was performed, but the response vanishes in
                # the network: the issuing PE waits forever, and the
                # deadlock detector must catch it.
                record.dropped = True
                return
        self._order += 1
        heapq.heappush(
            self._completions, (record.complete_cycle, self._order, record)
        )

    def completions(self, now: int):
        """Yield records whose bank access completes at or before ``now``."""
        while self._completions and self._completions[0][0] <= now:
            yield heapq.heappop(self._completions)[2]

    def busy(self) -> bool:
        return bool(self._completions) or self._queued > 0

    def state_dict(self) -> dict:
        """Complete mutable state for mid-run snapshots.

        ``RequestRecord`` objects are stored *by reference*: the snapshot
        layer pickles the whole machine state in one pass, so a record
        queued at a bank here stays the same object as its alias in the
        engine's ``resp_queue`` after restore. Array contents are copied
        so the restored values are exactly the at-snapshot values.
        """
        return {
            "bank_queues": [list(queue) for queue in self.bank_queues],
            "completions": list(self._completions),
            "order": self._order,
            # LRU recency order is semantic state: restore must replay
            # the same hit/miss/eviction sequence.
            "cache_lines": list(self.cache.lines),
            "stats": self.stats.state_dict(),
            "data": {name: list(words) for name, words in self.data.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        if len(state["bank_queues"]) != len(self.bank_queues):
            raise SimulationError(
                f"snapshot has {len(state['bank_queues'])} bank queues, "
                f"this memory system has {len(self.bank_queues)}"
            )
        for queue, items in zip(self.bank_queues, state["bank_queues"]):
            queue.clear()
            queue.extend(items)
        # Rebuild the busy-bank calendar from the restored queues; an
        # ascending index list is already a valid heap.
        self._busy_banks = [
            bank for bank, queue in enumerate(self.bank_queues) if queue
        ]
        self._queued = sum(len(queue) for queue in self.bank_queues)
        # In place: the engine's run loop holds a reference to this heap.
        self._completions[:] = state["completions"]
        self._order = state["order"]
        self.cache.lines = OrderedDict(
            (line, None) for line in state["cache_lines"]
        )
        self.stats.load_state_dict(state["stats"])
        for name, words in state["data"].items():
            if name not in self.data or len(self.data[name]) != len(words):
                raise SimulationError(
                    f"snapshot array {name!r} does not match this run's "
                    "memory layout"
                )
            # In place: ``self.data`` is the same dict the engine hands
            # back as the run's final memory, so identity must survive.
            self.data[name][:] = words

    def next_event(self, now: int) -> int | None:
        """Earliest system cycle >= ``now`` the memory system must run.

        Used by the engine's cycle-skipping scheduler: non-empty bank
        queues need service every cycle; otherwise the next interesting
        cycle is the earliest pending completion. ``None`` means idle.
        """
        if self._queued:
            return now
        if self._completions:
            return max(now, self._completions[0][0])
        return None
