"""Timed model of Monaco's fabric-memory NoC (paper Fig. 9).

Requests from LS PEs flow through the row's arbiter chain toward memory:
one system cycle per arbitration stage, round-robin selection, single
request forwarded per arbiter per cycle. D0 PEs bypass the network to
their direct ports; each row's *shared* port round-robins between its D0
PE and the row's D1 arbiter (the "combinationally arbitrated" third port).
Responses return over a mirrored network modeled as a pure pipeline delay
of one cycle per stage (``response_hops``).
"""

from __future__ import annotations

from collections import deque

from repro.arch.fabric import Fabric
from repro.arch.fmnoc import ArbiterId, FMNoC
from repro.errors import SimulationError
from repro.sim.memsys import RequestRecord


class _Arbiter:
    """One arbitration stage: RR over inputs, single-entry output latch."""

    def __init__(self, arb_id: ArbiterId, sources: list):
        self.arb_id = arb_id
        self.sources = sources  # PE coords and/or upstream ArbiterId
        self.rr = 0
        self.latch: RequestRecord | None = None
        self.stall_cycles = 0


class MonacoFrontend:
    """Request-side fabric-memory NoC for the Monaco topology."""

    name = "monaco"
    #: Observability bus (see :mod:`repro.obs`); None = tracing off.
    obs = None
    #: Fault injector (see :mod:`repro.sim.faults`); None = off.
    faults = None

    def __init__(self, fabric: Fabric):
        self.fabric = fabric
        self.noc = FMNoC(fabric)
        #: Injection queue per LS PE coordinate.
        self.pe_queues: dict[tuple[int, int], deque] = {
            pe.coord: deque() for pe in fabric.ls_pes()
        }
        self.arbiters: dict[ArbiterId, _Arbiter] = {}
        for arb_id in self.noc.arbiters():
            sources = [
                s.coord if hasattr(s, "coord") else s
                for s in self.noc.arbiter_inputs(arb_id)
            ]
            self.arbiters[arb_id] = _Arbiter(arb_id, sources)
        #: port id -> list of sources (PE coords and/or ArbiterId).
        self.port_sources: dict[int, list] = {}
        self.port_rr: dict[int, int] = {}
        shared = set(fabric.row_shared_port.values())
        for pe in fabric.ls_pes():
            if pe.direct_port is not None:
                self.port_sources.setdefault(pe.direct_port, []).append(
                    pe.coord
                )
        for row, port in fabric.row_shared_port.items():
            if port not in shared:
                continue
            arb = ArbiterId(row, 1)
            if arb in self.arbiters:
                self.port_sources.setdefault(port, []).append(arb)
        for port in self.port_sources:
            self.port_rr[port] = 0
        self.in_network = 0
        self._build_plans()

    def _build_plans(self) -> None:
        """Pre-resolve the per-cycle iteration order once.

        The replaced tick sorted ``port_sources``/``arbiters`` and hashed
        an ``ArbiterId`` or PE coord per take — every system cycle, on
        structures that never change after construction. The plans bake
        in the sorted order and swap each source id for its live handle
        (the PE's injection deque, or the ``_Arbiter`` object itself);
        restore refills those in place, so handles never go stale.
        """

        def handle(source):
            if isinstance(source, ArbiterId):
                return self.arbiters[source]
            return self.pe_queues[source]

        #: (port, [source handles]) in ascending port order.
        self._port_plan = [
            (port, [handle(s) for s in self.port_sources[port]])
            for port in sorted(self.port_sources)
        ]
        #: (arb_id, arbiter, [source handles]) nearest-to-memory domain
        #: first — the order that advances a request one stage per cycle.
        self._arb_plan = [
            (arb_id, self.arbiters[arb_id],
             [handle(s) for s in self.arbiters[arb_id].sources])
            for arb_id in sorted(
                self.arbiters, key=lambda a: (a.domain, a.row)
            )
        ]

    # -- Frontend interface ------------------------------------------------

    def inject(self, record: RequestRecord, now: int) -> None:
        pe = self.fabric.pes[record.pe_coord]
        if not pe.is_ls:
            raise SimulationError(
                f"memory request from non-LS PE {record.pe_coord}"
            )
        record.response_hops = self.noc.request_hops(pe)
        self.pe_queues[record.pe_coord].append(record)
        self.in_network += 1

    def tick(self, now: int, deliver) -> bool:
        """Advance one system cycle; ``deliver(record)`` hands to memory.

        Returns True when any request moved — a port delivered to memory
        or an arbiter latch refilled. The engine's deadlock detector
        counts this as progress, so a request crawling through a long
        arbiter chain does not false-trip ``DeadlockError``.
        """
        if not self.in_network:
            # Empty network: nothing to grant anywhere, no round-robin
            # cursor moves, no arbiter stall accrues (latches are all
            # empty) — the full scan below would be a provable no-op.
            return False
        moved = False
        obs = self.obs
        faults = self.faults
        # 1. Ports consume (one request per port per cycle). A source
        # handle is either an upstream _Arbiter (take = drain its latch)
        # or a PE injection deque (take = popleft).
        for port, handles in self._port_plan:
            start = self.port_rr[port]
            n = len(handles)
            for offset in range(n):
                handle = handles[(start + offset) % n]
                if type(handle) is _Arbiter:
                    record = handle.latch
                else:
                    record = handle[0] if handle else None
                if record is not None:
                    if faults is not None and faults.skip_grant():
                        # Injected grant glitch: the port granted this
                        # source but the transfer is withheld; the
                        # request stays where it was and the port wastes
                        # the cycle.
                        break
                    if type(handle) is _Arbiter:
                        handle.latch = None
                    else:
                        handle.popleft()
                    self.port_rr[port] = (start + offset + 1) % n
                    self.in_network -= 1
                    deliver(record)
                    if obs is not None:
                        obs.fmnoc(now, ("port", port))
                    moved = True
                    break
        # 2. Arbiters refill their latches, nearest-to-memory domain first
        #    so a request advances at most one stage per cycle.
        for arb_id, arbiter, handles in self._arb_plan:
            if arbiter.latch is not None:
                arbiter.stall_cycles += 1
                continue
            start = arbiter.rr
            n = len(handles)
            for offset in range(n):
                handle = handles[(start + offset) % n]
                if type(handle) is _Arbiter:
                    record = handle.latch
                else:
                    record = handle[0] if handle else None
                if record is not None:
                    if faults is not None and faults.skip_grant():
                        # Injected grant glitch: the stage keeps its
                        # latch empty this cycle and the request stays
                        # at its source.
                        break
                    if type(handle) is _Arbiter:
                        handle.latch = None
                    else:
                        handle.popleft()
                    arbiter.rr = (start + offset + 1) % n
                    arbiter.latch = record
                    if obs is not None:
                        obs.fmnoc(
                            now, ("arb", arb_id.row, arb_id.domain)
                        )
                    moved = True
                    break
        return moved

    def busy(self) -> bool:
        # in_network counts every request between inject() and the port
        # deliver — PE queues and latches alike (audit() recounts and
        # the conformance layer proves the ledger exact).
        return self.in_network > 0

    # -- snapshots ---------------------------------------------------------

    def signature(self) -> str:
        """Stable identity string for the snapshot config digest: two
        frontends with equal signatures route requests identically."""
        return f"monaco:{self.fabric.rows}x{self.fabric.cols}"

    def state_dict(self) -> dict:
        """Complete mutable state for mid-run snapshots.

        The network *structure* (arbiter tree, port sources) is rebuilt
        deterministically from the fabric; only queues, latches and
        round-robin cursors are state. Records are stored by reference —
        the snapshot layer pickles the whole machine in one pass, so
        latched requests keep their identity with the engine's
        ``resp_queue`` aliases.
        """
        return {
            "pe_queues": {
                coord: list(queue) for coord, queue in self.pe_queues.items()
            },
            "arbiters": {
                arb_id: (a.rr, a.latch, a.stall_cycles)
                for arb_id, a in self.arbiters.items()
            },
            "port_rr": dict(self.port_rr),
            "in_network": self.in_network,
        }

    def load_state_dict(self, state: dict) -> None:
        for coord, items in state["pe_queues"].items():
            queue = self.pe_queues[coord]
            queue.clear()
            queue.extend(items)
        for arb_id, (rr, latch, stall_cycles) in state["arbiters"].items():
            arbiter = self.arbiters[arb_id]
            arbiter.rr = rr
            arbiter.latch = latch
            arbiter.stall_cycles = stall_cycles
        self.port_rr.update(state["port_rr"])
        self.in_network = state["in_network"]

    def audit(self) -> int:
        """Structural recount of requests inside the request network.

        Walks every PE injection queue and every arbiter latch and
        counts what is actually there — independently of the
        :attr:`in_network` running counter, so the conformance layer
        (:mod:`repro.check.invariants`) can prove the inject/deliver
        bookkeeping conserves requests.
        """
        held = sum(len(queue) for queue in self.pe_queues.values())
        held += sum(
            1 for a in self.arbiters.values() if a.latch is not None
        )
        return held

    def next_event(self, now: int) -> int | None:
        """Cycle-skip hint: arbiters move every cycle while any request
        is in flight; with nothing in the network there is no event."""
        return now if self.busy() else None
