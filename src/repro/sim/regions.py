"""Execution of multi-region (multi-bitstream) programs.

Regions run sequentially: the host launches a bitstream, waits for
quiescence, reads back any spilled scalars from the ``__spill`` area,
reconfigures the fabric (a fixed cycle cost per bitstream load), and
launches the next region with the spilled values bound as parameters.
Memory persists across launches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.params import ArchParams
from repro.pnr.regions import SPILL_ARRAY, CompiledRegionProgram
from repro.sim.engine import default_frontend, simulate
from repro.sim.stats import SimStats

#: System cycles charged per bitstream load (fabric reconfiguration).
DEFAULT_RECONFIG_CYCLES = 256


@dataclass
class RegionRunResult:
    """Aggregate result of a multi-region run."""

    memory: dict[str, list]
    total_cycles: int
    region_cycles: list[int] = field(default_factory=list)
    region_stats: list[SimStats] = field(default_factory=list)
    reconfig_cycles: int = DEFAULT_RECONFIG_CYCLES

    @property
    def regions(self) -> int:
        return len(self.region_cycles)


def simulate_regions(
    compiled: CompiledRegionProgram,
    params: dict[str, int | float] | None = None,
    arrays: dict[str, list] | None = None,
    arch: ArchParams | None = None,
    frontend_factory=default_frontend,
    divider: int | None = None,
    reconfig_cycles: int = DEFAULT_RECONFIG_CYCLES,
) -> RegionRunResult:
    """Run every region in order, carrying memory and spilled scalars."""
    arch = arch or ArchParams()
    params = dict(params or {})
    memory: dict[str, list] = dict(arrays or {})
    result = RegionRunResult(
        memory={}, total_cycles=0, reconfig_cycles=reconfig_cycles
    )
    for index, (region, compiled_kernel) in enumerate(
        zip(compiled.program.regions, compiled.compiled)
    ):
        launch_params = dict(params)
        spill = memory.get(SPILL_ARRAY)
        for var in region.live_in:
            slot = compiled.program.spill_slots[var]
            if spill is None:
                raise RuntimeError(
                    f"region {index} expects spilled scalar {var!r} but "
                    "no spill data exists"
                )
            launch_params[var] = spill[slot]
        run = simulate(
            compiled_kernel,
            launch_params,
            {
                name: memory[name]
                for name in compiled_kernel.dfg.arrays
                if name in memory
            },
            arch,
            frontend_factory=frontend_factory,
            divider=divider,
        )
        memory.update(run.memory)
        result.region_cycles.append(run.stats.system_cycles)
        result.region_stats.append(run.stats)
        result.total_cycles += run.stats.system_cycles
        if index + 1 < len(compiled.compiled):
            result.total_cycles += reconfig_cycles
    result.memory = memory
    return result
