"""Deterministic fault injection for the timed simulator.

The simulator's own failure detectors — the deadlock detector's ranked
blocked-node report, the ``max_cycles`` watchdog, the reference check —
guard every run, but until this module they were trusted untested. A
:class:`FaultInjector` built from :class:`repro.arch.params.FaultParams`
adversarially exercises them with *seeded, reproducible* perturbations:

* **memory response delay** — a served access's response is held back
  ``mem_delay_cycles`` extra system cycles (models bank jitter / retried
  DRAM transactions; results stay correct, cycles degrade);
* **memory response drop** — the response never returns to the PE, which
  must wedge the machine and trip :class:`~repro.errors.DeadlockError`
  with the dropping node in the blocked report;
* **PE stall** — a would-fire node is suppressed for one fabric tick
  (models transient PE unavailability);
* **FM-NoC grant skip** — a port/arbiter grant that round-robin selected
  a request withholds it for a cycle (models arbitration glitches).

Determinism contract: every category draws from its *own* LCG stream
(seeded from ``FaultParams.seed`` + a category tag), and a stream is
consulted only when its event actually occurs — per memory service, per
firing, per grant — never per cycle. Event sequences are identical with
cycle-skipping on or off (the engine never skips a cycle in which any of
these events could happen), so injected runs are bit-identical under
either scheduler, and enabling one category does not shift another's
stream.
"""

from __future__ import annotations

from repro.arch.params import FaultParams

#: 64-bit LCG constants (Knuth), matching the deterministic reservoir in
#: :mod:`repro.sim.stats` — plain ints keep injectors picklable.
_LCG_MUL = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1
#: 2^53: draws use the top 53 bits, uniform in [0, 1).
_DENOM = float(1 << 53)


class _Stream:
    """One deterministic per-category Bernoulli stream."""

    __slots__ = ("prob", "state", "draws", "fires")

    def __init__(self, seed: int, tag: str, prob: float):
        self.prob = prob
        # Mix the tag into the seed so categories are decorrelated.
        state = (seed * _LCG_MUL + _LCG_INC) & _LCG_MASK
        for ch in tag:
            state = ((state ^ ord(ch)) * _LCG_MUL + _LCG_INC) & _LCG_MASK
        self.state = state
        self.draws = 0
        self.fires = 0

    def hit(self) -> bool:
        """One Bernoulli draw. Never called when ``prob == 0`` (the
        caller gates on the probability), so an off category consumes
        nothing and cannot shift other categories' schedules."""
        self.state = (self.state * _LCG_MUL + _LCG_INC) & _LCG_MASK
        self.draws += 1
        if (self.state >> 11) / _DENOM < self.prob:
            self.fires += 1
            return True
        return False

    def state_dict(self) -> dict:
        """LCG cursor + draw ledger — a restored stream continues the
        exact Bernoulli sequence (``prob`` is rebuilt from params)."""
        return {"state": self.state, "draws": self.draws, "fires": self.fires}

    def load_state_dict(self, state: dict) -> None:
        self.state = state["state"]
        self.draws = state["draws"]
        self.fires = state["fires"]


class FaultInjector:
    """Per-run fault oracle consulted by engine, memsys and frontends.

    Components hold ``faults = None`` by default and gate every consult
    on that check — the same zero-overhead-when-off contract as the
    observability bus.
    """

    def __init__(self, params: FaultParams):
        self.params = params
        self._mem_delay = _Stream(params.seed, "mem-delay", params.mem_delay_prob)
        self._mem_drop = _Stream(params.seed, "mem-drop", params.mem_drop_prob)
        self._pe_stall = _Stream(params.seed, "pe-stall", params.pe_stall_prob)
        self._grant = _Stream(params.seed, "grant-skip", params.grant_skip_prob)

    # -- consult points ---------------------------------------------------

    def drop_response(self) -> bool:
        """Memory service: should this response vanish in the network?"""
        return self.params.mem_drop_prob > 0.0 and self._mem_drop.hit()

    def delay_response(self) -> int:
        """Memory service: extra response cycles (0 = undisturbed)."""
        if self.params.mem_delay_prob > 0.0 and self._mem_delay.hit():
            return self.params.mem_delay_cycles
        return 0

    def stall_pe(self) -> bool:
        """Fire phase: suppress this otherwise-committed firing?"""
        return self.params.pe_stall_prob > 0.0 and self._pe_stall.hit()

    def skip_grant(self) -> bool:
        """FM-NoC: withhold this port/arbiter grant for a cycle?"""
        return self.params.grant_skip_prob > 0.0 and self._grant.hit()

    # -- snapshots --------------------------------------------------------

    def state_dict(self) -> dict:
        """All four category streams (see :mod:`repro.sim.snapshot`)."""
        return {
            "mem-delay": self._mem_delay.state_dict(),
            "mem-drop": self._mem_drop.state_dict(),
            "pe-stall": self._pe_stall.state_dict(),
            "grant-skip": self._grant.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self._mem_delay.load_state_dict(state["mem-delay"])
        self._mem_drop.load_state_dict(state["mem-drop"])
        self._pe_stall.load_state_dict(state["pe-stall"])
        self._grant.load_state_dict(state["grant-skip"])

    # -- accounting -------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Injections actually performed (for stats / manifests)."""
        raw = {
            "mem-delay": self._mem_delay.fires,
            "mem-drop": self._mem_drop.fires,
            "pe-stall": self._pe_stall.fires,
            "grant-skip": self._grant.fires,
        }
        return {kind: n for kind, n in raw.items() if n}


def make_injector(arch_sim) -> FaultInjector | None:
    """Build an injector from ``ArchParams.sim``, or None when off."""
    params = getattr(arch_sim, "faults", None)
    if params is None or not params.active():
        return None
    return FaultInjector(params)
