"""Simulation statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.memsys import MemStats


@dataclass
class LatencyAccumulator:
    """Streaming mean of memory latencies."""

    count: int = 0
    total: int = 0

    def add(self, latency: int) -> None:
        self.count += 1
        self.total += latency

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class SimStats:
    """What one timed run measured."""

    system_cycles: int = 0
    clock_divider: int = 1
    firings: dict[str, int] = field(default_factory=dict)
    #: Load latency (issue -> response arrival, system cycles) per
    #: criticality class.
    load_latency: dict[str, LatencyAccumulator] = field(
        default_factory=lambda: {
            "A": LatencyAccumulator(),
            "B": LatencyAccumulator(),
            "C": LatencyAccumulator(),
        }
    )
    #: Load latency per NUPEA domain (Monaco runs only).
    domain_latency: dict[int, LatencyAccumulator] = field(
        default_factory=dict
    )
    mem: MemStats = field(default_factory=MemStats)
    frontend: str = ""
    #: Routed data-NoC channel hops crossed by tokens during the run.
    noc_hops: int = 0
    #: Fabric-memory NoC arbitration stages traversed (request + response).
    fmnoc_hops: int = 0
    #: System cycles the engine actually executed (loop iterations). With
    #: event-driven cycle skipping this is <= system_cycles; excluded from
    #: equality so skip-on and skip-off stats still compare bit-identical.
    executed_cycles: int = field(default=0, compare=False)
    #: System cycles the scheduler jumped over as provably idle.
    skipped_cycles: int = field(default=0, compare=False)

    @property
    def fabric_cycles(self) -> int:
        return self.system_cycles // self.clock_divider

    @property
    def total_firings(self) -> int:
        return sum(self.firings.values())

    @property
    def ipc(self) -> float:
        """Instructions fired per fabric cycle."""
        cycles = self.fabric_cycles
        return self.total_firings / cycles if cycles else 0.0

    def record_load(
        self, criticality: str, domain: int | None, latency: int
    ) -> None:
        self.load_latency[criticality].add(latency)
        if domain is not None:
            self.domain_latency.setdefault(
                domain, LatencyAccumulator()
            ).add(latency)

    def summary(self) -> str:
        parts = [
            f"{self.system_cycles} system cycles "
            f"(divider {self.clock_divider}, {self.fabric_cycles} fabric)",
            f"{self.total_firings} firings (IPC {self.ipc:.2f})",
            f"{self.mem.loads} loads / {self.mem.stores} stores "
            f"({self.mem.hits} hits, {self.mem.misses} misses)",
        ]
        lat = ", ".join(
            f"{klass}:{acc.mean:.1f}"
            for klass, acc in self.load_latency.items()
            if acc.count
        )
        if lat:
            parts.append(f"mean load latency by class [{lat}]")
        return "; ".join(parts)
