"""Simulation statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.memsys import MemStats

#: Reservoir capacity per latency accumulator; runs with fewer samples
#: keep every latency (percentiles exact), larger runs are sampled.
RESERVOIR_CAP = 2048

#: 64-bit LCG constants (Knuth) for deterministic reservoir sampling —
#: plain ints, so accumulators stay picklable and value-comparable.
_LCG_MUL = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


@dataclass
class LatencyAccumulator:
    """Streaming latency statistics: exact mean + sampled percentiles.

    The mean is exact (running count/total); percentiles come from a
    deterministic reservoir (algorithm R driven by an inline LCG), so two
    runs that observe the same latency sequence — cycle-skip on or off,
    serial or parallel harness — hold bit-identical reservoirs.
    """

    count: int = 0
    total: int = 0
    #: Reservoir of observed latencies (exact below RESERVOIR_CAP).
    samples: list[int] = field(default_factory=list)
    _lcg: int = field(default=0x9E3779B97F4A7C15, repr=False)

    def add(self, latency: int) -> None:
        self.count += 1
        self.total += latency
        if len(self.samples) < RESERVOIR_CAP:
            self.samples.append(latency)
            return
        self._lcg = (self._lcg * _LCG_MUL + _LCG_INC) & _LCG_MASK
        slot = self._lcg % self.count
        if slot < RESERVOIR_CAP:
            self.samples[slot] = latency

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the reservoir (0.0 if empty)."""
        if not self.samples:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p!r} outside [0, 100]")
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, round(p / 100 * len(ordered)) - 1))
        if p == 0:
            rank = 0
        return float(ordered[rank])

    def to_dict(self) -> dict:
        """JSON-friendly summary (count, mean, p50/p95/p99)."""
        return {
            "count": self.count,
            "mean": round(self.mean, 3),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def state_dict(self) -> dict:
        """Complete mutable state, including the reservoir's LCG cursor
        — a restored accumulator continues the exact sampling stream
        (see :mod:`repro.sim.snapshot`)."""
        return {
            "count": self.count,
            "total": self.total,
            "samples": list(self.samples),
            "lcg": self._lcg,
        }

    def load_state_dict(self, state: dict) -> None:
        self.count = state["count"]
        self.total = state["total"]
        self.samples = list(state["samples"])
        self._lcg = state["lcg"]

    def describe(self) -> str:
        """Compact ``p50/p95/p99 (mean, n)`` rendering; '-' when empty."""
        if not self.count:
            return "-"
        return (
            f"p50={self.percentile(50):.0f}/p95={self.percentile(95):.0f}"
            f"/p99={self.percentile(99):.0f} (mean {self.mean:.1f}, "
            f"n={self.count})"
        )


@dataclass
class SimStats:
    """What one timed run measured."""

    system_cycles: int = 0
    clock_divider: int = 1
    firings: dict[str, int] = field(default_factory=dict)
    #: Load latency (issue -> response arrival, system cycles) per
    #: criticality class.
    load_latency: dict[str, LatencyAccumulator] = field(
        default_factory=lambda: {
            "A": LatencyAccumulator(),
            "B": LatencyAccumulator(),
            "C": LatencyAccumulator(),
        }
    )
    #: Load latency per NUPEA domain (Monaco runs only).
    domain_latency: dict[int, LatencyAccumulator] = field(
        default_factory=dict
    )
    mem: MemStats = field(default_factory=MemStats)
    frontend: str = ""
    #: Routed data-NoC channel hops crossed by tokens during the run.
    noc_hops: int = 0
    #: Fabric-memory NoC arbitration stages traversed (request + response).
    fmnoc_hops: int = 0
    #: System cycles the engine actually executed (loop iterations). With
    #: event-driven cycle skipping this is <= system_cycles; excluded from
    #: equality so skip-on and skip-off stats still compare bit-identical.
    executed_cycles: int = field(default=0, compare=False)
    #: System cycles the scheduler jumped over as provably idle.
    skipped_cycles: int = field(default=0, compare=False)
    #: Fault injections actually performed (empty when injection is off,
    #: so clean runs stay bit-identical to pre-fault-layer builds).
    faults_injected: dict[str, int] = field(default_factory=dict)
    #: NUMA locality split (``local_accesses``/``remote_accesses``) from
    #: frontends that tally one — the NUMA-UPEA baseline and the hybrid.
    #: Empty for uniform/Monaco runs, so their digests are unchanged.
    numa: dict[str, int] = field(default_factory=dict)
    #: Critical-path attribution (see :mod:`repro.obs.critpath`): the
    #: compact report the recorder publishes at finish — category costs
    #: summing exactly to ``system_cycles``, the coarse rollup, and the
    #: top critical loads. Empty when profiling is off; excluded from
    #: equality so profiled and unprofiled runs of the same point still
    #: compare bit-identical (the ``executed_cycles`` pattern).
    critpath: dict = field(default_factory=dict, compare=False)

    @property
    def fabric_cycles(self) -> int:
        return self.system_cycles // self.clock_divider

    @property
    def total_firings(self) -> int:
        return sum(self.firings.values())

    @property
    def ipc(self) -> float:
        """Instructions fired per fabric cycle."""
        cycles = self.fabric_cycles
        return self.total_firings / cycles if cycles else 0.0

    @property
    def avg_mem_latency(self) -> float:
        """Exact mean load round-trip latency (issue -> PE arrival).

        Computed from the arrival-side ledger
        (:attr:`MemStats.latency_total` / :attr:`MemStats.responses`),
        so it equals the combined mean of the per-class reservoir
        accumulators (whose means are exact running totals; only their
        percentiles are sampled).
        """
        return self.mem.avg_latency

    def record_load(
        self, criticality: str, domain: int | None, latency: int
    ) -> None:
        self.load_latency[criticality].add(latency)
        if domain is not None:
            self.domain_latency.setdefault(
                domain, LatencyAccumulator()
            ).add(latency)

    def summary(self) -> str:
        parts = [
            f"{self.system_cycles} system cycles "
            f"(divider {self.clock_divider}, {self.fabric_cycles} fabric)",
            f"{self.total_firings} firings (IPC {self.ipc:.2f})",
            f"{self.mem.loads} loads / {self.mem.stores} stores "
            f"({self.mem.hits} hits, {self.mem.misses} misses)",
        ]
        if self.mem.responses:
            parts.append(
                f"avg mem latency {self.avg_mem_latency:.1f} cycles"
            )
        lat = ", ".join(
            f"{klass}: {acc.describe()}"
            for klass, acc in sorted(self.load_latency.items())
            if acc.count
        )
        if lat:
            parts.append(f"load latency by class [{lat}]")
        dom = ", ".join(
            f"D{domain}: {acc.describe()}"
            for domain, acc in sorted(self.domain_latency.items())
            if acc.count
        )
        if dom:
            parts.append(f"by domain [{dom}]")
        if self.numa:
            local = self.numa.get("local_accesses", 0)
            remote = self.numa.get("remote_accesses", 0)
            total = local + remote
            share = local / total if total else 0.0
            parts.append(
                f"NUMA {local} local / {remote} remote "
                f"({share:.0%} local)"
            )
        if self.critpath:
            denom = max(1, self.critpath.get("system_cycles", 1))
            rollup = self.critpath.get("rollup", {})
            buckets = ", ".join(
                f"{name} {cycles / denom:.0%}"
                for name, cycles in sorted(
                    rollup.items(), key=lambda kv: -kv[1]
                )[:3]
                if cycles
            )
            if buckets:
                parts.append(f"critical path [{buckets}]")
            loads = ", ".join(
                f"n{e['nid']} [{e['class']}] {e['criticality']:.0%}"
                for e in self.critpath.get("top_loads", ())[:3]
            )
            if loads:
                parts.append(f"top critical loads [{loads}]")
        return "; ".join(parts)

    def state_dict(self) -> dict:
        """Complete mutable state for mid-run snapshots.

        ``mem`` is included for completeness, but during a run the live
        memory ledger is ``MemorySystem.stats`` (the engine only assigns
        it onto ``SimStats.mem`` at quiescence) — the snapshot layer
        captures that one through
        :meth:`repro.sim.memsys.MemorySystem.state_dict`.
        """
        return {
            "system_cycles": self.system_cycles,
            "clock_divider": self.clock_divider,
            "firings": dict(self.firings),
            "load_latency": {
                klass: acc.state_dict()
                for klass, acc in self.load_latency.items()
            },
            "domain_latency": {
                domain: acc.state_dict()
                for domain, acc in self.domain_latency.items()
            },
            "mem": {
                "loads": self.mem.loads,
                "stores": self.mem.stores,
                "hits": self.mem.hits,
                "misses": self.mem.misses,
                "bank_wait_cycles": self.mem.bank_wait_cycles,
                "latency_total": self.mem.latency_total,
                "responses": self.mem.responses,
            },
            "frontend": self.frontend,
            "noc_hops": self.noc_hops,
            "fmnoc_hops": self.fmnoc_hops,
            "executed_cycles": self.executed_cycles,
            "skipped_cycles": self.skipped_cycles,
            "faults_injected": dict(self.faults_injected),
            "numa": dict(self.numa),
            "critpath": dict(self.critpath),
        }

    def load_state_dict(self, state: dict) -> None:
        self.system_cycles = state["system_cycles"]
        self.clock_divider = state["clock_divider"]
        self.firings = dict(state["firings"])
        self.load_latency = {}
        for klass, acc_state in state["load_latency"].items():
            acc = LatencyAccumulator()
            acc.load_state_dict(acc_state)
            self.load_latency[klass] = acc
        self.domain_latency = {}
        for domain, acc_state in state["domain_latency"].items():
            acc = LatencyAccumulator()
            acc.load_state_dict(acc_state)
            self.domain_latency[domain] = acc
        mem = state["mem"]
        self.mem = MemStats(**mem)
        self.frontend = state["frontend"]
        self.noc_hops = state["noc_hops"]
        self.fmnoc_hops = state["fmnoc_hops"]
        self.executed_cycles = state["executed_cycles"]
        self.skipped_cycles = state["skipped_cycles"]
        self.faults_injected = dict(state["faults_injected"])
        # .get: pre-numa-reporting snapshots lack the key (the live
        # tallies are restored through the frontend's own state anyway).
        self.numa = dict(state.get("numa", {}))
        self.critpath = dict(state["critpath"])

    def to_dict(self) -> dict:
        """Machine-readable stats for ``--stats-json`` and manifests."""
        return {
            "system_cycles": self.system_cycles,
            "clock_divider": self.clock_divider,
            "fabric_cycles": self.fabric_cycles,
            "executed_cycles": self.executed_cycles,
            "skipped_cycles": self.skipped_cycles,
            "frontend": self.frontend,
            "firings": dict(sorted(self.firings.items())),
            "total_firings": self.total_firings,
            "ipc": round(self.ipc, 4),
            "noc_hops": self.noc_hops,
            "fmnoc_hops": self.fmnoc_hops,
            "mem": {
                "loads": self.mem.loads,
                "stores": self.mem.stores,
                "hits": self.mem.hits,
                "misses": self.mem.misses,
                "bank_wait_cycles": self.mem.bank_wait_cycles,
                "latency_total": self.mem.latency_total,
                "responses": self.mem.responses,
                "avg_mem_latency": round(self.avg_mem_latency, 3),
            },
            "load_latency": {
                klass: acc.to_dict()
                for klass, acc in sorted(self.load_latency.items())
                if acc.count
            },
            "domain_latency": {
                str(domain): acc.to_dict()
                for domain, acc in sorted(self.domain_latency.items())
                if acc.count
            },
            **(
                {"faults_injected": dict(sorted(self.faults_injected.items()))}
                if self.faults_injected
                else {}
            ),
            **(
                {"numa": dict(sorted(self.numa.items()))}
                if self.numa
                else {}
            ),
            **({"critpath": self.critpath} if self.critpath else {}),
        }
