"""Baseline fabric-memory interconnects: UPEA and NUMA-UPEA (Sec. 6).

* :class:`UniformFrontend` — uniform PE access: every memory request pays
  a fixed delay of N *fabric* cycles before reaching its bank, with no
  port or arbiter contention ("the baselines model only the delay from
  UPEA and do not explicitly arbitrate memory requests to memory ports",
  so they enjoy higher available bandwidth than Monaco). ``N = 0`` is the
  paper's **Ideal** configuration.
* :class:`NumaFrontend` — UPEA plus NUMA memory: LS PEs are randomly
  assigned to ``n_domains`` NUMA domains and the address space is
  interleaved across domains at cache-line granularity; an access to the
  local domain bypasses the UPEA delay entirely (so local accesses may
  overtake older remote ones, exactly as in a real NUMA interconnect).
"""

from __future__ import annotations

import hashlib
import heapq
import random

from repro.arch.fabric import Fabric
from repro.arch.memory import AddressMap
from repro.sim.memsys import RequestRecord


class UniformFrontend:
    """Fixed-delay, contention-free fabric-memory interconnect."""

    name = "upea"
    #: Observability bus (see :mod:`repro.obs`); None = tracing off.
    obs = None
    #: Fault injector (see :mod:`repro.sim.faults`); None = off. The
    #: uniform frontends are contention-free pipes, so they have no
    #: grants to perturb — memory-response faults still apply to them
    #: through :class:`repro.sim.memsys.MemorySystem`.
    faults = None

    def __init__(self, delay_system_cycles: int):
        if delay_system_cycles < 0:
            raise ValueError("delay must be non-negative")
        self.delay = delay_system_cycles
        self._pipe: list[tuple[int, int, RequestRecord]] = []
        self._order = 0

    def _schedule(self, record: RequestRecord, ready: int) -> None:
        self._order += 1
        heapq.heappush(self._pipe, (ready, self._order, record))

    def inject(self, record: RequestRecord, now: int) -> None:
        record.response_hops = 0
        self._schedule(record, now + self.delay)

    def tick(self, now: int, deliver) -> bool:
        moved = False
        while self._pipe and self._pipe[0][0] <= now:
            deliver(heapq.heappop(self._pipe)[2])
            moved = True
        return moved

    def busy(self) -> bool:
        return bool(self._pipe)

    def audit(self) -> int:
        """Structural recount of requests still inside the delay pipe
        (see :meth:`repro.sim.fmnoc_sim.MonacoFrontend.audit`)."""
        return len(self._pipe)

    def next_event(self, now: int) -> int | None:
        """Cycle-skip hint: nothing happens until the pipe's head matures,
        so the engine may jump straight over the fixed UPEA delay."""
        if not self._pipe:
            return None
        return max(now, self._pipe[0][0])

    # -- snapshots ---------------------------------------------------------

    def signature(self) -> str:
        """Stable identity string for the snapshot config digest (the
        delay is set by the machine config, not by ``ArchParams``, so it
        must be pinned here)."""
        return f"upea:delay={self.delay}"

    def state_dict(self) -> dict:
        return {"pipe": list(self._pipe), "order": self._order}

    def load_state_dict(self, state: dict) -> None:
        self._pipe = list(state["pipe"])
        self._order = state["order"]


class NumaFrontend(UniformFrontend):
    """UPEA with NUMA domains: local accesses skip the uniform delay."""

    name = "numa-upea"

    def __init__(
        self,
        delay_system_cycles: int,
        fabric: Fabric,
        address_map: AddressMap,
        n_domains: int = 4,
        seed: int = 0,
    ):
        super().__init__(delay_system_cycles)
        self.n_domains = n_domains
        self.address_map = address_map
        rng = random.Random(seed)
        #: Random LS PE -> NUMA domain assignment (paper Sec. 6).
        self.pe_domain = {
            pe.coord: rng.randrange(n_domains)
            for pe in sorted(fabric.ls_pes(), key=lambda p: (p.y, p.x))
        }
        self.local_accesses = 0
        self.remote_accesses = 0

    def domain_of_address(self, address: int) -> int:
        return self.address_map.line(address) % self.n_domains

    def numa_counters(self) -> dict[str, int]:
        """Locality tally for :attr:`SimStats.numa` (reported at
        quiescence; the split is the whole point of the NUMA baseline)."""
        return {
            "local_accesses": self.local_accesses,
            "remote_accesses": self.remote_accesses,
        }

    def inject(self, record: RequestRecord, now: int) -> None:
        record.response_hops = 0
        local = self.pe_domain[record.pe_coord] == self.domain_of_address(
            record.address
        )
        if local:
            self.local_accesses += 1
            self._schedule(record, now)
        else:
            self.remote_accesses += 1
            self._schedule(record, now + self.delay)
        if self.obs is not None:
            self.obs.counter(
                "numa-local" if local else "numa-remote"
            )

    # -- snapshots ---------------------------------------------------------

    def signature(self) -> str:
        """Pins the domain count *and* the concrete PE->domain draw (two
        runs with different seeds route differently, so their snapshots
        must not be interchangeable)."""
        assignment = hashlib.sha256(
            repr(sorted(self.pe_domain.items())).encode()
        ).hexdigest()[:12]
        return (
            f"numa-upea:delay={self.delay}:domains={self.n_domains}"
            f":assign={assignment}"
        )

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["local_accesses"] = self.local_accesses
        state["remote_accesses"] = self.remote_accesses
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.local_accesses = state["local_accesses"]
        self.remote_accesses = state["remote_accesses"]
