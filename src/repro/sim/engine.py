"""Cycle-level simulator of a compiled kernel on an SDA fabric.

The engine advances the *system* clock one cycle at a time; the fabric
fires on cycles divisible by the clock divider chosen by PnR's static
timing (ratio-synchronous clocks, Sec. 4.2). Per system cycle:

1. banks serve queued requests and completed accesses travel back over the
   response network (one cycle per arbitration hop);
2. the fabric-memory frontend advances — Monaco's arbiter tree, or a
   UPEA/NUMA fixed-delay pipe;
3. on a fabric tick, PEs emit arrived memory responses and fire ready
   nodes; tokens land in consumer FIFOs at the next tick (the bufferless
   data NoC crosses any routed path within one fabric clock).

Ordered dataflow discipline: every input port has a bounded token FIFO
(backpressure stalls the producer); each PE fires its single instruction
at most once per fabric cycle; loads may pipeline up to ``max_outstanding``
requests but always deliver responses in issue order.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.arch.memory import AddressMap
from repro.arch.params import ArchParams
from repro.dfg.graph import DFG, PortRef
from repro.dfg.ops import NO_EMIT, FifoLike, decide, fresh_state
from repro.errors import DeadlockError, SimulationError
from repro.pnr.result import CompiledKernel
from repro.sim.fmnoc_sim import MonacoFrontend
from repro.sim.memsys import MemorySystem, RequestRecord
from repro.sim.stats import SimStats


class _Fifos(FifoLike):
    def __init__(self, dfg: DFG):
        self.queues: dict[tuple[int, int], deque] = {}
        for node in dfg.nodes.values():
            for index, inp in enumerate(node.inputs):
                if isinstance(inp, PortRef):
                    self.queues[(node.nid, index)] = deque()

    def has(self, node, index):
        return bool(self.queues[(node.nid, index)])

    def peek(self, node, index):
        return self.queues[(node.nid, index)][0]


class SimResult:
    """Final memory state plus statistics for one run."""

    def __init__(self, memory: dict[str, list], stats: SimStats):
        self.memory = memory
        self.stats = stats


def default_frontend(fabric, address_map):
    return MonacoFrontend(fabric)


def simulate(
    compiled: CompiledKernel,
    params: dict[str, int | float] | None = None,
    arrays: dict[str, list] | None = None,
    arch: ArchParams | None = None,
    frontend_factory=default_frontend,
    divider: int | None = None,
) -> SimResult:
    """Run ``compiled`` to quiescence and return memory + stats."""
    arch = arch or ArchParams()
    params = dict(params or {})
    dfg = compiled.dfg
    divider = divider or compiled.timing.clock_divider

    memory: dict[str, list] = {}
    for name, size in dfg.arrays.items():
        if arrays and name in arrays:
            data = list(arrays[name])
            if len(data) != size:
                raise SimulationError(
                    f"array {name!r}: got {len(data)} words, declared {size}"
                )
        else:
            zero = 0 if dfg.array_dtypes.get(name, "i") == "i" else 0.0
            data = [zero] * size
        memory[name] = data

    address_map = AddressMap(dfg.arrays, arch.memory)
    memsys = MemorySystem(arch.memory, address_map, memory)
    frontend = frontend_factory(compiled.fabric, address_map)
    engine = _Engine(
        compiled, params, arch, divider, memsys, frontend, address_map
    )
    stats = engine.run()
    stats.frontend = getattr(frontend, "name", type(frontend).__name__)
    return SimResult(memory, stats)


class _Engine:
    def __init__(
        self, compiled, params, arch, divider, memsys, frontend, address_map
    ):
        self.compiled = compiled
        self.dfg: DFG = compiled.dfg
        self.params = params
        self.arch = arch
        self.divider = divider
        self.memsys = memsys
        self.frontend = frontend
        self.address_map = address_map

        self.capacity = arch.sim.fifo_capacity
        self.max_outstanding = arch.sim.max_outstanding
        self.fifos = _Fifos(self.dfg)
        self.states = {
            nid: fresh_state(node) for nid, node in self.dfg.nodes.items()
        }
        self.consumers = self.dfg.consumers()
        self.producer_of: dict[tuple[int, int], int] = {}
        for node in self.dfg.nodes.values():
            for index, inp in enumerate(node.inputs):
                if isinstance(inp, PortRef):
                    self.producer_of[(node.nid, index)] = inp.src
        self.resp_queue: dict[int, deque] = {
            n.nid: deque() for n in self.dfg.memory_nodes()
        }
        # Hops per (producer, consumer) edge from the routed design, for
        # data-movement energy accounting. Falls back to Manhattan
        # distance for edges the router did not record.
        self.edge_hops: dict[tuple[int, int], int] = {}
        self._init_edge_hops()
        self.domain_of = {
            n.nid: compiled.domain_of(n.nid) for n in self.dfg.memory_nodes()
        }
        self.active: set[int] = set(self.dfg.nodes)
        self.emit_candidates: set[int] = set()
        #: Tokens pushed earlier in the *current* fabric tick but not yet
        #: committed, per consumer FIFO. ``can_emit`` counts these so two
        #: capacity checks within one tick cannot both claim the same
        #: remaining slot (intra-tick FIFO-overflow fix).
        self.pending_pushes: dict[tuple[int, int], int] = {}
        self.arrivals: list[tuple[int, int, RequestRecord]] = []
        self._arrival_order = 0
        self._seq = 0
        self.tokens = 0
        self.mem_inflight = 0
        self.stats = SimStats(clock_divider=divider)

    def _init_edge_hops(self) -> None:
        from repro.pnr.netlist import build_netlist

        netlist = build_netlist(self.dfg)
        routed: dict[tuple[int, int], int] = {}
        for index, net in enumerate(netlist.nets):
            hops = self.compiled.routing.sink_hops.get(index, {})
            for sink, count in hops.items():
                routed[(net.src, sink)] = count
        placement = self.compiled.placement
        for producer, consumers in self.consumers.items():
            for consumer, _ in consumers:
                key = (producer, consumer)
                if key in self.edge_hops:
                    continue
                if key in routed:
                    self.edge_hops[key] = routed[key]
                else:
                    (ax, ay), (bx, by) = placement[producer], placement[
                        consumer
                    ]
                    self.edge_hops[key] = abs(ax - bx) + abs(ay - by)

    # -- helpers ---------------------------------------------------------

    def can_emit(self, nid: int) -> bool:
        for key in self.consumers[nid]:
            occupied = len(self.fifos.queues[key]) + self.pending_pushes.get(
                key, 0
            )
            if occupied >= self.capacity:
                return False
        return True

    def push_output(self, nid: int, value, pushes: list) -> None:
        pushes.append((nid, value))
        for key in self.consumers[nid]:
            self.pending_pushes[key] = self.pending_pushes.get(key, 0) + 1

    def commit_pushes(self, pushes: list) -> None:
        for nid, value in pushes:
            for consumer, index in self.consumers[nid]:
                queue = self.fifos.queues[(consumer, index)]
                queue.append(value)
                if len(queue) > self.capacity:
                    node = self.dfg.nodes[consumer]
                    raise SimulationError(
                        f"FIFO overflow: node {consumer} ({node.op} "
                        f"{node.tag!r}) port {node.port_name(index)} holds "
                        f"{len(queue)} tokens (capacity {self.capacity})"
                    )
                self.tokens += 1
                self.stats.noc_hops += self.edge_hops[(nid, consumer)]
                self.active.add(consumer)
        self.pending_pushes.clear()

    # -- main loop ---------------------------------------------------------

    def run(self) -> SimStats:
        now = 0
        last_event = 0
        max_cycles = self.arch.sim.max_cycles
        deadlock_after = self.arch.sim.deadlock_cycles
        cycle_skip = self.arch.sim.cycle_skip
        while True:
            self.stats.executed_cycles += 1
            progressed = False
            self.memsys.tick(now)
            for record in self.memsys.completions(now):
                self._arrival_order += 1
                heapq.heappush(
                    self.arrivals,
                    (
                        record.complete_cycle + record.response_hops,
                        self._arrival_order,
                        record,
                    ),
                )
                progressed = True
            while self.arrivals and self.arrivals[0][0] <= now:
                record = heapq.heappop(self.arrivals)[2]
                record.arrived_cycle = now
                self.emit_candidates.add(record.nid)
                progressed = True
            if self.frontend.tick(
                now, lambda rec: self.memsys.enqueue(rec, now)
            ):
                # Requests advancing through the fabric-memory network
                # (e.g. Monaco's arbiter chain) count as forward progress
                # for the deadlock detector.
                progressed = True
            if now % self.divider == 0:
                if self._fabric_tick(now):
                    progressed = True
            if progressed:
                last_event = now
            if self._finished(now):
                break
            if now - last_event > deadlock_after:
                self._raise_deadlock(now)
            if now > max_cycles:
                raise SimulationError("simulation exceeded max_cycles")
            now += 1
            if cycle_skip:
                target = self._skip_target(
                    now, last_event, deadlock_after, max_cycles
                )
                if target > now:
                    self.stats.skipped_cycles += target - now
                    now = target
        self.stats.system_cycles = now
        self.stats.mem = self.memsys.stats
        self._check_final_state()
        return self.stats

    def _skip_target(
        self, now: int, last_event: int, deadlock_after: int, max_cycles: int
    ) -> int:
        """Earliest cycle >= ``now`` at which anything can happen.

        Every component contributes a ``next_event`` hint; in the gap up
        to the minimum of those hints the machine is provably quiescent,
        so executing the skipped cycles would change nothing — results
        are bit-identical with skipping on or off. The jump is clamped so
        the deadlock detector and the ``max_cycles`` safety net still
        trip at exactly the cycle the per-cycle loop would have raised.
        """
        candidates = []
        nxt = self.memsys.next_event(now)
        if nxt is not None:
            candidates.append(nxt)
        if self.arrivals:
            candidates.append(max(now, self.arrivals[0][0]))
        frontend_next = getattr(self.frontend, "next_event", None)
        if frontend_next is not None:
            nxt = frontend_next(now)
        else:
            # Frontends without a hint: never skip while they hold state.
            nxt = now if self.frontend.busy() else None
        if nxt is not None:
            candidates.append(nxt)
        if self.active or self.emit_candidates:
            # A node may be ready (or retry a blocked emit) at the next
            # fabric tick; idle PEs wake only via the sources above.
            divider = self.divider
            candidates.append(((now + divider - 1) // divider) * divider)
        if candidates:
            target = min(candidates)
        else:
            # Nothing can ever happen again: jump straight to where the
            # per-cycle loop would diagnose the deadlock.
            target = last_event + deadlock_after + 1
        target = min(target, last_event + deadlock_after + 1, max_cycles + 1)
        return max(now, target)

    def _finished(self, now: int) -> bool:
        if now == 0:
            return False
        return (
            self.tokens == 0
            and self.mem_inflight == 0
            and not self.arrivals
            and not self.frontend.busy()
            and not self.memsys.busy()
            and not self._any_ready()
        )

    def _any_ready(self) -> bool:
        # With zero tokens in flight, only a source that has not fired yet
        # could still act.
        for nid in self.active:
            node = self.dfg.nodes[nid]
            if node.op == "source" and not self.states[nid]["fired"]:
                return True
        return False

    # -- fabric ------------------------------------------------------------

    def _fabric_tick(self, now: int) -> bool:
        pushes: list = []
        progressed = False
        if self.emit_candidates:
            progressed |= self._emit_responses(now, pushes)
        progressed |= self._fire_nodes(now, pushes)
        if pushes:
            self.commit_pushes(pushes)
            progressed = True
        return progressed

    def _emit_responses(self, now: int, pushes: list) -> bool:
        progressed = False
        for nid in sorted(self.emit_candidates):
            queue = self.resp_queue[nid]
            record = queue[0] if queue else None
            if record is None or record.arrived_cycle is None:
                self.emit_candidates.discard(nid)
                continue
            if not self.can_emit(nid):
                continue  # retry next fabric tick
            queue.popleft()
            self.mem_inflight -= 1
            self.push_output(nid, record.value, pushes)
            self.stats.fmnoc_hops += 2 * record.response_hops
            node = self.dfg.nodes[nid]
            latency = record.arrived_cycle - record.issue_cycle
            if record.request.kind == "load":
                self.stats.record_load(
                    node.criticality, self.domain_of[nid], latency
                )
            # The PE may issue again now that a slot freed up.
            self.active.add(nid)
            if not queue or queue[0].arrived_cycle is None:
                self.emit_candidates.discard(nid)
            progressed = True
        return progressed

    def _fire_nodes(self, now: int, pushes: list) -> bool:
        progressed = False
        for nid in sorted(self.active):
            node = self.dfg.nodes[nid]
            decision = decide(
                node, self.states[nid], self.fifos, self.params
            )
            if decision is None:
                self.active.discard(nid)
                continue
            if decision.mem is not None:
                if len(self.resp_queue[nid]) >= self.max_outstanding:
                    self.active.discard(nid)
                    continue
            elif decision.emit is not NO_EMIT and not self.can_emit(nid):
                self.active.discard(nid)
                continue
            # Commit the firing.
            for index in decision.pops:
                queue = self.fifos.queues[(nid, index)]
                was_full = len(queue) >= self.capacity
                queue.popleft()
                self.tokens -= 1
                if was_full:
                    self.active.add(self.producer_of[(nid, index)])
            if decision.state is not None:
                self.states[nid].update(decision.state)
            if decision.mem is not None:
                self._issue_memory(nid, decision.mem, now)
            elif decision.emit is not NO_EMIT:
                self.push_output(nid, decision.emit, pushes)
            self.stats.firings[node.op] = (
                self.stats.firings.get(node.op, 0) + 1
            )
            progressed = True
            # The node may be ready again next tick; keep it active.
        return progressed

    def _issue_memory(self, nid: int, request, now: int) -> None:
        self._seq += 1
        record = RequestRecord(
            nid=nid,
            seq=self._seq,
            request=request,
            address=self.address_map.address(request.array, request.index),
            pe_coord=self.compiled.placement[nid],
            issue_cycle=now,
        )
        self.resp_queue[nid].append(record)
        self.mem_inflight += 1
        self.frontend.inject(record, now)

    # -- diagnostics ---------------------------------------------------

    def _raise_deadlock(self, now: int) -> None:
        stuck = []
        for (nid, index), queue in self.fifos.queues.items():
            if queue:
                node = self.dfg.nodes[nid]
                stuck.append(
                    f"node {nid} ({node.op} {node.tag!r}) port "
                    f"{node.port_name(index)}: {len(queue)} token(s)"
                )
        raise DeadlockError(
            f"no progress since cycle {now - self.arch.sim.deadlock_cycles}"
            f"; {self.tokens} tokens stranded, {self.mem_inflight} memory "
            f"ops in flight. Stuck FIFOs:\n  " + "\n  ".join(stuck[:20])
        )

    def _check_final_state(self) -> None:
        for nid, state in self.states.items():
            node = self.dfg.nodes[nid]
            if node.op == "carry" and state["phase"] != "init":
                raise SimulationError(
                    f"carry node {nid} ({node.tag!r}) finished in RUN phase"
                )
            if node.op == "invariant" and state["held"]:
                raise SimulationError(
                    f"invariant node {nid} ({node.tag!r}) finished held"
                )
