"""Cycle-level simulator of a compiled kernel on an SDA fabric.

The engine advances the *system* clock one cycle at a time; the fabric
fires on cycles divisible by the clock divider chosen by PnR's static
timing (ratio-synchronous clocks, Sec. 4.2). Per system cycle:

1. banks serve queued requests and completed accesses travel back over the
   response network (one cycle per arbitration hop);
2. the fabric-memory frontend advances — Monaco's arbiter tree, or a
   UPEA/NUMA fixed-delay pipe;
3. on a fabric tick, PEs emit arrived memory responses and fire ready
   nodes; tokens land in consumer FIFOs at the next tick (the bufferless
   data NoC crosses any routed path within one fabric clock).

Ordered dataflow discipline: every input port has a bounded token FIFO
(backpressure stalls the producer); each PE fires its single instruction
at most once per fabric cycle; loads may pipeline up to ``max_outstanding``
requests but always deliver responses in issue order.

Executed-tick hot path
----------------------
Firing-dense workloads execute nearly every fabric tick, so per-tick
cost is wall clock. The dispatch state is therefore laid out in dense
``nid``-indexed parallel arrays built once at init (node refs, consumer
edge lists with pre-resolved FIFO deques and hop counts, producer ids
per input port, response queues), the active and emit-candidate sets are
incrementally-maintained ordered lists (:class:`_OrderedIntSet` — same
iteration order as the ``sorted(set)`` they replace), and per-op firing
counts accumulate in an interned int array folded into
``SimStats.firings`` at quiescence. All of it is an *optimization, not
an approximation*: results are bit-identical to the per-tick-``sorted``
engine (pinned pre-rewrite digests in ``tests/test_engine_hot.py``), and
the :meth:`state_dict` schema is unchanged, so pre-rewrite snapshots
restore into the dense layout.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.arch.memory import AddressMap
from repro.arch.params import ArchParams
from repro.dfg.graph import DFG, PortRef
from repro.dfg.ops import NO_EMIT, FifoLike, decide, fresh_state
from repro.errors import DeadlockError, SimulationError
from repro.obs.events import FIRE
from repro.pnr.result import CompiledKernel
from repro.sim.fmnoc_sim import MonacoFrontend
from repro.sim.memsys import MemorySystem, RequestRecord
from repro.sim.stats import SimStats


class _Fifos(FifoLike):
    """Per-port input FIFOs with two views of the same deques.

    ``queues`` keys by ``(nid, index)`` — the stable identity tests and
    the snapshot layer use. ``by_node`` is a dense nid-indexed table of
    per-port deque refs (None for immediates) so :func:`decide`'s
    ``has``/``peek`` resolve with an int index instead of hashing a
    fresh tuple per call. Both views alias the *same* deque objects, and
    restore refills them in place, so neither ever goes stale.
    """

    def __init__(self, dfg: DFG):
        self.queues: dict[tuple[int, int], deque] = {}
        size = max(dfg.nodes, default=-1) + 1
        self.by_node: list[list[deque | None] | None] = [None] * size
        for node in dfg.nodes.values():
            row: list[deque | None] = [None] * len(node.inputs)
            for index, inp in enumerate(node.inputs):
                if isinstance(inp, PortRef):
                    queue: deque = deque()
                    self.queues[(node.nid, index)] = queue
                    row[index] = queue
            self.by_node[node.nid] = row

    def has(self, node, index):
        return bool(self.by_node[node.nid][index])

    def peek(self, node, index):
        return self.by_node[node.nid][index][0]


class _OrderedIntSet:
    """Int set with O(1) membership and ascending-order iteration.

    Replaces the engine's per-tick ``sorted(set)``: membership lives in a
    dense flag table, adds buffer in an unsorted pending list, and
    discards are lazy (flag cleared, the sorted list keeps a stale
    entry). :meth:`iter_ordered` merges the pending adds in — dropping
    stale entries and deduplicating a discarded-then-readded id against
    its stale copy — and returns the compacted ascending snapshot.
    That reproduces the replaced loop's semantics exactly: ids added
    *before* an iteration are visited in ascending order; ids added
    *during* one land in the next snapshot; callers skip mid-iteration
    discards with :meth:`has`. When the set is unchanged between ticks,
    taking the snapshot costs nothing.
    """

    __slots__ = ("_member", "_items", "_pending", "count")

    def __init__(self, size: int):
        self._member = bytearray(size)
        #: Ascending ids; may hold stale (discarded) entries until the
        #: next compaction.
        self._items: list[int] = []
        self._pending: list[int] = []
        self.count = 0

    def add(self, nid: int) -> None:
        if not self._member[nid]:
            self._member[nid] = 1
            self._pending.append(nid)
            self.count += 1

    def discard(self, nid: int) -> None:
        if self._member[nid]:
            self._member[nid] = 0
            self.count -= 1

    def has(self, nid: int) -> bool:
        return bool(self._member[nid])

    __contains__ = has

    def __bool__(self) -> bool:
        return self.count > 0

    def __len__(self) -> int:
        return self.count

    def iter_ordered(self):
        """Compacted ascending snapshot (see class docstring)."""
        pending = self._pending
        items = self._items
        if pending or len(items) != self.count:
            member = self._member
            if pending:
                pending.sort()
                if len(pending) > 1:
                    # Repeated discard-then-readd within one tick queues
                    # the same id more than once; keep one copy so the
                    # merge's items-vs-pending dedup stays pairwise.
                    pending = [
                        nid
                        for pos, nid in enumerate(pending)
                        if pos == 0 or nid != pending[pos - 1]
                    ]
                self._pending = []
                merged: list[int] = []
                append = merged.append
                i = j = 0
                ni, nj = len(items), len(pending)
                while i < ni and j < nj:
                    a, b = items[i], pending[j]
                    if a < b:
                        i += 1
                        if member[a]:
                            append(a)
                    elif b < a:
                        j += 1
                        if member[b]:
                            append(b)
                    else:
                        # The stale copy of a discarded-then-readded id
                        # meets its pending re-add: emit once.
                        i += 1
                        j += 1
                        if member[a]:
                            append(a)
                while i < ni:
                    a = items[i]
                    i += 1
                    if member[a]:
                        append(a)
                while j < nj:
                    b = pending[j]
                    j += 1
                    if member[b]:
                        append(b)
                items = self._items = merged
            else:
                items = self._items = [n for n in items if member[n]]
        return iter(items)

    def __iter__(self):
        # Members only — compaction guarantees the snapshot is exact.
        return self.iter_ordered()

    def members(self) -> list[int]:
        return list(self.iter_ordered())


class SimResult:
    """Final memory state plus statistics for one run."""

    def __init__(self, memory: dict[str, list], stats: SimStats, obs=None):
        self.memory = memory
        self.stats = stats
        #: The :class:`repro.obs.Observation` the run published into, or
        #: None when tracing was off.
        self.obs = obs
        #: ``{"from_cycle", "executed_before", "snapshot",
        #: "restore_wall_s"}`` when this run resumed from a snapshot
        #: (see :mod:`repro.sim.snapshot`); None for fresh runs.
        self.resume_info = None
        #: Checkpointer telemetry (write count/latency), or None when
        #: checkpointing was off.
        self.snapshot_stats = None


def default_frontend(fabric, address_map):
    return MonacoFrontend(fabric)


def simulate(
    compiled: CompiledKernel,
    params: dict[str, int | float] | None = None,
    arrays: dict[str, list] | None = None,
    arch: ArchParams | None = None,
    frontend_factory=default_frontend,
    divider: int | None = None,
    obs=None,
    checkpoint=None,
    resume_from=None,
    resume_policy: str = "strict",
) -> SimResult:
    """Run ``compiled`` to quiescence and return memory + stats.

    ``obs`` is an optional :class:`repro.obs.events.EventBus` the engine,
    memory system and frontend publish to. When it is None and
    ``arch.sim.trace`` is set, the standard sink set
    (:func:`repro.obs.make_observation`) is assembled automatically;
    with tracing off nothing is published and results are bit-identical.

    ``checkpoint`` is an optional
    :class:`repro.sim.snapshot.CheckpointConfig` arming mid-run
    snapshots; when None it is assembled from ``arch.sim``'s
    ``checkpoint_path``/``checkpoint_every`` knobs (with signal handlers
    installed for the run). ``resume_from`` names a snapshot file to
    continue from — under ``resume_policy="strict"`` an invalid snapshot
    raises :class:`~repro.errors.SnapshotError`; under ``"discard"`` it
    is deleted and the run starts fresh from cycle 0. A resumed run is
    bit-identical to the uninterrupted one; a preempted run raises
    :class:`~repro.errors.SimulationPreempted` after writing a final
    snapshot.
    """
    arch = arch or ArchParams()
    params = dict(params or {})
    dfg = compiled.dfg
    divider = divider or compiled.timing.clock_divider

    from repro.sim.faults import make_injector

    injector = make_injector(arch.sim)

    memory: dict[str, list] = {}
    for name, size in dfg.arrays.items():
        if arrays and name in arrays:
            data = list(arrays[name])
            if len(data) != size:
                raise SimulationError(
                    f"array {name!r}: got {len(data)} words, declared {size}"
                )
        else:
            zero = 0 if dfg.array_dtypes.get(name, "i") == "i" else 0.0
            data = [zero] * size
        memory[name] = data

    address_map = AddressMap(dfg.arrays, arch.memory)
    memsys = MemorySystem(arch.memory, address_map, memory)
    frontend = frontend_factory(compiled.fabric, address_map)
    if obs is None and (arch.sim.trace or arch.sim.critpath):
        from repro.obs import make_observation

        obs = make_observation(
            compiled,
            divider,
            address_map=address_map,
            chrome=arch.sim.trace_path is not None,
            critpath=arch.sim.critpath,
            fifo_capacity=arch.sim.fifo_capacity,
            max_outstanding=arch.sim.max_outstanding,
        )
    if obs is not None:
        memsys.obs = obs
        frontend.obs = obs
    if injector is not None:
        memsys.faults = injector
        frontend.faults = injector
    checker = None
    if arch.sim.check:
        from repro.check.invariants import InvariantChecker

        checker = InvariantChecker(
            dfg, arch.sim.fifo_capacity, arch.sim.max_outstanding
        )
    engine = _Engine(
        compiled, params, arch, divider, memsys, frontend, address_map,
        obs=obs, faults=injector, check=checker,
    )

    resume_info = None
    snapshots = None
    watchdog = None
    if checkpoint is None and (
        arch.sim.checkpoint_path or arch.sim.checkpoint_every
    ):
        from repro.sim.snapshot import CheckpointConfig

        checkpoint = CheckpointConfig(
            path=arch.sim.checkpoint_path or f"{dfg.name}.snap",
            every_cycles=arch.sim.checkpoint_every,
            install_signals=True,
        )
    if checkpoint is not None or resume_from is not None:
        import time as _time

        from repro.sim.snapshot import (
            Checkpointer,
            Snapshot,
            resolve_resume,
            sim_config_digest,
        )

        digest = sim_config_digest(compiled, arch, divider, frontend, params)
        if resume_from is not None:
            restore_start = _time.perf_counter()
            snap = (
                resume_from
                if isinstance(resume_from, Snapshot)
                else resolve_resume(resume_from, digest, policy=resume_policy)
            )
            if snap is not None:
                snap.install(engine)
                resume_info = {
                    "from_cycle": engine.now,
                    "executed_before": engine.stats.executed_cycles,
                    "snapshot": snap.path,
                    "restore_wall_s": round(
                        _time.perf_counter() - restore_start, 6
                    ),
                }
        if checkpoint is not None:
            snapshots = Checkpointer(checkpoint, digest)
            engine.snapshots = snapshots
            if checkpoint.install_signals and snapshots.watchdog is not None:
                watchdog = snapshots.watchdog
                watchdog.install()
    try:
        stats = engine.run()
    finally:
        if watchdog is not None:
            watchdog.uninstall()
    if snapshots is not None:
        # Only a *clean* completion retires the snapshot file; a
        # preempted run leaves it behind for the retry to resume from.
        snapshots.finish()
    obs = engine.obs  # a restore swaps in the snapshot's sink set
    stats.frontend = getattr(frontend, "name", type(frontend).__name__)
    numa_counters = getattr(frontend, "numa_counters", None)
    if numa_counters is not None:
        # NUMA-aware frontends tally access locality; surface it (it was
        # historically counted and snapshotted but never reported).
        stats.numa = numa_counters()
    if obs is not None:
        obs.finish(stats)
        chrome = getattr(obs, "chrome", None)
        if chrome is not None and arch.sim.trace_path:
            chrome.write(arch.sim.trace_path)
    result = SimResult(memory, stats, obs=obs)
    result.resume_info = resume_info
    if snapshots is not None:
        result.snapshot_stats = snapshots.telemetry()
    return result


class _Engine:
    def __init__(
        self, compiled, params, arch, divider, memsys, frontend,
        address_map, obs=None, faults=None, check=None,
    ):
        self.compiled = compiled
        self.dfg: DFG = compiled.dfg
        self.params = params
        self.arch = arch
        self.divider = divider
        self.memsys = memsys
        self.frontend = frontend
        self.address_map = address_map

        self.capacity = arch.sim.fifo_capacity
        self.max_outstanding = arch.sim.max_outstanding
        self.fifos = _Fifos(self.dfg)
        self.states = {
            nid: fresh_state(node) for nid, node in self.dfg.nodes.items()
        }
        self.consumers = self.dfg.consumers()
        self.producer_of: dict[tuple[int, int], int] = {}
        for node in self.dfg.nodes.values():
            for index, inp in enumerate(node.inputs):
                if isinstance(inp, PortRef):
                    self.producer_of[(node.nid, index)] = inp.src
        self.resp_queue: dict[int, deque] = {
            n.nid: deque() for n in self.dfg.memory_nodes()
        }
        # Hops per (producer, consumer) edge from the routed design, for
        # data-movement energy accounting. Falls back to Manhattan
        # distance for edges the router did not record.
        self.edge_hops: dict[tuple[int, int], int] = {}
        self._init_edge_hops()
        self.domain_of = {
            n.nid: compiled.domain_of(n.nid) for n in self.dfg.memory_nodes()
        }
        #: Dense dispatch tables indexed by nid (and the active/emit
        #: ordered lists they pair with); see the module docstring.
        self._size = max(self.dfg.nodes, default=-1) + 1
        self._dense_init()
        self.active = _OrderedIntSet(self._size)
        for nid in self.dfg.nodes:
            self.active.add(nid)
        self.emit_candidates = _OrderedIntSet(self._size)
        #: Tokens pushed earlier in the *current* fabric tick but not yet
        #: committed, per consumer FIFO. ``can_emit`` counts these so two
        #: capacity checks within one tick cannot both claim the same
        #: remaining slot (intra-tick FIFO-overflow fix).
        self.pending_pushes: dict[tuple[int, int], int] = {}
        self.arrivals: list[tuple[int, int, RequestRecord]] = []
        self._arrival_order = 0
        self._seq = 0
        self.tokens = 0
        self.mem_inflight = 0
        self.stats = SimStats(clock_divider=divider)
        #: Observability bus, or None (tracing off — the zero-overhead
        #: contract: every publish site below is gated on this check).
        self.obs = obs
        #: Fault injector, or None (off — same zero-overhead contract:
        #: every consult site below is gated on this check).
        self.faults = faults
        #: Runtime invariant checker (:mod:`repro.check.invariants`), or
        #: None (off — same zero-overhead contract again). The checker
        #: only reads engine state; with it on, results are still
        #: bit-identical, and a violation raises InvariantViolation.
        self.check = check
        #: Per-tick scratch for attribution (None while tracing is off).
        self._tick_fired: set[int] | None = None
        self._tick_fifo_full: set[int] | None = None
        #: Current system cycle and last-progress cycle — instance state
        #: (not ``run()`` locals) so snapshots capture the scheduler.
        self.now = 0
        self.last_event = 0
        #: Checkpointer (:mod:`repro.sim.snapshot`), or None (off — the
        #: same zero-overhead contract: ``run`` polls one attribute).
        self.snapshots = None

    def _dense_init(self) -> None:
        """Build the nid-indexed dispatch tables once.

        Every entry aliases the canonical dict-keyed structure it
        mirrors (``fifos.queues`` deques, ``states`` dicts, ``consumers``
        lists, ``resp_queue`` deques), and restore refills those in
        place, so the tables never go stale across a snapshot resume.
        """
        size = self._size
        self._node_by_id = [None] * size
        self._state_by_id: list[dict | None] = [None] * size
        #: Per nid: [(fifo_key, consumer_fifo, hops, consumer_nid), ...].
        self._consumer_edges: list[list[tuple]] = [[] for _ in range(size)]
        self._resp_by_id: list[deque | None] = [None] * size
        #: Per nid, per input port: producer nid (PortRef inputs only).
        self._producer_by_port: list[list[int | None]] = [
            [] for _ in range(size)
        ]
        self._placement_by_id: list[tuple[int, int] | None] = [None] * size
        #: Interned per-op firing counters, folded into
        #: ``SimStats.firings`` at quiescence (and at every snapshot).
        op_index: dict[str, int] = {}
        self._nid_op = [0] * size
        self._source_nids: list[int] = []
        for nid, node in self.dfg.nodes.items():
            self._node_by_id[nid] = node
            self._state_by_id[nid] = self.states[nid]
            self._nid_op[nid] = op_index.setdefault(node.op, len(op_index))
            self._placement_by_id[nid] = self.compiled.placement.get(nid)
            row: list[int | None] = [None] * len(node.inputs)
            for index, inp in enumerate(node.inputs):
                if isinstance(inp, PortRef):
                    row[index] = inp.src
            self._producer_by_port[nid] = row
            if node.op == "source":
                self._source_nids.append(nid)
        for nid in self.resp_queue:
            self._resp_by_id[nid] = self.resp_queue[nid]
        queues = self.fifos.queues
        for producer, consumers in self.consumers.items():
            self._consumer_edges[producer] = [
                (
                    (consumer, index),
                    queues[(consumer, index)],
                    self.edge_hops[(producer, consumer)],
                    consumer,
                )
                for consumer, index in consumers
            ]
        self._op_names = list(op_index)
        self._fire_counts = [0] * len(op_index)
        self._frontend_next = getattr(self.frontend, "next_event", None)

    def _fold_firings(self) -> None:
        """Fold the interned firing counters into ``stats.firings``.

        Counts are preserved exactly (deltas added, array zeroed), so
        folding at any cycle boundary is a semantic no-op; it runs at
        quiescence and before every :meth:`state_dict` so external
        readers — the invariant checker's ledger, energy, snapshots —
        always see the complete dict.
        """
        counts = self._fire_counts
        firings = self.stats.firings
        for op_id, name in enumerate(self._op_names):
            count = counts[op_id]
            if count:
                firings[name] = firings.get(name, 0) + count
                counts[op_id] = 0

    def _init_edge_hops(self) -> None:
        from repro.pnr.netlist import build_netlist

        netlist = build_netlist(self.dfg)
        routed: dict[tuple[int, int], int] = {}
        for index, net in enumerate(netlist.nets):
            hops = self.compiled.routing.sink_hops.get(index, {})
            for sink, count in hops.items():
                routed[(net.src, sink)] = count
        placement = self.compiled.placement
        for producer, consumers in self.consumers.items():
            for consumer, _ in consumers:
                key = (producer, consumer)
                if key in self.edge_hops:
                    continue
                if key in routed:
                    self.edge_hops[key] = routed[key]
                else:
                    (ax, ay), (bx, by) = placement[producer], placement[
                        consumer
                    ]
                    self.edge_hops[key] = abs(ax - bx) + abs(ay - by)

    # -- helpers ---------------------------------------------------------

    def can_emit(self, nid: int) -> bool:
        capacity = self.capacity
        pending = self.pending_pushes
        if pending:
            for key, queue, _hops, _consumer in self._consumer_edges[nid]:
                if len(queue) + pending.get(key, 0) >= capacity:
                    return False
        else:
            for _key, queue, _hops, _consumer in self._consumer_edges[nid]:
                if len(queue) >= capacity:
                    return False
        return True

    def push_output(self, nid: int, value, pushes: list) -> None:
        pushes.append((nid, value))
        pending = self.pending_pushes
        for key, _queue, _hops, _consumer in self._consumer_edges[nid]:
            pending[key] = pending.get(key, 0) + 1

    def commit_pushes(self, pushes: list) -> None:
        capacity = self.capacity
        edges = self._consumer_edges
        active_add = self.active.add
        tokens = 0
        hops_total = 0
        for nid, value in pushes:
            for _key, queue, hops, consumer in edges[nid]:
                queue.append(value)
                if len(queue) > capacity:
                    node = self.dfg.nodes[consumer]
                    index = _key[1]
                    raise SimulationError(
                        f"FIFO overflow: node {consumer} ({node.op} "
                        f"{node.tag!r}) port {node.port_name(index)} holds "
                        f"{len(queue)} tokens (capacity {capacity})"
                    )
                tokens += 1
                hops_total += hops
                active_add(consumer)
        self.tokens += tokens
        self.stats.noc_hops += hops_total
        self.pending_pushes.clear()

    # -- main loop ---------------------------------------------------------

    def run(self) -> SimStats:
        max_cycles = self.arch.sim.max_cycles
        deadlock_after = self.arch.sim.deadlock_cycles
        cycle_skip = self.arch.sim.cycle_skip
        divider = self.divider
        stats = self.stats
        memsys = self.memsys
        memsys_tick = memsys.tick
        # The completions heap object is stable across restore (refilled
        # in place), so peeking it directly skips a generator set-up per
        # cycle on the (common) idle-completions path.
        completions = memsys._completions
        arrivals = self.arrivals
        frontend_tick = self.frontend.tick
        enqueue = memsys.enqueue
        obs = self.obs
        while True:
            if self.snapshots is not None:
                # Cycle boundary: pending_pushes is empty and the
                # executed/skipped ledger is closed — the only points
                # where the machine may be snapshotted or preempted.
                self.snapshots.boundary(self)
                obs = self.obs  # a restore may have swapped the sink set
            now = self.now
            stats.executed_cycles += 1
            progressed = False
            memsys_tick(now)
            if completions and completions[0][0] <= now:
                for record in memsys.completions(now):
                    self._arrival_order += 1
                    heapq.heappush(
                        arrivals,
                        (
                            record.complete_cycle + record.response_hops,
                            self._arrival_order,
                            record,
                        ),
                    )
                progressed = True
            while arrivals and arrivals[0][0] <= now:
                record = heapq.heappop(arrivals)[2]
                record.arrived_cycle = now
                if record.request.kind == "load":
                    # Arrival-side latency ledger (fault-dropped replies
                    # never reach this point, so they never contribute).
                    memsys.stats.record_arrival(record, now)
                self.emit_candidates.add(record.nid)
                progressed = True
            if frontend_tick(now, lambda rec: enqueue(rec, now)):
                # Requests advancing through the fabric-memory network
                # (e.g. Monaco's arbiter chain) count as forward progress
                # for the deadlock detector.
                progressed = True
            if now % divider == 0:
                if self._fabric_tick(now):
                    progressed = True
            elif obs is not None:
                obs.gap(now)
            if progressed:
                self.last_event = now
            if self._finished(now):
                break
            if now - self.last_event > deadlock_after:
                self._raise_deadlock(now)
            if now > max_cycles:
                raise SimulationError("simulation exceeded max_cycles")
            now += 1
            if cycle_skip:
                target = self._skip_target(
                    now, self.last_event, deadlock_after, max_cycles
                )
                if target > now:
                    if obs is not None:
                        # Coarse synthesis: the whole quiescent span is
                        # one "skipped" event (nothing happened in it by
                        # construction, so no finer events exist).
                        obs.skip(now, target)
                    stats.skipped_cycles += target - now
                    now = target
            self.now = now
        self._fold_firings()
        stats.system_cycles = self.now
        stats.mem = memsys.stats
        if self.faults is not None:
            stats.faults_injected = self.faults.counts()
        self._check_final_state()
        if self.check is not None:
            self.check.finish(stats, self)
        return stats

    def _skip_target(
        self, now: int, last_event: int, deadlock_after: int, max_cycles: int
    ) -> int:
        """Earliest cycle >= ``now`` at which anything can happen.

        Every component contributes a ``next_event`` hint; in the gap up
        to the minimum of those hints the machine is provably quiescent,
        so executing the skipped cycles would change nothing — results
        are bit-identical with skipping on or off. The jump is clamped so
        the deadlock detector and the ``max_cycles`` safety net still
        trip at exactly the cycle the per-cycle loop would have raised.
        """
        candidates = []
        nxt = self.memsys.next_event(now)
        if nxt is not None:
            candidates.append(nxt)
        if self.arrivals:
            candidates.append(max(now, self.arrivals[0][0]))
        if self._frontend_next is not None:
            nxt = self._frontend_next(now)
        else:
            # Frontends without a hint: never skip while they hold state.
            nxt = now if self.frontend.busy() else None
        if nxt is not None:
            candidates.append(nxt)
        if self.active.count or self.emit_candidates.count:
            # A node may be ready (or retry a blocked emit) at the next
            # fabric tick; idle PEs wake only via the sources above.
            divider = self.divider
            candidates.append(((now + divider - 1) // divider) * divider)
        if candidates:
            target = min(candidates)
        else:
            # Nothing can ever happen again: jump straight to where the
            # per-cycle loop would diagnose the deadlock.
            target = last_event + deadlock_after + 1
        target = min(target, last_event + deadlock_after + 1, max_cycles + 1)
        return max(now, target)

    def _finished(self, now: int) -> bool:
        if now == 0:
            return False
        return (
            self.tokens == 0
            and self.mem_inflight == 0
            and not self.arrivals
            and not self.frontend.busy()
            and not self.memsys.busy()
            and not self._any_ready()
        )

    def _any_ready(self) -> bool:
        # With zero tokens in flight, only a source that has not fired yet
        # could still act. Sources are enumerated once at init, so this
        # is O(#sources) membership checks, not a scan of ``active``.
        active_has = self.active.has
        states = self._state_by_id
        for nid in self._source_nids:
            if active_has(nid) and not states[nid]["fired"]:
                return True
        return False

    # -- fabric ------------------------------------------------------------

    def _fabric_tick(self, now: int) -> bool:
        pushes: list = []
        progressed = False
        obs = self.obs
        if obs is not None:
            self._tick_fired = set()
            self._tick_fifo_full = set()
        if self.emit_candidates.count:
            progressed |= self._emit_responses(now, pushes)
        progressed |= self._fire_nodes(now, pushes)
        if obs is not None:
            # Classify *before* committing pushes: tokens land at the
            # next tick, so the pre-commit FIFO state is what this tick's
            # firing rules actually saw.
            obs.tick(now, self._classify_tick())
            self._tick_fired = None
            self._tick_fifo_full = None
        if pushes:
            if obs is not None:
                # Publish token movements at the same point they are
                # committed; kept out of commit_pushes so its signature
                # stays a plain (pushes) hook for capacity tests. The
                # per-source slot ordinal disambiguates a node that both
                # emitted a memory response and fired in this tick.
                slots: dict[int, int] = {}
                for nid, _value in pushes:
                    slot = slots.get(nid, 0)
                    slots[nid] = slot + 1
                    for consumer, index in self.consumers[nid]:
                        obs.token(now, nid, consumer)
                        obs.push(now, nid, consumer, index, slot)
            if self.check is not None:
                # Shadow-FIFO stamps mirror the commit (same point, same
                # order) so capacity and cadence are checked against
                # exactly what the engine's FIFOs will hold next tick.
                self.check.commit(now, pushes, self.consumers)
            self.commit_pushes(pushes)
            progressed = True
        return progressed

    def _classify_tick(self) -> dict[int, str]:
        """Attribute this executed fabric tick: one bucket per node."""
        fired = self._tick_fired
        fifo_full = self._tick_fifo_full
        classification: dict[int, str] = {}
        for nid in self.dfg.nodes:
            if nid in fired:
                classification[nid] = FIRE
            elif nid in fifo_full:
                classification[nid] = "fifo-full"
            else:
                reason = self._stall_reason(nid)
                # "ready" means tokens became visible only after the fire
                # phase scanned the node — it was operand-starved when it
                # mattered this tick.
                classification[nid] = (
                    "operand-wait" if reason == "ready" else reason
                )
        return classification

    def _stall_reason(self, nid: int) -> str:
        """Why ``nid`` cannot fire right now (side-effect-free peek)."""
        node = self.dfg.nodes[nid]
        queue = self.resp_queue.get(nid)
        if queue and queue[0].arrived_cycle is not None:
            # A memory response is back at the PE but cannot be emitted.
            if not self.can_emit(nid):
                return "fifo-full"
        try:
            decision = decide(
                node, self.states[nid], self.fifos, self.params
            )
        except Exception:  # pragma: no cover - diagnostic path only
            return "operand-wait"
        if decision is None:
            # No new firing possible; if this PE has requests in flight,
            # the wait is the memory round-trip itself (the paper's
            # critical-load stall), not operand starvation.
            return "memory-outstanding" if queue else "operand-wait"
        if decision.mem is not None:
            if queue is not None and len(queue) >= self.max_outstanding:
                return "memory-outstanding"
            return "ready"
        if decision.emit is not NO_EMIT and not self.can_emit(nid):
            return "output-backpressure"
        return "ready"

    def _emit_responses(self, now: int, pushes: list) -> bool:
        progressed = False
        obs = self.obs
        emit = self.emit_candidates
        member = emit._member
        resp = self._resp_by_id
        for nid in emit.iter_ordered():
            if not member[nid]:
                continue
            queue = resp[nid]
            record = queue[0] if queue else None
            if record is None or record.arrived_cycle is None:
                emit.discard(nid)
                continue
            if not self.can_emit(nid):
                if obs is not None:
                    self._tick_fifo_full.add(nid)
                continue  # retry next fabric tick
            queue.popleft()
            self.mem_inflight -= 1
            if self.check is not None:
                self.check.response(now, nid, record)
            self.push_output(nid, record.value, pushes)
            self.stats.fmnoc_hops += 2 * record.response_hops
            node = self._node_by_id[nid]
            latency = record.arrived_cycle - record.issue_cycle
            if record.request.kind == "load":
                self.stats.record_load(
                    node.criticality, self.domain_of[nid], latency
                )
            if obs is not None:
                self._tick_fired.add(nid)
                obs.mem(now, record, node, self.domain_of[nid])
            # The PE may issue again now that a slot freed up.
            self.active.add(nid)
            if not queue or queue[0].arrived_cycle is None:
                emit.discard(nid)
            progressed = True
        return progressed

    def _fire_nodes(self, now: int, pushes: list) -> bool:
        progressed = False
        active = self.active
        member = active._member
        discard = active.discard
        add = active.add
        nodes = self._node_by_id
        states = self._state_by_id
        resp = self._resp_by_id
        producers = self._producer_by_port
        in_fifos = self.fifos.by_node
        fire_counts = self._fire_counts
        nid_op = self._nid_op
        fifos = self.fifos
        params = self.params
        capacity = self.capacity
        max_outstanding = self.max_outstanding
        obs = self.obs
        faults = self.faults
        check = self.check
        tokens_popped = 0
        for nid in active.iter_ordered():
            if not member[nid]:
                continue
            decision = decide(nodes[nid], states[nid], fifos, params)
            if decision is None:
                discard(nid)
                continue
            mem = decision.mem
            if mem is not None:
                if len(resp[nid]) >= max_outstanding:
                    discard(nid)
                    continue
            elif decision.emit is not NO_EMIT and not self.can_emit(nid):
                discard(nid)
                continue
            if faults is not None and faults.stall_pe():
                # Injected PE stall: the firing was legal but is
                # suppressed this tick. The node stays active and
                # retries at the next fabric tick (so the cycle-skip
                # scheduler still schedules it).
                continue
            if check is not None:
                # Shadow pops + cadence check for exactly the tokens
                # this firing consumes (after the fault gate, so a
                # suppressed firing is not counted).
                check.fire(now, nid, decision)
            # Commit the firing.
            pops = decision.pops
            if pops:
                fifo_row = in_fifos[nid]
                producer_row = producers[nid]
                for index in pops:
                    queue = fifo_row[index]
                    if len(queue) >= capacity:
                        add(producer_row[index])
                    queue.popleft()
                    tokens_popped += 1
            if decision.state is not None:
                states[nid].update(decision.state)
            if mem is not None:
                self._issue_memory(nid, mem, now)
            elif decision.emit is not NO_EMIT:
                self.push_output(nid, decision.emit, pushes)
            fire_counts[nid_op[nid]] += 1
            if obs is not None:
                node = nodes[nid]
                self._tick_fired.add(nid)
                obs.fire(now, node, self._placement_by_id[nid])
                obs.fire_pops(
                    now,
                    nid,
                    pops,
                    mem is not None,
                    mem is None and decision.emit is not NO_EMIT,
                )
            progressed = True
            # The node may be ready again next tick; keep it active.
        if tokens_popped:
            self.tokens -= tokens_popped
        return progressed

    def _issue_memory(self, nid: int, request, now: int) -> None:
        if self.check is not None:
            # Memory-ordering monotonicity + outstanding-limit check,
            # against the pre-issue queue depth.
            self.check.issue(now, nid, len(self.resp_queue[nid]))
        self._seq += 1
        record = RequestRecord(
            nid=nid,
            seq=self._seq,
            request=request,
            address=self.address_map.address(request.array, request.index),
            pe_coord=self._placement_by_id[nid],
            issue_cycle=now,
        )
        self._resp_by_id[nid].append(record)
        self.mem_inflight += 1
        self.frontend.inject(record, now)

    # -- snapshots ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Complete mutable machine state at a cycle boundary.

        Containers are shallow-copied (the snapshot layer serializes the
        returned dict immediately, in one ``pickle.dumps`` whose memo
        preserves ``RequestRecord`` aliasing across ``resp_queue``, the
        arrivals heap, bank queues and frontend latches). The ``obs``
        and ``check`` entries are the live objects themselves: they are
        closures over nothing but plain data, so they pickle wholesale.
        The schema is the pre-dense-rewrite one — ``active`` and
        ``emit_candidates`` serialize as plain sets, firing counters are
        folded first — so snapshots stay portable across engine layouts.
        """
        self._fold_firings()
        return {
            "now": self.now,
            "last_event": self.last_event,
            "fifos": {
                key: list(queue) for key, queue in self.fifos.queues.items()
            },
            "states": {
                nid: dict(state) for nid, state in self.states.items()
            },
            "resp_queue": {
                nid: list(queue) for nid, queue in self.resp_queue.items()
            },
            "arrivals": list(self.arrivals),
            "arrival_order": self._arrival_order,
            "seq": self._seq,
            "tokens": self.tokens,
            "mem_inflight": self.mem_inflight,
            "active": set(self.active),
            "emit_candidates": set(self.emit_candidates),
            "stats": self.stats.state_dict(),
            "memsys": self.memsys.state_dict(),
            "frontend": self.frontend.state_dict(),
            "faults": (
                self.faults.state_dict() if self.faults is not None else None
            ),
            "obs": self.obs,
            "check": self.check,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` in place (resume path).

        Structural containers (FIFO dict, node states, resp queues,
        memory arrays) are refilled rather than replaced, preserving the
        identities the constructor — and :meth:`_dense_init` — wired up;
        the ``obs``/``check`` objects from the snapshot *replace* the
        freshly-built ones — their accumulated history is part of the
        machine state — and the aliases on the memory system and
        frontend are re-pointed accordingly. The plain-set ``active``/
        ``emit_candidates`` entries (the portable schema, unchanged
        since before the dense rewrite) rebuild the ordered lists.
        """
        for side, present in (
            ("faults", state["faults"] is not None),
            ("obs", state["obs"] is not None),
            ("check", state["check"] is not None),
        ):
            if present != (getattr(self, side) is not None):
                raise SimulationError(
                    f"snapshot has {side} {'on' if present else 'off'}, "
                    "this run has it configured the other way"
                )
        self.now = state["now"]
        self.last_event = state["last_event"]
        for key, items in state["fifos"].items():
            queue = self.fifos.queues[key]
            queue.clear()
            queue.extend(items)
        for nid, node_state in state["states"].items():
            current = self.states[nid]
            current.clear()
            current.update(node_state)
        for nid, items in state["resp_queue"].items():
            queue = self.resp_queue[nid]
            queue.clear()
            queue.extend(items)
        self.arrivals = list(state["arrivals"])
        self._arrival_order = state["arrival_order"]
        self._seq = state["seq"]
        self.tokens = state["tokens"]
        self.mem_inflight = state["mem_inflight"]
        self.active = _OrderedIntSet(self._size)
        for nid in state["active"]:
            self.active.add(nid)
        self.emit_candidates = _OrderedIntSet(self._size)
        for nid in state["emit_candidates"]:
            self.emit_candidates.add(nid)
        self.pending_pushes.clear()
        self.stats.load_state_dict(state["stats"])
        # The restored firings dict is the complete pre-snapshot ledger
        # (folded at write time); the interned deltas restart from zero.
        self._fire_counts = [0] * len(self._fire_counts)
        self.memsys.load_state_dict(state["memsys"])
        self.frontend.load_state_dict(state["frontend"])
        if state["faults"] is not None:
            self.faults.load_state_dict(state["faults"])
        if state["obs"] is not None:
            self.obs = state["obs"]
            self.memsys.obs = self.obs
            self.frontend.obs = self.obs
        if state["check"] is not None:
            self.check = state["check"]

    # -- diagnostics ---------------------------------------------------

    def _raise_deadlock(self, now: int) -> None:
        raise DeadlockError(
            f"no progress since cycle {now - self.arch.sim.deadlock_cycles}"
            f"; {self.tokens} tokens stranded, {self.mem_inflight} memory "
            "ops in flight.\n" + self._blocked_report()
        )

    def _blocked_report(self, top: int = 20) -> str:
        """Ranked blocked-node report for deadlock diagnostics.

        Every node holding tokens or outstanding memory requests is
        listed with its stall reason, per-port FIFO occupancies, and
        in-flight memory count — the nodes hoarding the most stranded
        state first, since the cycle that wedged the machine almost
        always passes through one of them.
        """
        entries = []
        for nid, node in self.dfg.nodes.items():
            occupancy = {
                node.port_name(index): len(
                    self.fifos.queues[(nid, index)]
                )
                for index, inp in enumerate(node.inputs)
                if isinstance(inp, PortRef)
            }
            held = sum(occupancy.values())
            outstanding = len(self.resp_queue.get(nid, ()))
            if not held and not outstanding:
                continue
            reason = self._stall_reason(nid)
            fifos = ", ".join(
                f"{port}:{depth}" for port, depth in occupancy.items()
            )
            dropped = sum(
                1
                for record in self.resp_queue.get(nid, ())
                if record.dropped
            )
            lost = f" ({dropped} dropped by fault injection)" if dropped else ""
            entries.append(
                (
                    -(held + outstanding),
                    nid,
                    f"node {nid} ({node.op} {node.tag!r}) [{reason}] "
                    f"fifos {{{fifos}}} mem-outstanding {outstanding}{lost}",
                )
            )
        entries.sort()
        lines = ["Blocked nodes (most stranded state first):"]
        lines += [f"  {text}" for _, _, text in entries[:top]]
        if len(entries) > top:
            lines.append(f"  ... {len(entries) - top} more blocked node(s)")
        if len(entries) <= 1:
            lines.append(
                "  (single or no holder: check source nodes / frontend "
                "state; the machine may simply have drained incorrectly)"
            )
        return "\n".join(lines)

    def _check_final_state(self) -> None:
        for nid, state in self.states.items():
            node = self.dfg.nodes[nid]
            if node.op == "carry" and state["phase"] != "init":
                raise SimulationError(
                    f"carry node {nid} ({node.tag!r}) finished in RUN phase"
                )
            if node.op == "invariant" and state["held"]:
                raise SimulationError(
                    f"invariant node {nid} ({node.tag!r}) finished held"
                )
