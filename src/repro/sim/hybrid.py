"""NUMA + NUPEA hybrid interconnect (the paper's Sec. 3 extension).

"NUPEA is complementary to prior data-centric approaches ... One could
design SDAs with non-uniformity in both memory and PE access to further
scale data movement." This frontend explores that design point: requests
still traverse Monaco's per-row arbiter hierarchy (NUPEA), but the banks
behind the ports are partitioned into NUMA regions tied to LS-row groups;
a request leaving its local region pays an extra crossing delay.

Unlike the NUMA-UPEA baseline's random PE-to-domain assignment, the hybrid
assignment is *spatial*: consecutive LS rows share a region, matching how
a physical design would place bank groups beside row groups.
"""

from __future__ import annotations

import heapq

from repro.arch.fabric import Fabric
from repro.arch.memory import AddressMap
from repro.sim.fmnoc_sim import MonacoFrontend
from repro.sim.memsys import RequestRecord


class HybridFrontend(MonacoFrontend):
    """Monaco's FM-NoC with NUMA-partitioned memory behind the ports."""

    name = "monaco-numa"

    def __init__(
        self,
        fabric: Fabric,
        address_map: AddressMap,
        n_regions: int = 4,
        remote_cycles: int = 2,
    ):
        super().__init__(fabric)
        self.address_map = address_map
        self.n_regions = n_regions
        self.remote_cycles = remote_cycles
        rows = fabric.ls_rows()
        self.row_region = {
            row: index * n_regions // len(rows)
            for index, row in enumerate(rows)
        }
        self._stage: list[tuple[int, int, RequestRecord]] = []
        self._order = 0
        self.local_accesses = 0
        self.remote_accesses = 0

    def region_of_address(self, address: int) -> int:
        return self.address_map.line(address) % self.n_regions

    def numa_counters(self) -> dict[str, int]:
        """Locality tally for :attr:`SimStats.numa` (same accessor as
        :meth:`repro.sim.upea.NumaFrontend.numa_counters`)."""
        return {
            "local_accesses": self.local_accesses,
            "remote_accesses": self.remote_accesses,
        }

    def tick(self, now: int, deliver) -> bool:
        def stage(record: RequestRecord) -> None:
            local = self.row_region[record.pe_coord[1]] == (
                self.region_of_address(record.address)
            )
            if local:
                self.local_accesses += 1
                deliver(record)
            else:
                self.remote_accesses += 1
                record.response_hops += self.remote_cycles
                self._order += 1
                heapq.heappush(
                    self._stage,
                    (now + self.remote_cycles, self._order, record),
                )

        moved = False
        while self._stage and self._stage[0][0] <= now:
            deliver(heapq.heappop(self._stage)[2])
            moved = True
        return super().tick(now, stage) or moved

    def busy(self) -> bool:
        return bool(self._stage) or super().busy()

    # -- snapshots ---------------------------------------------------------

    def signature(self) -> str:
        """Pins the spatial region layout on top of the Monaco topology
        (``row_region`` is a pure function of these three parameters)."""
        return (
            f"monaco-numa:{self.fabric.rows}x{self.fabric.cols}"
            f":regions={self.n_regions}:remote={self.remote_cycles}"
        )

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["stage"] = list(self._stage)
        state["stage_order"] = self._order
        state["local_accesses"] = self.local_accesses
        state["remote_accesses"] = self.remote_accesses
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._stage = list(state["stage"])
        self._order = state["stage_order"]
        self.local_accesses = state["local_accesses"]
        self.remote_accesses = state["remote_accesses"]

    def next_event(self, now: int) -> int | None:
        """Cycle-skip hint: the arbiter hierarchy moves every cycle while
        occupied; otherwise the next staged NUMA crossing matters."""
        nxt = now if MonacoFrontend.busy(self) else None
        if self._stage:
            staged = max(now, self._stage[0][0])
            nxt = staged if nxt is None else min(nxt, staged)
        return nxt
