"""Cycle-level simulation: engine, memory system, interconnect frontends."""

from repro.sim.energy import EnergyParams, EnergyReport, estimate_energy
from repro.sim.engine import SimResult, default_frontend, simulate
from repro.sim.fmnoc_sim import MonacoFrontend
from repro.sim.hybrid import HybridFrontend
from repro.sim.memsys import MemorySystem, MemStats, RequestRecord, SharedCache
from repro.sim.regions import RegionRunResult, simulate_regions
from repro.sim.stats import LatencyAccumulator, SimStats
from repro.sim.upea import NumaFrontend, UniformFrontend

__all__ = [
    "EnergyParams",
    "EnergyReport",
    "HybridFrontend",
    "LatencyAccumulator",
    "MemStats",
    "MemorySystem",
    "MonacoFrontend",
    "NumaFrontend",
    "RegionRunResult",
    "RequestRecord",
    "SharedCache",
    "SimResult",
    "SimStats",
    "UniformFrontend",
    "default_frontend",
    "estimate_energy",
    "simulate",
    "simulate_regions",
]
