"""Bit-identical mid-simulation checkpoint/restore (preemption safety).

Long sweep points die to preemption — node reclaims, wall-clock limits,
``kill`` — and until this module the only recovery was rerunning the
point from cycle 0. A :class:`Checkpointer` armed on the engine writes
periodic, crash-safe snapshots of the *complete* machine state: engine
tick and cycle-skip bookkeeping, per-node FIFOs and firing state, memory
bank queues and in-flight requests, FM-NoC arbitration latches and
round-robin cursors, fault-injection LCG streams, and the observability
sinks. ``resume`` from any snapshot continues the run **bit-identically**
— the same :class:`~repro.sim.stats.SimStats`, the same final memory,
the same manifests — with cycle-skipping, fault injection and
critical-path profiling each on or off.

Three properties carry the design:

* **One pickle, shared identity.** A :class:`RequestRecord` in flight is
  simultaneously the engine's ``resp_queue`` entry *and* a bank-queue /
  completions-heap / frontend-latch entry. The whole state dict is
  serialized in a single ``pickle.dumps`` call, whose memo preserves that
  aliasing — restore rebuilds the same object graph, not per-container
  copies that would decouple on the next mutation.
* **Crash-safe files.** Snapshots are written to ``<path>.tmp``, fsynced,
  then :func:`os.replace`'d over ``<path>``. A SIGKILL between write and
  rename leaves a stale ``.tmp`` the loader never reads; the previous
  snapshot stays valid. The payload carries a SHA-256 checksum and a
  version tag, and the header pins a :func:`sim_config_digest` so a
  snapshot can never be resumed under a different kernel, architecture,
  clock divider or frontend.
* **Cooperative preemption.** A :class:`Watchdog` turns SIGTERM/SIGINT
  (and the sweep supervisor's grace alarm) into a flag the engine polls
  at cycle boundaries; the checkpointer then writes a final snapshot and
  raises :class:`~repro.errors.SimulationPreempted`, which the sweep
  layer classifies as retryable — the retry restarts from the snapshot,
  not from cycle 0.

Zero-overhead contract: the engine's only new per-cycle cost is one
``is not None`` test on ``engine.snapshots``; with checkpointing off,
results are bit-identical to pre-snapshot builds
(``benchmarks/check_trace_overhead.py`` asserts this).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import signal
import time
from dataclasses import dataclass

from repro.errors import SimulationError, SimulationPreempted, SnapshotError

SNAPSHOT_MAGIC = "repro-sim-snapshot"
#: Bump on any change to the engine state layout — resuming across
#: versions is refused rather than silently mis-restored.
SNAPSHOT_VERSION = 1

#: Wall-budget deadlines consult ``time.monotonic`` only once per this
#: many boundaries, so an armed checkpointer costs one attribute test
#: plus one counter increment per executed cycle in the common case.
_WALL_CHECK_PERIOD = 256

_MISSING = object()


# -- configuration identity ------------------------------------------------


def sim_config_digest(compiled, arch, divider, frontend, params=None) -> str:
    """Identity of everything that must match for a resume to be sound.

    Covers the kernel (node set, arrays, placement), the architecture
    knobs, the clock divider, runtime params, and the frontend's own
    :meth:`signature` (which pins machine-config state such as the UPEA
    delay or a NUMA domain assignment that ``ArchParams`` never sees).
    The checkpoint knobs themselves — and the trace output path — are
    nulled out first: *where* you snapshot must not affect *whether* you
    may resume.
    """
    sim = dataclasses.replace(
        arch.sim, checkpoint_path=None, checkpoint_every=0, trace_path=None
    )
    dfg = compiled.dfg
    identity = {
        "version": SNAPSHOT_VERSION,
        "dfg": getattr(dfg, "name", ""),
        "nodes": sorted((nid, node.op) for nid, node in dfg.nodes.items()),
        "arrays": sorted(dfg.arrays.items()),
        "placement": sorted(compiled.placement.items()),
        "divider": divider,
        "params": sorted((params or {}).items()),
        "arch": repr(dataclasses.replace(arch, sim=sim)),
        "frontend": (
            frontend.signature()
            if hasattr(frontend, "signature")
            else type(frontend).__name__
        ),
    }
    return hashlib.sha256(repr(identity).encode()).hexdigest()[:16]


# -- snapshot files --------------------------------------------------------


def write_snapshot(path: str, meta: dict, payload: bytes) -> None:
    """Atomically publish one snapshot file.

    tmp + fsync + rename: the main path only ever holds a complete,
    checksummed snapshot. A crash mid-write leaves garbage at
    ``<path>.tmp``, which no loader reads.
    """
    blob = pickle.dumps(
        {
            "magic": SNAPSHOT_MAGIC,
            "version": SNAPSHOT_VERSION,
            "meta": dict(meta),
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_snapshot(path: str, expect_digest: str | None = None) -> Snapshot:
    """Read, validate and deserialize one snapshot file.

    Every failure mode — missing file, torn/truncated pickle, checksum
    mismatch, foreign file, version skew, wrong config digest — raises
    :class:`~repro.errors.SnapshotError` (never a bare unpickling
    exception), so callers can apply one resume policy uniformly.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        raise SnapshotError(f"no snapshot at {path}") from None
    try:
        blob = pickle.loads(raw)
    except Exception as exc:
        raise SnapshotError(f"torn or corrupt snapshot {path}: {exc}") from exc
    if not isinstance(blob, dict) or blob.get("magic") != SNAPSHOT_MAGIC:
        raise SnapshotError(f"{path} is not a simulator snapshot")
    if blob.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot {path} has version {blob.get('version')}, this build "
            f"reads version {SNAPSHOT_VERSION}"
        )
    payload = blob["payload"]
    if hashlib.sha256(payload).hexdigest() != blob["sha256"]:
        raise SnapshotError(f"snapshot {path} failed its payload checksum")
    meta = blob["meta"]
    if expect_digest is not None and meta.get("config_digest") != expect_digest:
        raise SnapshotError(
            f"snapshot {path} was taken under a different configuration "
            f"(digest {meta.get('config_digest')}, this run is "
            f"{expect_digest}); refusing to resume"
        )
    try:
        state = pickle.loads(payload)
    except Exception as exc:
        raise SnapshotError(
            f"snapshot {path} payload failed to deserialize: {exc}"
        ) from exc
    return Snapshot(meta, state, path=path)


class Snapshot:
    """One validated, installable machine state.

    Single-use: installing consumes the held state (restore hands the
    engine the snapshot's object graph *by reference* to preserve record
    aliasing, so a second install would share live mutable state between
    two runs — refused instead).
    """

    def __init__(self, meta: dict, state: dict, path: str | None = None):
        self.meta = meta
        self.path = path
        self._state = state

    @property
    def cycle(self) -> int:
        return self.meta["cycle"]

    def install(self, engine) -> None:
        if self._state is None:
            raise SnapshotError(
                f"snapshot {self.path or '<memory>'} already resumed once; "
                "load it again to resume a second run"
            )
        state, self._state = self._state, None
        engine.load_state_dict(state)


def resolve_resume(path: str, expect_digest: str, policy: str = "strict"):
    """Load a resume snapshot under one of two policies.

    ``"strict"`` propagates any :class:`SnapshotError` — the caller
    demanded this exact snapshot (``repro run --resume-from``).
    ``"discard"`` treats an invalid/missing snapshot as "start from
    cycle 0": the bad file is unlinked so the next checkpoint replaces
    it, and None is returned. Sweeps resume with ``"discard"`` — a torn
    snapshot must never wedge a retry loop.
    """
    if policy not in ("strict", "discard"):
        raise ValueError(f"unknown resume policy {policy!r}")
    try:
        return load_snapshot(path, expect_digest=expect_digest)
    except SnapshotError:
        if policy == "strict":
            raise
        try:
            os.unlink(path)
        except OSError:
            pass
        return None


# -- cooperative preemption ------------------------------------------------


class Watchdog:
    """Turns asynchronous stop requests into a cooperatively-polled flag.

    Signal handlers (and the sweep supervisor's grace alarm) may only
    *request* preemption; the engine acts on it at the next cycle
    boundary, where the machine state is snapshot-consistent. First
    request wins; later ones are ignored.
    """

    def __init__(self):
        self.reason: str | None = None
        self.kind: str = "preempted"
        self._previous: dict[int, object] = {}

    def request(self, reason: str, kind: str = "preempted") -> None:
        if self.reason is None:
            self.reason = reason
            self.kind = kind

    def _handle(self, signum, frame) -> None:
        self.request(f"signal {signal.Signals(signum).name}")

    def install(self) -> None:
        """Route SIGTERM/SIGINT through :meth:`request`. Off the main
        thread (where ``signal.signal`` raises) this is a no-op — worker
        pools deliver preemption via the shared watchdog instead."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except ValueError:
                pass

    def uninstall(self) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except ValueError:
                pass
        self._previous.clear()


# -- the checkpointer ------------------------------------------------------


@dataclass
class CheckpointConfig:
    """How one simulation checkpoints (see :func:`repro.sim.engine.simulate`).

    ``cycle_budget`` counts cycles executed *by this process* — not the
    absolute simulation cycle — so a resumed attempt under the same
    budget always makes forward progress instead of immediately
    re-preempting at its resume cycle.
    """

    path: str
    #: Periodic snapshot cadence in system cycles (0 = only on preempt).
    every_cycles: int = 0
    #: Preempt (kind "timeout") after this much wall time in the engine.
    wall_budget_s: float | None = None
    #: Preempt (kind "preempted") after executing this many cycles here.
    cycle_budget: int | None = None
    #: Install SIGTERM/SIGINT handlers around the run.
    install_signals: bool = False
    #: Shared watchdog (e.g. with the sweep supervisor's grace alarm);
    #: None + ``install_signals`` builds a private one.
    watchdog: Watchdog | None = None
    #: JSONL journal the checkpointer appends ``status: "snapshot"``
    #: records to (the sweep manifest), plus fixed identity fields.
    journal_path: str | None = None
    journal_fields: dict | None = None


class Checkpointer:
    """Armed on ``engine.snapshots``; polled once per executed cycle."""

    def __init__(self, config: CheckpointConfig, digest: str):
        self.config = config
        self.digest = digest
        self.watchdog = config.watchdog or (
            Watchdog() if config.install_signals else None
        )
        self._next_cycle: int | None = None
        self._boundaries = 0
        self._start_wall = time.monotonic()
        self._last_write_now: int | None = None
        self.writes = 0
        self.write_wall_s = 0.0

    def boundary(self, engine) -> None:
        """Cycle-boundary hook: periodic snapshot + preemption checks.

        Called at the top of the engine loop, where ``pending_pushes``
        is empty and ``executed + skipped == now`` — the only points at
        which the machine state is closed under serialization.
        """
        now = engine.now
        every = self.config.every_cycles
        if every:
            if self._next_cycle is None:
                # First boundary after start *or* resume: schedule the
                # next snapshot one full cadence out, never at the cycle
                # we just restored.
                self._next_cycle = now + every
            elif now >= self._next_cycle:
                self.write(engine)
                while self._next_cycle <= now:
                    self._next_cycle += every
        reason = kind = None
        if self.watchdog is not None and self.watchdog.reason is not None:
            reason, kind = self.watchdog.reason, self.watchdog.kind
        elif (
            self.config.cycle_budget is not None
            and self._boundaries >= self.config.cycle_budget
        ):
            reason = f"cycle budget ({self.config.cycle_budget}) exhausted"
            kind = "preempted"
        elif (
            self.config.wall_budget_s is not None
            and self._boundaries % _WALL_CHECK_PERIOD == 0
            and time.monotonic() - self._start_wall >= self.config.wall_budget_s
        ):
            reason = f"wall budget ({self.config.wall_budget_s}s) exhausted"
            kind = "timeout"
        self._boundaries += 1
        if reason is None:
            return
        if self._last_write_now != now:
            self.write(engine)
        raise SimulationPreempted(
            f"simulation preempted at cycle {now}: {reason} "
            f"(snapshot at {self.config.path})",
            kind=kind,
            snapshot_path=self.config.path,
            cycle=now,
        )

    def write(self, engine) -> str:
        start = time.perf_counter()
        check_boundary_invariants(engine)
        state = engine.state_dict()
        # ONE dumps call for the whole machine: pickle's memo preserves
        # RequestRecord aliasing across engine/memsys/frontend/checker.
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        if engine.check is not None:
            verify_roundtrip(state, payload)
        meta = {
            "config_digest": self.digest,
            "cycle": engine.now,
            "executed_cycles": engine.stats.executed_cycles,
        }
        write_snapshot(self.config.path, meta, payload)
        self.writes += 1
        self.write_wall_s += time.perf_counter() - start
        self._last_write_now = engine.now
        self._journal(meta)
        return self.config.path

    def _journal(self, meta: dict) -> None:
        if self.config.journal_path is None:
            return
        from repro.obs.manifest import MANIFEST_SCHEMA

        record = {
            "schema": MANIFEST_SCHEMA,
            "status": "snapshot",
            "cycle": meta["cycle"],
            "executed_cycles": meta["executed_cycles"],
            "snapshot_path": self.config.path,
            **(self.config.journal_fields or {}),
        }
        with open(self.config.journal_path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def finish(self) -> None:
        """Clean completion: the run no longer needs its snapshot."""
        try:
            os.unlink(self.config.path)
        except FileNotFoundError:
            pass

    def telemetry(self) -> dict:
        """Snapshot-side costs for benchmarks and manifests."""
        return {
            "writes": self.writes,
            "write_wall_s": round(self.write_wall_s, 6),
            "path": self.config.path,
            "last_cycle": self._last_write_now,
        }


# -- integrity checks ------------------------------------------------------


def check_boundary_invariants(engine) -> None:
    """Conservation laws that must hold at every snapshot boundary.

    Cheap enough to run on every write: a snapshot of a state violating
    these would restore into a corrupted machine, so writing one is
    refused loudly instead.
    """
    stats = engine.stats
    if stats.executed_cycles + stats.skipped_cycles != engine.now:
        raise SimulationError(
            f"snapshot boundary: executed ({stats.executed_cycles}) + "
            f"skipped ({stats.skipped_cycles}) != now ({engine.now})"
        )
    if engine.pending_pushes:
        raise SimulationError(
            "snapshot boundary: uncommitted pushes mid-fabric-tick"
        )
    held = sum(len(queue) for queue in engine.fifos.queues.values())
    if held != engine.tokens:
        raise SimulationError(
            f"snapshot boundary: FIFOs hold {held} tokens, "
            f"ledger says {engine.tokens}"
        )
    outstanding = sum(len(queue) for queue in engine.resp_queue.values())
    if outstanding != engine.mem_inflight:
        raise SimulationError(
            f"snapshot boundary: {outstanding} responses outstanding, "
            f"ledger says {engine.mem_inflight}"
        )


def verify_roundtrip(state: dict, payload: bytes) -> None:
    """Prove serialize/deserialize is lossless for this state.

    Runs under ``sim.check`` on every snapshot write: the payload is
    deserialized back and compared value-by-value against the live
    state. The ``obs``/``check`` entries are pickled wholesale and have
    no value equality (a restored copy compares unequal by identity),
    so the comparison covers the engine/memsys/frontend/faults state —
    everything the quiescence ledger is computed from.
    """
    clone = pickle.loads(payload)
    for key in state:
        if key in ("obs", "check"):
            continue
        if clone.get(key, _MISSING) != state[key]:
            from repro.check.invariants import InvariantViolation

            raise InvariantViolation(
                f"snapshot round-trip mismatch in {key!r}: the serialized "
                "state does not reproduce the live machine"
            )
